// Fuzz target: GestureFeatures::from_bytes (the windower's packed feature
// vector, decoded by the classifier unit from tuple field bytes).
#include "apps/gesture_recognition.h"
#include "fuzz/fuzz_harness.h"

SWING_FUZZ_TARGET {
  const swing::Bytes input(data, data + size);
  const swing::apps::GestureFeatures features =
      swing::apps::GestureFeatures::from_bytes(input);
  swing_fuzz_roundtrip(features);
}
