// Fuzz target: GestureFeatures::decode (the windower's packed feature
// vector, decoded by the classifier unit from tuple field bytes).
#include "apps/gesture_recognition.h"
#include "fuzz/fuzz_harness.h"

SWING_FUZZ_TARGET {
  const swing::apps::GestureFeatures msg = swing_fuzz_decode<swing::apps::GestureFeatures>(data, size);
  swing_fuzz_roundtrip(msg);
}
