// Fuzz target: dataflow::Tuple::from_bytes (the data-plane payload codec).
#include "dataflow/tuple.h"
#include "fuzz/fuzz_harness.h"

SWING_FUZZ_TARGET {
  const swing::Bytes input(data, data + size);
  const swing::dataflow::Tuple tuple =
      swing::dataflow::Tuple::from_bytes(input);
  swing_fuzz_roundtrip(tuple);
}
