// Fuzz target: dataflow::Tuple::decode (the data-plane payload codec).
#include "dataflow/tuple.h"
#include "fuzz/fuzz_harness.h"

SWING_FUZZ_TARGET {
  const swing::dataflow::Tuple msg = swing_fuzz_decode<swing::dataflow::Tuple>(data, size);
  swing_fuzz_roundtrip(msg);
}
