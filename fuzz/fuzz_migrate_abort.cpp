// Fuzz target: MigrateAbortMsg::decode (master -> both participants).
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::state::MigrateAbortMsg msg = swing_fuzz_decode<swing::state::MigrateAbortMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
