// Fuzz target: ReplicateMsg::decode (master -> peer-worker chain relay).
// Exercises the kind-byte validation (only kFull/kDelta are legal).
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::state::ReplicateMsg msg = swing_fuzz_decode<swing::state::ReplicateMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
