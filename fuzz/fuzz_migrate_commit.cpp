// Fuzz target: MigrateCommitMsg::decode (master -> both participants).
// Exercises the hostile-downstream-count guard.
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::state::MigrateCommitMsg msg = swing_fuzz_decode<swing::state::MigrateCommitMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
