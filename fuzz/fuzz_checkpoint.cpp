// Fuzz target: CheckpointMsg::decode (worker -> master snapshot ship).
//
// The state payload is an opaque length-prefixed blob here; the inner
// envelope (dedup ids + unit state) is parsed on restore, not on store, so
// this target covers the outer framing only.
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::state::CheckpointMsg msg = swing_fuzz_decode<swing::state::CheckpointMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
