// Fuzz target: CheckpointMsg::from_bytes (worker -> master snapshot ship).
//
// The state payload is an opaque length-prefixed blob here; the inner
// envelope (dedup ids + unit state) is parsed on restore, not on store, so
// this target covers the outer framing only.
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::Bytes input(data, data + size);
  const swing::state::CheckpointMsg msg =
      swing::state::CheckpointMsg::from_bytes(input);
  swing_fuzz_roundtrip(msg);
}
