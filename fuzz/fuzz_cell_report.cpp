// Fuzz target: CellReportMsg::decode (periodic worker cell reports).
#include "fuzz/fuzz_harness.h"
#include "shard/shard_messages.h"

SWING_FUZZ_TARGET {
  const swing::shard::CellReportMsg msg = swing_fuzz_decode<swing::shard::CellReportMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
