// Fuzz target: ReplicaRestoreMsg::decode (master -> peer rebuild command).
// Exercises the hostile-downstream-count guard.
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::state::ReplicaRestoreMsg msg = swing_fuzz_decode<swing::state::ReplicaRestoreMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
