// Fuzz target: AckMsg::from_bytes (downstream -> upstream latency echo).
#include "fuzz/fuzz_harness.h"
#include "runtime/messages.h"

SWING_FUZZ_TARGET {
  const swing::Bytes input(data, data + size);
  const swing::runtime::AckMsg msg =
      swing::runtime::AckMsg::from_bytes(input);
  swing_fuzz_roundtrip(msg);
}
