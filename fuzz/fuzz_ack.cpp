// Fuzz target: AckMsg::decode (downstream -> upstream latency echo).
#include "fuzz/fuzz_harness.h"
#include "runtime/messages.h"

SWING_FUZZ_TARGET {
  const swing::runtime::AckMsg msg = swing_fuzz_decode<swing::runtime::AckMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
