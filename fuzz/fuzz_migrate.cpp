// Fuzz target: MigrateMsg::decode (master -> source-worker handoff).
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::state::MigrateMsg msg = swing_fuzz_decode<swing::state::MigrateMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
