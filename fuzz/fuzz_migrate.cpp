// Fuzz target: MigrateMsg::from_bytes (master -> source-worker handoff).
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::Bytes input(data, data + size);
  const swing::state::MigrateMsg msg =
      swing::state::MigrateMsg::from_bytes(input);
  swing_fuzz_roundtrip(msg);
}
