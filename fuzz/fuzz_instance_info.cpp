// Fuzz target: InstanceInfo::decode (the instance/operator/device triple
// nested inside Deploy and RouteUpdate payloads).
#include "fuzz/fuzz_harness.h"
#include "runtime/messages.h"

SWING_FUZZ_TARGET {
  const swing::runtime::InstanceInfo msg = swing_fuzz_decode<swing::runtime::InstanceInfo>(data, size);
  swing_fuzz_roundtrip(msg);
}
