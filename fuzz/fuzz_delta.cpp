// Fuzz target: DeltaMsg::decode (worker -> master incremental checkpoint).
//
// Like CheckpointMsg, the delta payload is an opaque trailing blob at this
// layer; the inner journal encoding is parsed at reconstruction time.
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::state::DeltaMsg msg = swing_fuzz_decode<swing::state::DeltaMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
