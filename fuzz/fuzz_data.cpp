// Fuzz target: DataMsg::from_bytes (the per-tuple data-plane envelope).
// Carries doubles, so the fixpoint check (not operator==) is what makes
// NaN-bearing inputs verifiable.
#include "fuzz/fuzz_harness.h"
#include "runtime/messages.h"

SWING_FUZZ_TARGET {
  const swing::Bytes input(data, data + size);
  const swing::runtime::DataMsg msg =
      swing::runtime::DataMsg::from_bytes(input);
  swing_fuzz_roundtrip(msg);
}
