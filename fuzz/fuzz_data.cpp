// Fuzz target: DataMsg::decode (the per-tuple data-plane envelope).
// Carries doubles, so the fixpoint check (not operator==) is what makes
// NaN-bearing inputs verifiable.
#include "fuzz/fuzz_harness.h"
#include "runtime/messages.h"

SWING_FUZZ_TARGET {
  const swing::runtime::DataMsg msg = swing_fuzz_decode<swing::runtime::DataMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
