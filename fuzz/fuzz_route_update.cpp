// Fuzz target: RouteUpdateMsg::decode (Add/RemoveDownstream updates).
#include "fuzz/fuzz_harness.h"
#include "runtime/messages.h"

SWING_FUZZ_TARGET {
  const swing::runtime::RouteUpdateMsg msg = swing_fuzz_decode<swing::runtime::RouteUpdateMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
