// Fuzz target: RouteUpdateMsg::from_bytes (Add/RemoveDownstream updates).
#include "fuzz/fuzz_harness.h"
#include "runtime/messages.h"

SWING_FUZZ_TARGET {
  const swing::Bytes input(data, data + size);
  const swing::runtime::RouteUpdateMsg msg =
      swing::runtime::RouteUpdateMsg::from_bytes(input);
  swing_fuzz_roundtrip(msg);
}
