// Seed-corpus generator for the wire-format fuzzers.
//
//   make_corpus <corpus-root>
//
// Writes real encoded messages — the shapes the runtime actually sends —
// under <corpus-root>/fuzz_<target>/seed_<name>. Seeds are deterministic so
// regenerating produces identical files; regression entries for past
// decoder crashes (crash_*) are checked in alongside and never overwritten
// by this tool.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "apps/gesture_recognition.h"
#include "common/bytes.h"
#include "dataflow/codec.h"
#include "dataflow/tuple.h"
#include "runtime/messages.h"
#include "shard/shard_messages.h"
#include "state/state_messages.h"

namespace {

namespace fs = std::filesystem;
using namespace swing;
using namespace swing::runtime;

int g_written = 0;

// Owning-mode encode: seeds are written once to disk, so the hot arena path
// is beside the point here.
using dataflow::encode_to_bytes;

void write_seed(const fs::path& root, const std::string& target,
                const std::string& name, const Bytes& bytes) {
  const fs::path dir = root / target;
  fs::create_directories(dir);
  std::ofstream out{dir / ("seed_" + name), std::ios::binary};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            std::streamsize(bytes.size()));
  ++g_written;
}

dataflow::Tuple sample_tuple() {
  dataflow::Tuple t{TupleId{42}, SimTime{std::int64_t(1'500'000'000)}};
  t.set("frame", dataflow::Blob{32768, 7});
  t.set("label", std::string{"face:alice"});
  t.set("score", 0.875);
  t.set("count", std::int64_t{3});
  t.set("accel", Bytes{0x00, 0x11, 0x22, 0x33});
  t.set("none", dataflow::Value{});
  return t;
}

DataMsg sample_data_msg() {
  DataMsg msg;
  msg.src_instance = InstanceId{3};
  msg.src_device = DeviceId{1};
  msg.dst_instance = InstanceId{5};
  msg.sent_ns = 2'000'000'000;
  msg.accumulated = DelayBreakdown{1.5, 0.25, 12.0};
  msg.tuple = sample_tuple();
  msg.tuple_wire_size = sample_tuple().wire_size();
  return msg;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_corpus <corpus-root>\n");
    return 2;
  }
  const fs::path root{argv[1]};

  write_seed(root, "fuzz_tuple", "typical", encode_to_bytes(sample_tuple()));
  write_seed(root, "fuzz_tuple", "empty",
             encode_to_bytes(dataflow::Tuple{TupleId{0}, SimTime{}}));

  DeployMsg deploy;
  DeployMsg::Assignment a;
  a.self = InstanceInfo{InstanceId{0}, OperatorId{0}, DeviceId{0}};
  a.downstreams.push_back(
      InstanceInfo{InstanceId{1}, OperatorId{1}, DeviceId{1}});
  a.downstreams.push_back(
      InstanceInfo{InstanceId{2}, OperatorId{1}, DeviceId{2}});
  deploy.assignments.push_back(a);
  DeployMsg::Assignment sink;
  sink.self = InstanceInfo{InstanceId{3}, OperatorId{2}, DeviceId{0}};
  deploy.assignments.push_back(sink);
  write_seed(root, "fuzz_deploy", "two_assignments", encode_to_bytes(deploy));
  write_seed(root, "fuzz_deploy", "empty", encode_to_bytes(DeployMsg{}));

  const RouteUpdateMsg update{
      InstanceId{0}, InstanceInfo{InstanceId{4}, OperatorId{1}, DeviceId{3}}};
  write_seed(root, "fuzz_route_update", "add", encode_to_bytes(update));

  write_seed(root, "fuzz_instance_info", "typical",
             encode_to_bytes(
                 InstanceInfo{InstanceId{7}, OperatorId{2}, DeviceId{5}}));
  write_seed(root, "fuzz_instance_info", "truncated",
             Bytes{0x01, 0x02, 0x03});  // 3 of 24 bytes: underrun path.

  write_seed(root, "fuzz_data", "typical", encode_to_bytes(sample_data_msg()));

  AckMsg ack;
  ack.from_instance = InstanceId{5};
  ack.to_instance = InstanceId{3};
  ack.tuple = TupleId{42};
  ack.echoed_sent_ns = 2'000'000'000;
  ack.processing_ms = 11.75;
  ack.battery_fraction = 0.5;
  write_seed(root, "fuzz_ack", "typical", encode_to_bytes(ack));

  DataBatchMsg batch;
  batch.append_frame([](ByteWriter& w) { sample_data_msg().encode(w); });
  batch.append_frame([](ByteWriter& w) { sample_data_msg().encode(w); });
  write_seed(root, "fuzz_data_batch", "two_msgs", encode_to_bytes(batch));
  write_seed(root, "fuzz_data_batch", "empty",
             encode_to_bytes(DataBatchMsg{}));

  write_seed(root, "fuzz_device_msg", "typical",
             encode_to_bytes(DeviceMsg{DeviceId{7}}));

  apps::GestureFeatures features;
  features.mean_magnitude = 9.81f;
  features.variance = 0.125f;
  features.energy = 16.5f;
  features.dominant_axis = 1.0f;
  features.mean_bias = 0.25f;
  write_seed(root, "fuzz_gesture_features", "shake", encode_to_bytes(features));

  // swing-state messages. The checkpoint state payload is a realistic
  // worker envelope: varint dedup count, dedup ids, then unit state.
  ByteWriter envelope;
  envelope.write_varint(2);
  envelope.write_u64(40);
  envelope.write_u64(41);
  envelope.write_varint(1);  // FusionUnit: one pending half-result.
  envelope.write_u64(42);
  envelope.write_bytes(encode_to_bytes(sample_tuple()));
  const Bytes state = envelope.take();

  state::CheckpointMsg checkpoint;
  checkpoint.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{1}};
  checkpoint.epoch = 3;
  checkpoint.taken_ns = 2'500'000'000;
  checkpoint.state = state;
  write_seed(root, "fuzz_checkpoint", "periodic", encode_to_bytes(checkpoint));
  checkpoint.epoch = 4;
  checkpoint.migrate_to = DeviceId{2};
  write_seed(root, "fuzz_checkpoint", "migration_final",
             encode_to_bytes(checkpoint));

  state::RestoreMsg restore;
  restore.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{2}};
  restore.epoch = 3;
  restore.sent_ns = 2'600'000'000;
  restore.state = state;
  restore.downstreams.push_back(
      InstanceInfo{InstanceId{6}, OperatorId{3}, DeviceId{0}});
  write_seed(root, "fuzz_restore", "with_downstream", encode_to_bytes(restore));
  write_seed(root, "fuzz_restore", "empty_state",
             encode_to_bytes(state::RestoreMsg{restore.instance, 0, 0, {}, {}}));

  // Checkpoint plane v2: delta records, peer replication, 2PC migration.
  // The delta payload is a realistic journal envelope: varint new-id count,
  // ids, then the unit's journalled ops.
  ByteWriter delta_envelope;
  delta_envelope.write_varint(1);
  delta_envelope.write_u64(43);
  delta_envelope.write_varint(1);  // FusionUnit journal: one insert op.
  delta_envelope.write_u8(0);      // insert
  delta_envelope.write_u64(43);
  delta_envelope.write_bytes(encode_to_bytes(sample_tuple()));
  const Bytes delta_state = delta_envelope.take();

  state::DeltaMsg delta;
  delta.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{1}};
  delta.epoch = 4;
  delta.base_epoch = 3;
  delta.taken_ns = 2'550'000'000;
  delta.delta = delta_state;
  write_seed(root, "fuzz_delta", "one_insert", encode_to_bytes(delta));

  state::ReplicateMsg replicate;
  replicate.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{1}};
  replicate.kind = state::ReplicateMsg::Kind::kFull;
  replicate.epoch = 3;
  replicate.base_epoch = 3;
  replicate.sent_ns = 2'500'000'000;
  replicate.state = state;
  write_seed(root, "fuzz_replicate", "full", encode_to_bytes(replicate));
  replicate.kind = state::ReplicateMsg::Kind::kDelta;
  replicate.epoch = 4;
  replicate.state = delta_state;
  write_seed(root, "fuzz_replicate", "delta", encode_to_bytes(replicate));

  state::ReplicaRestoreMsg replica_restore;
  replica_restore.instance =
      InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{1}};
  replica_restore.sent_ns = 2'600'000'000;
  replica_restore.downstreams.push_back(
      InstanceInfo{InstanceId{6}, OperatorId{3}, DeviceId{0}});
  write_seed(root, "fuzz_replica_restore", "typical",
             encode_to_bytes(replica_restore));

  write_seed(root, "fuzz_migrate_prepare", "typical",
             encode_to_bytes(
                 state::MigratePrepareMsg{9, InstanceId{5}, DeviceId{2}}));

  state::MigrateStateMsg xfer;
  xfer.txn = 9;
  xfer.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{2}};
  xfer.epoch = 5;
  xfer.sent_ns = 2'650'000'000;
  xfer.state = state;
  write_seed(root, "fuzz_migrate_state", "typical", encode_to_bytes(xfer));

  write_seed(root, "fuzz_migrate_ack", "ok",
             encode_to_bytes(state::MigrateAckMsg{9, InstanceId{5}, true}));
  write_seed(root, "fuzz_migrate_ack", "nack",
             encode_to_bytes(state::MigrateAckMsg{9, InstanceId{5}, false}));

  state::MigrateCommitMsg commit;
  commit.txn = 9;
  commit.instance = InstanceInfo{InstanceId{5}, OperatorId{2}, DeviceId{2}};
  commit.downstreams.push_back(
      InstanceInfo{InstanceId{6}, OperatorId{3}, DeviceId{0}});
  write_seed(root, "fuzz_migrate_commit", "typical", encode_to_bytes(commit));

  write_seed(root, "fuzz_migrate_abort", "typical",
             encode_to_bytes(state::MigrateAbortMsg{9, InstanceId{5}}));

  // swing-shard control plane.
  write_seed(root, "fuzz_cell_assign", "typical",
             encode_to_bytes(shard::CellAssignMsg{CellId{1}, DeviceId{3},
                                                  DeviceId{2}, 7}));

  shard::EpochRouteUpdateMsg epoch_update;
  epoch_update.seq = 5;
  epoch_update.epoch = 7;
  epoch_update.boundary_frame = 1024;
  epoch_update.op = shard::EpochRouteUpdateMsg::Op::kAdd;
  epoch_update.route = update;
  write_seed(root, "fuzz_epoch_route_update", "add",
             encode_to_bytes(epoch_update));
  epoch_update.seq = 6;
  epoch_update.epoch = 8;
  epoch_update.op = shard::EpochRouteUpdateMsg::Op::kRemove;
  write_seed(root, "fuzz_epoch_route_update", "remove",
             encode_to_bytes(epoch_update));

  write_seed(root, "fuzz_gateway_hello", "typical",
             encode_to_bytes(shard::GatewayHelloMsg{CellId{1}, DeviceId{2}, 7}));

  write_seed(root, "fuzz_cell_report", "typical",
             encode_to_bytes(
                 shard::CellReportMsg{CellId{1}, DeviceId{3}, 2048, 5, 7}));

  std::printf("wrote %d seed(s) under %s\n", g_written, root.string().c_str());
  return 0;
}
