// Fuzz target: DeviceMsg::decode (LeaveReport / Bye payloads).
#include "fuzz/fuzz_harness.h"
#include "runtime/messages.h"

SWING_FUZZ_TARGET {
  const swing::runtime::DeviceMsg msg = swing_fuzz_decode<swing::runtime::DeviceMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
