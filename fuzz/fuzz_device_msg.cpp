// Fuzz target: DeviceMsg::from_bytes (LeaveReport / Bye payloads).
#include "fuzz/fuzz_harness.h"
#include "runtime/messages.h"

SWING_FUZZ_TARGET {
  const swing::Bytes input(data, data + size);
  const swing::runtime::DeviceMsg msg =
      swing::runtime::DeviceMsg::from_bytes(input);
  swing_fuzz_roundtrip(msg);
}
