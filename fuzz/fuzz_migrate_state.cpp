// Fuzz target: MigrateStateMsg::decode (source -> destination 2PC transfer).
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::state::MigrateStateMsg msg = swing_fuzz_decode<swing::state::MigrateStateMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
