// Fuzz target: MigratePrepareMsg::decode (master -> source 2PC PREPARE).
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::state::MigratePrepareMsg msg = swing_fuzz_decode<swing::state::MigratePrepareMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
