// Fuzz target: DeployMsg::decode (master -> worker activation).
//
// History: a wire-claimed assignment/downstream count used to reach
// vector::reserve unchecked; varint 2^64-1 aborted the worker with
// std::length_error (corpus/fuzz_deploy/crash_huge_count).
#include "fuzz/fuzz_harness.h"
#include "runtime/messages.h"

SWING_FUZZ_TARGET {
  const swing::runtime::DeployMsg msg = swing_fuzz_decode<swing::runtime::DeployMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
