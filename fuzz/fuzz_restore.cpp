// Fuzz target: RestoreMsg::decode (master -> worker redeploy+restore).
//
// Carries a routing seed list whose wire-claimed count must be bounds-
// checked before reserve — the same hostile-count shape that once crashed
// DeployMsg (see fuzz_deploy.cpp history).
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::state::RestoreMsg msg = swing_fuzz_decode<swing::state::RestoreMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
