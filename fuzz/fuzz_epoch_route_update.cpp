// Fuzz target: EpochRouteUpdateMsg::decode (epoch-versioned route changes).
#include "fuzz/fuzz_harness.h"
#include "shard/shard_messages.h"

SWING_FUZZ_TARGET {
  const swing::shard::EpochRouteUpdateMsg msg = swing_fuzz_decode<swing::shard::EpochRouteUpdateMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
