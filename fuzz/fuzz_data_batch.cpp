// Fuzz target: DataBatchMsg::decode (coalesced per-connection batches).
//
// History: the wire-claimed element count hit vector::reserve unchecked;
// varint 2^64-1 aborted the worker with std::length_error
// (corpus/fuzz_data_batch/crash_huge_count).
#include "fuzz/fuzz_harness.h"
#include "runtime/messages.h"

SWING_FUZZ_TARGET {
  const swing::runtime::DataBatchMsg msg = swing_fuzz_decode<swing::runtime::DataBatchMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
