// Fuzz target: CellAssignMsg::decode (cell membership assignments).
#include "fuzz/fuzz_harness.h"
#include "shard/shard_messages.h"

SWING_FUZZ_TARGET {
  const swing::shard::CellAssignMsg msg = swing_fuzz_decode<swing::shard::CellAssignMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
