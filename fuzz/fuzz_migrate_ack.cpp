// Fuzz target: MigrateAckMsg::decode (destination -> master 2PC vote).
#include "fuzz/fuzz_harness.h"
#include "state/state_messages.h"

SWING_FUZZ_TARGET {
  const swing::state::MigrateAckMsg msg = swing_fuzz_decode<swing::state::MigrateAckMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
