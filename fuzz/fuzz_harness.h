// Shared harness glue for the wire-format fuzzers.
//
// Every decoder that parses bytes "from the network" has one harness built
// from SWING_FUZZ_TARGET. The body must uphold two properties on ARBITRARY
// input:
//
//   never crash    malformed bytes throw WireFormatError (caught here) —
//                  any other escape (std::length_error from a hostile
//                  element count, abort, UB caught by sanitizers) is a bug.
//   round-trip     when decoding succeeds, encode must be a fixpoint:
//                  encoding the decoded message, decoding that, and
//                  re-encoding yields the same bytes. Compared byte-wise,
//                  not via operator==, so NaN payloads (NaN != NaN) still
//                  verify.
//
// The same translation unit builds two ways:
//
//   libFuzzer      Clang + -DSWING_FUZZ=ON (the `fuzz` preset): libFuzzer
//                  provides main() and drives LLVMFuzzerTestOneInput.
//   corpus replay  every other toolchain (the GCC default build): the
//                  SWING_FUZZ_REPLAY main below replays the checked-in
//                  corpus — including past crash inputs — as a ctest
//                  regression, so decoder fixes stay fixed everywhere.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/bytes.h"
#include "common/check.h"

// Defines the per-input fuzz body. WireFormatError is the one legal way to
// reject input; everything else propagates and fails the run.
#define SWING_FUZZ_TARGET                                                  \
  static void swing_fuzz_one(const std::uint8_t* data, std::size_t size); \
  extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,          \
                                        std::size_t size) {                \
    try {                                                                  \
      swing_fuzz_one(data, size);                                          \
    } catch (const swing::WireFormatError&) {                              \
      /* Malformed input correctly rejected. */                            \
    }                                                                      \
    return 0;                                                              \
  }                                                                        \
  static void swing_fuzz_one(const std::uint8_t* data, std::size_t size)

// Decodes a Msg from the raw fuzz input via the span-based wire plane; the
// reader is a non-owning view straight over libFuzzer's buffer, exactly how
// the runtime decodes a received transport frame. Trailing bytes after the
// message are ignored, as on the wire.
template <typename Msg>
Msg swing_fuzz_decode(const std::uint8_t* data, std::size_t size) {
  swing::ByteReader r{std::span{data, size}};
  return Msg::decode(r);
}

// Fixpoint check shared by the harness bodies: Msg must already have been
// decoded once from arbitrary bytes; its encoding must then survive a
// decode/encode cycle unchanged.
template <typename Msg>
void swing_fuzz_roundtrip(const Msg& decoded) {
  swing::ByteWriter enc1;
  decoded.encode(enc1);
  swing::ByteReader r{enc1.view()};
  const Msg again = Msg::decode(r);  // Own output must re-decode.
  swing::ByteWriter enc2;
  again.encode(enc2);
  const auto v1 = enc1.view();
  const auto v2 = enc2.view();
  SWING_CHECK(v1.size() == v2.size() &&
              std::equal(v1.begin(), v1.end(), v2.begin()))
      << "decode/encode is not a fixpoint: " << v1.size() << " vs "
      << v2.size() << " bytes";
}

#if defined(SWING_FUZZ_REPLAY)

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

// Corpus replay: each argument is a corpus file or a directory of them.
// Exit status is non-zero if any input escapes the harness (the process
// dies on the uncaught exception / contract failure, which ctest reports).
int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg{argv[i]};
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (fs::is_regular_file(arg)) {
      inputs.push_back(arg);
    }
  }
  // Deterministic replay order regardless of directory enumeration.
  std::sort(inputs.begin(), inputs.end());
  for (const auto& path : inputs) {
    std::ifstream in{path, std::ios::binary};
    std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }
  std::printf("replayed %zu corpus input(s)\n", inputs.size());
  return 0;
}

#endif  // SWING_FUZZ_REPLAY
