// Shared harness glue for the wire-format fuzzers.
//
// Every decoder that parses bytes "from the network" has one harness built
// from SWING_FUZZ_TARGET. The body must uphold two properties on ARBITRARY
// input:
//
//   never crash    malformed bytes throw WireFormatError (caught here) —
//                  any other escape (std::length_error from a hostile
//                  element count, abort, UB caught by sanitizers) is a bug.
//   round-trip     when decoding succeeds, encode must be a fixpoint:
//                  decode(bytes).to_bytes() decoded and re-encoded yields
//                  the same bytes. Compared byte-wise, not via operator==,
//                  so NaN payloads (NaN != NaN) still verify.
//
// The same translation unit builds two ways:
//
//   libFuzzer      Clang + -DSWING_FUZZ=ON (the `fuzz` preset): libFuzzer
//                  provides main() and drives LLVMFuzzerTestOneInput.
//   corpus replay  every other toolchain (the GCC default build): the
//                  SWING_FUZZ_REPLAY main below replays the checked-in
//                  corpus — including past crash inputs — as a ctest
//                  regression, so decoder fixes stay fixed everywhere.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "common/check.h"

// Defines the per-input fuzz body. WireFormatError is the one legal way to
// reject input; everything else propagates and fails the run.
#define SWING_FUZZ_TARGET                                                  \
  static void swing_fuzz_one(const std::uint8_t* data, std::size_t size); \
  extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,          \
                                        std::size_t size) {                \
    try {                                                                  \
      swing_fuzz_one(data, size);                                          \
    } catch (const swing::WireFormatError&) {                              \
      /* Malformed input correctly rejected. */                            \
    }                                                                      \
    return 0;                                                              \
  }                                                                        \
  static void swing_fuzz_one(const std::uint8_t* data, std::size_t size)

// Fixpoint check shared by the harness bodies: Msg must already have been
// decoded once from arbitrary bytes; its encoding must then survive a
// decode/encode cycle unchanged.
template <typename Msg>
void swing_fuzz_roundtrip(const Msg& decoded) {
  const swing::Bytes enc1 = decoded.to_bytes();
  const Msg again = Msg::from_bytes(enc1);  // Own output must re-decode.
  const swing::Bytes enc2 = again.to_bytes();
  SWING_CHECK(enc1 == enc2) << "decode/encode is not a fixpoint: "
                            << enc1.size() << " vs " << enc2.size()
                            << " bytes";
}

#if defined(SWING_FUZZ_REPLAY)

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

// Corpus replay: each argument is a corpus file or a directory of them.
// Exit status is non-zero if any input escapes the harness (the process
// dies on the uncaught exception / contract failure, which ctest reports).
int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg{argv[i]};
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (fs::is_regular_file(arg)) {
      inputs.push_back(arg);
    }
  }
  // Deterministic replay order regardless of directory enumeration.
  std::sort(inputs.begin(), inputs.end());
  for (const auto& path : inputs) {
    std::ifstream in{path, std::ios::binary};
    std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  }
  std::printf("replayed %zu corpus input(s)\n", inputs.size());
  return 0;
}

#endif  // SWING_FUZZ_REPLAY
