// Fuzz target: GatewayHelloMsg::decode (cell-master role confirmations).
#include "fuzz/fuzz_harness.h"
#include "shard/shard_messages.h"

SWING_FUZZ_TARGET {
  const swing::shard::GatewayHelloMsg msg = swing_fuzz_decode<swing::shard::GatewayHelloMsg>(data, size);
  swing_fuzz_roundtrip(msg);
}
