// Terminal chart rendering for the figure benches.
//
// The paper's evaluation is figures; the bench binaries print the numbers
// *and* a terminal rendition so the shape is visible at a glance:
// multi-series scatter/line charts (Fig. 1, 8, 9, 10) and horizontal bar
// charts (Fig. 4, 6, 7). Pure text, no dependencies.
#pragma once

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace swing {

struct ChartSeries {
  std::string name;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;  // (x, y)
};

struct ChartOptions {
  int width = 72;   // Plot area columns.
  int height = 16;  // Plot area rows.
  std::string x_label;
  std::string y_label;
  // Optional fixed axes; NaN = auto-fit to the data.
  double y_min = std::numeric_limits<double>::quiet_NaN();
  double y_max = std::numeric_limits<double>::quiet_NaN();
};

// Renders one or more (x, y) series into a text grid with axes and a
// legend. Series draw in order; later series overwrite earlier glyphs on
// collision.
inline std::string render_chart(const std::vector<ChartSeries>& series,
                                const ChartOptions& options = {}) {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = options.y_min;
  double y_max = options.y_max;
  const bool auto_y = std::isnan(y_min) || std::isnan(y_max);
  if (auto_y) {
    y_min = std::numeric_limits<double>::infinity();
    y_max = -y_min;
  }
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      if (auto_y) {
        y_min = std::min(y_min, y);
        y_max = std::max(y_max, y);
      }
    }
  }
  if (!std::isfinite(x_min)) return "(no data)\n";
  if (x_max <= x_min) x_max = x_min + 1.0;
  if (y_max <= y_min) y_max = y_min + 1.0;

  const int w = std::max(options.width, 8);
  const int h = std::max(options.height, 4);
  std::vector<std::string> grid(std::size_t(h), std::string(std::size_t(w), ' '));

  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const int col = int(std::lround((x - x_min) / (x_max - x_min) * (w - 1)));
      const int row = int(std::lround((y - y_min) / (y_max - y_min) * (h - 1)));
      if (col < 0 || col >= w || row < 0 || row >= h) continue;
      grid[std::size_t(h - 1 - row)][std::size_t(col)] = s.glyph;
    }
  }

  std::ostringstream out;
  auto ytick = [&](int row) {
    return y_max - (y_max - y_min) * double(row) / double(h - 1);
  };
  for (int row = 0; row < h; ++row) {
    if (row == 0 || row == h - 1 || row == h / 2) {
      out << std::setw(9) << std::fixed << std::setprecision(1) << ytick(row)
          << " |";
    } else {
      out << std::string(9, ' ') << " |";
    }
    out << grid[std::size_t(row)] << '\n';
  }
  out << std::string(10, ' ') << '+' << std::string(std::size_t(w), '-')
      << '\n';
  std::ostringstream xaxis;
  xaxis << x_min;
  std::ostringstream xend;
  xend << x_max;
  out << std::string(11, ' ') << xaxis.str()
      << std::string(
             std::size_t(std::max(1, w - int(xaxis.str().size()) -
                                         int(xend.str().size()))),
             ' ')
      << xend.str();
  if (!options.x_label.empty()) out << "  (" << options.x_label << ")";
  out << '\n';
  if (!options.y_label.empty() || series.size() > 1 ||
      !series.empty()) {
    out << std::string(11, ' ');
    if (!options.y_label.empty()) out << "y: " << options.y_label << "  ";
    for (const auto& s : series) {
      out << '[' << s.glyph << "] " << s.name << "  ";
    }
    out << '\n';
  }
  return out.str();
}

// Horizontal bar chart: one row per (label, value).
inline std::string render_bars(
    const std::vector<std::pair<std::string, double>>& bars, int width = 48,
    const std::string& unit = {}) {
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  if (max_value <= 0.0) max_value = 1.0;

  std::ostringstream out;
  for (const auto& [label, value] : bars) {
    const int n = int(std::lround(value / max_value * width));
    out << "  " << std::left << std::setw(int(label_width)) << label << " |"
        << std::string(std::size_t(std::max(n, 0)), '#')
        << std::string(std::size_t(width - std::max(n, 0)), ' ') << "| "
        << std::fixed << std::setprecision(2) << value;
    if (!unit.empty()) out << ' ' << unit;
    out << '\n';
  }
  return out.str();
}

}  // namespace swing
