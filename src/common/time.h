// Simulation time primitives.
//
// All framework code is written against SimTime / SimDuration rather than
// wall-clock types so the same logic runs deterministically under the
// discrete-event simulator. Resolution is one nanosecond; the epoch is the
// start of the simulation.
#pragma once

#include <cstdint>
#include <ostream>

namespace swing {

// A span of simulated time, in nanoseconds. Signed so that differences and
// back-offs are representable.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t nanos() const { return ns_; }
  [[nodiscard]] constexpr double micros() const { return double(ns_) / 1e3; }
  [[nodiscard]] constexpr double millis() const { return double(ns_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return double(ns_) / 1e9; }

  friend constexpr bool operator==(SimDuration, SimDuration) = default;
  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;

  constexpr SimDuration& operator+=(SimDuration d) {
    ns_ += d.ns_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration d) {
    ns_ -= d.ns_;
    return *this;
  }
  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration{a.ns_ + b.ns_};
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration{a.ns_ - b.ns_};
  }
  friend constexpr SimDuration operator*(SimDuration a, double k) {
    return SimDuration{static_cast<std::int64_t>(double(a.ns_) * k)};
  }
  friend constexpr SimDuration operator*(double k, SimDuration a) {
    return a * k;
  }
  friend constexpr double operator/(SimDuration a, SimDuration b) {
    return double(a.ns_) / double(b.ns_);
  }

  friend std::ostream& operator<<(std::ostream& os, SimDuration d) {
    return os << d.millis() << "ms";
  }

 private:
  std::int64_t ns_ = 0;
};

constexpr SimDuration nanos(std::int64_t n) { return SimDuration{n}; }
constexpr SimDuration micros(double us) {
  return SimDuration{static_cast<std::int64_t>(us * 1e3)};
}
constexpr SimDuration millis(double ms) {
  return SimDuration{static_cast<std::int64_t>(ms * 1e6)};
}
constexpr SimDuration seconds(double s) {
  return SimDuration{static_cast<std::int64_t>(s * 1e9)};
}

// An absolute point in simulated time (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t nanos() const { return ns_; }
  [[nodiscard]] constexpr double millis() const { return double(ns_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return double(ns_) / 1e9; }

  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime{t.ns_ + d.nanos()};
  }
  friend constexpr SimTime operator-(SimTime t, SimDuration d) {
    return SimTime{t.ns_ - d.nanos()};
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration{a.ns_ - b.ns_};
  }
  constexpr SimTime& operator+=(SimDuration d) {
    ns_ += d.nanos();
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.seconds() << "s";
  }

  static constexpr SimTime max() {
    return SimTime{~std::uint64_t{0} >> 1};
  }

 private:
  std::int64_t ns_ = 0;
};

}  // namespace swing
