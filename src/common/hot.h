// Hot-path annotation contract (swing-analyze hotpath rules).
//
// SWING_HOT marks a function *definition* as a hot-path root: code that
// runs per tuple, per packet, or per wire message. swing-analyze seeds
// its cross-file call graph at these roots, computes the transitive hot
// set, and enforces the zero-copy discipline there (hotpath-alloc,
// heavy-copy, double-lookup — see DESIGN.md §10). To the compiler it is
// the `hot` attribute, which biases inlining and code layout.
//
// SWING_COLD is the escape hatch for control-plane work that is merely
// reachable from a hot dispatch switch (deploy, restore, migration):
// the analyzer stops traversal there, and the compiler moves the code
// out of the hot text section.
//
// Place either marker at the very start of the definition's declaration
// specifiers — the analyzer attributes it to the definition whose
// declaration contains the token:
//
//   SWING_HOT Bytes Tuple::to_bytes() const { ... }
//   SWING_COLD void Worker::activate(const DeployMsg::Assignment& a) { ... }
//
// Markers on a forward declaration (no body) are invisible to the
// analyzer; annotate where the body is.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define SWING_HOT __attribute__((hot))
#define SWING_COLD __attribute__((cold))
#else
#define SWING_HOT
#define SWING_COLD
#endif
