// Minimal leveled logging.
//
// The framework logs control-plane transitions (joins, leaves, deployments,
// re-routes) at Info and estimator internals at Debug. Benches and tests set
// the level to Warn to keep output clean. Not thread-safe by design: the
// simulator is single-threaded.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace swing {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& message) {
    if (!enabled(level)) return;
    std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
    os << "[" << name(level) << "] " << message << '\n';
  }

 private:
  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo:  return "INFO ";
      case LogLevel::kWarn:  return "WARN ";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff:   return "OFF  ";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
};

namespace log_detail {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { Logger::instance().write(level_, stream_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace log_detail

}  // namespace swing

// Usage: SWING_LOG(kInfo) << "device " << id << " joined";
// The stream expression is only evaluated when the level is enabled.
#define SWING_LOG(level_name)                                          \
  if (!::swing::Logger::instance().enabled(                           \
          ::swing::LogLevel::level_name)) {                           \
  } else                                                               \
    ::swing::log_detail::LineBuilder(::swing::LogLevel::level_name)
