// Runtime contract macros.
//
// The simulated runtime underpins every benchmark figure, so a silently
// violated invariant (an out-of-bounds codec read, a heap that outgrew its
// capacity, a negative latency estimate) invalidates results without
// failing a test. These macros make contracts explicit and fatal:
//
//   SWING_CHECK(cond)            always-on contract; aborts on failure.
//   SWING_CHECK_EQ/NE/LT/LE/GT/GE(a, b)
//                                as above, printing both operands.
//   SWING_DCHECK(cond)           debug-only internal invariant; compiled to
//                                nothing when NDEBUG is set (still parsed).
//   SWING_DCHECK_EQ/... (a, b)   debug-only operand-printing variants.
//   SWING_UNREACHABLE(msg)       marks impossible control flow; aborts.
//
// All macros support glog-style message streaming, evaluated only on the
// failure path:
//
//   SWING_CHECK(n > 0) << "capacity for rate " << rate;
//
// Policy (see DESIGN.md "Correctness tooling"): SWING_CHECK guards caller
// contracts and states the runtime relies on for benchmark validity;
// SWING_DCHECK guards internal invariants that are too hot to verify in
// release runs. Untrusted wire input must NOT abort the process — codec code
// throws WireFormatError instead (see common/bytes.h) so malformed frames
// are recoverable and testable.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace swing::check_detail {

// Accumulates the failure message; aborts in the destructor, after the
// caller's streamed operands (if any) have been appended.
class Failure {
 public:
  Failure(const char* file, int line, const char* kind, const char* expr) {
    stream_ << file << ":" << line << ": " << kind << " failed: " << expr;
  }
  Failure(const Failure&) = delete;
  Failure& operator=(const Failure&) = delete;

  ~Failure() {
    std::cerr << "[SWING_CHECK] " << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  Failure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Gives the streamed failure expression type void so it can sit in the
// else-branch of the ?: in SWING_CHECK (glog's Voidify trick). operator&
// binds looser than << so all streamed operands attach to the Failure first.
struct Voidify {
  // const& so both a bare Failure temporary and the lvalue returned by a
  // chain of operator<< bind here.
  void operator&(const Failure&) const {}
};

[[noreturn]] inline void unreachable(const char* file, int line,
                                     std::string_view message) {
  std::cerr << "[SWING_CHECK] " << file << ":" << line
            << ": reached SWING_UNREACHABLE: " << message << std::endl;
  std::abort();
}

}  // namespace swing::check_detail

#define SWING_CHECK(cond)                                                 \
  (cond) ? (void)0                                                        \
         : ::swing::check_detail::Voidify() &                             \
               ::swing::check_detail::Failure(__FILE__, __LINE__,         \
                                              "SWING_CHECK", #cond)

// Operand-printing comparisons. The operands are re-evaluated for printing
// on the failure path only; the process aborts immediately after, so side
// effects cannot leak into subsequent execution.
#define SWING_CHECK_OP_(a, op, b)                                         \
  SWING_CHECK((a) op (b)) << " (" << (a) << " vs " << (b) << ") "

#define SWING_CHECK_EQ(a, b) SWING_CHECK_OP_(a, ==, b)
#define SWING_CHECK_NE(a, b) SWING_CHECK_OP_(a, !=, b)
#define SWING_CHECK_LT(a, b) SWING_CHECK_OP_(a, <, b)
#define SWING_CHECK_LE(a, b) SWING_CHECK_OP_(a, <=, b)
#define SWING_CHECK_GT(a, b) SWING_CHECK_OP_(a, >, b)
#define SWING_CHECK_GE(a, b) SWING_CHECK_OP_(a, >=, b)

// Debug-only variants: free in release builds, but the condition and any
// streamed operands stay compiled (a while(false) body), so they cannot rot.
#ifdef NDEBUG
#define SWING_DCHECK_ACTIVE_() while (false)
#else
#define SWING_DCHECK_ACTIVE_()
#endif

#define SWING_DCHECK(cond) SWING_DCHECK_ACTIVE_() SWING_CHECK(cond)
#define SWING_DCHECK_EQ(a, b) SWING_DCHECK_ACTIVE_() SWING_CHECK_EQ(a, b)
#define SWING_DCHECK_NE(a, b) SWING_DCHECK_ACTIVE_() SWING_CHECK_NE(a, b)
#define SWING_DCHECK_LT(a, b) SWING_DCHECK_ACTIVE_() SWING_CHECK_LT(a, b)
#define SWING_DCHECK_LE(a, b) SWING_DCHECK_ACTIVE_() SWING_CHECK_LE(a, b)
#define SWING_DCHECK_GT(a, b) SWING_DCHECK_ACTIVE_() SWING_CHECK_GT(a, b)
#define SWING_DCHECK_GE(a, b) SWING_DCHECK_ACTIVE_() SWING_CHECK_GE(a, b)

#define SWING_UNREACHABLE(msg) \
  ::swing::check_detail::unreachable(__FILE__, __LINE__, msg)
