// Wall-clock access, quarantined.
//
// Framework code must be deterministic: the only clock it may read is the
// simulator's (common/time.h), and swing_lint forbids std::chrono clocks
// everywhere outside src/common/. The one legitimate consumer of real time
// is demo pacing — run_realtime() slows simulated time down to wall time so
// a human can watch the dashboard. That single capability lives here.
#pragma once

#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/time.h"

namespace swing {

// Paces simulated time against the wall clock: one simulated second takes
// 1/speed wall seconds, measured from construction. sleep_until_sim(t)
// blocks the calling thread until the wall-clock deadline for simulated
// offset `t` has arrived (returns immediately if already past).
class WallClockPacer {
 public:
  explicit WallClockPacer(SimTime sim_start, double speed)
      : sim_start_(sim_start),
        speed_(speed),
        wall_start_(std::chrono::steady_clock::now()) {
    SWING_CHECK_GT(speed, 0.0) << "realtime pacing speed";
  }

  void sleep_until_sim(SimTime t) const {
    const double sim_elapsed_s = (t - sim_start_).seconds();
    const auto deadline =
        wall_start_ +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(sim_elapsed_s / speed_));
    std::this_thread::sleep_until(deadline);
  }

 private:
  SimTime sim_start_;
  double speed_;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace swing
