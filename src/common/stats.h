// Online statistics used for measurement and estimation.
//
//  - OnlineStats: Welford mean/variance plus min/max, O(1) memory.
//  - SampleStats: stores samples; exact percentiles for reporting.
//  - Ewma: exponentially weighted moving average (the paper's latency
//    estimator is "a moving average of latency estimates").
//  - RateMeter: windowed event-rate estimator (tuples/sec) used by upstream
//    function units to measure their incoming rate Lambda.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace swing {

// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / double(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / double(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  void reset() { *this = OnlineStats{}; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Keeps all samples; supports exact quantiles. Use for end-of-run reporting,
// not per-tuple hot paths.
class SampleStats {
 public:
  void add(double x) {
    samples_.push_back(x);
    online_.add(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const { return online_.mean(); }
  [[nodiscard]] double variance() const { return online_.variance(); }
  [[nodiscard]] double stddev() const { return online_.stddev(); }
  [[nodiscard]] double min() const { return online_.min(); }
  [[nodiscard]] double max() const { return online_.max(); }

  // Linear-interpolated quantile, q in [0, 1]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const {
    SWING_DCHECK(q >= 0.0 && q <= 1.0) << "quantile " << q;
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    const double pos = q * double(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - double(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  [[nodiscard]] double median() const { return quantile(0.5); }

  void reset() {
    samples_.clear();
    online_.reset();
    sorted_ = false;
  }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  OnlineStats online_;
};

// Exponentially weighted moving average. alpha is the weight of a new
// sample; alpha = 1 tracks instantaneously, alpha -> 0 averages long-term.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.25) : alpha_(alpha) {
    SWING_CHECK(alpha > 0.0 && alpha <= 1.0)
        << "EWMA alpha " << alpha << " outside (0, 1]";
  }

  void add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ += alpha_ * (x - value_);
    }
  }

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double value() const { return value_; }

  // Overwrites the current value (used to seed estimates from probes).
  void set(double x) {
    value_ = x;
    initialized_ = true;
  }

  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Sliding-window event rate estimator: rate() = events in the last `window`
// divided by the window length. Used by upstreams to measure incoming tuple
// rate Lambda and by metrics to report instantaneous throughput.
class RateMeter {
 public:
  explicit RateMeter(SimDuration window = seconds(1.0)) : window_(window) {
    SWING_CHECK_GT(window.nanos(), 0) << "rate meter window must be positive";
  }

  void record(SimTime now) {
    events_.push_back(now);
    evict(now);
  }

  // Events per second over the trailing window ending at `now`.
  [[nodiscard]] double rate(SimTime now) const {
    evict(now);
    return double(events_.size()) / window_.seconds();
  }

  [[nodiscard]] std::size_t events_in_window(SimTime now) const {
    evict(now);
    return events_.size();
  }

  void reset() { events_.clear(); }

 private:
  void evict(SimTime now) const {
    const SimTime cutoff = now - window_;
    while (!events_.empty() && events_.front() < cutoff) {
      events_.pop_front();
    }
  }

  SimDuration window_;
  mutable std::deque<SimTime> events_;
};

}  // namespace swing
