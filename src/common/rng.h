// Deterministic pseudo-random number generation.
//
// Experiments must be exactly reproducible across runs and platforms, so we
// carry our own xoshiro256** implementation instead of relying on
// implementation-defined std::default_random_engine behaviour, and implement
// the distributions we need (uniform, exponential, log-normal, weighted pick)
// with fixed algorithms.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>

#include "common/check.h"

namespace swing {

// SplitMix64: used to seed xoshiro from a single 64-bit seed.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality, 256-bit state generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm{seed};
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return double(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    SWING_DCHECK_GT(n, 0u) << "uniform_int over an empty range";
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for the n (< 2^32) we use.
    return next() % n;
  }

  // Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // Standard normal via Box-Muller (one value per call; simple > fast here).
  double normal() {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  // Log-normal with the given *linear-space* mean and coefficient of
  // variation (stddev/mean). Used for service-time jitter: multiplicative,
  // strictly positive, right-skewed like real processing delays.
  double lognormal_mean_cv(double mean, double cv) {
    SWING_DCHECK_GE(mean, 0.0) << "lognormal mean must be non-negative";
    // A zero-cost job has zero jitter; keep the degenerate case out of the
    // log-space math below (log(0) = -inf).
    if (mean <= 0.0 || cv <= 0.0) return mean;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * normal());
  }

  // Picks index i with probability weights[i] / sum(weights).
  // Weights must be non-negative with a positive sum.
  std::size_t weighted_pick(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) {
      SWING_DCHECK_GE(w, 0.0) << "negative routing weight";
      total += w;
    }
    SWING_CHECK_GT(total, 0.0)
        << "weighted_pick needs a positive weight sum over "
        << weights.size() << " weights";
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0.0) return i;
    }
    return weights.size() - 1;  // Floating-point edge: land on the last.
  }

  // Derives an independent child generator; used to give each simulated
  // entity its own stream so adding an entity never perturbs others.
  Rng fork() { return Rng{next() ^ 0xa02bdbf7bb3c0a7ULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace swing
