// Byte-buffer primitives for tuple serialization.
//
// The Swing serialization service (paper §IV-C) converts customized objects
// (images, sensor vectors, audio segments) to byte arrays at the sender and
// back at the receiver. ByteWriter/ByteReader implement a compact
// little-endian wire format with varint lengths, mirroring the Kryo-style
// encoding SEEP uses.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace swing {

using Bytes = std::vector<std::uint8_t>;

// Thrown when a ByteReader runs past the end of its buffer or decodes a
// malformed value. Deserialization happens on data "from the network", so
// errors are reported, not asserted.
class WireFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  [[nodiscard]] const Bytes& data() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

  // Pre-size for `n` further bytes. Encoders that know their wire size
  // (Tuple::wire_size, the fixed-layout messages) call this once so the
  // per-field writes below never reallocate.
  void reserve(std::size_t n) { buffer_.reserve(buffer_.size() + n); }

  void write_u8(std::uint8_t v) { buffer_.push_back(v); }

  void write_u32(std::uint32_t v) { write_le(v); }
  void write_u64(std::uint64_t v) { write_le(v); }
  void write_i64(std::int64_t v) {
    write_le(static_cast<std::uint64_t>(v));
  }

  void write_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    write_le(bits);
  }

  // LEB128-style unsigned varint: 7 bits per byte, high bit = continuation.
  void write_varint(std::uint64_t v) {
    while (v >= 0x80) {
      // Bounded: a u64 varint is at most 10 bytes, and encoders reserve()
      // their full wire size up front, so this push_back never grows.
      buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);  // swing-lint: allow(hotpath-alloc)
      v >>= 7;
    }
    buffer_.push_back(static_cast<std::uint8_t>(v));
  }

  void write_bytes(std::span<const std::uint8_t> bytes) {
    write_varint(bytes.size());
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  void write_string(std::string_view s) {
    write_varint(s.size());
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

 private:
  template <typename T>
  void write_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      // Bounded by sizeof(T) <= 8; reserve() upstream makes it free.
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));  // swing-lint: allow(hotpath-alloc)
    }
  }

  Bytes buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

  std::uint8_t read_u8() {
    require(1, "u8");
    return data_[pos_++];
  }

  std::uint32_t read_u32() { return read_le<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_le<std::uint64_t>(); }
  std::int64_t read_i64() {
    return static_cast<std::int64_t>(read_le<std::uint64_t>());
  }

  double read_f64() {
    const std::uint64_t bits = read_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::uint64_t read_varint() {
    std::uint64_t result = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw WireFormatError("varint too long");
      const std::uint8_t byte = read_u8();
      result |= std::uint64_t(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return result;
      shift += 7;
    }
  }

  Bytes read_bytes() {
    const std::uint64_t n = read_varint();
    require(n, "bytes body");
    Bytes out(data_.begin() + long(pos_), data_.begin() + long(pos_ + n));
    pos_ += n;
    SWING_DCHECK_LE(pos_, data_.size());
    return out;
  }

  std::string read_string() {
    const std::uint64_t n = read_varint();
    require(n, "string body");
    // require() proved [pos_, pos_ + n) lies inside the buffer, so this
    // aliased read cannot run past the end.
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    SWING_DCHECK_LE(pos_, data_.size());
    return out;
  }

 private:
  // Every read validates its length against the unconsumed suffix before
  // touching the buffer. Wire data is untrusted, so failures throw a typed,
  // recoverable error (with enough detail to debug a corrupt frame) rather
  // than aborting the process — see the contract policy in DESIGN.md.
  // The guard stays tiny so it inlines into every read; the cold message
  // formatting lives in the noreturn slow path.
  void require(std::uint64_t n, const char* what) const {
    if (remaining() < n) fail_underrun(n, what);
  }

  [[noreturn]] void fail_underrun(std::uint64_t n, const char* what) const {
    throw WireFormatError("buffer underrun reading " + std::string(what) +
                          ": need " + std::to_string(n) + " bytes, " +
                          std::to_string(remaining()) + " remain at offset " +
                          std::to_string(pos_) + "/" +
                          std::to_string(data_.size()));
  }

  template <typename T>
  T read_le() {
    require(sizeof(T), "fixed-width value");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= T(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    SWING_DCHECK_LE(pos_, data_.size());
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace swing
