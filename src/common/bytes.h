// Byte-buffer primitives for tuple serialization.
//
// The Swing serialization service (paper §IV-C) converts customized objects
// (images, sensor vectors, audio segments) to byte arrays at the sender and
// back at the receiver. ByteWriter/ByteReader implement a compact
// little-endian wire format with varint lengths, mirroring the Kryo-style
// encoding SEEP uses.
//
// Wire plane v2 (see DESIGN.md §"Wire plane v2"): codecs are written as
//
//   void encode(ByteWriter& w) const;     // appends to w, never allocates a
//                                         // fresh buffer per message
//   static T decode(ByteReader& r);       // reads from a non-owning view;
//                                         // throws WireFormatError on bad input
//
// ByteWriter appends into a caller-owned buffer: either its own (owning mode,
// used by tests and the checkpoint plane) or an external `Bytes&` (arena mode,
// used by the per-sender SendArena below and by DataBatchMsg's frame pool).
// ByteReader hands out zero-copy views (`take_span`, `read_span`, `read_view`)
// that alias the received frame; decoded messages that must outlive the frame
// copy exactly once, at a spot the decoder chooses.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace swing {

using Bytes = std::vector<std::uint8_t>;

// Exact encoded length of ByteWriter::write_varint(v): 1..10 bytes. Codecs
// that inline a length prefix ahead of a nested encode (DataMsg's tuple
// frame) use this to compute exact sizes, so v2 output is byte-identical to
// the legacy `write_bytes(to_bytes())` layout.
constexpr std::uint64_t varint_size(std::uint64_t v) {
  std::uint64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Thrown when a ByteReader runs past the end of its buffer or decodes a
// malformed value. Deserialization happens on data "from the network", so
// errors are reported, not asserted.
class WireFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  // Owning mode: writes accumulate in an internal buffer; take() moves it out.
  ByteWriter() : buf_(&own_) {}
  // Arena mode: appends to `external` (does NOT clear it — DataBatchMsg's
  // frame pool relies on appending frames back to back). The writer must not
  // outlive the buffer, and the buffer must not be resized behind its back
  // mid-frame; SendArena enforces both with its open-frame contract.
  explicit ByteWriter(Bytes& external) : buf_(&external) {}

  // A writer is pinned to its buffer; copying or moving it would silently
  // fork or dangle the destination.
  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  // Field writes stage into `scratch_` (below) and land in the buffer in
  // ranged batches; a destroyed writer leaves nothing behind.
  ~ByteWriter() { flush(); }

  [[nodiscard]] const Bytes& data() const {
    flush();
    return *buf_;
  }
  [[nodiscard]] std::span<const std::uint8_t> view() const {
    flush();
    return *buf_;
  }
  [[nodiscard]] std::size_t size() const {
    return buf_->size() + scratch_len_;
  }

  // Moves staged bytes into the buffer. Reading the destination `Bytes`
  // directly (rather than through data()/view()/take()) while the writer is
  // still alive requires a flush first; SendArena::end_frame and
  // DataBatchMsg::append_frame do this for their callers.
  void flush() const {
    if (scratch_len_ == 0) return;
    buf_->insert(buf_->end(), scratch_, scratch_ + scratch_len_);
    scratch_len_ = 0;
  }

  // Owning mode only: arena-mode writers do not own their bytes, so moving
  // them out would corrupt the arena's frame bookkeeping.
  Bytes take() {
    SWING_CHECK(buf_ == &own_) << "ByteWriter::take() on an arena-mode writer";
    flush();
    return std::move(own_);
  }

  // Pre-size for `n` further bytes. Encoders that know their wire size
  // (Tuple::encoded_size, the fixed-layout messages) call this once so the
  // per-field writes below never reallocate.
  void reserve(std::size_t n) {
    buf_->reserve(buf_->size() + scratch_len_ + n);
  }

  void write_u8(std::uint8_t v) {
    ensure(1);
    scratch_[scratch_len_++] = v;
  }

  void write_u32(std::uint32_t v) { write_le(v); }
  void write_u64(std::uint64_t v) { write_le(v); }
  void write_i64(std::int64_t v) {
    write_le(static_cast<std::uint64_t>(v));
  }

  void write_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    write_le(bits);
  }

  // LEB128-style unsigned varint: 7 bits per byte, high bit = continuation.
  void write_varint(std::uint64_t v) {
    ensure(10);  // Worst case: 10 bytes for a 64-bit value.
    while (v >= 0x80) {
      scratch_[scratch_len_++] = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    scratch_[scratch_len_++] = static_cast<std::uint8_t>(v);
  }

  void write_bytes(std::span<const std::uint8_t> bytes) {
    write_varint(bytes.size());
    append_raw(bytes.data(), bytes.size());
  }

  void write_string(std::string_view s) {
    write_varint(s.size());
    append_raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

 private:
  // Staging capacity. Fixed-layout message headers (DataMsg's is 58 bytes)
  // fit in one batch; anything longer flushes mid-record, which is still one
  // vector append per kScratchSize bytes instead of one per field.
  static constexpr std::size_t kScratchSize = 64;

  void ensure(std::size_t n) const {
    if (kScratchSize - scratch_len_ < n) flush();
  }

  // Little-endian fixed-width append. The byte fill targets the scratch
  // array, so the compiler collapses it to one wide store; field writes
  // through the vector itself would reload its control block on every byte
  // (std::uint8_t stores may alias it), and the wire plane pays that per
  // field.
  template <typename T>
  void write_le(T v) {
    ensure(sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      scratch_[scratch_len_ + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    scratch_len_ += sizeof(T);
  }

  void append_raw(const std::uint8_t* p, std::size_t n) {
    if (n == 0) return;  // Empty views may carry a null data pointer.
    if (n <= kScratchSize - scratch_len_) {
      std::memcpy(scratch_ + scratch_len_, p, n);
      scratch_len_ += n;
      return;
    }
    flush();
    buf_->insert(buf_->end(), p, p + n);
  }

  Bytes own_;
  Bytes* buf_;
  // The staging buffer is logically part of the written-bytes state, so
  // const accessors (data(), view()) may flush it.
  mutable std::uint8_t scratch_[kScratchSize];
  mutable std::size_t scratch_len_ = 0;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

  std::uint8_t read_u8() {
    require(1, "u8");
    return data_[pos_++];
  }

  std::uint32_t read_u32() { return read_le<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_le<std::uint64_t>(); }
  std::int64_t read_i64() {
    return static_cast<std::int64_t>(read_le<std::uint64_t>());
  }

  double read_f64() {
    const std::uint64_t bits = read_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::uint64_t read_varint() {
    std::uint64_t result = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw WireFormatError("varint too long");
      const std::uint8_t byte = read_u8();
      result |= std::uint64_t(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return result;
      shift += 7;
    }
  }

  // Zero-copy view of the next `n` raw bytes; advances the cursor. The view
  // aliases the frame being decoded, so it is valid only while that frame's
  // storage lives (for arena frames: until the next begin_frame/reset).
  std::span<const std::uint8_t> take_span(std::uint64_t n,
                                          const char* what = "raw span") {
    require(n, what);
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  // Length-prefixed zero-copy reads: same wire shape as write_bytes /
  // write_string, but the result aliases the frame instead of copying.
  // Hot decoders use these; copying (if needed at all) happens exactly once
  // at the destination the decoder chooses.
  std::span<const std::uint8_t> read_span() {
    return take_span(read_varint(), "bytes body");
  }

  std::string_view read_view() {
    const auto s = take_span(read_varint(), "string body");
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }

  // Copying reads, for cold paths and tests that want owned storage.
  Bytes read_bytes() {
    const auto s = read_span();
    return Bytes(s.begin(), s.end());
  }

  std::string read_string() { return std::string{read_view()}; }

 private:
  // Every read validates its length against the unconsumed suffix before
  // touching the buffer. Wire data is untrusted, so failures throw a typed,
  // recoverable error (with enough detail to debug a corrupt frame) rather
  // than aborting the process — see the contract policy in DESIGN.md.
  // The guard stays tiny so it inlines into every read; the cold message
  // formatting lives in the noreturn slow path.
  void require(std::uint64_t n, const char* what) const {
    if (remaining() < n) fail_underrun(n, what);
  }

  [[noreturn]] void fail_underrun(std::uint64_t n, const char* what) const {
    throw WireFormatError("buffer underrun reading " + std::string(what) +
                          ": need " + std::to_string(n) + " bytes, " +
                          std::to_string(remaining()) + " remain at offset " +
                          std::to_string(pos_) + "/" +
                          std::to_string(data_.size()));
  }

  template <typename T>
  T read_le() {
    require(sizeof(T), "fixed-width value");
    T v;
    if constexpr (std::endian::native == std::endian::little) {
      // One unaligned load; the byte-assembly loop below defeats load
      // combining on some compilers and the wire plane reads fixed-width
      // fields per tuple.
      std::memcpy(&v, data_.data() + pos_, sizeof(T));
    } else {
      v = 0;
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        v |= T(data_[pos_ + i]) << (8 * i);
      }
    }
    pos_ += sizeof(T);
    SWING_DCHECK_LE(pos_, data_.size());
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Reusable per-sender encode arena. One frame is encoded at a time:
//
//   ByteWriter& w = arena.begin_frame();   // clears bytes, keeps capacity
//   msg.encode(w);
//   transport.send(..., arena.end_frame(), ...);  // span into the arena
//
// Lifetime contract: the span returned by end_frame() aliases the arena and
// is valid until the next begin_frame()/reset(). Transport::send copies the
// payload into the in-flight Message synchronously, so a sender may reuse its
// arena immediately after send returns. begin_frame() while a frame is open,
// end_frame() without one, and reset() mid-frame are checked contract
// violations (SWING_CHECK aborts). After warm-up the buffer's capacity
// reaches the largest frame this sender emits and encodes stop allocating;
// epoch() counts frames for tests and stats.
class SendArena {
 public:
  SendArena() = default;
  // The embedded writer is pinned to buffer_, so the arena cannot move.
  SendArena(const SendArena&) = delete;
  SendArena& operator=(const SendArena&) = delete;

  ByteWriter& begin_frame() {
    SWING_CHECK(!open_) << "SendArena::begin_frame with a frame still open";
    open_ = true;
    ++epoch_;
    buffer_.clear();  // keeps capacity: steady-state frames never allocate
    return writer_;
  }

  std::span<const std::uint8_t> end_frame() {
    SWING_CHECK(open_) << "SendArena::end_frame without begin_frame";
    open_ = false;
    writer_.flush();  // The frame's tail may still be staged in the writer.
    return {buffer_.data(), buffer_.size()};
  }

  // Releases the arena's storage (e.g. on shutdown, or after an unusually
  // large frame). Resetting while a frame is being encoded would yank the
  // buffer out from under the writer — checked contract violation.
  void reset() {
    SWING_CHECK(!open_) << "SendArena::reset with a frame still open";
    Bytes{}.swap(buffer_);
  }

  [[nodiscard]] bool open() const { return open_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t capacity() const { return buffer_.capacity(); }

 private:
  Bytes buffer_;
  ByteWriter writer_{buffer_};
  bool open_ = false;
  std::uint64_t epoch_ = 0;
};

}  // namespace swing
