// Clang thread-safety annotations, compiled away everywhere else.
//
// The runtime proper is a single-threaded discrete-event simulation, but a
// few shared-plane objects (obs::Registry) are reachable from background
// tooling (trace exporters, external snapshot pollers) and carry a real
// mutex. These macros let clang's -Wthread-safety analysis prove the
// locking discipline at compile time; under GCC (which has no such
// analysis) they expand to nothing, so the annotations cost zero.
//
// std::mutex is not itself annotated as a capability, so the analysis
// cannot see acquisitions through it. `swing::Mutex` / `swing::MutexLock`
// below are the thin annotated wrappers the LLVM documentation prescribes:
// same semantics, same cost, visible to the analysis.
#pragma once

#include <mutex>

#if defined(__clang__)
#define SWING_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SWING_THREAD_ANNOTATION(x)
#endif

#define SWING_CAPABILITY(x) SWING_THREAD_ANNOTATION(capability(x))
#define SWING_SCOPED_CAPABILITY SWING_THREAD_ANNOTATION(scoped_lockable)
#define SWING_GUARDED_BY(x) SWING_THREAD_ANNOTATION(guarded_by(x))
#define SWING_PT_GUARDED_BY(x) SWING_THREAD_ANNOTATION(pt_guarded_by(x))
#define SWING_ACQUIRE(...) \
  SWING_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SWING_RELEASE(...) \
  SWING_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SWING_REQUIRES(...) \
  SWING_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SWING_EXCLUDES(...) SWING_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SWING_NO_THREAD_SAFETY_ANALYSIS \
  SWING_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace swing {

// std::mutex with the capability annotations the analysis needs.
class SWING_CAPABILITY("mutex") Mutex {
 public:
  void lock() SWING_ACQUIRE() { mu_.lock(); }
  void unlock() SWING_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock for swing::Mutex, visible to the analysis as a scoped
// capability (std::lock_guard on an annotated mutex is not).
class SWING_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SWING_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SWING_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace swing
