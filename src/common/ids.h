// Strongly-typed integer identifiers used across the Swing framework.
//
// Every entity class (device, operator, operator instance, tuple, message)
// gets its own ID type so that mixing them up is a compile error rather than
// a runtime bug. IDs are cheap value types: a wrapped uint64_t.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace swing {

// CRTP-free strong ID wrapper. `Tag` makes each instantiation a distinct
// type; the underlying value is accessible via value().
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

 private:
  std::uint64_t value_ = kInvalid;
};

struct DeviceTag {};
struct OperatorTag {};
struct InstanceTag {};
struct TupleTag {};
struct MessageTag {};
struct EventTag {};
struct CellTag {};

// A physical (simulated) device participating in the swarm.
using DeviceId = StrongId<DeviceTag>;
// A logical function unit (vertex) in an application graph.
using OperatorId = StrongId<OperatorTag>;
// A deployed instance of a function unit on a particular device.
using InstanceId = StrongId<InstanceTag>;
// A data tuple flowing through the dataflow graph.
using TupleId = StrongId<TupleTag>;
// A network message.
using MessageId = StrongId<MessageTag>;
// A scheduled simulator event (used for cancellation handles).
using EventId = StrongId<EventTag>;
// A control-plane cell: a group of devices run by one cell master
// (swing-shard, src/shard/).
using CellId = StrongId<CellTag>;

}  // namespace swing

namespace std {
template <typename Tag>
struct hash<swing::StrongId<Tag>> {
  size_t operator()(swing::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
