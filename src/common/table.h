// Console table and CSV output for benches.
//
// Every bench binary prints the rows/series the corresponding paper figure
// or table reports, in an aligned plain-text table, and can optionally dump
// CSV for external plotting.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace swing {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  TextTable& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  // Convenience: formats arbitrary streamable values into a row.
  template <typename... Args>
  TextTable& row(const Args&... args) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(args));
    (cells.push_back(to_cell(args)), ...);
    return add_row(std::move(cells));
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], cells[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < cells.size() ? cells[i] : std::string{};
        os << "  " << std::left << std::setw(int(widths[i])) << cell;
      }
      os << '\n';
    };
    print_row(header_);
    std::size_t total = 2 * widths.size();
    for (auto w : widths) total += w;
    os << std::string(total, '-') << '\n';
    for (const auto& r : rows_) print_row(r);
  }

  void print_csv(std::ostream& os) const {
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) os << ',';
        os << cells[i];
      }
      os << '\n';
    };
    print_row(header_);
    for (const auto& r : rows_) print_row(r);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    if constexpr (std::is_same_v<T, std::string>) {
      return value;
    } else if constexpr (std::is_convertible_v<T, const char*>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream ss;
      ss << std::fixed << std::setprecision(2) << value;
      return ss.str();
    } else {
      std::ostringstream ss;
      ss << value;
      return ss.str();
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given precision (helper for bench output).
inline std::string fmt(double v, int precision = 2) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace swing
