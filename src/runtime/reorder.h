// Reordering Service (paper §IV-C, §VI-B "Tuple Order", Fig. 8).
//
// Heterogeneity and dynamism make tuples arrive at the sink out of order.
// The service buffers arrivals and releases them in sequence-id order for
// playback. The buffer is sized by timespan — the paper uses one second of
// source data (24 tuples at 24 FPS): a larger buffer orders better but
// delays display. When the buffer overflows its capacity the smallest id is
// released; a tuple arriving after a larger id was already played is late
// and is dropped (it would cause a visible glitch to show it).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/hot.h"
#include "common/ids.h"
#include "common/time.h"
#include "dataflow/tuple.h"

namespace swing::runtime {

class ReorderBuffer {
 public:
  // `on_play` fires, in non-decreasing id order, when a tuple is released.
  using PlayFn = std::function<void(const dataflow::Tuple&, SimTime played)>;
  // `on_late` fires when an arrival is discarded because a larger id
  // already played (swing-audit records these as late-reorder drops).
  using LateFn = std::function<void(const dataflow::Tuple&)>;
  // `on_dup` fires when an arrival duplicates a *recently released* id —
  // a retransmission that raced its original (swing-chaos), not data loss.
  using DupFn = std::function<void(const dataflow::Tuple&)>;

  ReorderBuffer(std::size_t capacity, PlayFn on_play, LateFn on_late = {},
                DupFn on_dup = {})
      : capacity_(capacity ? capacity : 1),
        on_play_(std::move(on_play)),
        on_late_(std::move(on_late)),
        on_dup_(std::move(on_dup)) {}

  // Convenience: capacity = rate x timespan (the paper's sizing rule).
  static std::size_t capacity_for(double rate_per_s, SimDuration span) {
    const double n = rate_per_s * span.seconds();
    return n < 1.0 ? 1 : std::size_t(n);
  }

  SWING_HOT void push(dataflow::Tuple tuple, SimTime now) {
    if (played_any_ && tuple.id() <= last_played_) {
      // Distinguish "this exact id already played" (a retransmitted
      // duplicate — the data reached the screen) from "a larger id played
      // first" (genuinely late — the frame is lost). The memory of played
      // ids is bounded; a duplicate older than the window degrades to a
      // late drop, which is conservative.
      if (recent_played_.contains(tuple.id().value())) {
        ++dups_;
        if (on_dup_) on_dup_(tuple);
      } else {
        ++late_;
        if (on_late_) on_late_(tuple);
      }
      return;
    }
    heap_.push(std::move(tuple));
    if (heap_.size() > capacity_) pop_and_play(now);
    SWING_DCHECK_LE(heap_.size(), capacity_)
        << "reorder buffer exceeded its timespan capacity";
  }

  // Releases everything (end of stream).
  void flush(SimTime now) {
    while (!heap_.empty()) pop_and_play(now);
  }

  [[nodiscard]] std::size_t buffered() const { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t played() const { return played_count_; }
  [[nodiscard]] std::uint64_t late_drops() const { return late_; }
  [[nodiscard]] std::uint64_t dup_drops() const { return dups_; }

 private:
  struct LargerId {
    bool operator()(const dataflow::Tuple& a, const dataflow::Tuple& b) const {
      return a.id() > b.id();  // Min-heap on tuple id.
    }
  };

  void pop_and_play(SimTime now) {
    SWING_DCHECK(!heap_.empty());
    const dataflow::Tuple& top = heap_.top();
    // The ordering contract the service exists to provide: release ids are
    // non-decreasing (late arrivals were dropped in push(); duplicates that
    // were both buffered before either played may tie).
    SWING_DCHECK(!played_any_ || last_played_ <= top.id())
        << "reorder buffer released id " << top.id()
        << " after already playing " << last_played_;
    last_played_ = top.id();
    played_any_ = true;
    ++played_count_;
    remember_played(top.id());
    if (on_play_) on_play_(top, now);
    heap_.pop();
  }

  void remember_played(TupleId id) {
    // Sliding window of released ids, sized to outlast any plausible
    // retransmission race (a few buffer-fills) without unbounded growth.
    const std::size_t window = capacity_ * 4;
    recent_played_.insert(id.value());
    recent_order_.push_back(id.value());
    while (recent_order_.size() > window) {
      recent_played_.erase(recent_order_.front());
      recent_order_.pop_front();
    }
  }

  std::size_t capacity_;
  PlayFn on_play_;
  LateFn on_late_;
  DupFn on_dup_;
  std::priority_queue<dataflow::Tuple, std::vector<dataflow::Tuple>, LargerId>
      heap_;
  TupleId last_played_{};
  bool played_any_ = false;
  std::uint64_t played_count_ = 0;
  std::uint64_t late_ = 0;
  std::uint64_t dups_ = 0;
  std::unordered_set<std::uint64_t> recent_played_;
  std::deque<std::uint64_t> recent_order_;
};

}  // namespace swing::runtime
