#include "runtime/master.h"

#include <algorithm>

#include "common/logging.h"
#include "state/state_chain.h"

namespace swing::runtime {

Master::Master(Simulator& sim, DeviceId device, net::Transport& transport,
               net::Discovery& discovery, const dataflow::AppGraph& graph,
               MasterConfig config)
    : sim_(sim),
      device_(device),
      transport_(transport),
      discovery_(discovery),
      graph_(graph),
      config_(config) {
  graph_.validate();
  if (config_.cells_enabled) {
    gateway_ = std::make_unique<shard::GatewayCoordinator>(shard::GatewayConfig{
        config_.cell_size_target, config_.epoch_boundary_slack});
  }
}

const char* master_event_name(MasterEvent kind) {
  switch (kind) {
    case MasterEvent::kAdmit:
      return "admit";
    case MasterEvent::kDeploy:
      return "deploy";
    case MasterEvent::kRemove:
      return "remove";
    case MasterEvent::kStart:
      return "start";
    case MasterEvent::kStop:
      return "stop";
    case MasterEvent::kCheckpoint:
      return "checkpoint";
    case MasterEvent::kRestore:
      return "restore";
    case MasterEvent::kMigrate:
      return "migrate";
    case MasterEvent::kMigrateCommit:
      return "migrate-commit";
    case MasterEvent::kMigrateAbort:
      return "migrate-abort";
    case MasterEvent::kDelta:
      return "delta";
    case MasterEvent::kCellSplit:
      return "cell-split";
    case MasterEvent::kCellMerge:
      return "cell-merge";
    case MasterEvent::kHandoff:
      return "handoff";
    case MasterEvent::kEpochBump:
      return "epoch-bump";
  }
  return "unknown";
}

void Master::note_event(MasterEvent kind, std::uint64_t detail) {
  if (config_.ledger != nullptr) {
    config_.ledger->on_control_event(std::uint8_t(kind), detail, sim_.now());
  }
  if (config_.registry != nullptr) {
    config_.registry
        ->counter("master_events", {{"kind", master_event_name(kind)}})
        .inc();
  }
}

void Master::launch() {
  discovery_.advertise(kSwingService, device_, Bytes{});
  admit(device_);  // The master's device hosts sources and sinks.
  if (config_.member_timeout.nanos() > 0) {
    sweep_task_ = std::make_unique<PeriodicTask>(
        sim_, config_.member_timeout * 0.5, [this] { sweep_members(); });
    sweep_task_->start();
  }
}

void Master::handle_message(const net::Message& msg) {
  last_seen_[msg.src.value()] = sim_.now();
  try {
    switch (MsgType(msg.type)) {
      case MsgType::kHello:
        admit(msg.src);
        break;
      case MsgType::kHeartbeat:
        break;  // Liveness already noted above.
      case MsgType::kLeaveReport: {
        ByteReader r{msg.payload};
        const DeviceId reported = DeviceMsg::decode(r).device;
        if (config_.registry != nullptr && members_.contains(reported.value())) {
          config_.registry->counter("workers_evicted", {{"cause", "link-report"}})
              .inc();
        }
        remove_device(reported);
        break;
      }
      case MsgType::kBye:
        remove_device(msg.src);
        break;
      case MsgType::kCheckpoint: {
        ByteReader r{msg.payload};
        handle_checkpoint(state::CheckpointMsg::decode(r));
        break;
      }
      case MsgType::kDelta: {
        ByteReader r{msg.payload};
        handle_delta(state::DeltaMsg::decode(r));
        break;
      }
      case MsgType::kMigrateAck: {
        ByteReader r{msg.payload};
        handle_migrate_ack(state::MigrateAckMsg::decode(r));
        break;
      }
      case MsgType::kGatewayHello: {
        ByteReader r{msg.payload};
        handle_gateway_hello(shard::GatewayHelloMsg::decode(r));
        break;
      }
      case MsgType::kCellReport: {
        ByteReader r{msg.payload};
        handle_cell_report(msg.src, shard::CellReportMsg::decode(r));
        break;
      }
      // Worker-bound messages; the runtime routes them elsewhere. Enumerated
      // (no default) so -Wswitch forces a routing decision when a message
      // kind is added.
      case MsgType::kDeploy:
      case MsgType::kAddDownstream:
      case MsgType::kRemoveDownstream:
      case MsgType::kStart:
      case MsgType::kStop:
      case MsgType::kData:
      case MsgType::kAck:
      case MsgType::kDataBatch:
      case MsgType::kAckBatch:
      case MsgType::kMigratePrepare:
      case MsgType::kRestore:
      case MsgType::kReplicate:
      case MsgType::kReplicaRestore:
      case MsgType::kMigrateState:
      case MsgType::kMigrateCommit:
      case MsgType::kMigrateAbort:
      case MsgType::kCellAssign:
      case MsgType::kEpochRouteUpdate:
        break;
    }
  } catch (const WireFormatError& e) {
    SWING_LOG(kWarn) << "master dropped malformed message from " << msg.src
                     << ": " << e.what();
  }
}

void Master::sweep_members() {
  std::vector<DeviceId> dead;
  for (const auto& [member, instances] : members_) {
    if (member == device_.value()) continue;  // We are always here.
    auto it = last_seen_.find(member);
    const SimTime seen = it == last_seen_.end() ? SimTime{} : it->second;
    if (sim_.now() - seen > config_.member_timeout) {
      dead.emplace_back(member);
    }
  }
  for (DeviceId id : dead) {
    SWING_LOG(kInfo) << "master: member " << id
                     << " silent past timeout; removing";
    if (config_.registry != nullptr) {
      config_.registry
          ->counter("workers_evicted", {{"cause", "heartbeat-timeout"}})
          .inc();
    }
    remove_device(id);
  }
}

bool Master::placeable(const dataflow::OperatorDecl& op,
                       DeviceId device) const {
  switch (op.placement) {
    case dataflow::Placement::kMaster:
      return device == device_;
    case dataflow::Placement::kWorkers:
      if (device == device_ && !config_.transforms_on_master) return false;
      if (op.max_replicas != 0) {
        auto it = by_op_.find(op.id.value());
        if (it != by_op_.end() && it->second.size() >= op.max_replicas) {
          return false;
        }
      }
      return true;
  }
  return false;
}

void Master::admit(DeviceId device) {
  if (members_.contains(device.value())) return;  // Duplicate Hello.
  members_[device.value()] = {};
  SWING_LOG(kInfo) << "master admits device " << device;
  note_event(MasterEvent::kAdmit, device.value());
  if (gateway_ != nullptr) {
    // Place the device into a cell before any deploy traffic so per-cell
    // message accounting and epoch minting see it from the first update.
    refresh_cells(gateway_->admit(device));
  }
  deploy_to(device);
  if (started_) send(device, MsgType::kStart, Bytes{});
}

void Master::deploy_to(DeviceId device) {
  DeployMsg deploy;
  std::vector<InstanceInfo> created;

  for (const auto& op : graph_.operators()) {
    if (!placeable(op, device)) continue;
    InstanceInfo info{InstanceId{next_instance_++}, op.id, device};
    created.push_back(info);

    DeployMsg::Assignment assignment;
    assignment.self = info;
    for (OperatorId down_op : graph_.downstreams(op.id)) {
      auto it = by_op_.find(down_op.value());
      if (it == by_op_.end()) continue;
      for (const auto& down : it->second) {
        assignment.downstreams.push_back(down);
      }
    }
    deploy.assignments.push_back(std::move(assignment));
  }

  if (!deploy.assignments.empty()) {
    send_msg(device, MsgType::kDeploy, deploy);
    note_event(MasterEvent::kDeploy,
               device.value() << 16 | deploy.assignments.size());
  }

  // Register the new instances, then tell the hosts of upstream instances
  // about their new downstreams.
  for (const auto& info : created) {
    members_[device.value()].push_back(info);
    by_op_[info.op.value()].push_back(info);
  }
  struct Pending {
    DeviceId to;
    InstanceId upstream;
    InstanceInfo down;
  };
  std::vector<Pending> updates;
  for (const auto& info : created) {
    for (OperatorId up_op : graph_.upstreams(info.op)) {
      auto it = by_op_.find(up_op.value());
      if (it == by_op_.end()) continue;
      // Covers both pre-existing upstream instances and ones created in
      // this same Deploy batch (whose downstream lists could not include
      // their new siblings yet).
      for (const auto& up : it->second) {
        updates.push_back({up.device, up.instance, info});
      }
    }
  }
  // One deploy is one logical membership change: in cell mode every update
  // it causes shares a single freshly-minted epoch and boundary.
  if (!updates.empty() && config_.cells_enabled) begin_route_change();
  for (const auto& u : updates) send_route_update(u.to, u.upstream, u.down, true);
}

void Master::remove_device(DeviceId device) {
  if (!members_.contains(device.value())) return;

  // Resolve in-flight migration transactions the dead device was party to
  // before touching the registry. A source that died after the destination
  // staged and acked its state is committed — the destination owns a
  // complete copy, so finishing the handoff loses nothing. Every other
  // combination aborts: the surviving source resumes in place, a surviving
  // destination discards its inert staged copy.
  std::vector<std::uint64_t> involved;
  for (const auto& [id, txn] : txns_) {
    if (txn.from == device || txn.to == device) involved.push_back(id);
  }
  for (const std::uint64_t id : involved) {
    auto it = txns_.find(id);
    if (it == txns_.end()) continue;
    if (it->second.from == device && it->second.acked) {
      const MigrationTxn txn = it->second;
      sim_.cancel(txn.timeout);
      txns_.erase(id);
      decisions_.push_back({txn.txn, MigrationDecision::Kind::kCommit,
                            txn.instance, txn.from, txn.to});
      finalize_commit(decisions_.back());
    } else {
      abort_txn(id);
    }
  }

  auto it = members_.find(device.value());
  if (it == members_.end()) return;
  const std::vector<InstanceInfo> gone = std::move(it->second);
  members_.erase(it);
  SWING_LOG(kInfo) << "master removes device " << device << " ("
                   << gone.size() << " instances)";
  note_event(MasterEvent::kRemove, device.value());

  for (const auto& info : gone) {
    auto& list = by_op_[info.op.value()];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const InstanceInfo& x) {
                                return x.instance == info.instance;
                              }),
               list.end());
  }
  // swing-state redeploy-and-restore: a dead member's stateful instances
  // are relocated to a survivor instead of being torn down, resolved along
  // the fallback chain master store -> peer replica -> state lost. The
  // InstanceId is preserved, so key-partitioned fan-in keeps its mapping
  // and pending retransmissions find the revived instance.
  std::vector<InstanceInfo> lost;
  for (const auto& info : gone) {
    bool relocated = false;
    if (config_.restore_from_checkpoint && op_stateful(info.op)) {
      const DeviceId target = pick_restore_target(graph_.op(info.op), device);
      // The dead device's cell still owns its chains: the gateway learns of
      // the removal only after restore resolution below.
      if (const auto* chain = store_for(device).chain(info.instance);
          chain != nullptr && target.valid()) {
        Bytes merged;
        if (flatten_chain(*chain, info.op, merged)) {
          const InstanceInfo revived{info.instance, info.op, target};
          members_[target.value()].push_back(revived);
          by_op_[info.op.value()].push_back(revived);
          install_restore(info, chain->tip_epoch(), merged, target);
          count_restore("master");
          relocated = true;
        }
      }
      if (!relocated) {
        // The master has no usable chain (e.g. its volatile store was
        // lost): fall back to the peer replica, which rebuilds the
        // instance locally from its replicated chain.
        auto peer_it = replica_of_.find(info.instance.value());
        if (peer_it != replica_of_.end()) {
          const DeviceId peer = peer_it->second;
          if (peer != device && members_.contains(peer.value()) &&
              placeable(graph_.op(info.op), peer)) {
            const InstanceInfo revived{info.instance, info.op, peer};
            members_[peer.value()].push_back(revived);
            by_op_[info.op.value()].push_back(revived);
            state::ReplicaRestoreMsg restore;
            restore.instance = info;
            restore.sent_ns = sim_.now().nanos();
            for (OperatorId down_op : graph_.downstreams(info.op)) {
              auto d = by_op_.find(down_op.value());
              if (d == by_op_.end()) continue;
              for (const auto& down : d->second) {
                restore.downstreams.push_back(down);
              }
            }
            send_msg(peer, MsgType::kReplicaRestore, restore);
            announce_instance(revived);
            note_event(MasterEvent::kRestore, info.instance.value());
            count_restore("peer");
            // The peer consumes its chain on restore, and a replica on the
            // instance's own host is useless: drop the assignment so the
            // next accepted record picks a fresh peer.
            replica_of_.erase(peer_it);
            relocated = true;
          }
        }
      }
      if (!relocated) count_restore("lost");
    }
    if (!relocated) {
      lost.push_back(info);
      replica_of_.erase(info.instance.value());
    }
  }
  // Broadcast removals so every upstream drops the dead instances.
  if (!lost.empty() && config_.cells_enabled) begin_route_change();
  for (const auto& [member, instances] : members_) {
    for (const auto& info : lost) {
      send_route_update(DeviceId{member}, InstanceId{}, info, false);
    }
  }
  // Replica chains hosted on the dead device died with it: re-pick a peer
  // for each affected instance and re-ship its chain from the master store
  // so replica coverage heals.
  if (config_.replicate_to_peer) {
    std::vector<std::uint64_t> stale;
    for (const auto& [inst, peer] : replica_of_) {
      if (peer == device) stale.push_back(inst);
    }
    for (const std::uint64_t inst : stale) {
      replica_of_.erase(inst);
      const InstanceInfo* live = nullptr;
      for (const auto& [op, list] : by_op_) {
        for (const auto& info : list) {
          if (info.instance.value() == inst) live = &info;
        }
      }
      if (live != nullptr &&
          store_for(live->device).chain(InstanceId{inst}) != nullptr) {
        assign_replica(*live);
      }
    }
  }
  if (gateway_ != nullptr) {
    // Only now does the cell layer learn of the departure: restore targeting
    // and chain lookups above needed the device's old cell mapping. Dropped
    // anti-entropy state would otherwise resurrect on device-id reuse.
    route_seq_.erase(device.value());
    route_log_.erase(device.value());
    refresh_cells(gateway_->remove(device));
  }
}

void Master::start() {
  started_ = true;
  note_event(MasterEvent::kStart, members_.size());
  for (const auto& [member, instances] : members_) {
    send(DeviceId{member}, MsgType::kStart, Bytes{});
  }
}

void Master::stop() {
  started_ = false;
  note_event(MasterEvent::kStop, members_.size());
  for (const auto& [member, instances] : members_) {
    send(DeviceId{member}, MsgType::kStop, Bytes{});
  }
}

std::vector<InstanceInfo> Master::instances_of(OperatorId op) const {
  auto it = by_op_.find(op.value());
  return it == by_op_.end() ? std::vector<InstanceInfo>{} : it->second;
}

std::size_t Master::instance_count() const {
  std::size_t n = 0;
  for (const auto& [op, list] : by_op_) n += list.size();
  return n;
}

// --- swing-state -----------------------------------------------------------

bool Master::op_stateful(OperatorId op) const {
  auto it = stateful_cache_.find(op.value());
  if (it != stateful_cache_.end()) return it->second;
  // Probe once: construct a throwaway unit from the declaration's factory.
  // Statefulness is a property of the operator class, not of any instance.
  const auto unit = graph_.op(op).factory();
  const bool stateful = unit != nullptr && unit->stateful();
  stateful_cache_[op.value()] = stateful;
  return stateful;
}

void Master::count_restore(const char* source) {
  if (config_.registry != nullptr) {
    config_.registry->counter("state_restores", {{"source", source}}).inc();
  }
}

DeviceId Master::pick_restore_target(const dataflow::OperatorDecl& op,
                                     DeviceId exclude) const {
  // Cell mode prefers a survivor from the departed device's own cell (the
  // cell already owns the checkpoint chain); load then lowest-id tie-break
  // within each tier. With cells off, `home` is invalid and this reduces
  // exactly to the seed's fewest-instances rule.
  const CellId home = gateway_ == nullptr ? CellId{} : gateway_->cell_of(exclude);
  DeviceId best{};
  std::size_t best_load = 0;
  bool best_same_cell = false;
  for (const auto& [member, instances] : members_) {
    const DeviceId candidate{member};
    if (candidate == exclude) continue;
    if (!placeable(op, candidate)) continue;
    const bool same_cell =
        home.valid() && gateway_->cell_of(candidate) == home;
    if (!best.valid() || (same_cell && !best_same_cell) ||
        (same_cell == best_same_cell && instances.size() < best_load)) {
      best = candidate;
      best_load = instances.size();
      best_same_cell = same_cell;
    }
  }
  return best;  // members_ is sorted, so ties land on the lowest device id.
}

DeviceId Master::replica_of(InstanceId instance) const {
  auto it = replica_of_.find(instance.value());
  return it == replica_of_.end() ? DeviceId{} : it->second;
}

void Master::relocate_record(const InstanceInfo& info, DeviceId target) {
  auto member = members_.find(info.device.value());
  if (member != members_.end()) {
    auto& list = member->second;
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const InstanceInfo& x) {
                                return x.instance == info.instance;
                              }),
               list.end());
  }
  const InstanceInfo moved{info.instance, info.op, target};
  auto& target_list = members_[target.value()];
  const bool present =
      std::any_of(target_list.begin(), target_list.end(),
                  [&](const InstanceInfo& x) {
                    return x.instance == info.instance;
                  });
  if (!present) target_list.push_back(moved);  // Idempotent for recovery.
  for (auto& entry : by_op_[info.op.value()]) {
    if (entry.instance == info.instance) entry.device = target;
  }
}

void Master::announce_instance(const InstanceInfo& info) {
  // AddDownstream overwrites the peer address book on hosts that already
  // route to this InstanceId, so in-flight retransmissions converge on the
  // instance's current address.
  bool opened = false;
  for (OperatorId up_op : graph_.upstreams(info.op)) {
    auto it = by_op_.find(up_op.value());
    if (it == by_op_.end()) continue;
    for (const auto& up : it->second) {
      if (!opened && config_.cells_enabled) {
        begin_route_change();
        opened = true;
      }
      send_route_update(up.device, up.instance, info, true);
    }
  }
}

bool Master::flatten_chain(const state::CheckpointStore::Chain& chain,
                           OperatorId op, Bytes& out) const {
  if (chain.deltas.empty()) {
    out = chain.base.state;  // Fast path: the base already is the answer.
    return true;
  }
  const auto unit = graph_.op(op).factory();
  if (unit == nullptr) return false;
  std::vector<const Bytes*> deltas;
  deltas.reserve(chain.deltas.size());
  for (const auto& d : chain.deltas) deltas.push_back(&d.state);
  try {
    out = state::reconstruct_state(*unit, chain.base.state, deltas);
  } catch (const WireFormatError& e) {
    SWING_LOG(kWarn) << "master: chain reconstruction failed for instance "
                     << chain.base.instance.instance << ": " << e.what();
    return false;
  }
  return true;
}

void Master::install_restore(const InstanceInfo& info, std::uint64_t epoch,
                             const Bytes& state, DeviceId target) {
  state::RestoreMsg restore;
  restore.instance = InstanceInfo{info.instance, info.op, target};
  restore.epoch = epoch;
  restore.sent_ns = sim_.now().nanos();
  restore.state = state;
  for (OperatorId down_op : graph_.downstreams(info.op)) {
    auto it = by_op_.find(down_op.value());
    if (it == by_op_.end()) continue;
    for (const auto& down : it->second) restore.downstreams.push_back(down);
  }
  send_msg(target, MsgType::kRestore, restore);

  // Re-announce the instance at its new address.
  announce_instance(restore.instance);
  note_event(MasterEvent::kRestore, info.instance.value());
}

void Master::handle_checkpoint(const state::CheckpointMsg& msg) {
  if (!store_for(msg.instance.device).store(msg)) return;
  if (config_.registry != nullptr) {
    config_.registry->counter("checkpoints_stored").inc();
    config_.registry->histogram("checkpoint_latency_ms")
        .record((sim_.now() - SimTime{msg.taken_ns}).millis());
  }
  if (config_.tracer != nullptr) {
    config_.tracer->span(obs::TracePhase::kTransfer,
                         TupleId{msg.instance.instance.value()}, device_,
                         SimTime{msg.taken_ns},
                         sim_.now() - SimTime{msg.taken_ns});
  }
  note_event(MasterEvent::kCheckpoint, msg.instance.instance.value());
  // Under 2PC, msg.migrate_to on the source's final PREPARE snapshot is
  // informational — commit is driven by the destination's MigrateAck, not
  // by this arrival.
  if (config_.replicate_to_peer) {
    replicate_record(msg.instance, state::ReplicateMsg::Kind::kFull,
                     msg.epoch, msg.epoch, msg.state);
  }
}

void Master::handle_delta(const state::DeltaMsg& msg) {
  if (!store_for(msg.instance.device).store_delta(msg)) return;
  if (config_.registry != nullptr) {
    config_.registry->counter("deltas_stored").inc();
    config_.registry->histogram("checkpoint_latency_ms")
        .record((sim_.now() - SimTime{msg.taken_ns}).millis());
  }
  if (config_.tracer != nullptr) {
    config_.tracer->span(obs::TracePhase::kTransfer,
                         TupleId{msg.instance.instance.value()}, device_,
                         SimTime{msg.taken_ns},
                         sim_.now() - SimTime{msg.taken_ns});
  }
  note_event(MasterEvent::kDelta, msg.instance.instance.value());
  if (config_.replicate_to_peer) {
    replicate_record(msg.instance, state::ReplicateMsg::Kind::kDelta,
                     msg.epoch, msg.base_epoch, msg.delta);
  }
}

// --- peer replication -------------------------------------------------------

void Master::replicate_record(const InstanceInfo& info,
                              state::ReplicateMsg::Kind kind,
                              std::uint64_t epoch, std::uint64_t base_epoch,
                              const Bytes& state) {
  auto it = replica_of_.find(info.instance.value());
  const DeviceId peer = it == replica_of_.end() ? DeviceId{} : it->second;
  if (!peer.valid() || peer == info.device ||
      !members_.contains(peer.value())) {
    // Missing or stale assignment: pick a peer and ship the whole stored
    // chain (which already includes the record that triggered this call).
    assign_replica(info);
    return;
  }
  state::ReplicateMsg rep;
  rep.instance = info;
  rep.kind = kind;
  rep.epoch = epoch;
  rep.base_epoch = base_epoch;
  rep.sent_ns = sim_.now().nanos();
  rep.state = state;
  send_msg(peer, MsgType::kReplicate, rep);
  if (config_.registry != nullptr) {
    config_.registry->counter("state_bytes", {{"kind", "replica"}})
        .inc(state.size());
  }
}

DeviceId Master::assign_replica(const InstanceInfo& info) {
  // Deterministic peer choice: fewest hosted instances, ties to the lowest
  // device id; never the instance's own host (a replica there dies with the
  // instance) and never a device the operator could not run on. Cell mode
  // scopes the preference to the instance's own cell so replica traffic
  // stays within the cell master's domain; cross-cell only when no same-cell
  // peer is eligible.
  const auto& decl = graph_.op(info.op);
  const CellId home =
      gateway_ == nullptr ? CellId{} : gateway_->cell_of(info.device);
  DeviceId best{};
  std::size_t best_load = 0;
  bool best_same_cell = false;
  for (const auto& [member, instances] : members_) {
    const DeviceId candidate{member};
    if (candidate == info.device) continue;
    if (decl.placement == dataflow::Placement::kMaster && candidate != device_) {
      continue;
    }
    if (decl.placement == dataflow::Placement::kWorkers &&
        candidate == device_ && !config_.transforms_on_master) {
      continue;
    }
    const bool same_cell =
        home.valid() && gateway_->cell_of(candidate) == home;
    if (!best.valid() || (same_cell && !best_same_cell) ||
        (same_cell == best_same_cell && instances.size() < best_load)) {
      best = candidate;
      best_load = instances.size();
      best_same_cell = same_cell;
    }
  }
  if (!best.valid()) return best;
  replica_of_[info.instance.value()] = best;
  const auto* chain = store_for(info.device).chain(info.instance);
  if (chain == nullptr) return best;
  const auto ship = [&](state::ReplicateMsg::Kind kind, std::uint64_t epoch,
                        std::uint64_t base_epoch, const Bytes& state) {
    state::ReplicateMsg rep;
    rep.instance = info;
    rep.kind = kind;
    rep.epoch = epoch;
    rep.base_epoch = base_epoch;
    rep.sent_ns = sim_.now().nanos();
    rep.state = state;
    send_msg(best, MsgType::kReplicate, rep);
    if (config_.registry != nullptr) {
      config_.registry->counter("state_bytes", {{"kind", "replica"}})
          .inc(state.size());
    }
  };
  ship(state::ReplicateMsg::Kind::kFull, chain->base.epoch, chain->base.epoch,
       chain->base.state);
  for (const auto& d : chain->deltas) {
    ship(state::ReplicateMsg::Kind::kDelta, d.epoch, chain->base.epoch,
         d.state);
  }
  return best;
}

// --- 2PC migration coordinator ----------------------------------------------

void Master::fire_phase(MigrationPhase phase, const MigrationTxn& txn) {
  if (!phase_hook_) return;
  const MigrationPhaseHook hook = phase_hook_;  // It may replace itself.
  hook(phase, txn);
}

bool Master::migrate_instance(InstanceId instance, DeviceId to) {
  if (!members_.contains(to.value())) return false;
  const InstanceInfo* found = nullptr;
  for (const auto& [member, instances] : members_) {
    for (const auto& info : instances) {
      if (info.instance == instance) found = &info;
    }
  }
  if (found == nullptr) return false;
  if (found->device == to) return false;
  if (!op_stateful(found->op)) return false;
  for (const auto& [id, txn] : txns_) {
    if (txn.instance.instance == instance) return false;  // Already in flight.
  }
  const auto& decl = graph_.op(found->op);
  switch (decl.placement) {
    case dataflow::Placement::kMaster:
      if (to != device_) return false;
      break;
    case dataflow::Placement::kWorkers:
      if (to == device_ && !config_.transforms_on_master) return false;
      break;
  }

  MigrationTxn txn;
  txn.txn = next_txn_++;
  txn.instance = *found;
  txn.from = found->device;
  txn.to = to;
  // Write-ahead: log intent before the first message leaves, so a
  // coordinator crash at any later point knows this transaction existed
  // and presumes abort until a COMMIT record says otherwise.
  decisions_.push_back({txn.txn, MigrationDecision::Kind::kPrepare,
                        txn.instance, txn.from, txn.to});
  note_event(MasterEvent::kMigrate, instance.value());
  send_msg(txn.from, MsgType::kMigratePrepare,
           state::MigratePrepareMsg{txn.txn, instance, to});
  if (config_.migration_prepare_timeout.nanos() > 0) {
    txn.timeout = sim_.schedule_after(
        config_.migration_prepare_timeout, [this, id = txn.txn] {
          auto it = txns_.find(id);
          if (it != txns_.end() && !it->second.acked) abort_txn(id);
        });
  }
  txns_[txn.txn] = txn;
  fire_phase(MigrationPhase::kPrepareSent, txn);
  return true;
}

int Master::migrate_stateful(DeviceId from, DeviceId to) {
  auto it = members_.find(from.value());
  if (it == members_.end()) return 0;
  const std::vector<InstanceInfo> hosted = it->second;  // Copy: we mutate.
  int started = 0;
  for (const auto& info : hosted) {
    if (migrate_instance(info.instance, to)) ++started;
  }
  return started;
}

void Master::handle_migrate_ack(const state::MigrateAckMsg& msg) {
  auto it = txns_.find(msg.txn);
  if (it == txns_.end()) return;  // Late ack for a retired transaction.
  if (!msg.ok) {
    abort_txn(msg.txn);
    return;
  }
  it->second.acked = true;
  {
    const MigrationTxn snapshot = it->second;
    fire_phase(MigrationPhase::kAckReceived, snapshot);
  }
  it = txns_.find(msg.txn);
  if (it == txns_.end()) return;  // The hook crashed the coordinator.
  const MigrationTxn txn = it->second;
  sim_.cancel(txn.timeout);
  txns_.erase(msg.txn);
  // Write-ahead: log the COMMIT decision before acting on it, so a crash
  // between here and completion is re-driven by recovery, never
  // half-applied.
  decisions_.push_back({txn.txn, MigrationDecision::Kind::kCommit,
                        txn.instance, txn.from, txn.to});
  const MigrationDecision decision = decisions_.back();
  fire_phase(MigrationPhase::kCommitLogged, txn);
  // If the hook crashed our volatile state, recovery already finalized this
  // logged decision; a kEnd record marks that.
  for (auto rit = decisions_.rbegin(); rit != decisions_.rend(); ++rit) {
    if (rit->txn == txn.txn && rit->kind == MigrationDecision::Kind::kEnd) {
      return;
    }
  }
  finalize_commit(decision);
}

void Master::finalize_commit(const MigrationDecision& decision) {
  // Build the commit message before mutating the registry: downstream
  // seeds come from the destination instance's downstream operators, which
  // this relocation does not touch.
  state::MigrateCommitMsg commit;
  commit.txn = decision.txn;
  commit.instance =
      InstanceInfo{decision.instance.instance, decision.instance.op,
                   decision.to};
  for (OperatorId down_op : graph_.downstreams(decision.instance.op)) {
    auto it = by_op_.find(down_op.value());
    if (it == by_op_.end()) continue;
    for (const auto& down : it->second) commit.downstreams.push_back(down);
  }
  relocate_record(decision.instance, decision.to);
  if (config_.cells_enabled) {
    // The stored chain follows the instance into its new host's cell.
    auto& from_store = store_for(decision.from);
    auto& to_store = store_for(decision.to);
    if (&from_store != &to_store) {
      if (auto chain = from_store.extract(decision.instance.instance)) {
        to_store.adopt(decision.instance.instance, std::move(*chain));
      }
    }
  }
  send_msg(decision.to, MsgType::kMigrateCommit, commit);
  send_msg(decision.from, MsgType::kMigrateCommit, commit);
  announce_instance(commit.instance);
  if (config_.registry != nullptr) {
    // Same (name, labels) key as the MetricsCollector's instrument, so this
    // lands in the swarm-wide migrations_completed counter.
    config_.registry->counter("migrations_completed").inc();
  }
  note_event(MasterEvent::kMigrateCommit, decision.instance.instance.value());
  decisions_.push_back({decision.txn, MigrationDecision::Kind::kEnd,
                        commit.instance, decision.from, decision.to});
  fire_phase(MigrationPhase::kCompleted,
             MigrationTxn{decision.txn, commit.instance, decision.from,
                          decision.to, true, {}});
}

void Master::abort_txn(std::uint64_t txn_id) {
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  const MigrationTxn txn = it->second;
  sim_.cancel(txn.timeout);
  txns_.erase(it);
  decisions_.push_back({txn.txn, MigrationDecision::Kind::kAbort,
                        txn.instance, txn.from, txn.to});
  const state::MigrateAbortMsg abort{txn.txn, txn.instance.instance};
  send_msg(txn.from, MsgType::kMigrateAbort, abort);
  send_msg(txn.to, MsgType::kMigrateAbort, abort);
  if (config_.registry != nullptr) {
    config_.registry->counter("migrations_aborted").inc();
  }
  note_event(MasterEvent::kMigrateAbort, txn.instance.instance.value());
}

void Master::crash_volatile_state() {
  SWING_LOG(kWarn) << "master: volatile state lost (checkpoint store + "
                   << txns_.size() << " live txns); running recovery";
  for (auto& [id, txn] : txns_) sim_.cancel(txn.timeout);
  txns_.clear();
  checkpoints_.clear();
  cell_stores_.clear();  // Cell stores are volatile master memory too.
  if (config_.registry != nullptr) {
    config_.registry->counter("master_state_crashes").inc();
  }
  // Presumed-abort recovery from the durable decision log: the last record
  // per transaction decides its fate.
  std::map<std::uint64_t, MigrationDecision> last;
  for (const auto& d : decisions_) last[d.txn] = d;
  for (const auto& [id, d] : last) {
    switch (d.kind) {
      case MigrationDecision::Kind::kPrepare: {
        // Undecided at the crash: presume abort. Both participants treat a
        // stray abort as a no-op if the transaction never reached them.
        decisions_.push_back({d.txn, MigrationDecision::Kind::kAbort,
                              d.instance, d.from, d.to});
        const state::MigrateAbortMsg abort{d.txn, d.instance.instance};
        send_msg(d.from, MsgType::kMigrateAbort, abort);
        send_msg(d.to, MsgType::kMigrateAbort, abort);
        if (config_.registry != nullptr) {
          config_.registry->counter("migrations_aborted").inc();
        }
        note_event(MasterEvent::kMigrateAbort, d.instance.instance.value());
        break;
      }
      case MigrationDecision::Kind::kCommit:
        // Logged but not fully acted on: re-drive to completion. Every step
        // is idempotent at the participants, so a partially-applied first
        // attempt is safe to repeat.
        finalize_commit(d);
        break;
      case MigrationDecision::Kind::kAbort:
      case MigrationDecision::Kind::kEnd:
        break;  // Fully resolved before the crash.
    }
  }
}

// --- swing-shard control plane ----------------------------------------------

DeviceId Master::cell_role_device(CellId cell) const {
  if (gateway_ == nullptr) return DeviceId{};
  const shard::CellMaster* c = gateway_->cell(cell);
  return c == nullptr ? DeviceId{} : c->role_device();
}

state::CheckpointStore& Master::store_for(DeviceId host) {
  if (gateway_ == nullptr) return checkpoints_;
  const CellId cell = gateway_->cell_of(host);
  if (!cell.valid()) return checkpoints_;
  return cell_stores_[cell.value()];
}

void Master::count_master_msg(DeviceId to) {
  if (gateway_ == nullptr || config_.registry == nullptr) return;
  const CellId cell = gateway_->cell_of(to);
  config_.registry
      ->counter("master_msgs", {{"cell", std::to_string(cell.value())}})
      .inc();
}

void Master::begin_route_change() {
  if (gateway_ == nullptr) return;
  current_epoch_ = gateway_->bump_epoch();
  current_boundary_ = gateway_->route_boundary();
  sync_gateway_obs();
}

void Master::send_route_update(DeviceId to, InstanceId upstream,
                               const InstanceInfo& down, bool add) {
  const RouteUpdateMsg update{upstream, down};
  if (!config_.cells_enabled) {
    // The seed wire format, byte for byte.
    send_msg(to, add ? MsgType::kAddDownstream : MsgType::kRemoveDownstream,
             update);
    return;
  }
  shard::EpochRouteUpdateMsg msg;
  msg.seq = ++route_seq_[to.value()];
  msg.epoch = current_epoch_;
  msg.boundary_frame = current_boundary_;
  msg.op = add ? shard::EpochRouteUpdateMsg::Op::kAdd
               : shard::EpochRouteUpdateMsg::Op::kRemove;
  msg.route = update;
  auto& log = route_log_[to.value()];
  log.push_back(msg);
  if (log.size() > kRouteLogCap) log.erase(log.begin());
  send_msg(to, MsgType::kEpochRouteUpdate, msg);
  count_master_msg(to);
}

void Master::refresh_cells(const std::vector<CellId>& affected) {
  if (gateway_ == nullptr) return;
  for (const CellId cell : affected) {
    const shard::CellMaster* c = gateway_->cell(cell);
    if (c == nullptr) {
      // Retired (emptied or merged away). Withdraw its role advert unless
      // the same device was re-advertised as another cell's role — a merge
      // can crown the absorbed cell's ex-role over the combined membership.
      auto it = advertised_roles_.find(cell.value());
      if (it != advertised_roles_.end()) {
        const DeviceId old_role = it->second;
        advertised_roles_.erase(it);
        bool still_advertised = false;
        for (const auto& [other, role] : advertised_roles_) {
          if (role == old_role) still_advertised = true;
        }
        if (!still_advertised) {
          discovery_.withdraw(kSwingCellService, old_role);
        }
      }
      continue;
    }
    const DeviceId role = c->role_device();
    for (const DeviceId member : c->members()) {
      const shard::CellAssignMsg assign{cell, member, role, gateway_->epoch()};
      send_msg(member, MsgType::kCellAssign, assign);
      count_master_msg(member);
    }
    auto it = advertised_roles_.find(cell.value());
    if (it == advertised_roles_.end() || it->second != role) {
      if (it != advertised_roles_.end()) {
        discovery_.withdraw(kSwingCellService, it->second);
      }
      discovery_.advertise(kSwingCellService, role, Bytes{});
      advertised_roles_[cell.value()] = role;
    }
  }
  rehome_chains();
  sync_gateway_obs();
}

void Master::rehome_chains() {
  if (gateway_ == nullptr) return;
  for (const auto& [member, instances] : members_) {
    state::CheckpointStore& want = store_for(DeviceId{member});
    for (const InstanceInfo& info : instances) {
      if (want.chain(info.instance) != nullptr) continue;
      const auto move_from = [&](state::CheckpointStore& from) {
        if (&from == &want) return false;
        auto chain = from.extract(info.instance);
        if (!chain.has_value()) return false;
        want.adopt(info.instance, std::move(*chain));
        return true;
      };
      if (move_from(checkpoints_)) continue;
      for (auto& [cell, store] : cell_stores_) {
        if (move_from(store)) break;
      }
    }
  }
  // Drop drained stores of cells that no longer exist.
  for (auto it = cell_stores_.begin(); it != cell_stores_.end();) {
    if (it->second.size() == 0 &&
        gateway_->cell(CellId{it->first}) == nullptr) {
      it = cell_stores_.erase(it);
    } else {
      ++it;
    }
  }
}

void Master::handle_cell_report(DeviceId src, const shard::CellReportMsg& msg) {
  if (gateway_ == nullptr || !members_.contains(src.value())) return;
  gateway_->report(src, msg.watermark);
  // Anti-entropy repair: the worker reports the last route-update sequence
  // it applied; everything newer in the bounded per-device log is re-sent.
  // This is what heals a worker whose epoch updates were lost to a
  // control-plane partition (tests/shard/test_churn.cpp).
  auto it = route_log_.find(src.value());
  if (it != route_log_.end()) {
    for (const shard::EpochRouteUpdateMsg& entry : it->second) {
      if (entry.seq > msg.applied_seq) {
        send_msg(src, MsgType::kEpochRouteUpdate, entry);
        count_master_msg(src);
      }
    }
  }
}

void Master::handle_gateway_hello(const shard::GatewayHelloMsg& msg) {
  if (gateway_ == nullptr) return;
  gateway_->note_hello(msg.cell, msg.device);
}

void Master::sync_gateway_obs() {
  if (gateway_ == nullptr) return;
  const shard::GatewayStats s = gateway_->stats();  // Copy: we note events.
  for (std::uint64_t n = synced_.cell_splits; n < s.cell_splits; ++n) {
    note_event(MasterEvent::kCellSplit, n + 1);
  }
  for (std::uint64_t n = synced_.cell_merges; n < s.cell_merges; ++n) {
    note_event(MasterEvent::kCellMerge, n + 1);
  }
  for (std::uint64_t n = synced_.handoffs; n < s.handoffs; ++n) {
    note_event(MasterEvent::kHandoff, n + 1);
  }
  for (std::uint64_t n = synced_.epoch_bumps; n < s.epoch_bumps; ++n) {
    note_event(MasterEvent::kEpochBump, n + 1);
  }
  if (config_.registry != nullptr) {
    if (s.cell_splits > synced_.cell_splits) {
      config_.registry->counter("cell_splits")
          .inc(s.cell_splits - synced_.cell_splits);
    }
    if (s.cell_merges > synced_.cell_merges) {
      config_.registry->counter("cell_merges")
          .inc(s.cell_merges - synced_.cell_merges);
    }
    if (s.handoffs > synced_.handoffs) {
      config_.registry->counter("handoffs").inc(s.handoffs - synced_.handoffs);
    }
    if (s.epoch_bumps > synced_.epoch_bumps) {
      config_.registry->counter("epoch_bumps")
          .inc(s.epoch_bumps - synced_.epoch_bumps);
    }
    config_.registry->gauge("cells_active")
        .set(static_cast<double>(gateway_->cell_count()));
  }
  synced_ = s;
}

void Master::send(DeviceId to, MsgType type, Bytes payload) {
  transport_.send(device_, to, std::uint8_t(type), std::move(payload));
}

template <typename M>
void Master::send_msg(DeviceId to, MsgType type, const M& msg) {
  ByteWriter& w = arena_.begin_frame();
  msg.encode(w);
  transport_.send(device_, to, std::uint8_t(type), arena_.end_frame());
}

}  // namespace swing::runtime
