#include "runtime/master.h"

#include <algorithm>

#include "common/logging.h"

namespace swing::runtime {

Master::Master(Simulator& sim, DeviceId device, net::Transport& transport,
               net::Discovery& discovery, const dataflow::AppGraph& graph,
               MasterConfig config)
    : sim_(sim),
      device_(device),
      transport_(transport),
      discovery_(discovery),
      graph_(graph),
      config_(config) {
  graph_.validate();
}

const char* master_event_name(MasterEvent kind) {
  switch (kind) {
    case MasterEvent::kAdmit:
      return "admit";
    case MasterEvent::kDeploy:
      return "deploy";
    case MasterEvent::kRemove:
      return "remove";
    case MasterEvent::kStart:
      return "start";
    case MasterEvent::kStop:
      return "stop";
    case MasterEvent::kCheckpoint:
      return "checkpoint";
    case MasterEvent::kRestore:
      return "restore";
    case MasterEvent::kMigrate:
      return "migrate";
  }
  return "unknown";
}

void Master::note_event(MasterEvent kind, std::uint64_t detail) {
  if (config_.ledger != nullptr) {
    config_.ledger->on_control_event(std::uint8_t(kind), detail, sim_.now());
  }
  if (config_.registry != nullptr) {
    config_.registry
        ->counter("master_events", {{"kind", master_event_name(kind)}})
        .inc();
  }
}

void Master::launch() {
  discovery_.advertise(kSwingService, device_, Bytes{});
  admit(device_);  // The master's device hosts sources and sinks.
  if (config_.member_timeout.nanos() > 0) {
    sweep_task_ = std::make_unique<PeriodicTask>(
        sim_, config_.member_timeout * 0.5, [this] { sweep_members(); });
    sweep_task_->start();
  }
}

void Master::handle_message(const net::Message& msg) {
  last_seen_[msg.src.value()] = sim_.now();
  try {
    switch (MsgType(msg.type)) {
      case MsgType::kHello:
        admit(msg.src);
        break;
      case MsgType::kHeartbeat:
        break;  // Liveness already noted above.
      case MsgType::kLeaveReport: {
        ByteReader r{msg.payload};
        const DeviceId reported = DeviceMsg::decode(r).device;
        if (config_.registry != nullptr && members_.contains(reported.value())) {
          config_.registry->counter("workers_evicted", {{"cause", "link-report"}})
              .inc();
        }
        remove_device(reported);
        break;
      }
      case MsgType::kBye:
        remove_device(msg.src);
        break;
      case MsgType::kCheckpoint: {
        ByteReader r{msg.payload};
        handle_checkpoint(state::CheckpointMsg::decode(r));
        break;
      }
      // Worker-bound messages; the runtime routes them elsewhere. Enumerated
      // (no default) so -Wswitch forces a routing decision when a message
      // kind is added.
      case MsgType::kDeploy:
      case MsgType::kAddDownstream:
      case MsgType::kRemoveDownstream:
      case MsgType::kStart:
      case MsgType::kStop:
      case MsgType::kData:
      case MsgType::kAck:
      case MsgType::kDataBatch:
      case MsgType::kAckBatch:
      case MsgType::kMigrate:
      case MsgType::kRestore:
        break;
    }
  } catch (const WireFormatError& e) {
    SWING_LOG(kWarn) << "master dropped malformed message from " << msg.src
                     << ": " << e.what();
  }
}

void Master::sweep_members() {
  std::vector<DeviceId> dead;
  for (const auto& [member, instances] : members_) {
    if (member == device_.value()) continue;  // We are always here.
    auto it = last_seen_.find(member);
    const SimTime seen = it == last_seen_.end() ? SimTime{} : it->second;
    if (sim_.now() - seen > config_.member_timeout) {
      dead.emplace_back(member);
    }
  }
  for (DeviceId id : dead) {
    SWING_LOG(kInfo) << "master: member " << id
                     << " silent past timeout; removing";
    if (config_.registry != nullptr) {
      config_.registry
          ->counter("workers_evicted", {{"cause", "heartbeat-timeout"}})
          .inc();
    }
    remove_device(id);
  }
}

bool Master::placeable(const dataflow::OperatorDecl& op,
                       DeviceId device) const {
  switch (op.placement) {
    case dataflow::Placement::kMaster:
      return device == device_;
    case dataflow::Placement::kWorkers:
      if (device == device_ && !config_.transforms_on_master) return false;
      if (op.max_replicas != 0) {
        auto it = by_op_.find(op.id.value());
        if (it != by_op_.end() && it->second.size() >= op.max_replicas) {
          return false;
        }
      }
      return true;
  }
  return false;
}

void Master::admit(DeviceId device) {
  if (members_.contains(device.value())) return;  // Duplicate Hello.
  members_[device.value()] = {};
  SWING_LOG(kInfo) << "master admits device " << device;
  note_event(MasterEvent::kAdmit, device.value());
  deploy_to(device);
  if (started_) send(device, MsgType::kStart, Bytes{});
}

void Master::deploy_to(DeviceId device) {
  DeployMsg deploy;
  std::vector<InstanceInfo> created;

  for (const auto& op : graph_.operators()) {
    if (!placeable(op, device)) continue;
    InstanceInfo info{InstanceId{next_instance_++}, op.id, device};
    created.push_back(info);

    DeployMsg::Assignment assignment;
    assignment.self = info;
    for (OperatorId down_op : graph_.downstreams(op.id)) {
      auto it = by_op_.find(down_op.value());
      if (it == by_op_.end()) continue;
      for (const auto& down : it->second) {
        assignment.downstreams.push_back(down);
      }
    }
    deploy.assignments.push_back(std::move(assignment));
  }

  if (!deploy.assignments.empty()) {
    send_msg(device, MsgType::kDeploy, deploy);
    note_event(MasterEvent::kDeploy,
               device.value() << 16 | deploy.assignments.size());
  }

  // Register the new instances, then tell the hosts of upstream instances
  // about their new downstreams.
  for (const auto& info : created) {
    members_[device.value()].push_back(info);
    by_op_[info.op.value()].push_back(info);
  }
  for (const auto& info : created) {
    for (OperatorId up_op : graph_.upstreams(info.op)) {
      auto it = by_op_.find(up_op.value());
      if (it == by_op_.end()) continue;
      // Covers both pre-existing upstream instances and ones created in
      // this same Deploy batch (whose downstream lists could not include
      // their new siblings yet).
      for (const auto& up : it->second) {
        RouteUpdateMsg update{up.instance, info};
        send_msg(up.device, MsgType::kAddDownstream, update);
      }
    }
  }
}

void Master::remove_device(DeviceId device) {
  auto it = members_.find(device.value());
  if (it == members_.end()) return;
  const std::vector<InstanceInfo> gone = std::move(it->second);
  members_.erase(it);
  SWING_LOG(kInfo) << "master removes device " << device << " ("
                   << gone.size() << " instances)";
  note_event(MasterEvent::kRemove, device.value());

  for (const auto& info : gone) {
    auto& list = by_op_[info.op.value()];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const InstanceInfo& x) {
                                return x.instance == info.instance;
                              }),
               list.end());
  }
  // swing-state redeploy-and-restore: a dead member's stateful instances
  // with a stored checkpoint are relocated to a survivor instead of being
  // torn down. The InstanceId is preserved, so key-partitioned fan-in keeps
  // its mapping and pending retransmissions find the revived instance.
  std::vector<InstanceInfo> lost;
  for (const auto& info : gone) {
    bool relocated = false;
    if (config_.restore_from_checkpoint && op_stateful(info.op)) {
      if (const auto* entry = checkpoints_.latest(info.instance)) {
        const DeviceId target =
            pick_restore_target(graph_.op(info.op), device);
        if (target.valid()) {
          const InstanceInfo revived{info.instance, info.op, target};
          members_[target.value()].push_back(revived);
          by_op_[info.op.value()].push_back(revived);
          install_restore(*entry, target);
          relocated = true;
        }
      }
    }
    if (!relocated) lost.push_back(info);
  }
  // Broadcast removals so every upstream drops the dead instances.
  for (const auto& [member, instances] : members_) {
    for (const auto& info : lost) {
      RouteUpdateMsg update{InstanceId{}, info};
      send_msg(DeviceId{member}, MsgType::kRemoveDownstream, update);
    }
  }
}

void Master::start() {
  started_ = true;
  note_event(MasterEvent::kStart, members_.size());
  for (const auto& [member, instances] : members_) {
    send(DeviceId{member}, MsgType::kStart, Bytes{});
  }
}

void Master::stop() {
  started_ = false;
  note_event(MasterEvent::kStop, members_.size());
  for (const auto& [member, instances] : members_) {
    send(DeviceId{member}, MsgType::kStop, Bytes{});
  }
}

std::vector<InstanceInfo> Master::instances_of(OperatorId op) const {
  auto it = by_op_.find(op.value());
  return it == by_op_.end() ? std::vector<InstanceInfo>{} : it->second;
}

std::size_t Master::instance_count() const {
  std::size_t n = 0;
  for (const auto& [op, list] : by_op_) n += list.size();
  return n;
}

// --- swing-state -----------------------------------------------------------

bool Master::op_stateful(OperatorId op) const {
  auto it = stateful_cache_.find(op.value());
  if (it != stateful_cache_.end()) return it->second;
  // Probe once: construct a throwaway unit from the declaration's factory.
  // Statefulness is a property of the operator class, not of any instance.
  const auto unit = graph_.op(op).factory();
  const bool stateful = unit != nullptr && unit->stateful();
  stateful_cache_[op.value()] = stateful;
  return stateful;
}

DeviceId Master::pick_restore_target(const dataflow::OperatorDecl& op,
                                     DeviceId exclude) const {
  DeviceId best{};
  std::size_t best_load = 0;
  for (const auto& [member, instances] : members_) {
    const DeviceId candidate{member};
    if (candidate == exclude) continue;
    if (!placeable(op, candidate)) continue;
    if (!best.valid() || instances.size() < best_load) {
      best = candidate;
      best_load = instances.size();
    }
  }
  return best;  // members_ is sorted, so ties land on the lowest device id.
}

void Master::relocate_record(const InstanceInfo& info, DeviceId target) {
  auto member = members_.find(info.device.value());
  if (member != members_.end()) {
    auto& list = member->second;
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const InstanceInfo& x) {
                                return x.instance == info.instance;
                              }),
               list.end());
  }
  const InstanceInfo moved{info.instance, info.op, target};
  members_[target.value()].push_back(moved);
  for (auto& entry : by_op_[info.op.value()]) {
    if (entry.instance == info.instance) entry.device = target;
  }
}

void Master::install_restore(const state::CheckpointStore::Entry& entry,
                             DeviceId target) {
  state::RestoreMsg restore;
  restore.instance =
      InstanceInfo{entry.instance.instance, entry.instance.op, target};
  restore.epoch = entry.epoch;
  restore.sent_ns = sim_.now().nanos();
  restore.state = entry.state;
  for (OperatorId down_op : graph_.downstreams(entry.instance.op)) {
    auto it = by_op_.find(down_op.value());
    if (it == by_op_.end()) continue;
    for (const auto& down : it->second) restore.downstreams.push_back(down);
  }
  send_msg(target, MsgType::kRestore, restore);

  // Re-announce the instance at its new address. AddDownstream overwrites
  // the peer address book on hosts that already route to this InstanceId,
  // so in-flight retransmissions converge on the revived instance.
  for (OperatorId up_op : graph_.upstreams(entry.instance.op)) {
    auto it = by_op_.find(up_op.value());
    if (it == by_op_.end()) continue;
    for (const auto& up : it->second) {
      RouteUpdateMsg update{up.instance, restore.instance};
      send_msg(up.device, MsgType::kAddDownstream, update);
    }
  }
  note_event(MasterEvent::kRestore, entry.instance.instance.value());
}

void Master::handle_checkpoint(const state::CheckpointMsg& msg) {
  const bool stored = checkpoints_.store(msg);
  if (stored) {
    if (config_.registry != nullptr) {
      config_.registry->counter("checkpoints_stored").inc();
      config_.registry->histogram("checkpoint_latency_ms")
          .record((sim_.now() - SimTime{msg.taken_ns}).millis());
    }
    if (config_.tracer != nullptr) {
      config_.tracer->span(obs::TracePhase::kTransfer,
                           TupleId{msg.instance.instance.value()}, device_,
                           SimTime{msg.taken_ns},
                           sim_.now() - SimTime{msg.taken_ns});
    }
    note_event(MasterEvent::kCheckpoint, msg.instance.instance.value());
  }
  if (msg.migrate_to.valid()) complete_migration(msg);
}

void Master::complete_migration(const state::CheckpointMsg& msg) {
  const auto* entry = checkpoints_.latest(msg.instance.instance);
  if (entry == nullptr) return;  // Final snapshot lost an epoch race.
  pending_migrations_.erase(msg.instance.instance.value());

  DeviceId target = msg.migrate_to;
  if (!members_.contains(target.value()) ||
      !placeable(graph_.op(msg.instance.op), target)) {
    // The planned target left mid-handoff; fall back to any survivor so the
    // drained state is not stranded.
    target = pick_restore_target(graph_.op(msg.instance.op),
                                 msg.instance.device);
    if (!target.valid()) return;
  }
  relocate_record(msg.instance, target);
  install_restore(*entry, target);
  if (config_.registry != nullptr) {
    // Same (name, labels) key as the MetricsCollector's instrument, so this
    // lands in the swarm-wide migrations_completed counter.
    config_.registry->counter("migrations_completed").inc();
  }
}

bool Master::migrate_instance(InstanceId instance, DeviceId to) {
  if (!members_.contains(to.value())) return false;
  const InstanceInfo* found = nullptr;
  for (const auto& [member, instances] : members_) {
    for (const auto& info : instances) {
      if (info.instance == instance) found = &info;
    }
  }
  if (found == nullptr) return false;
  if (found->device == to) return false;
  if (!op_stateful(found->op)) return false;
  if (pending_migrations_.contains(instance.value())) return false;
  const auto& decl = graph_.op(found->op);
  switch (decl.placement) {
    case dataflow::Placement::kMaster:
      if (to != device_) return false;
      break;
    case dataflow::Placement::kWorkers:
      if (to == device_ && !config_.transforms_on_master) return false;
      break;
  }
  pending_migrations_[instance.value()] = to;
  note_event(MasterEvent::kMigrate, instance.value());
  send_msg(found->device, MsgType::kMigrate, state::MigrateMsg{instance, to});
  return true;
}

int Master::migrate_stateful(DeviceId from, DeviceId to) {
  auto it = members_.find(from.value());
  if (it == members_.end()) return 0;
  const std::vector<InstanceInfo> hosted = it->second;  // Copy: we mutate.
  int started = 0;
  for (const auto& info : hosted) {
    if (migrate_instance(info.instance, to)) ++started;
  }
  return started;
}

void Master::send(DeviceId to, MsgType type, Bytes payload) {
  transport_.send(device_, to, std::uint8_t(type), std::move(payload));
}

template <typename M>
void Master::send_msg(DeviceId to, MsgType type, const M& msg) {
  ByteWriter& w = arena_.begin_frame();
  msg.encode(w);
  transport_.send(device_, to, std::uint8_t(type), arena_.end_frame());
}

}  // namespace swing::runtime
