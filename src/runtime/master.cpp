#include "runtime/master.h"

#include <algorithm>

#include "common/logging.h"

namespace swing::runtime {

Master::Master(Simulator& sim, DeviceId device, net::Transport& transport,
               net::Discovery& discovery, const dataflow::AppGraph& graph,
               MasterConfig config)
    : sim_(sim),
      device_(device),
      transport_(transport),
      discovery_(discovery),
      graph_(graph),
      config_(config) {
  graph_.validate();
}

const char* master_event_name(MasterEvent kind) {
  switch (kind) {
    case MasterEvent::kAdmit:
      return "admit";
    case MasterEvent::kDeploy:
      return "deploy";
    case MasterEvent::kRemove:
      return "remove";
    case MasterEvent::kStart:
      return "start";
    case MasterEvent::kStop:
      return "stop";
  }
  return "unknown";
}

void Master::note_event(MasterEvent kind, std::uint64_t detail) {
  if (config_.ledger != nullptr) {
    config_.ledger->on_control_event(std::uint8_t(kind), detail, sim_.now());
  }
  if (config_.registry != nullptr) {
    config_.registry
        ->counter("master_events", {{"kind", master_event_name(kind)}})
        .inc();
  }
}

void Master::launch() {
  discovery_.advertise(kSwingService, device_, Bytes{});
  admit(device_);  // The master's device hosts sources and sinks.
  if (config_.member_timeout.nanos() > 0) {
    sweep_task_ = std::make_unique<PeriodicTask>(
        sim_, config_.member_timeout * 0.5, [this] { sweep_members(); });
    sweep_task_->start();
  }
}

void Master::handle_message(const net::Message& msg) {
  last_seen_[msg.src.value()] = sim_.now();
  try {
    switch (MsgType(msg.type)) {
      case MsgType::kHello:
        admit(msg.src);
        break;
      case MsgType::kHeartbeat:
        break;  // Liveness already noted above.
      case MsgType::kLeaveReport: {
        const DeviceId reported = DeviceMsg::from_bytes(msg.payload).device;
        if (config_.registry != nullptr && members_.contains(reported.value())) {
          config_.registry->counter("workers_evicted", {{"cause", "link-report"}})
              .inc();
        }
        remove_device(reported);
        break;
      }
      case MsgType::kBye:
        remove_device(msg.src);
        break;
      default:
        break;  // Worker-bound messages; the runtime routes them elsewhere.
    }
  } catch (const WireFormatError& e) {
    SWING_LOG(kWarn) << "master dropped malformed message from " << msg.src
                     << ": " << e.what();
  }
}

void Master::sweep_members() {
  std::vector<DeviceId> dead;
  for (const auto& [member, instances] : members_) {
    if (member == device_.value()) continue;  // We are always here.
    auto it = last_seen_.find(member);
    const SimTime seen = it == last_seen_.end() ? SimTime{} : it->second;
    if (sim_.now() - seen > config_.member_timeout) {
      dead.emplace_back(member);
    }
  }
  for (DeviceId id : dead) {
    SWING_LOG(kInfo) << "master: member " << id
                     << " silent past timeout; removing";
    if (config_.registry != nullptr) {
      config_.registry
          ->counter("workers_evicted", {{"cause", "heartbeat-timeout"}})
          .inc();
    }
    remove_device(id);
  }
}

bool Master::placeable(const dataflow::OperatorDecl& op,
                       DeviceId device) const {
  switch (op.placement) {
    case dataflow::Placement::kMaster:
      return device == device_;
    case dataflow::Placement::kWorkers:
      if (device == device_ && !config_.transforms_on_master) return false;
      if (op.max_replicas != 0) {
        auto it = by_op_.find(op.id.value());
        if (it != by_op_.end() && it->second.size() >= op.max_replicas) {
          return false;
        }
      }
      return true;
  }
  return false;
}

void Master::admit(DeviceId device) {
  if (members_.contains(device.value())) return;  // Duplicate Hello.
  members_[device.value()] = {};
  SWING_LOG(kInfo) << "master admits device " << device;
  note_event(MasterEvent::kAdmit, device.value());
  deploy_to(device);
  if (started_) send(device, MsgType::kStart, Bytes{});
}

void Master::deploy_to(DeviceId device) {
  DeployMsg deploy;
  std::vector<InstanceInfo> created;

  for (const auto& op : graph_.operators()) {
    if (!placeable(op, device)) continue;
    InstanceInfo info{InstanceId{next_instance_++}, op.id, device};
    created.push_back(info);

    DeployMsg::Assignment assignment;
    assignment.self = info;
    for (OperatorId down_op : graph_.downstreams(op.id)) {
      auto it = by_op_.find(down_op.value());
      if (it == by_op_.end()) continue;
      for (const auto& down : it->second) {
        assignment.downstreams.push_back(down);
      }
    }
    deploy.assignments.push_back(std::move(assignment));
  }

  if (!deploy.assignments.empty()) {
    send(device, MsgType::kDeploy, deploy.to_bytes());
    note_event(MasterEvent::kDeploy,
               device.value() << 16 | deploy.assignments.size());
  }

  // Register the new instances, then tell the hosts of upstream instances
  // about their new downstreams.
  for (const auto& info : created) {
    members_[device.value()].push_back(info);
    by_op_[info.op.value()].push_back(info);
  }
  for (const auto& info : created) {
    for (OperatorId up_op : graph_.upstreams(info.op)) {
      auto it = by_op_.find(up_op.value());
      if (it == by_op_.end()) continue;
      // Covers both pre-existing upstream instances and ones created in
      // this same Deploy batch (whose downstream lists could not include
      // their new siblings yet).
      for (const auto& up : it->second) {
        RouteUpdateMsg update{up.instance, info};
        send(up.device, MsgType::kAddDownstream, update.to_bytes());
      }
    }
  }
}

void Master::remove_device(DeviceId device) {
  auto it = members_.find(device.value());
  if (it == members_.end()) return;
  const std::vector<InstanceInfo> gone = std::move(it->second);
  members_.erase(it);
  SWING_LOG(kInfo) << "master removes device " << device << " ("
                   << gone.size() << " instances)";
  note_event(MasterEvent::kRemove, device.value());

  for (const auto& info : gone) {
    auto& list = by_op_[info.op.value()];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const InstanceInfo& x) {
                                return x.instance == info.instance;
                              }),
               list.end());
  }
  // Broadcast removals so every upstream drops the dead instances.
  for (const auto& [member, instances] : members_) {
    for (const auto& info : gone) {
      RouteUpdateMsg update{InstanceId{}, info};
      send(DeviceId{member}, MsgType::kRemoveDownstream, update.to_bytes());
    }
  }
}

void Master::start() {
  started_ = true;
  note_event(MasterEvent::kStart, members_.size());
  for (const auto& [member, instances] : members_) {
    send(DeviceId{member}, MsgType::kStart, Bytes{});
  }
}

void Master::stop() {
  started_ = false;
  note_event(MasterEvent::kStop, members_.size());
  for (const auto& [member, instances] : members_) {
    send(DeviceId{member}, MsgType::kStop, Bytes{});
  }
}

std::vector<InstanceInfo> Master::instances_of(OperatorId op) const {
  auto it = by_op_.find(op.value());
  return it == by_op_.end() ? std::vector<InstanceInfo>{} : it->second;
}

std::size_t Master::instance_count() const {
  std::size_t n = 0;
  for (const auto& [op, list] : by_op_) n += list.size();
  return n;
}

void Master::send(DeviceId to, MsgType type, Bytes payload) {
  transport_.send(device_, to, std::uint8_t(type), std::move(payload));
}

}  // namespace swing::runtime
