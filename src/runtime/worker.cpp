#include "runtime/worker.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/hot.h"
#include "common/logging.h"
#include "state/checkpoint_store.h"
#include "state/state_chain.h"

namespace swing::runtime {

// Wire plane v2 send path: encode into the worker's reusable arena, hand
// the frame view to the transport (which copies it into the in-flight
// Message before returning), and reuse the arena for the next send.
template <typename M>
bool Worker::send_frame(DeviceId dst, MsgType type, const M& msg,
                        std::size_t wire_bytes) {
  ByteWriter& w = arena_.begin_frame();
  msg.encode(w);
  return transport_.send(device_.id(), dst, std::uint8_t(type),
                         arena_.end_frame(), wire_bytes);
}

// ---------------------------------------------------------------------------
// Instance state

struct Worker::Instance {
  // Routing state for one outgoing graph edge: dataflow semantics require
  // every emitted tuple to reach EVERY downstream operator, so each edge
  // has its own swarm manager choosing among that operator's instances.
  struct Edge {
    OperatorId down_op;
    std::unique_ptr<core::SwarmManager> manager;
    std::unique_ptr<PeriodicTask> tick_task;  // Manager update loop (1 s).
  };

  InstanceInfo info;
  const dataflow::OperatorDecl* decl = nullptr;
  std::unique_ptr<dataflow::FunctionUnit> unit;
  std::vector<Edge> edges;
  // Source pacing (sources only): the next generation event, the current
  // rate (mutable via SourceSpec::rate_schedule) and whether the schedule
  // of rate changes has been armed.
  EventId source_fire_event{};
  double source_rate = 0.0;
  bool rate_schedule_armed = false;
  std::unique_ptr<ReorderBuffer> reorder;     // Sinks only.
  std::unique_ptr<InstanceContext> ctx;
  std::optional<PendingSend> blocked;  // Head-of-line blocked dispatch.
  Rng rng{0};
  std::uint64_t seq = 0;  // Source tuple sequence numbers.
  // Tuple-id namespacing for multi-source graphs: source k of n emits ids
  // seq*n + k, so ids stay unique across sources yet strictly increasing
  // per pipeline (which the reordering service relies on).
  std::uint64_t source_ordinal = 0;
  std::uint64_t source_count = 1;
  // swing-chaos dedup memory (Recovery::dedup_window): ids this instance
  // already accepted for processing, as a sliding window. Join fan-in
  // (an operator with several upstream operators, e.g. the scene-analysis
  // fusion) legitimately receives the SAME tuple id once per branch, so
  // such instances key the window by (source instance, id); duplicates
  // worth suppressing — retransmissions — repeat the source instance,
  // and id-partitioned re-routing always re-targets the same join
  // instance, so the narrower key loses nothing.
  bool dedup_by_src = false;
  std::unordered_set<std::uint64_t> dedup_seen;
  std::deque<std::uint64_t> dedup_order;

  [[nodiscard]] std::uint64_t dedup_key(std::uint64_t id,
                                        InstanceId src) const {
    return dedup_by_src ? id ^ (0x9e3779b97f4a7c15ULL * (src.value() + 1))
                        : id;
  }
  // swing-state (stateful units with checkpointing enabled): the epoch of
  // the last snapshot taken here, the ids absorbed into operator state
  // since that snapshot shipped (lost if we crash — booked kStateLost),
  // and live-migration progress. compute_pending counts this instance's
  // jobs still queued on the device so a migration knows when it drained.
  std::uint64_t checkpoint_epoch = 0;
  std::vector<std::uint64_t> uncheckpointed;
  bool migrating = false;
  DeviceId migrate_target{};
  int compute_pending = 0;
  // Checkpoint plane v2: the epoch of the last FULL snapshot (the delta
  // chain base), how many deltas shipped since it, and the dedup ids newly
  // remembered since the last shipped record (full or delta) — the delta
  // envelope's share of the dedup window. Overflow of that list forces the
  // next ship to be a full.
  std::uint64_t base_epoch = 0;
  std::size_t deltas_since_full = 0;
  std::vector<std::uint64_t> dedup_since_ship;
  bool dedup_ship_overflow = false;
  // 2PC migration (source role): the coordinator's transaction id, whether
  // the final snapshot has been transferred (PREPARE done, awaiting the
  // decision), and input buffered while quiesced — flushed to the target on
  // COMMIT, processed locally on ABORT.
  std::uint64_t migrate_txn = 0;
  bool migrate_prepared = false;
  std::deque<DataMsg> migration_buffer;

  void remember_tuple(std::uint64_t id, std::size_t window,
                      std::size_t ship_cap = 0) {
    if (!dedup_seen.insert(id).second) return;
    dedup_order.push_back(id);
    while (dedup_order.size() > window) {
      dedup_seen.erase(dedup_order.front());
      dedup_order.pop_front();
    }
    if (ship_cap > 0) {
      if (dedup_since_ship.size() >= ship_cap) {
        dedup_ship_overflow = true;
        dedup_since_ship.clear();
      } else {
        dedup_since_ship.push_back(id);
      }
    }
  }

  Edge* edge_for(OperatorId down_op) {
    for (auto& edge : edges) {
      if (edge.down_op == down_op) return &edge;
    }
    return nullptr;
  }
};

// The Context handed to user function units. Holds the in-flight tuple's
// accumulated delay breakdown so emitted tuples inherit it.
class Worker::InstanceContext final : public dataflow::Context {
 public:
  InstanceContext(Worker& worker, Instance& inst)
      : worker_(worker), inst_(inst) {}

  void emit(dataflow::Tuple tuple) override {
    if (tuple.id() == current_input_) {
      forwarded_input_ = true;
    } else if (worker_.config_.ledger != nullptr) {
      // The unit minted a new logical stream id (e.g. the gesture windower
      // numbers windows independently of sample ids): open it in the audit
      // ledger so its downstream delivery is not a ghost.
      worker_.config_.ledger->on_reemitted(tuple.id(), worker_.sim_.now());
    }
    worker_.route_and_send(inst_, tuple, accumulated_);
  }

  SimTime now() const override { return worker_.sim_.now(); }
  DeviceId device() const override { return worker_.device_.id(); }
  InstanceId instance() const override { return inst_.info.instance; }
  Rng& rng() override { return inst_.rng; }

  void set_accumulated(const DelayBreakdown& acc) { accumulated_ = acc; }

  // Called before each process() with the in-flight input's id; afterwards
  // forwarded_input() tells whether the unit re-emitted that id (tuple
  // continues downstream) or absorbed it (windowing/filtering — the audit
  // ledger records it consumed).
  void begin_process(TupleId input) {
    current_input_ = input;
    forwarded_input_ = false;
  }
  [[nodiscard]] bool forwarded_input() const { return forwarded_input_; }

 private:
  Worker& worker_;
  Instance& inst_;
  DelayBreakdown accumulated_{};
  TupleId current_input_{};
  bool forwarded_input_ = false;
};

// ---------------------------------------------------------------------------

Worker::Worker(Simulator& sim, device::Device& device,
               net::Transport& transport, const dataflow::AppGraph& graph,
               WorkerConfig config, Rng rng, MetricsCollector& metrics)
    : sim_(sim),
      device_(device),
      transport_(transport),
      graph_(graph),
      config_(config),
      rng_(rng),
      metrics_(metrics) {}

Worker::~Worker() = default;

void Worker::connect_to_master(DeviceId master_device) {
  master_device_ = master_device;
  transport_.send(device_.id(), master_device,
                  std::uint8_t(MsgType::kHello), Bytes{});
  // Keep the master convinced we exist even when no data flows our way.
  if (config_.heartbeat_period.nanos() > 0 &&
      master_device != device_.id() && heartbeat_task_ == nullptr) {
    heartbeat_task_ = std::make_unique<PeriodicTask>(
        sim_, config_.heartbeat_period, [this] {
          if (frozen_) return;  // A frozen app misses its beacons.
          transport_.send(device_.id(), master_device_,
                          std::uint8_t(MsgType::kHeartbeat), Bytes{});
        });
    heartbeat_task_->start();
  }
  // swing-shard: report cell progress on the heartbeat cadence. Unlike the
  // heartbeat this also runs when co-located with the master — the master's
  // own sources mint the frame watermark the gateway needs most.
  ensure_report_task();
}

SWING_COLD void Worker::ensure_report_task() {
  if (!config_.cells_enabled || config_.heartbeat_period.nanos() <= 0 ||
      report_task_ != nullptr) {
    return;
  }
  report_task_ = std::make_unique<PeriodicTask>(
      sim_, config_.heartbeat_period, [this] {
        if (!frozen_) send_cell_report();
      });
  report_task_->start();
}

void Worker::handle_message(const net::Message& msg) {
  if (!alive_) return;
  if (frozen_) {
    // Frozen app: the socket keeps accepting until its buffer fills, then
    // the wire's loss (and the upstreams' retransmission) takes over.
    if (frozen_inbox_.size() < config_.pending_data_cap) {
      frozen_inbox_.push_back(msg);
    } else if (MsgType(msg.type) == MsgType::kData) {
      try {
        ByteReader r{msg.payload};
        const DataMsg data = DataMsg::decode(r);
        if (const TupleId id = data.tuple.id(); id.valid()) {
          metrics_.on_drop(core::DropReason::kPendingOverflow);
          if (config_.ledger != nullptr) {
            config_.ledger->on_dropped(id,
                                       core::DropReason::kPendingOverflow);
          }
        }
      } catch (const WireFormatError&) {
        ++malformed_messages_;
      }
    }
    return;
  }
  try {
    dispatch_message(msg);
  } catch (const WireFormatError& e) {
    // A malformed payload (bit rot, version skew, hostile peer) must not
    // take the worker down; drop it like a bad packet.
    ++malformed_messages_;
    SWING_LOG(kWarn) << "device " << device_.id()
                     << " dropped malformed message from " << msg.src << ": "
                     << e.what();
  }
}

SWING_HOT void Worker::dispatch_message(const net::Message& msg) {
  // One non-owning view over the received frame; each case decodes in
  // place. Data messages carry their tuple decoded from here on — no
  // consumer re-decodes a private copy.
  ByteReader r{msg.payload};
  switch (MsgType(msg.type)) {
    case MsgType::kDeploy: {
      const DeployMsg deploy = DeployMsg::decode(r);
      master_device_ = msg.src;
      for (const auto& assignment : deploy.assignments) activate(assignment);
      break;
    }
    case MsgType::kAddDownstream:
      add_downstream(RouteUpdateMsg::decode(r));
      break;
    case MsgType::kRemoveDownstream: {
      const auto update = RouteUpdateMsg::decode(r);
      remove_downstream_instance(update.downstream.instance, update.upstream);
      break;
    }
    case MsgType::kStart:
      start_sources();
      break;
    case MsgType::kStop:
      stop_sources();
      break;
    case MsgType::kData:
      handle_data(DataMsg::decode(r));
      break;
    case MsgType::kDataBatch:
    case MsgType::kAckBatch:
      handle_data_batch(msg);
      break;
    case MsgType::kAck:
      handle_ack(AckMsg::decode(r));
      break;
    case MsgType::kRestore:
      handle_restore(state::RestoreMsg::decode(r));
      break;
    case MsgType::kMigratePrepare:
      handle_migrate_prepare(state::MigratePrepareMsg::decode(r));
      break;
    case MsgType::kMigrateState:
      handle_migrate_state(state::MigrateStateMsg::decode(r));
      break;
    case MsgType::kMigrateCommit:
      handle_migrate_commit(state::MigrateCommitMsg::decode(r));
      break;
    case MsgType::kMigrateAbort:
      handle_migrate_abort(state::MigrateAbortMsg::decode(r));
      break;
    case MsgType::kReplicate:
      handle_replicate(state::ReplicateMsg::decode(r));
      break;
    case MsgType::kReplicaRestore:
      handle_replica_restore(state::ReplicaRestoreMsg::decode(r));
      break;
    case MsgType::kCellAssign:
      handle_cell_assign(msg.src, shard::CellAssignMsg::decode(r));
      break;
    case MsgType::kEpochRouteUpdate:
      handle_epoch_route(shard::EpochRouteUpdateMsg::decode(r));
      break;
    // Master-bound messages; ignore. Enumerated (no default) so -Wswitch
    // forces a routing decision when a message kind is added.
    case MsgType::kHello:
    case MsgType::kHeartbeat:
    case MsgType::kLeaveReport:
    case MsgType::kBye:
    case MsgType::kCheckpoint:
    case MsgType::kDelta:
    case MsgType::kMigrateAck:
    case MsgType::kGatewayHello:
    case MsgType::kCellReport:
      break;
  }
}

SWING_COLD void Worker::activate(const DeployMsg::Assignment& assignment,
                      const state::RestoreMsg* restore) {
  if (instances_.contains(assignment.self.instance.value())) return;

  auto inst = std::make_unique<Instance>();
  inst->info = assignment.self;
  inst->decl = &graph_.op(assignment.self.op);
  inst->rng = rng_.fork();
  inst->dedup_by_src = graph_.upstreams(assignment.self.op).size() > 1;
  if (inst->decl->factory) inst->unit = inst->decl->factory();

  // One swarm manager per outgoing graph edge.
  for (OperatorId down_op : graph_.downstreams(inst->decl->id)) {
    Instance::Edge edge;
    edge.down_op = down_op;
    edge.manager =
        std::make_unique<core::SwarmManager>(config_.manager, rng_.fork());
    edge.tick_task = std::make_unique<PeriodicTask>(
        sim_, config_.manager.update_period,
        [this, m = edge.manager.get()] { m->tick(sim_.now()); });
    edge.tick_task->start();
    inst->edges.push_back(std::move(edge));
  }
  for (const auto& down : assignment.downstreams) {
    peers_[down.instance.value()] = down;
    if (Instance::Edge* edge = inst->edge_for(down.op)) {
      edge->manager->add_downstream(down.instance);
    }
  }
  if (config_.cells_enabled) {
    // Epoch routing: the deploy-time downstream set is the epoch-0 baseline;
    // every later change arrives as an EpochRouteUpdate with a boundary.
    for (auto& edge : inst->edges) edge.manager->seed_route_epoch();
  }

  Instance& ref = *inst;
  inst->ctx = std::make_unique<InstanceContext>(*this, ref);

  if (inst->decl->kind == dataflow::OperatorKind::kSource) {
    const auto& spec = *inst->decl->source;
    const auto sources = graph_.sources();
    inst->source_count = sources.size();
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (sources[i] == inst->decl->id) inst->source_ordinal = i;
    }
    inst->source_rate = spec.rate_per_s;
    if (running_) start_source(ref);
  }

  if (inst->decl->kind == dataflow::OperatorKind::kSink &&
      config_.enable_reorder) {
    double rate = 24.0;
    if (const auto srcs = graph_.sources(); !srcs.empty()) {
      rate = graph_.op(srcs.front()).source->rate_per_s;
    }
    inst->reorder = std::make_unique<ReorderBuffer>(
        ReorderBuffer::capacity_for(rate, config_.reorder_span),
        [this, sink = assignment.self.instance](const dataflow::Tuple& t,
                                                SimTime played) {
          metrics_.on_play(t.id(), played);
          if (config_.ledger != nullptr) {
            config_.ledger->on_played(sink, t.id(), played);
          }
          if (config_.tracer != nullptr && config_.tracer->sampled(t.id())) {
            config_.tracer->instant(obs::TracePhase::kRelease, t.id(),
                                    device_.id(), played);
            config_.tracer->instant(obs::TracePhase::kDisplay, t.id(),
                                    device_.id(), played);
          }
        },
        [this](const dataflow::Tuple& t) {
          if (config_.ledger != nullptr) {
            config_.ledger->on_dropped(t.id(),
                                       core::DropReason::kLateReorder);
          }
        },
        [this](const dataflow::Tuple& t) {
          // A retransmitted duplicate raced its original past the reorder
          // release point: harmless, the frame already played.
          metrics_.on_dedup();
          if (config_.ledger != nullptr) {
            config_.ledger->on_deduplicated(t.id(), sim_.now());
          }
        });
  }

  if (inst->unit) inst->unit->on_deploy(*inst->ctx);

  // swing-state: apply a restored snapshot between on_deploy and the
  // pending-data replay below, so buffered/retransmitted tuples meet the
  // revived operator state (and its dedup memory) instead of a blank unit.
  // A malformed envelope throws WireFormatError, aborting the activation —
  // handle_message counts it and the master's next sweep can retry.
  if (restore != nullptr && inst->unit) {
    ByteReader r{restore->state};
    const auto n = r.read_varint();
    check_wire_count(n, r, 8, "restored dedup id");
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t seen = r.read_u64();
      if (config_.recovery.dedup_window > 0) {
        ref.remember_tuple(seen, config_.recovery.dedup_window);
      }
    }
    inst->unit->restore_state(r);
    inst->checkpoint_epoch = restore->epoch;
    metrics_.on_checkpoint_restored(
        (sim_.now() - SimTime{restore->sent_ns}).millis());
    if (config_.tracer != nullptr) {
      config_.tracer->instant(obs::TracePhase::kRestoreState,
                              TupleId{inst->info.instance.value()},
                              device_.id(), sim_.now());
    }
    SWING_LOG(kInfo) << "device " << device_.id() << " restored "
                     << inst->decl->name << " instance "
                     << inst->info.instance << " at epoch "
                     << restore->epoch;
  }

  if (config_.checkpoint.enabled && inst->unit && inst->unit->stateful()) {
    ensure_checkpoint_task();
  }

  SWING_LOG(kInfo) << "device " << device_.id() << " activated "
                   << inst->decl->name << " as instance "
                   << inst->info.instance;

  const std::uint64_t key = assignment.self.instance.value();
  instances_[key] = std::move(inst);

  // Replay tuples that arrived before the deploy.
  if (auto it = pending_data_.find(key); it != pending_data_.end()) {
    auto queued = std::move(it->second);
    pending_data_.erase(it);
    for (auto& data : queued) process_data(*instances_[key], std::move(data));
  }
}

Worker::Instance* Worker::find_instance(InstanceId id) {
  auto it = instances_.find(id.value());
  return it == instances_.end() ? nullptr : it->second.get();
}

SWING_HOT void Worker::handle_data(DataMsg data) {
  // Transmission component of this hop, measured receiver-side against the
  // upstream's send timestamp (clocks are common in simulation; the real
  // system piggybacks on the ACK echo instead).
  data.accumulated.transmission_ms +=
      (sim_.now() - SimTime{data.sent_ns}).millis();

  if (config_.tracer != nullptr) {
    if (const TupleId id = data.tuple.id();
        config_.tracer->sampled(id)) {
      // Wire hop: send timestamp to receipt, on the receiving track.
      const SimTime sent{data.sent_ns};
      config_.tracer->span(obs::TracePhase::kTx, id, device_.id(), sent,
                           sim_.now() - sent);
    }
  }

  Instance* inst = find_instance(data.dst_instance);
  if (inst == nullptr) {
    // A migrated-away instance: relay to its new host (upstream routing
    // tables lag the handoff by one AddDownstream round-trip).
    if (auto fwd = forwards_.find(data.dst_instance.value());
        fwd != forwards_.end()) {
      forward_data(std::move(data), fwd->second);
      return;
    }
    auto& queue = pending_data_[data.dst_instance.value()];
    if (queue.size() < config_.pending_data_cap) {
      queue.push_back(std::move(data));
    } else if (config_.ledger != nullptr) {
      if (const TupleId id = data.tuple.id(); id.valid()) {
        config_.ledger->on_dropped(id, core::DropReason::kPendingOverflow);
      }
    }
    return;
  }
  process_data(*inst, std::move(data));
}

SWING_HOT void Worker::process_data(Instance& inst, DataMsg data) {
  // A quiescing (2PC PREPARE) instance accepts nothing new: arrivals buffer
  // HERE, not at the target, because until the coordinator decides, an
  // ABORT must be able to resume processing in place. COMMIT flushes the
  // buffer to the new host; ABORT replays it locally.
  if (inst.migrating) {
    if (inst.migration_buffer.size() < config_.pending_data_cap) {
      inst.migration_buffer.push_back(std::move(data));
    } else {
      drop_queued(data.tuple.id(), core::DropReason::kPendingOverflow);
    }
    return;
  }

  // Duplicate suppression (swing-chaos): an id this instance already
  // accepted is discarded before it pollutes the rate meter or burns CPU —
  // but it is re-ACKed first, because the likeliest reason a duplicate
  // exists is that the wire ate the original's ACK.
  if (config_.recovery.dedup_window > 0) {
    if (const TupleId id = data.tuple.id();
        id.valid() && inst.dedup_seen.contains(
                          inst.dedup_key(id.value(), data.src_instance))) {
      AckMsg ack;
      ack.from_instance = inst.info.instance;
      ack.to_instance = data.src_instance;
      ack.tuple = id;
      ack.echoed_sent_ns = data.sent_ns;
      ack.processing_ms = 0.0;
      ack.battery_fraction = device_.battery_fraction(sim_.now());
      if (config_.batching.enabled && data.src_device != device_.id()) {
        enqueue_batched_ack(data.src_device, ack);
      } else {
        send_frame(data.src_device, MsgType::kAck, ack);
      }
      metrics_.on_dedup();
      if (config_.ledger != nullptr) {
        config_.ledger->on_deduplicated(id, sim_.now());
      }
      return;
    }
  }

  for (auto& edge : inst.edges) edge.manager->on_tuple_in(sim_.now());

  // Bounded input buffer: shedding load here is what the real system's
  // stalled socket reader amounts to in steady state.
  if (inst.decl->kind == dataflow::OperatorKind::kTransform &&
      device_.backlog() >= config_.compute_backlog_cap) {
    metrics_.on_drop(core::DropReason::kComputeBacklog);
    if (config_.ledger != nullptr) {
      if (const TupleId id = data.tuple.id(); id.valid()) {
        config_.ledger->on_dropped(id, core::DropReason::kComputeBacklog);
      }
    }
    return;
  }

  // The tuple arrived decoded (DataMsg::decode); take ownership of it. The
  // envelope fields stay behind in `data` for the ACK below.
  dataflow::Tuple tuple = std::move(data.tuple);

  // Staleness shedding: results for old frames are worthless in a
  // real-time app — drop before burning CPU on them.
  if (config_.tuple_ttl.nanos() > 0 &&
      inst.decl->kind == dataflow::OperatorKind::kTransform &&
      sim_.now() - tuple.source_time() > config_.tuple_ttl) {
    metrics_.on_drop(core::DropReason::kStaleTtl);
    if (config_.ledger != nullptr) {
      config_.ledger->on_dropped(tuple.id(), core::DropReason::kStaleTtl);
    }
    return;
  }

  const double cost_ms =
      (inst.decl->cost ? inst.decl->cost(tuple) : 0.0) * slowdown_;

  // A second staleness check runs as the job reaches the CPU: most of a
  // stale tuple's age accrues while it waits in the compute queue.
  std::function<bool()> admit;
  if (config_.tuple_ttl.nanos() > 0 &&
      inst.decl->kind == dataflow::OperatorKind::kTransform) {
    admit = [this, &inst, id = tuple.id(),
             source_time = tuple.source_time()] {
      if (sim_.now() - source_time > config_.tuple_ttl) {
        note_compute_done(id);
        metrics_.on_drop(core::DropReason::kStaleTtl);
        if (config_.ledger != nullptr) {
          config_.ledger->on_dropped(id, core::DropReason::kStaleTtl);
        }
        // Last action: a drained PREPARE transfers state right here.
        if (--inst.compute_pending <= 0 && inst.migrating) {
          on_migration_drained(inst);
        }
        return false;
      }
      return true;
    };
  }

  // From here the tuple is committed to processing: remember it for dedup
  // (a copy arriving later is redundant, not lost data) and track it in
  // the compute queue so a crash can attribute it.
  if (config_.recovery.dedup_window > 0) {
    const std::size_t ship_cap =
        config_.checkpoint.enabled && config_.checkpoint.deltas_per_full > 0
            ? config_.checkpoint.max_uncheckpointed
            : 0;
    inst.remember_tuple(
        inst.dedup_key(tuple.id().value(), data.src_instance),
        config_.recovery.dedup_window, ship_cap);
  }
  ++compute_queue_[tuple.id().value()];
  ++inst.compute_pending;

  device_.execute(
      cost_ms,
      [this, &inst, data = std::move(data),
       tuple = std::move(tuple)](const device::JobTiming& timing) {
        note_compute_done(tuple.id());
        --inst.compute_pending;
        if (!alive_) return;
        ++processed_;
        DelayBreakdown acc = data.accumulated;
        acc.queuing_ms += timing.queuing().millis();
        acc.processing_ms += timing.processing().millis();

        if (config_.tracer != nullptr &&
            config_.tracer->sampled(tuple.id())) {
          // The job finished now; reconstruct queue-wait and execution
          // spans from the timing the device reported.
          const SimTime done = sim_.now();
          config_.tracer->span(obs::TracePhase::kQueue, tuple.id(),
                               device_.id(),
                               done - timing.processing() - timing.queuing(),
                               timing.queuing());
          config_.tracer->span(obs::TracePhase::kProcess, tuple.id(),
                               device_.id(), done - timing.processing(),
                               timing.processing());
        }

        // ACK after processing (paper §V-B): echo the send timestamp and
        // report the measured processing time. Addressed to the sending
        // device (the socket peer); loopback covers co-located upstreams.
        AckMsg ack;
        ack.from_instance = inst.info.instance;
        ack.to_instance = data.src_instance;
        ack.tuple = tuple.id();
        ack.echoed_sent_ns = data.sent_ns;
        ack.processing_ms = timing.processing().millis();
        ack.battery_fraction = device_.battery_fraction(sim_.now());
        if (config_.batching.enabled && data.src_device != device_.id()) {
          enqueue_batched_ack(data.src_device, ack);
        } else {
          send_frame(data.src_device, MsgType::kAck, ack);
        }

        if (inst.decl->kind == dataflow::OperatorKind::kSink) {
          deliver_to_sink(inst, tuple, acc);
        } else if (inst.unit) {
          inst.ctx->set_accumulated(acc);
          inst.ctx->begin_process(tuple.id());
          inst.unit->process(tuple, *inst.ctx);
          if (config_.ledger != nullptr && !inst.ctx->forwarded_input()) {
            // The unit absorbed the input (buffered into a window, filtered
            // it out, or joined it into a sibling's id): a legal terminal.
            config_.ledger->on_consumed(tuple.id());
          }
          // swing-state: an absorbed tuple lives on only inside the unit's
          // state. Until the next snapshot ships, a crash here loses it —
          // remember the id so crash() can book it as kStateLost.
          if (config_.checkpoint.enabled && inst.unit->stateful() &&
              !inst.ctx->forwarded_input() &&
              inst.uncheckpointed.size() <
                  config_.checkpoint.max_uncheckpointed) {
            inst.uncheckpointed.push_back(tuple.id().value());
          }
        } else if (config_.ledger != nullptr) {
          // A transform declared without a unit is a black hole.
          config_.ledger->on_consumed(tuple.id());
        }
        // Last action: a drained PREPARE transfers state here (the instance
        // itself stays alive until the coordinator's COMMIT).
        if (inst.migrating && inst.compute_pending <= 0) {
          on_migration_drained(inst);
        }
      },
      std::move(admit));
}

void Worker::deliver_to_sink(Instance& inst, const dataflow::Tuple& tuple,
                             const DelayBreakdown& accumulated) {
  metrics_.on_sink_arrival(tuple, accumulated, sim_.now());
  if (config_.ledger != nullptr) {
    config_.ledger->on_delivered(tuple.id(), sim_.now());
  }
  if (inst.reorder) {
    inst.reorder->push(tuple, sim_.now());
  } else {
    // No reordering service: playback follows arrival order by design, so
    // the ledger's monotonicity check (on_played) does not apply here.
    metrics_.on_play(tuple.id(), sim_.now());
    if (config_.tracer != nullptr && config_.tracer->sampled(tuple.id())) {
      config_.tracer->instant(obs::TracePhase::kDisplay, tuple.id(),
                              device_.id(), sim_.now());
    }
  }
  if (inst.unit) {
    inst.ctx->set_accumulated(accumulated);
    inst.ctx->begin_process(tuple.id());
    inst.unit->process(tuple, *inst.ctx);
  }
}

SWING_HOT void Worker::handle_ack(const AckMsg& ack) {
  Instance* inst = find_instance(ack.to_instance);
  if (inst == nullptr) return;
  if (config_.recovery.retransmit) resolve_outstanding(*inst, ack);
  if (config_.tracer != nullptr && config_.tracer->sampled(ack.tuple)) {
    config_.tracer->instant(obs::TracePhase::kAck, ack.tuple, device_.id(),
                            sim_.now());
  }
  const double latency_ms =
      (sim_.now() - SimTime{ack.echoed_sent_ns}).millis();
  for (auto& edge : inst->edges) {
    if (edge.manager->estimator().tracks(ack.from_instance)) {
      if (config_.ledger != nullptr) {
        config_.ledger->on_latency_sample(latency_ms);
      }
      edge.manager->record_ack(ack.from_instance, latency_ms,
                               ack.processing_ms, sim_.now(),
                               ack.battery_fraction);
      return;
    }
  }
}

void Worker::add_downstream(const RouteUpdateMsg& update) {
  peers_[update.downstream.instance.value()] = update.downstream;
  Instance* inst = find_instance(update.upstream);
  if (inst != nullptr) {
    if (Instance::Edge* edge = inst->edge_for(update.downstream.op)) {
      edge->manager->add_downstream(update.downstream.instance);
    }
  }
}

void Worker::remove_downstream_instance(InstanceId down, InstanceId upstream) {
  if (upstream.valid()) {
    if (Instance* inst = find_instance(upstream)) {
      for (auto& edge : inst->edges) edge.manager->remove_downstream(down);
    }
  } else {
    for (auto& [id, inst] : instances_) {
      for (auto& edge : inst->edges) edge.manager->remove_downstream(down);
    }
  }
  peers_.erase(down.value());
}

// ---------------------------------------------------------------------------
// swing-shard cell mode (DESIGN.md §12)

void Worker::handle_cell_assign(DeviceId src, const shard::CellAssignMsg& msg) {
  if (!config_.cells_enabled || msg.device != device_.id()) return;
  if (!master_device_.valid()) master_device_ = src;
  // The master-co-located worker learns the master from Deploy, never via
  // connect_to_master — start the report cadence here or its source
  // watermark would never reach the gateway (boundaries would mint at 0).
  ensure_report_task();
  cell_ = msg.cell;
  cell_master_ = msg.cell_master;
  if (msg.epoch > cell_epoch_) cell_epoch_ = msg.epoch;
  if (msg.cell_master == device_.id() && master_device_.valid()) {
    // This device holds the cell-master role: confirm to the gateway.
    send_frame(master_device_, MsgType::kGatewayHello,
               shard::GatewayHelloMsg{msg.cell, device_.id(), msg.epoch});
  }
  // Report immediately so the gateway has a watermark (and this member's
  // applied seq) before its next routing change, not a heartbeat later.
  send_cell_report();
}

void Worker::handle_epoch_route(const shard::EpochRouteUpdateMsg& msg) {
  if (msg.seq == 0) {
    apply_epoch_route(msg);  // Unsequenced (unit tests / manual injection).
    return;
  }
  if (msg.seq < route_seq_expected_) {
    count_stale_epoch();  // Re-delivery of an already-applied update.
    return;
  }
  if (msg.seq > route_seq_expected_) {
    // A gap: an earlier update is lost or late. Stash and wait for the
    // master's anti-entropy re-send (triggered by our next CellReport).
    if (route_seq_stash_.size() < kRouteStashCap) {
      route_seq_stash_.emplace(msg.seq, msg);
    }
    return;
  }
  apply_epoch_route(msg);
  ++route_seq_expected_;
  // Drain any stashed successors that are now contiguous.
  while (true) {
    const auto it = route_seq_stash_.find(route_seq_expected_);
    if (it == route_seq_stash_.end()) break;
    apply_epoch_route(it->second);
    route_seq_stash_.erase(it);
    ++route_seq_expected_;
  }
}

void Worker::apply_epoch_route(const shard::EpochRouteUpdateMsg& msg) {
  const bool add = msg.op == shard::EpochRouteUpdateMsg::Op::kAdd;
  const InstanceInfo& down = msg.route.downstream;
  if (msg.epoch > cell_epoch_) cell_epoch_ = msg.epoch;
  if (add) peers_[down.instance.value()] = down;
  bool stale = false;
  if (msg.route.upstream.valid()) {
    if (Instance* inst = find_instance(msg.route.upstream)) {
      if (Instance::Edge* edge = inst->edge_for(down.op)) {
        stale = !edge->manager->apply_route_epoch(
            msg.epoch, msg.boundary_frame, down.instance, add);
      }
    }
  } else {
    // Broadcast form (instance removal): every local edge toward the
    // operator applies the change, same epoch per edge.
    for (auto& [id, inst] : instances_) {
      if (Instance::Edge* edge = inst->edge_for(down.op)) {
        if (!edge->manager->apply_route_epoch(msg.epoch, msg.boundary_frame,
                                              down.instance, add)) {
          stale = true;
        }
      }
    }
  }
  if (!add) peers_.erase(down.instance.value());
  if (stale) count_stale_epoch();
}

void Worker::send_cell_report() {
  if (!config_.cells_enabled || !alive_ || !cell_.valid() ||
      !master_device_.valid()) {
    return;
  }
  shard::CellReportMsg report;
  report.cell = cell_;
  report.device = device_.id();
  report.watermark = source_watermark_;
  report.applied_seq = route_seq_expected_ - 1;
  report.epoch = cell_epoch_;
  send_frame(master_device_, MsgType::kCellReport, report);
}

void Worker::count_stale_epoch() {
  // Registered lazily so default-mode registry snapshots stay byte-identical
  // to the pre-shard control plane.
  if (stale_epoch_counter_ == nullptr) {
    stale_epoch_counter_ = &metrics_.registry().counter("stale_epoch_rejected");
  }
  stale_epoch_counter_->inc();
}

void Worker::on_link_down(DeviceId peer) {
  if (!alive_ || peer == device_.id()) return;
  // Remove every known instance on the dead device from local routing
  // tables and tell the master (paper §IV-C: the upstream removes the
  // downstream and re-routes immediately).
  std::vector<InstanceId> gone;
  for (const auto& [id, info] : peers_) {
    if (info.device == peer) gone.push_back(info.instance);
  }
  if (gone.empty()) return;
  SWING_LOG(kInfo) << "device " << device_.id() << " lost link to " << peer
                   << "; removing " << gone.size() << " downstream(s)";
  for (InstanceId id : gone) {
    remove_downstream_instance(id, InstanceId{});
  }
  if (master_device_.valid() && peer != master_device_) {
    send_frame(master_device_, MsgType::kLeaveReport, DeviceMsg{peer});
  }
}

void Worker::start_sources() {
  running_ = true;
  for (auto& [id, inst] : instances_) {
    if (inst->decl->kind == dataflow::OperatorKind::kSource) {
      start_source(*inst);
    }
  }
}

void Worker::stop_sources() {
  running_ = false;
  for (auto& [id, inst] : instances_) {
    sim_.cancel(inst->source_fire_event);
  }
}

void Worker::start_source(Instance& inst) {
  // Arm the declared rate changes once, relative to the first start.
  if (!inst.rate_schedule_armed) {
    inst.rate_schedule_armed = true;
    for (const auto& change : inst.decl->source->rate_schedule) {
      sim_.schedule_after(change.after, [&inst, rate = change.rate_per_s] {
        inst.source_rate = rate;
      });
    }
  }
  arm_source(inst);
}

void Worker::arm_source(Instance& inst) {
  if (!running_ || !alive_ || inst.source_rate <= 0.0) return;
  const double mean_gap_s = 1.0 / inst.source_rate;
  const double gap_s = inst.decl->source->poisson
                           ? inst.rng.exponential(mean_gap_s)
                           : mean_gap_s;
  inst.source_fire_event =
      sim_.schedule_after(seconds(gap_s), [this, &inst] {
        source_fire(inst);
      });
}

void Worker::source_fire(Instance& inst) {
  if (!running_ || !alive_) return;
  const auto& spec = *inst.decl->source;
  if (spec.max_tuples != 0 && inst.seq >= spec.max_tuples) {
    return;  // Stream finished; do not re-arm.
  }
  if (frozen_) {
    // A frozen app's camera pipeline is frozen too: nothing is sensed,
    // nothing is lost. The clock keeps ticking for the thaw.
    arm_source(inst);
    return;
  }
  arm_source(inst);
  if (inst.blocked) {
    // Dispatch is head-of-line blocked on a congested connection; the
    // camera overruns and this frame is lost.
    metrics_.on_drop(core::DropReason::kSourceOverrun);
    return;
  }
  const TupleId id{inst.seq++ * inst.source_count + inst.source_ordinal};
  if (config_.cells_enabled && id.value() + 1 > source_watermark_) {
    source_watermark_ = id.value() + 1;  // Feeds the gateway route boundary.
  }
  dataflow::Tuple tuple = spec.generate(id, sim_.now(), inst.rng);
  tuple.set_id(id);
  tuple.set_source_time(sim_.now());
  // Audit: the tuple exists from here on; the blocked-overrun drop above
  // never allocated an id and is a camera-side non-event to the ledger.
  if (config_.ledger != nullptr) config_.ledger->on_emitted(id, sim_.now());
  if (config_.tracer != nullptr && config_.tracer->sampled(id)) {
    config_.tracer->instant(obs::TracePhase::kEmit, id, device_.id(),
                            sim_.now());
  }
  for (auto& edge : inst.edges) edge.manager->on_tuple_in(sim_.now());
  route_and_send(inst, tuple, DelayBreakdown{});
}

SWING_HOT void Worker::route_and_send(Instance& from,
                                      const dataflow::Tuple& tuple,
                                      const DelayBreakdown& accumulated) {
  // Dataflow semantics: the tuple goes to every downstream *operator*; the
  // swarm manager of each edge picks which *instance* serves this tuple.
  for (std::size_t i = 0; i < from.edges.size(); ++i) {
    send_on_edge(from, i, tuple, accumulated);
  }
}

void Worker::send_on_edge(Instance& from, std::size_t edge_index,
                          const dataflow::Tuple& tuple,
                          const DelayBreakdown& accumulated) {
  Instance::Edge& edge = from.edges[edge_index];
  const bool is_source =
      from.decl->kind == dataflow::OperatorKind::kSource;

  // Graceful degradation (swing-chaos): with no routable downstream the
  // tuple runs on this device instead of being dropped.
  auto fall_back_locally = [&] {
    DataMsg local;
    local.src_instance = from.info.instance;
    local.src_device = device_.id();
    local.sent_ns = sim_.now().nanos();
    local.accumulated = accumulated;
    local.tuple_wire_size = tuple.wire_size();
    local.tuple = tuple;
    execute_locally(from, edge_index, std::move(local));
  };

  InstanceId target;
  bool probe = false;
  if (graph_.op(edge.down_op).partition_by_id) {
    // Key-partitioned edge: tuple id decides the instance, identically at
    // every upstream, so stateful fan-in sees all of a frame's pieces. In
    // cell mode the set is epoch-pinned to the frame id — a mid-run join
    // only changes the partitioning from its boundary frame onward, so two
    // upstream hosts that learned of the join at different times still
    // agree on every frame (the stranded-frame fix; DESIGN.md §12).
    const std::vector<InstanceId>* epoch_downs =
        edge.manager->downstreams_at(tuple.id().value());
    const auto& downs =
        epoch_downs != nullptr ? *epoch_downs : edge.manager->downstreams();
    if (downs.empty()) {
      if (config_.recovery.local_fallback) {
        fall_back_locally();
        return;
      }
      metrics_.on_drop(core::DropReason::kNoDownstream);
      if (config_.ledger != nullptr) {
        config_.ledger->on_dropped(tuple.id(),
                                   core::DropReason::kNoDownstream);
      }
      return;
    }
    target = downs[tuple.id().value() % downs.size()];
  } else {
    const auto choice = edge.manager->route(sim_.now());
    if (!choice) {
      if (config_.recovery.local_fallback) {
        fall_back_locally();
        return;
      }
      metrics_.on_drop(core::DropReason::kNoDownstream);
      if (config_.ledger != nullptr) {
        config_.ledger->on_dropped(tuple.id(),
                                   core::DropReason::kNoDownstream);
      }
      return;
    }
    target = choice->id;
    probe = choice->probe;

    // The decision can lag the failure detector between ticks (and falls
    // back to suspects when nothing else is left). Steer regular picks
    // away; probes go through — they are the heal path.
    if (!probe && edge.manager->suspected(target)) {
      if (const auto alt = edge.manager->route_avoiding(sim_.now(), target)) {
        target = *alt;
      } else if (config_.recovery.local_fallback) {
        fall_back_locally();
        return;
      }
    }
  }

  auto congested = [&](InstanceId id) {
    auto it = peers_.find(id.value());
    return it != peers_.end() &&
           !transport_.can_send(device_.id(), it->second.device, 0,
                                tuple.wire_size() + DataMsg::kEnvelopeBytes);
  };
  // Probes are opportunistic: never block the dispatch loop on a congested
  // probe target — route the tuple through the normal decision instead.
  if (probe && congested(target)) {
    const auto fallback = edge.manager->route_selected(sim_.now());
    if (fallback) target = *fallback;
  }

  auto peer = peers_.find(target.value());
  if (peer == peers_.end()) {
    metrics_.on_drop(core::DropReason::kSendFailed);
    if (config_.ledger != nullptr) {
      config_.ledger->on_dropped(tuple.id(), core::DropReason::kSendFailed);
    }
    return;
  }
  if (config_.tracer != nullptr && config_.tracer->sampled(tuple.id())) {
    // The routing decision, stamped on the sending device's track.
    config_.tracer->instant(obs::TracePhase::kRoute, tuple.id(),
                            device_.id(), sim_.now());
  }

  PendingSend send;
  send.data.src_instance = from.info.instance;
  send.data.src_device = device_.id();
  send.data.dst_instance = target;
  send.data.accumulated = accumulated;
  send.data.tuple_wire_size = tuple.wire_size();
  send.data.tuple = tuple;
  send.dst_device = peer->second.device;
  send.tuple_id = tuple.id();
  send.wire = send.data.tuple_wire_size + DataMsg::kEnvelopeBytes;
  send.from_source = is_source;
  send.edge_index = edge_index;

  if (!transport_.can_send(device_.id(), send.dst_device, 0, send.wire)) {
    // Connection window is full. Sources block on it (the dispatch loop is
    // sequential — this is the straggler effect of §III); transforms shed
    // the tuple like an overrun stream operator. A second edge blocking in
    // the same dispatch sheds too: one head-of-line slot.
    if (is_source && !from.blocked) {
      from.blocked = std::move(send);
      sim_.schedule_after(config_.blocked_retry,
                          [this, &from] { retry_blocked(from); });
    } else {
      metrics_.on_drop(core::DropReason::kBackpressureShed);
      if (config_.ledger != nullptr) {
        config_.ledger->on_dropped(tuple.id(),
                                   core::DropReason::kBackpressureShed);
      }
    }
    return;
  }
  send_data(from, std::move(send));
}

void Worker::send_data(Instance& from, PendingSend send) {
  send.data.sent_ns = sim_.now().nanos();
  // Loopback never batches (no wire to amortise); remote sends may.
  if (config_.batching.enabled && send.dst_device != device_.id()) {
    metrics_.on_routed(send.dst_device, send.wire, send.from_source);
    track_outstanding(from, send);
    enqueue_batched(send);
    return;
  }
  const bool ok =
      send_frame(send.dst_device, MsgType::kData, send.data, send.wire);
  if (ok) {
    metrics_.on_routed(send.dst_device, send.wire, send.from_source);
    track_outstanding(from, send);
  } else if (config_.recovery.retransmit &&
             send.dst_device != device_.id()) {
    // Refused synchronously (window full / link just died): the retry
    // timer recovers it instead of booking a loss.
    track_outstanding(from, send);
  } else {
    metrics_.on_drop(core::DropReason::kSendFailed);
    if (config_.ledger != nullptr) {
      config_.ledger->on_dropped(send.tuple_id,
                                 core::DropReason::kSendFailed);
    }
  }
}

SWING_HOT void Worker::enqueue_batched(const PendingSend& send) {
  Batch& batch = batch_for(send.dst_device, /*acks=*/false);
  if (batch.msg.size() >= config_.batching.buffer_cap) {
    metrics_.on_drop(core::DropReason::kBatchOverflow);
    if (config_.ledger != nullptr) {
      config_.ledger->on_dropped(send.tuple_id,
                                 core::DropReason::kBatchOverflow);
    }
    return;
  }
  // Encode straight into the batch's frame pool — the element never exists
  // as its own heap buffer.
  batch.msg.append_frame([&](ByteWriter& w) { send.data.encode(w); });
  batch.ids.push_back(send.tuple_id);
  batch.wire += send.wire;
  if (batch.msg.size() >= config_.batching.max_tuples) {
    sim_.cancel(batch.flush_event);
    flush_batch(send.dst_device, /*acks=*/false);
  } else if (batch.msg.size() == 1) {
    batch.flush_event = sim_.schedule_after(
        config_.batching.max_delay,
        [this, dst = send.dst_device] { flush_batch(dst, false); });
  }
}

SWING_HOT void Worker::enqueue_batched_ack(DeviceId dst, const AckMsg& ack) {
  Batch& batch = batch_for(dst, /*acks=*/true);
  if (batch.msg.size() >= config_.batching.buffer_cap) return;
  const std::size_t before = batch.msg.pool.size();
  batch.msg.append_frame([&](ByteWriter& w) { ack.encode(w); });
  batch.wire += batch.msg.pool.size() - before;
  if (batch.msg.size() >= config_.batching.max_tuples) {
    sim_.cancel(batch.flush_event);
    flush_batch(dst, /*acks=*/true);
  } else if (batch.msg.size() == 1) {
    batch.flush_event = sim_.schedule_after(
        config_.batching.max_delay,
        [this, dst] { flush_batch(dst, true); });
  }
}

SWING_HOT void Worker::flush_batch(DeviceId dst, bool acks) {
  auto it = batches_.find(dst.value() * 2 + (acks ? 1 : 0));
  if (it == batches_.end() || it->second.msg.size() == 0) return;
  if (!alive_) {
    batches_.erase(it);
    return;
  }
  // Congested connection: hold the batch and retry (it keeps absorbing
  // new tuples up to the buffer cap in the meantime).
  if (!transport_.can_send(device_.id(), dst, 0, it->second.wire)) {
    it->second.flush_event = sim_.schedule_after(
        config_.blocked_retry, [this, dst, acks] { flush_batch(dst, acks); });
    return;
  }
  Batch& batch = it->second;
  const bool ok = send_frame(
      dst, acks ? MsgType::kAckBatch : MsgType::kDataBatch, batch.msg,
      batch.wire);
  if (!ok) {
    // Ack batches carry no tuple ids (one failed send); data batches lose
    // every coalesced tuple, so each counts as its own drop.
    if (batch.ids.empty()) {
      metrics_.on_drop(core::DropReason::kSendFailed);
    }
    for (TupleId id : batch.ids) {
      metrics_.on_drop(core::DropReason::kSendFailed);
      if (config_.ledger != nullptr) {
        config_.ledger->on_dropped(id, core::DropReason::kSendFailed);
      }
    }
  }
  // Keep the map entry: the pool, offsets, and id vectors retain their
  // capacity, so the next batch to this destination encodes into warm
  // storage instead of regrowing from empty.
  batch.msg.clear();
  batch.ids.clear();
  batch.wire = 0;
}

SWING_HOT void Worker::handle_data_batch(const net::Message& msg) {
  // Batched dispatch: one pass over the batch payload serves every element.
  // Each inner message decodes from a sub-view of the received frame — the
  // DataBatchMsg is never materialised and no element bytes are copied
  // (tuple field contents are copied exactly once, into the Tuple that the
  // rest of the pipeline consumes).
  ByteReader r{msg.payload};
  const bool acks = MsgType(msg.type) == MsgType::kAckBatch;
  const auto n = r.read_varint();
  check_wire_count(n, r, 1, "batch element");
  for (std::uint64_t i = 0; i < n; ++i) {
    ByteReader frame{r.read_span()};
    if (acks) {
      handle_ack(AckMsg::decode(frame));
    } else {
      handle_data(DataMsg::decode(frame));
    }
  }
}

void Worker::retry_blocked(Instance& inst) {
  if (!alive_ || !inst.blocked) return;
  PendingSend& pending = *inst.blocked;
  // The blocked peer may have left in the meantime.
  const bool peer_known = peers_.contains(pending.data.dst_instance.value());
  if (!peer_known ||
      transport_.can_send(device_.id(), pending.dst_device, 0,
                          pending.wire)) {
    if (peer_known) {
      send_data(inst, std::move(pending));
    } else {
      metrics_.on_drop(core::DropReason::kSendFailed);
      if (config_.ledger != nullptr) {
        config_.ledger->on_dropped(pending.tuple_id,
                                   core::DropReason::kSendFailed);
      }
    }
    inst.blocked.reset();
    return;
  }
  sim_.schedule_after(config_.blocked_retry,
                      [this, &inst] { retry_blocked(inst); });
}

const core::SwarmManager* Worker::manager_of(OperatorId op,
                                             OperatorId down_op) const {
  for (const auto& [id, inst] : instances_) {
    if (inst->info.op != op) continue;
    if (!down_op.valid()) {
      return inst->edges.empty() ? nullptr : inst->edges.front().manager.get();
    }
    for (const auto& edge : inst->edges) {
      if (edge.down_op == down_op) return edge.manager.get();
    }
  }
  return nullptr;
}

const ReorderBuffer* Worker::reorder_of(OperatorId op) const {
  for (const auto& [id, inst] : instances_) {
    if (inst->info.op == op) return inst->reorder.get();
  }
  return nullptr;
}

void Worker::shutdown() {
  if (!alive_) return;
  stop_sources();
  if (heartbeat_task_) heartbeat_task_->stop();
  if (report_task_) report_task_->stop();
  if (checkpoint_task_) checkpoint_task_->stop();
  for (auto& [id, inst] : instances_) {
    for (auto& edge : inst->edges) {
      if (edge.tick_task) edge.tick_task->stop();
    }
    if (inst->reorder) inst->reorder->flush(sim_.now());
    if (config_.ledger != nullptr && inst->blocked) {
      config_.ledger->on_in_flight_at_shutdown(inst->blocked->tuple_id);
    }
  }
  // Account every tuple still queued inside this worker so a quiescent
  // shutdown audits clean: deploy-race buffers, unflushed batches, the
  // compute queue, un-ACKed tracked sends, and a frozen inbox.
  // (std::map iteration keeps the event order deterministic.)
  if (config_.ledger != nullptr) {
    for (const auto& [key, queue] : pending_data_) {
      for (const auto& data : queue) {
        if (const TupleId id = data.tuple.id(); id.valid()) {
          config_.ledger->on_in_flight_at_shutdown(id);
        }
      }
    }
    // Input buffered by a quiesced (2PC PREPARE) instance awaiting the
    // coordinator's decision at shutdown.
    for (const auto& [key, inst] : instances_) {
      for (const auto& data : inst->migration_buffer) {
        if (const TupleId id = data.tuple.id(); id.valid()) {
          config_.ledger->on_in_flight_at_shutdown(id);
        }
      }
    }
    for (const auto& [key, batch] : batches_) {
      for (TupleId id : batch.ids) {
        config_.ledger->on_in_flight_at_shutdown(id);
      }
    }
    for (const auto& [raw, count] : compute_queue_) {
      config_.ledger->on_in_flight_at_shutdown(TupleId{raw});
    }
    for (const auto& [key, out] : outstanding_) {
      config_.ledger->on_in_flight_at_shutdown(out.send.tuple_id);
    }
    for (const auto& msg : frozen_inbox_) {
      if (MsgType(msg.type) != MsgType::kData) continue;
      try {
        ByteReader r{msg.payload};
        const DataMsg data = DataMsg::decode(r);
        if (const TupleId id = data.tuple.id(); id.valid()) {
          config_.ledger->on_in_flight_at_shutdown(id);
        }
      } catch (const WireFormatError&) {
      }
    }
  }
  for (auto& [key, out] : outstanding_) sim_.cancel(out.timer);
  outstanding_.clear();
  alive_ = false;
}

// ---------------------------------------------------------------------------
// swing-chaos: crash-stop, freeze, and the recovery path

void Worker::drop_queued(TupleId id, core::DropReason reason) {
  metrics_.on_drop(reason);
  if (config_.ledger != nullptr && id.valid()) {
    config_.ledger->on_dropped(id, reason);
  }
}

void Worker::crash() {
  if (!alive_) return;
  stop_sources();
  if (heartbeat_task_) heartbeat_task_->stop();
  if (report_task_) report_task_->stop();
  if (checkpoint_task_) checkpoint_task_->stop();
  for (auto& [id, inst] : instances_) {
    for (auto& edge : inst->edges) {
      if (edge.tick_task) edge.tick_task->stop();
    }
    // No reorder flush: buffered frames at a crashed sink never play. They
    // already counted as delivered, so the ledger stays conserved.
    if (inst->blocked) {
      drop_queued(inst->blocked->tuple_id, core::DropReason::kAbruptLeave);
      inst->blocked.reset();
    }
    // swing-state: operator state absorbed since the last shipped snapshot
    // dies with the device. The restored instance resumes from the stale
    // checkpoint, so each post-checkpoint absorbed tuple is a real,
    // attributed loss — the conservation audit stays exact.
    if (config_.checkpoint.enabled && inst->unit && inst->unit->stateful()) {
      for (const std::uint64_t raw : inst->uncheckpointed) {
        drop_queued(TupleId{raw}, core::DropReason::kStateLost);
      }
      inst->uncheckpointed.clear();
    }
    // Input buffered by a quiesced (2PC PREPARE) instance dies with the
    // device — unless the final snapshot already transferred, in which case
    // the coordinator commits to the destination and upstream retransmits
    // (or the buffer's tuples were already ACKed and are genuine losses).
    for (const auto& data : inst->migration_buffer) {
      drop_queued(data.tuple.id(), core::DropReason::kAbruptLeave);
    }
    inst->migration_buffer.clear();
  }
  // Everything queued-but-unprocessed on this device dies with it; unlike
  // a drained shutdown these are real losses, attributed as abrupt-leave.
  for (const auto& [key, queue] : pending_data_) {
    for (const auto& data : queue) {
      drop_queued(data.tuple.id(), core::DropReason::kAbruptLeave);
    }
  }
  pending_data_.clear();
  for (const auto& [key, batch] : batches_) {
    for (TupleId id : batch.ids) {
      drop_queued(id, core::DropReason::kAbruptLeave);
    }
  }
  batches_.clear();
  for (const auto& [raw, count] : compute_queue_) {
    for (int i = 0; i < count; ++i) {
      drop_queued(TupleId{raw}, core::DropReason::kAbruptLeave);
    }
  }
  compute_queue_.clear();
  for (const auto& msg : frozen_inbox_) {
    if (MsgType(msg.type) != MsgType::kData) continue;
    try {
      ByteReader r{msg.payload};
      const DataMsg data = DataMsg::decode(r);
      drop_queued(data.tuple.id(), core::DropReason::kAbruptLeave);
    } catch (const WireFormatError&) {
    }
  }
  frozen_inbox_.clear();
  // Tracked sends left the device before the crash: whatever happens to
  // them happens downstream, so they are not this crash's losses.
  for (auto& [key, out] : outstanding_) sim_.cancel(out.timer);
  outstanding_.clear();
  alive_ = false;
}

void Worker::set_frozen(bool frozen) {
  if (!alive_ || frozen_ == frozen) return;
  frozen_ = frozen;
  if (frozen) return;
  // Thaw: replay the buffered inbox in arrival order.
  SWING_LOG(kInfo) << "device " << device_.id() << " thawed; replaying "
                   << frozen_inbox_.size() << " buffered message(s)";
  std::deque<net::Message> inbox = std::move(frozen_inbox_);
  frozen_inbox_.clear();
  for (const auto& msg : inbox) handle_message(msg);
}

void Worker::note_compute_done(TupleId id) {
  auto it = compute_queue_.find(id.value());
  if (it == compute_queue_.end()) return;
  if (--it->second <= 0) compute_queue_.erase(it);
}

void Worker::track_outstanding(Instance& from, const PendingSend& send) {
  if (!config_.recovery.retransmit) return;
  if (send.dst_device == device_.id()) return;  // Loopback is lossless.
  if (!send.tuple_id.valid()) return;
  if (outstanding_.size() >= config_.recovery.max_outstanding) return;
  const OutKey key{from.info.instance.value(), send.tuple_id.value(),
                   send.edge_index};
  auto [it, fresh] = outstanding_.try_emplace(key);
  if (!fresh) return;  // Already tracked (e.g. a blocked-retry resend).
  Outstanding& out = it->second;
  out.send = send;
  out.first_sent = sim_.now();
  out.last_target = send.data.dst_instance;
  out.timer = sim_.schedule_after(config_.recovery.ack_timeout,
                                  [this, key] { on_retry_timeout(key); });
}

void Worker::on_retry_timeout(const OutKey& key) {
  if (!alive_) return;
  auto it = outstanding_.find(key);
  if (it == outstanding_.end()) return;
  Outstanding& out = it->second;
  Instance* from = find_instance(InstanceId{key.inst});
  if (from == nullptr || key.edge >= from->edges.size()) {
    outstanding_.erase(it);
    return;
  }

  if (out.attempts >= config_.recovery.max_retries) {
    // The recovery budget is spent. Degrade to local execution when
    // allowed; otherwise give the tuple up *deliberately* — an attributed
    // retry-exhausted drop, never a silent disappearance.
    Outstanding spent = std::move(out);
    outstanding_.erase(it);
    if (config_.recovery.local_fallback) {
      DataMsg data = std::move(spent.send.data);
      data.src_device = device_.id();
      execute_locally(*from, key.edge, std::move(data));
      return;
    }
    drop_queued(spent.send.tuple_id, core::DropReason::kRetryExhausted);
    return;
  }

  ++out.attempts;
  Instance::Edge& edge = from->edges[key.edge];
  if (graph_.op(edge.down_op).partition_by_id) {
    // Key-partitioned edge: the tuple id still decides the instance — a
    // restored/migrated same-id instance must get the retransmit (its
    // device may have changed; peers_ has the fresh address), never a
    // sibling partition that would mismatch the stateful fan-in. In cell
    // mode the set is epoch-pinned to the frame id (same rule as
    // send_on_edge), so a retransmit spanning a rebalance re-targets the
    // instance its frame partition actually owns.
    const std::vector<InstanceId>* epoch_downs =
        edge.manager->downstreams_at(key.tuple);
    const auto& downs =
        epoch_downs != nullptr ? *epoch_downs : edge.manager->downstreams();
    if (!downs.empty()) {
      const InstanceId target = downs[key.tuple % downs.size()];
      if (auto peer = peers_.find(target.value()); peer != peers_.end()) {
        out.send.data.dst_instance = target;
        out.send.dst_device = peer->second.device;
        out.last_target = target;
      }
    }
  } else if (const auto alt = edge.manager->route_avoiding(
                 sim_.now(), out.last_target)) {
    // Prefer a different downstream: the silent one may be dead, and the
    // LRS decision usually has an alternative (paper §V-A).
    if (auto peer = peers_.find(alt->value()); peer != peers_.end()) {
      out.send.data.dst_instance = *alt;
      out.send.dst_device = peer->second.device;
      out.last_target = *alt;
    }
  }
  out.send.data.sent_ns = sim_.now().nanos();
  metrics_.on_retransmit();
  if (config_.ledger != nullptr) {
    config_.ledger->on_retransmitted(out.send.tuple_id, sim_.now());
  }
  // Direct send, bypassing the batching service: a retransmission has
  // already waited an ACK timeout; it should not wait for co-travellers.
  const bool ok = send_frame(out.send.dst_device, MsgType::kData,
                             out.send.data, out.send.wire);
  if (ok) {
    metrics_.on_routed(out.send.dst_device, out.send.wire,
                       out.send.from_source);
  }
  // Exponential backoff, whether or not the re-send was accepted.
  const SimDuration timeout =
      config_.recovery.ack_timeout *
      std::pow(config_.recovery.backoff, double(out.attempts));
  out.timer =
      sim_.schedule_after(timeout, [this, key] { on_retry_timeout(key); });
}

void Worker::resolve_outstanding(Instance& inst, const AckMsg& ack) {
  // Identify which edge this ACK settles via the ACKing instance's
  // operator; a multi-edge tuple stays tracked on its other edges.
  std::optional<std::uint64_t> edge_index;
  if (auto peer = peers_.find(ack.from_instance.value());
      peer != peers_.end()) {
    for (std::size_t i = 0; i < inst.edges.size(); ++i) {
      if (inst.edges[i].down_op == peer->second.op) {
        edge_index = i;
        break;
      }
    }
  }
  const auto settle = [&](std::map<OutKey, Outstanding>::iterator it) {
    sim_.cancel(it->second.timer);
    if (it->second.attempts > 0) {
      metrics_.on_retry_acked((sim_.now() - it->second.first_sent).millis());
    }
    return outstanding_.erase(it);
  };
  if (edge_index) {
    auto it = outstanding_.find(
        OutKey{ack.to_instance.value(), ack.tuple.value(), *edge_index});
    if (it != outstanding_.end()) settle(it);
    return;
  }
  // The ACKing peer is unknown (it left): settle every entry for the
  // tuple rather than retransmitting data that was in fact processed.
  auto it = outstanding_.lower_bound(
      OutKey{ack.to_instance.value(), ack.tuple.value(), 0});
  while (it != outstanding_.end() &&
         it->first.inst == ack.to_instance.value() &&
         it->first.tuple == ack.tuple.value()) {
    it = settle(it);
  }
}

Worker::Instance* Worker::local_instance_of(OperatorId op) {
  for (auto& [id, inst] : instances_) {
    if (inst->info.op == op) return inst.get();
  }
  return nullptr;
}

SWING_COLD Worker::Instance* Worker::spawn_fallback_instance(OperatorId op) {
  auto inst = std::make_unique<Instance>();
  // High-bit namespace keeps fallback ids clear of master-assigned ones.
  inst->info.instance = InstanceId{(1ULL << 63) |
                                   (device_.id().value() << 16) | op.value()};
  inst->info.op = op;
  inst->info.device = device_.id();
  inst->decl = &graph_.op(op);
  inst->rng = rng_.fork();
  inst->dedup_by_src = graph_.upstreams(op).size() > 1;
  if (inst->decl->factory) inst->unit = inst->decl->factory();
  // Downstream edges exist but know no peers, so the next hop recurses
  // into local fallback too (or reaches a real local instance first).
  for (OperatorId down : graph_.downstreams(op)) {
    Instance::Edge edge;
    edge.down_op = down;
    edge.manager =
        std::make_unique<core::SwarmManager>(config_.manager, rng_.fork());
    inst->edges.push_back(std::move(edge));
  }
  Instance& ref = *inst;
  inst->ctx = std::make_unique<InstanceContext>(*this, ref);
  if (inst->unit) inst->unit->on_deploy(*inst->ctx);
  if (config_.checkpoint.enabled && inst->unit && inst->unit->stateful()) {
    ensure_checkpoint_task();
  }
  SWING_LOG(kInfo) << "device " << device_.id()
                   << " degraded to local execution of "
                   << inst->decl->name;
  instances_[inst->info.instance.value()] = std::move(inst);
  return &ref;
}

void Worker::execute_locally(Instance& from, std::size_t edge_index,
                             DataMsg data) {
  const OperatorId down_op = from.edges[edge_index].down_op;
  Instance* local = local_instance_of(down_op);
  if (local == nullptr) local = spawn_fallback_instance(down_op);
  metrics_.on_local_fallback();
  data.dst_instance = local->info.instance;
  data.src_device = device_.id();
  data.sent_ns = sim_.now().nanos();
  process_data(*local, std::move(data));
}

// ---------------------------------------------------------------------------
// swing-state: checkpointing, restore, live migration (DESIGN.md §9)

SWING_COLD void Worker::ensure_checkpoint_task() {
  if (checkpoint_task_ != nullptr || !config_.checkpoint.enabled ||
      config_.checkpoint.interval.nanos() <= 0) {
    return;
  }
  checkpoint_task_ = std::make_unique<PeriodicTask>(
      sim_, config_.checkpoint.interval, [this] { checkpoint_tick(); });
  checkpoint_task_->start();
}

void Worker::checkpoint_tick() {
  if (!alive_ || frozen_) return;  // A suspended app checkpoints nothing.
  // std::map order: same-seed runs snapshot instances in the same sequence.
  for (auto& [id, inst] : instances_) {
    if (!inst->unit || !inst->unit->stateful() || inst->migrating) continue;
    // Delta cadence (checkpoint plane v2): between periodic fulls ship the
    // unit's mutation journal instead of the whole state. A full is due
    // when there is no base yet, the cadence ran out, or the unit (or the
    // dedup-envelope share) cannot express the interval incrementally.
    const auto& ck = config_.checkpoint;
    const bool delta_due =
        ck.deltas_per_full > 0 && inst->base_epoch > 0 &&
        inst->deltas_since_full < ck.deltas_per_full &&
        inst->unit->delta_ready() && !inst->dedup_ship_overflow;
    if (delta_due) {
      take_delta(*inst);
    } else {
      take_checkpoint(*inst);
    }
  }
}

Bytes Worker::full_envelope(Instance& inst) {
  // Worker-level envelope first (the dedup window, so a restored instance
  // still recognises retransmits of tuples it already absorbed), then the
  // unit's own state.
  ByteWriter w;
  w.write_varint(inst.dedup_order.size());
  for (const std::uint64_t seen : inst.dedup_order) w.write_u64(seen);
  inst.unit->snapshot_state(w);
  return w.take();
}

void Worker::take_checkpoint(Instance& inst, DeviceId migrate_to) {
  if (!master_device_.valid() || inst.unit == nullptr) return;
  state::CheckpointMsg msg;
  msg.instance = inst.info;
  msg.epoch = ++inst.checkpoint_epoch;
  msg.taken_ns = sim_.now().nanos();
  msg.migrate_to = migrate_to;
  msg.state = full_envelope(inst);
  // This full is the new delta-chain base.
  inst.base_epoch = msg.epoch;
  inst.deltas_since_full = 0;
  inst.dedup_since_ship.clear();
  inst.dedup_ship_overflow = false;
  metrics_.on_checkpoint_taken(msg.state.size());
  if (config_.tracer != nullptr) {
    config_.tracer->instant(obs::TracePhase::kSnapshot,
                            TupleId{inst.info.instance.value()}, device_.id(),
                            sim_.now());
  }
  // The snapshot is durable once the master stores it; only then is the
  // absorbed-since-last-checkpoint list safe to forget. A lost/refused
  // send is fine for periodic snapshots (the next interval covers it), so
  // clearing here slightly over-trusts the wire — acceptable: kStateLost
  // is a lower bound on crash losses, and the control plane is lossless
  // in every shipped scenario.
  inst.uncheckpointed.clear();
  send_frame(master_device_, MsgType::kCheckpoint, msg);
}

void Worker::take_delta(Instance& inst) {
  if (!master_device_.valid() || inst.unit == nullptr) return;
  state::DeltaMsg msg;
  msg.instance = inst.info;
  msg.epoch = ++inst.checkpoint_epoch;
  msg.base_epoch = inst.base_epoch;
  msg.taken_ns = sim_.now().nanos();
  // Delta envelope mirrors the full one: the dedup ids newly remembered
  // since the last shipped record, then the unit's mutation journal
  // (snapshot_delta serializes AND clears it).
  ByteWriter w;
  w.write_varint(inst.dedup_since_ship.size());
  for (const std::uint64_t seen : inst.dedup_since_ship) w.write_u64(seen);
  inst.unit->snapshot_delta(w);
  msg.delta = w.take();
  ++inst.deltas_since_full;
  inst.dedup_since_ship.clear();
  metrics_.on_delta_taken(msg.delta.size());
  if (config_.tracer != nullptr) {
    config_.tracer->instant(obs::TracePhase::kSnapshot,
                            TupleId{inst.info.instance.value()}, device_.id(),
                            sim_.now());
  }
  // Same durability trust as the full path: once the master appends this
  // delta the absorbed tuples it covers are recoverable.
  inst.uncheckpointed.clear();
  send_frame(master_device_, MsgType::kDelta, msg);
}

SWING_COLD void Worker::handle_restore(const state::RestoreMsg& msg) {
  if (!alive_) return;
  // We host this instance (again): stop relaying its traffic elsewhere.
  forwards_.erase(msg.instance.instance.value());
  if (find_instance(msg.instance.instance) != nullptr) return;
  DeployMsg::Assignment assignment;
  assignment.self = msg.instance;
  assignment.downstreams = msg.downstreams;
  activate(assignment, &msg);
}

SWING_COLD void Worker::handle_migrate_prepare(
    const state::MigratePrepareMsg& msg) {
  if (!alive_) return;
  Instance* inst = find_instance(msg.instance);
  if (inst == nullptr || inst->migrating) return;
  if (inst->unit == nullptr || !inst->unit->stateful()) return;
  if (msg.to_device == device_.id()) return;  // Nothing to move.
  SWING_LOG(kInfo) << "device " << device_.id() << " preparing migration of "
                   << inst->info.instance << " to " << msg.to_device
                   << " (txn " << msg.txn << ", " << inst->compute_pending
                   << " job(s) to drain)";
  inst->migrating = true;
  inst->migrate_target = msg.to_device;
  inst->migrate_txn = msg.txn;
  inst->migrate_prepared = false;
  sim_.cancel(inst->source_fire_event);
  if (inst->compute_pending <= 0) on_migration_drained(*inst);
}

// Cold escape: reachable from the hot data/ack handlers (the drain check),
// but the migration plane itself is control work — keep it out of the hot
// set so its serialization helpers stay off the zero-copy rules.
SWING_COLD void Worker::on_migration_drained(Instance& inst) {
  if (!inst.migrating || inst.migrate_prepared) return;
  send_prepare_state(inst);
}

void Worker::send_prepare_state(Instance& inst) {
  // Drained: every accepted job completed, so the unit's state is final.
  // One serialization feeds both the master's chain store (keeping the
  // eviction-restore path fresh through the decision window) and the
  // destination's staging area. The instance itself stays alive — only the
  // coordinator's COMMIT retires it; an ABORT resumes it in place.
  state::CheckpointMsg ck;
  ck.instance = inst.info;
  ck.epoch = ++inst.checkpoint_epoch;
  ck.taken_ns = sim_.now().nanos();
  ck.migrate_to = inst.migrate_target;
  ck.state = full_envelope(inst);
  inst.base_epoch = ck.epoch;
  inst.deltas_since_full = 0;
  inst.dedup_since_ship.clear();
  inst.dedup_ship_overflow = false;
  inst.uncheckpointed.clear();
  metrics_.on_checkpoint_taken(ck.state.size());
  if (config_.tracer != nullptr) {
    config_.tracer->instant(obs::TracePhase::kSnapshot,
                            TupleId{inst.info.instance.value()}, device_.id(),
                            sim_.now());
  }

  state::MigrateStateMsg xfer;
  xfer.txn = inst.migrate_txn;
  xfer.instance =
      InstanceInfo{inst.info.instance, inst.info.op, inst.migrate_target};
  xfer.epoch = ck.epoch;
  xfer.sent_ns = sim_.now().nanos();
  xfer.state = ck.state;
  inst.migrate_prepared = true;
  if (master_device_.valid()) {
    send_frame(master_device_, MsgType::kCheckpoint, ck);
  }
  send_frame(inst.migrate_target, MsgType::kMigrateState, xfer);
}

SWING_COLD void Worker::handle_migrate_state(
    const state::MigrateStateMsg& msg) {
  if (!alive_) return;
  // Destination role: stage the transfer inert (a crash here loses only a
  // duplicate — the source still owns the state) and vote.
  staged_migrations_[msg.txn] = msg;
  state::MigrateAckMsg ack;
  ack.txn = msg.txn;
  ack.instance = msg.instance.instance;
  ack.ok = true;
  if (master_device_.valid()) {
    send_frame(master_device_, MsgType::kMigrateAck, ack);
  }
}

SWING_COLD void Worker::handle_migrate_commit(
    const state::MigrateCommitMsg& msg) {
  if (!alive_) return;
  // Destination role: activate the staged copy with the routing seed the
  // coordinator computed at decision time.
  if (auto it = staged_migrations_.find(msg.txn);
      it != staged_migrations_.end()) {
    state::MigrateStateMsg staged = std::move(it->second);
    staged_migrations_.erase(it);
    if (staged.instance.instance == msg.instance.instance &&
        find_instance(staged.instance.instance) == nullptr) {
      forwards_.erase(staged.instance.instance.value());
      state::RestoreMsg restore;
      restore.instance = InstanceInfo{staged.instance.instance,
                                      staged.instance.op, device_.id()};
      restore.epoch = staged.epoch;
      restore.sent_ns = staged.sent_ns;
      restore.state = std::move(staged.state);
      restore.downstreams = msg.downstreams;
      DeployMsg::Assignment assignment;
      assignment.self = restore.instance;
      assignment.downstreams = restore.downstreams;
      activate(assignment, &restore);
      SWING_LOG(kInfo) << "device " << device_.id() << " committed migration "
                       << "txn " << msg.txn << ": activated instance "
                       << restore.instance.instance;
    }
    return;
  }
  // Source role: the decision is COMMIT — re-route everything buffered
  // during PREPARE plus future stragglers, and retire the local copy.
  Instance* inst = find_instance(msg.instance.instance);
  if (inst == nullptr || !inst->migrating || inst->migrate_txn != msg.txn ||
      !inst->migrate_prepared) {
    return;  // Stale/duplicate decision: already acted on it.
  }
  const DeviceId target = msg.instance.device;
  forwards_[inst->info.instance.value()] = target;
  std::deque<DataMsg> buffered = std::move(inst->migration_buffer);
  inst->migration_buffer.clear();
  for (auto& edge : inst->edges) {
    if (edge.tick_task) edge.tick_task->stop();
  }
  SWING_LOG(kInfo) << "device " << device_.id() << " committed migration "
                   << "txn " << msg.txn << ": handed off instance "
                   << inst->info.instance << " to " << target << " ("
                   << buffered.size() << " buffered tuple(s) re-routed)";
  // Safe to erase: compute_pending == 0 (PREPARE drained the queue).
  instances_.erase(inst->info.instance.value());
  for (auto& data : buffered) forward_data(std::move(data), target);
}

SWING_COLD void Worker::handle_migrate_abort(
    const state::MigrateAbortMsg& msg) {
  if (!alive_) return;
  // Destination role: the staged copy never became live; discard it.
  if (staged_migrations_.erase(msg.txn) > 0) return;
  // Source role: resume in place, replaying input buffered while quiesced.
  Instance* inst = find_instance(msg.instance);
  if (inst == nullptr || !inst->migrating || inst->migrate_txn != msg.txn) {
    return;
  }
  inst->migrating = false;
  inst->migrate_prepared = false;
  inst->migrate_txn = 0;
  inst->migrate_target = DeviceId{};
  std::deque<DataMsg> buffered = std::move(inst->migration_buffer);
  inst->migration_buffer.clear();
  SWING_LOG(kInfo) << "device " << device_.id() << " aborted migration txn "
                   << msg.txn << ": instance " << inst->info.instance
                   << " resumes (" << buffered.size()
                   << " buffered tuple(s) replayed)";
  if (inst->decl->kind == dataflow::OperatorKind::kSource && running_) {
    arm_source(*inst);
  }
  for (auto& data : buffered) process_data(*inst, std::move(data));
}

// ---------------------------------------------------------------------------
// Checkpoint plane v2: peer replication

SWING_COLD void Worker::handle_replicate(const state::ReplicateMsg& msg) {
  if (!alive_) return;
  const std::uint64_t key = msg.instance.instance.value();
  if (msg.kind == state::ReplicateMsg::Kind::kFull) {
    ReplicaChain& chain = replicas_[key];
    chain.instance = msg.instance;
    chain.base_epoch = msg.epoch;
    chain.base = msg.state;
    chain.deltas.clear();
    return;
  }
  auto it = replicas_.find(key);
  // A delta only extends a contiguous chain; a gap, a stale duplicate, or
  // an over-long run invalidates the replica until the next full re-seeds
  // it (same discipline as the master's CheckpointStore).
  if (it == replicas_.end() || msg.base_epoch != it->second.base_epoch ||
      msg.epoch != it->second.tip_epoch() + 1 ||
      it->second.deltas.size() >= state::CheckpointStore::kMaxDeltasPerChain) {
    if (it != replicas_.end()) replicas_.erase(it);
    return;
  }
  it->second.instance = msg.instance;
  it->second.deltas.push_back(msg.state);
}

SWING_COLD void Worker::handle_replica_restore(
    const state::ReplicaRestoreMsg& msg) {
  if (!alive_) return;
  const std::uint64_t key = msg.instance.instance.value();
  auto it = replicas_.find(key);
  if (it == replicas_.end()) {
    SWING_LOG(kWarn) << "device " << device_.id()
                     << " has no replica chain for instance "
                     << msg.instance.instance << "; replica restore dropped";
    return;
  }
  ReplicaChain chain = std::move(it->second);
  replicas_.erase(it);
  if (find_instance(msg.instance.instance) != nullptr) return;
  const auto& decl = graph_.op(msg.instance.op);
  if (!decl.factory) return;
  // Reconstruct base + deltas into a flat full envelope, then activate
  // through the exact code path a master-held RestoreMsg would take.
  auto unit = decl.factory();
  std::vector<const Bytes*> deltas;
  deltas.reserve(chain.deltas.size());
  for (const Bytes& d : chain.deltas) deltas.push_back(&d);
  Bytes merged = state::reconstruct_state(*unit, chain.base, deltas);
  forwards_.erase(key);
  state::RestoreMsg restore;
  restore.instance =
      InstanceInfo{msg.instance.instance, msg.instance.op, device_.id()};
  restore.epoch = chain.base_epoch + chain.deltas.size();
  restore.sent_ns = msg.sent_ns;
  restore.state = std::move(merged);
  restore.downstreams = msg.downstreams;
  DeployMsg::Assignment assignment;
  assignment.self = restore.instance;
  assignment.downstreams = restore.downstreams;
  SWING_LOG(kInfo) << "device " << device_.id()
                   << " restoring instance " << msg.instance.instance
                   << " from its local replica chain (epoch "
                   << restore.epoch << ")";
  activate(assignment, &restore);
}

void Worker::forward_data(DataMsg&& data, DeviceId target) {
  // Source fields stay intact: the new host ACKs the original upstream,
  // settling its retransmission timer. Re-stamp the send time so the
  // receiver measures only the relay hop.
  data.sent_ns = sim_.now().nanos();
  const std::uint64_t wire =
      data.tuple_wire_size + DataMsg::kEnvelopeBytes;
  const bool ok = send_frame(target, MsgType::kData, data, wire);
  if (ok) {
    metrics_.on_routed(target, wire, false);
  } else {
    drop_queued(data.tuple.id(), core::DropReason::kSendFailed);
  }
}

void Worker::leave() {
  if (master_device_.valid() && master_device_ != device_.id()) {
    send_frame(master_device_, MsgType::kBye, DeviceMsg{device_.id()});
  }
  shutdown();
}

}  // namespace swing::runtime
