// Declarative experiment scenarios.
//
// The paper's dynamism experiments (§VI-C) are timed scripts: "start with
// B and D, launch G after a minute, walk G to a weak zone, kill it".
// Scenario captures that shape once so benches, tests and examples stop
// hand-rolling event scheduling: declare timed actions (with labels for
// reporting), arm the script, run the simulator, then read back the
// per-interval throughput samples aligned with the timeline.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "runtime/swarm.h"

namespace swing::runtime {

class Scenario {
 public:
  using Action = std::function<void(Swarm&)>;

  struct Event {
    SimDuration when;  // Relative to arm().
    std::string label;
  };

  struct Sample {
    double t_s = 0.0;       // Relative to arm().
    double fps = 0.0;       // Frames delivered per second over the interval.
    std::string label;      // Event label if one fired in this interval.
  };

  explicit Scenario(Swarm& swarm) : swarm_(swarm) {}

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  // --- Declaring the script -----------------------------------------------

  Scenario& at(SimDuration when, std::string label, Action action) {
    actions_.push_back({when, std::move(label), std::move(action)});
    return *this;
  }

  Scenario& join_at(SimDuration when, DeviceId id,
                    std::string label = "join") {
    return at(when, std::move(label),
              [id](Swarm& s) { s.launch_worker(id); });
  }

  Scenario& leave_abruptly_at(SimDuration when, DeviceId id,
                              std::string label = "abrupt leave") {
    return at(when, std::move(label),
              [id](Swarm& s) { s.leave_abruptly(id); });
  }

  Scenario& leave_gracefully_at(SimDuration when, DeviceId id,
                                std::string label = "graceful leave") {
    return at(when, std::move(label),
              [id](Swarm& s) { s.leave_gracefully(id); });
  }

  Scenario& jump_rssi_at(SimDuration when, DeviceId id, double rssi_dbm,
                         std::string label = "zone change") {
    return at(when, std::move(label), [id, rssi_dbm](Swarm& s) {
      s.walker(id).jump_to_rssi(rssi_dbm);
    });
  }

  Scenario& walk_at(SimDuration when, DeviceId id, net::Position dest,
                    double speed_mps, std::string label = "walk") {
    return at(when, std::move(label), [id, dest, speed_mps](Swarm& s) {
      s.walker(id).walk_to(dest, speed_mps);
    });
  }

  Scenario& background_load_at(SimDuration when, DeviceId id,
                               double fraction,
                               std::string label = "background load") {
    return at(when, std::move(label), [id, fraction](Swarm& s) {
      s.device(id).set_background_load(fraction);
    });
  }

  // --- swing-chaos verbs ---------------------------------------------------
  //
  // These require SwarmConfig::chaos_enabled (a fault plan on the medium);
  // armed without one they are no-ops so scripts stay portable. The worker
  // verbs (freeze/slow/crash) need no plan.

  Scenario& loss_at(SimDuration when, double p,
                    std::string label = "packet loss") {
    return at(when, std::move(label), [p](Swarm& s) {
      if (auto* plan = s.fault_plan()) plan->set_loss(p);
    });
  }

  Scenario& drop_acks_between(SimDuration when, DeviceId a, DeviceId b,
                              double p, std::string label = "ack loss") {
    return at(when, std::move(label), [a, b, p](Swarm& s) {
      if (auto* plan = s.fault_plan()) plan->set_ack_loss_between(a, b, p);
    });
  }

  // Hard pair partition for `duration` (zero or negative: forever).
  Scenario& partition_at(SimDuration when, DeviceId a, DeviceId b,
                         SimDuration duration,
                         std::string label = "partition") {
    return at(when, std::move(label), [a, b, duration](Swarm& s) {
      if (auto* plan = s.fault_plan()) {
        const SimTime heal_at = duration.nanos() > 0
                                    ? s.sim().now() + duration
                                    : SimTime::max();
        plan->partition(a, b, heal_at);
      }
    });
  }

  // GC-pause-style freeze for `duration` (the thaw is scheduled here too).
  Scenario& freeze_worker_at(SimDuration when, DeviceId id,
                             SimDuration duration,
                             std::string label = "freeze") {
    return at(when, std::move(label), [id, duration](Swarm& s) {
      s.freeze_worker(id, true);
      s.sim().schedule_after(duration,
                             [&s, id] { s.freeze_worker(id, false); });
    });
  }

  Scenario& slow_worker_at(SimDuration when, DeviceId id, double factor,
                           std::string label = "slowdown") {
    return at(when, std::move(label),
              [id, factor](Swarm& s) { s.slow_worker(id, factor); });
  }

  // Crash-stop: alias of leave_abruptly_at under its chaos name.
  Scenario& crash_worker_at(SimDuration when, DeviceId id,
                            std::string label = "crash") {
    return leave_abruptly_at(when, id, std::move(label));
  }

  // swing-state planned handoff: migrate every stateful instance on `from`
  // to `to` before (say) a scripted departure. Needs
  // SwarmConfig::with_checkpointing(); without it the master refuses and
  // this is a no-op.
  Scenario& migrate_at(SimDuration when, DeviceId from, DeviceId to,
                       std::string label = "migrate") {
    return at(when, std::move(label),
              [from, to](Swarm& s) { s.migrate_stateful(from, to); });
  }

  // Checkpoint plane v2 chaos verb: start a migration from `from` to `to`
  // and crash `victim` exactly when the 2PC coordinator crosses `phase`.
  // Exercises crash-at-every-boundary recovery (see Swarm's method).
  Scenario& crash_during_migration_at(SimDuration when, DeviceId from,
                                      DeviceId to, MigrationPhase phase,
                                      Swarm::MigrationVictim victim,
                                      std::string label = "crash mid-2pc") {
    return at(when, std::move(label), [from, to, phase, victim](Swarm& s) {
      s.crash_during_migration(from, to, phase, victim);
    });
  }

  // Checkpoint plane v2 chaos verb: the master loses its volatile state
  // (checkpoint store + live transactions) and recovers from its decision
  // log. Restores afterwards must come from peer replicas.
  Scenario& crash_master_state_at(SimDuration when,
                                  std::string label = "master state loss") {
    return at(when, std::move(label),
              [](Swarm& s) { s.crash_master_state(); });
  }

  // swing-shard chaos verb: abruptly kills whatever device is acting as
  // `cell`'s master at fire time. Needs SwarmConfig::with_cells(); a no-op
  // otherwise (or when the cell does not exist / its role is the gateway).
  Scenario& crash_cell_master_at(SimDuration when, CellId cell,
                                 std::string label = "crash cell master") {
    return at(when, std::move(label),
              [cell](Swarm& s) { s.crash_cell_master(cell); });
  }

  // swing-shard chaos verb: partitions `device` from the gateway (the
  // master's device) for `duration` (zero or negative: forever). Cell
  // reports and epoch updates to/from that device are lost until heal;
  // surviving cells must keep delivering and the seq-numbered anti-entropy
  // log repairs the partitioned device afterwards. Needs chaos_enabled.
  Scenario& partition_gateway_at(SimDuration when, DeviceId device,
                                 SimDuration duration,
                                 std::string label = "gateway partition") {
    return at(when, std::move(label), [device, duration](Swarm& s) {
      if (auto* plan = s.fault_plan()) {
        if (s.master() == nullptr) return;
        const SimTime heal_at = duration.nanos() > 0
                                    ? s.sim().now() + duration
                                    : SimTime::max();
        plan->partition(device, s.master()->device(), heal_at);
      }
    });
  }

  // Collect a throughput sample every `period` (default 1 s).
  Scenario& sample_every(SimDuration period) {
    sample_period_ = period;
    return *this;
  }

  // --- Running ------------------------------------------------------------

  // Schedules every declared action and the sampling loop, relative to the
  // simulator's current time. Call once, then drive the simulator.
  void arm();

  // Runs the script to completion: arms, then advances the simulator until
  // `horizon` past the arm time.
  void run_for(SimDuration horizon) {
    arm();
    swarm_.sim().run_for(horizon);
  }

  // --- Results ------------------------------------------------------------

  [[nodiscard]] const std::vector<Sample>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::vector<Event> timeline() const {
    std::vector<Event> out;
    out.reserve(actions_.size());
    for (const auto& a : actions_) out.push_back({a.when, a.label});
    return out;
  }

 private:
  struct TimedAction {
    SimDuration when;
    std::string label;
    Action action;
  };

  Swarm& swarm_;
  std::vector<TimedAction> actions_;
  SimDuration sample_period_ = seconds(1.0);
  SimTime armed_at_{};
  std::size_t frames_at_last_sample_ = 0;
  std::vector<Sample> samples_;
  std::string pending_label_;
  // Self-rescheduling throughput sampler; a member rather than a
  // self-capturing shared_ptr so it cannot leak through a reference cycle.
  std::function<void()> sampler_;
  bool armed_ = false;
};

}  // namespace swing::runtime
