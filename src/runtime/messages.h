// Swing control/data protocol (paper §IV-B workflow).
//
// Master and workers exchange typed messages over the transport:
//
//   worker -> master : Hello (join), LeaveReport (peer vanished), Bye
//   master -> worker : Deploy (activate instances + initial routing),
//                      AddDownstream / RemoveDownstream (routing updates),
//                      Start / Stop
//   worker -> worker : Data (tuple + envelope), Ack (latency measurement)
//
// Every payload uses the wire-plane v2 codec API (common/bytes.h):
// `encode(ByteWriter&)` appends into a caller-owned buffer (usually a
// SendArena frame) and `decode(ByteReader&)` reads a non-owning view of the
// received frame. The structs below are the in-memory forms; the wire layout
// is byte-identical to the legacy to_bytes/from_bytes encoding.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "common/hot.h"
#include "common/ids.h"
#include "common/time.h"
#include "dataflow/tuple.h"

namespace swing::runtime {

enum class MsgType : std::uint8_t {
  kHello = 1,
  kDeploy = 2,
  kAddDownstream = 3,
  kRemoveDownstream = 4,
  kStart = 5,
  kStop = 6,
  kData = 7,
  kAck = 8,
  kLeaveReport = 9,
  kBye = 10,
  // Several DataMsgs to instances on one device, coalesced by the sender's
  // batching service (SEEP batches tuples per connection; so do we).
  kDataBatch = 11,
  // Several AckMsgs to one device, coalesced the same way.
  kAckBatch = 12,
  // Worker -> master liveness beacon; lets the master garbage-collect
  // members that die while idle (no data flowing to reveal the loss).
  kHeartbeat = 13,
  // swing-state (src/state/state_messages.h): periodic operator-state
  // snapshot shipped worker -> master, master -> worker redeploy-with-state,
  // and the master's live-migration command (2PC PREPARE).
  kCheckpoint = 14,
  kMigratePrepare = 15,  // Wire-compatible with the pre-2PC kMigrate slot.
  kRestore = 16,
  // Checkpoint plane v2: incremental delta records between full snapshots,
  // replication of the checkpoint/delta stream to one peer worker, and the
  // remaining legs of the two-phase-commit migration protocol.
  kDelta = 17,
  kReplicate = 18,
  kReplicaRestore = 19,
  kMigrateState = 20,
  kMigrateAck = 21,
  kMigrateCommit = 22,
  kMigrateAbort = 23,
  // swing-shard (src/shard/shard_messages.h): hierarchical control plane.
  // Cell membership assignments, epoch-versioned routing updates, the cell
  // master's role acknowledgement, and per-member progress reports.
  kCellAssign = 24,
  kEpochRouteUpdate = 25,
  kGatewayHello = 26,
  kCellReport = 27,
};

// A deployed function-unit instance and where it lives.
struct InstanceInfo {
  InstanceId instance;
  OperatorId op;
  DeviceId device;

  friend bool operator==(const InstanceInfo&, const InstanceInfo&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(instance.value());
    w.write_u64(op.value());
    w.write_u64(device.value());
  }
  static SWING_HOT InstanceInfo decode(ByteReader& r) {
    InstanceInfo info;
    info.instance = InstanceId{r.read_u64()};
    info.op = OperatorId{r.read_u64()};
    info.device = DeviceId{r.read_u64()};
    return info;
  }
};

// Master -> worker: activate these instances; each comes with the current
// set of downstream instances to seed its routing table.
// Bounds a wire-claimed element count by what the unread suffix could
// actually hold (`min_bytes` per element) BEFORE it reaches reserve(): a
// hostile count must fail as a recoverable WireFormatError, not as an
// uncaught std::length_error/OOM aborting the worker. Found by the fuzz
// harnesses (fuzz/corpus/*/crash_huge_count_*).
inline void check_wire_count(std::uint64_t n, const ByteReader& r,
                             std::uint64_t min_bytes, const char* what) {
  if (min_bytes == 0 || n > r.remaining() / min_bytes) {
    throw WireFormatError(std::string(what) + " count " + std::to_string(n) +
                          " exceeds what " + std::to_string(r.remaining()) +
                          " remaining bytes could hold");
  }
}

struct DeployMsg {
  struct Assignment {
    InstanceInfo self;
    std::vector<InstanceInfo> downstreams;

    friend bool operator==(const Assignment&, const Assignment&) = default;
  };
  std::vector<Assignment> assignments;

  friend bool operator==(const DeployMsg&, const DeployMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_varint(assignments.size());
    for (const auto& a : assignments) {
      a.self.encode(w);
      w.write_varint(a.downstreams.size());
      for (const auto& d : a.downstreams) d.encode(w);
    }
  }
  static SWING_HOT DeployMsg decode(ByteReader& r) {
    DeployMsg msg;
    const auto n = r.read_varint();
    // An assignment is at least one InstanceInfo (24 bytes) plus a one-byte
    // downstream count.
    check_wire_count(n, r, 25, "assignment");
    msg.assignments.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Assignment a;
      a.self = InstanceInfo::decode(r);
      const auto m = r.read_varint();
      check_wire_count(m, r, 24, "downstream");
      a.downstreams.reserve(m);
      for (std::uint64_t j = 0; j < m; ++j) {
        a.downstreams.push_back(InstanceInfo::decode(r));
      }
      msg.assignments.push_back(std::move(a));
    }
    return msg;
  }
};

// Master -> worker: the named upstream instance gained/lost a downstream.
struct RouteUpdateMsg {
  InstanceId upstream;
  InstanceInfo downstream;

  friend bool operator==(const RouteUpdateMsg&,
                         const RouteUpdateMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(upstream.value());
    downstream.encode(w);
  }
  static SWING_HOT RouteUpdateMsg decode(ByteReader& r) {
    RouteUpdateMsg msg;
    msg.upstream = InstanceId{r.read_u64()};
    msg.downstream = InstanceInfo::decode(r);
    return msg;
  }
};

// Per-stage delay decomposition accumulated as a tuple traverses the graph
// (used to reproduce Fig. 2's transmission/queuing/processing breakdown).
struct DelayBreakdown {
  double transmission_ms = 0.0;
  double queuing_ms = 0.0;
  double processing_ms = 0.0;

  [[nodiscard]] double total_ms() const {
    return transmission_ms + queuing_ms + processing_ms;
  }

  friend bool operator==(const DelayBreakdown&,
                         const DelayBreakdown&) = default;
};

// Upstream -> downstream: one tuple on an edge. The tuple travels decoded:
// DataMsg::decode materialises it once from the frame view, and every later
// consumer (dedup, routing, the function unit) reads the same Tuple instead
// of re-decoding a private Bytes copy.
struct DataMsg {
  InstanceId src_instance;
  DeviceId src_device;  // Where to address the ACK (the socket peer).
  InstanceId dst_instance;
  std::int64_t sent_ns = 0;  // Upstream clock at send; echoed in the ACK.
  DelayBreakdown accumulated;
  dataflow::Tuple tuple;
  std::uint64_t tuple_wire_size = 0;  // Includes synthetic Blob payloads.

  friend bool operator==(const DataMsg&, const DataMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(src_instance.value());
    w.write_u64(src_device.value());
    w.write_u64(dst_instance.value());
    w.write_i64(sent_ns);
    w.write_f64(accumulated.transmission_ms);
    w.write_f64(accumulated.queuing_ms);
    w.write_f64(accumulated.processing_ms);
    w.write_varint(tuple_wire_size);
    // Length-prefixed nested frame: byte-identical to the legacy
    // write_bytes(tuple.to_bytes()) layout, without the intermediate buffer.
    w.write_varint(tuple.encoded_size());
    tuple.encode(w);
  }
  static SWING_HOT DataMsg decode(ByteReader& r) {
    DataMsg msg;
    msg.src_instance = InstanceId{r.read_u64()};
    msg.src_device = DeviceId{r.read_u64()};
    msg.dst_instance = InstanceId{r.read_u64()};
    msg.sent_ns = r.read_i64();
    msg.accumulated.transmission_ms = r.read_f64();
    msg.accumulated.queuing_ms = r.read_f64();
    msg.accumulated.processing_ms = r.read_f64();
    msg.tuple_wire_size = r.read_varint();
    const auto frame_len = r.read_varint();
    ByteReader sub{r.take_span(frame_len)};
    msg.tuple = dataflow::Tuple::decode(sub);
    if (!sub.done()) {
      throw WireFormatError("trailing bytes after tuple frame");
    }
    return msg;
  }

  // Envelope bytes on the wire beyond the tuple itself.
  static constexpr std::uint64_t kEnvelopeBytes = 64;
};

// Downstream -> upstream: ACK after processing, echoing the original send
// timestamp (paper §V-B) plus the measured processing time.
struct AckMsg {
  InstanceId from_instance;  // The downstream that processed the tuple.
  InstanceId to_instance;    // The upstream that sent it.
  TupleId tuple;
  std::int64_t echoed_sent_ns = 0;
  double processing_ms = 0.0;
  // Remaining battery on the processing device [0, 1]; piggybacked so
  // energy-aware policies can spare nearly-empty peers.
  double battery_fraction = 1.0;

  friend bool operator==(const AckMsg&, const AckMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(from_instance.value());
    w.write_u64(to_instance.value());
    w.write_u64(tuple.value());
    w.write_i64(echoed_sent_ns);
    w.write_f64(processing_ms);
    w.write_f64(battery_fraction);
  }
  static SWING_HOT AckMsg decode(ByteReader& r) {
    AckMsg msg;
    msg.from_instance = InstanceId{r.read_u64()};
    msg.to_instance = InstanceId{r.read_u64()};
    msg.tuple = TupleId{r.read_u64()};
    msg.echoed_sent_ns = r.read_i64();
    msg.processing_ms = r.read_f64();
    msg.battery_fraction = r.read_f64();
    return msg;
  }
};

// A batch of DataMsgs (or AckMsgs) bound for instances on one device.
//
// Frames live back to back in one pooled buffer (`pool`) with per-frame
// start offsets, so building, encoding, and decoding a batch never touches
// a per-element heap Bytes. Senders append frames by encoding straight into
// the pool (append_frame); receivers either walk the decoded pool via
// frame(i) or — on the fast path — decode inner messages directly from the
// batch payload without materialising a DataBatchMsg at all (see
// Worker::handle_data_batch).
struct DataBatchMsg {
  Bytes pool;                          // Concatenated inner-message bytes.
  std::vector<std::uint32_t> offsets;  // Start of each frame within pool.

  friend bool operator==(const DataBatchMsg&, const DataBatchMsg&) = default;

  [[nodiscard]] std::size_t size() const { return offsets.size(); }

  // Drops all frames but keeps pool and offset capacity: a sender reuses one
  // batch object per destination, so steady-state batching stops allocating
  // once the pool has grown to the largest batch that destination sees.
  void clear() {
    pool.clear();
    offsets.clear();
  }

  [[nodiscard]] std::span<const std::uint8_t> frame(std::size_t i) const {
    SWING_DCHECK_LT(i, offsets.size());
    const std::size_t begin = offsets[i];
    const std::size_t end =
        i + 1 < offsets.size() ? offsets[i + 1] : pool.size();
    return std::span<const std::uint8_t>{pool}.subspan(begin, end - begin);
  }

  // Appends one frame by encoding straight into the pool: `fn` receives a
  // ByteWriter positioned at the end of the pool. Zero intermediate copies.
  template <typename Fn>
    requires std::invocable<Fn&, ByteWriter&>
  void append_frame(Fn&& fn) {
    SWING_DCHECK_LE(pool.size(), UINT32_MAX);
    offsets.push_back(static_cast<std::uint32_t>(pool.size()));
    ByteWriter w{pool};
    fn(w);
  }

  // Appends one pre-encoded frame (tests, corpus generation).
  void append_frame(std::span<const std::uint8_t> bytes) {
    SWING_DCHECK_LE(pool.size(), UINT32_MAX);
    offsets.push_back(static_cast<std::uint32_t>(pool.size()));
    pool.insert(pool.end(), bytes.begin(), bytes.end());
  }

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_varint(offsets.size());
    for (std::size_t i = 0; i < offsets.size(); ++i) w.write_bytes(frame(i));
  }
  static SWING_HOT DataBatchMsg decode(ByteReader& r) {
    DataBatchMsg msg;
    const auto n = r.read_varint();
    // Each inner message costs at least its one-byte length prefix.
    check_wire_count(n, r, 1, "batch element");
    msg.offsets.reserve(n);
    // The frames occupy at most the unread suffix, so one reservation
    // covers every insert below (single-region copy, no per-frame Bytes).
    msg.pool.reserve(r.remaining());
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto body = r.read_span();
      msg.offsets.push_back(static_cast<std::uint32_t>(msg.pool.size()));
      msg.pool.insert(msg.pool.end(), body.begin(), body.end());
    }
    return msg;
  }
};

// Worker -> master: `device` is unreachable (LeaveReport) — or, with the
// sender's own device, a graceful goodbye (Bye). Hello carries no payload.
struct DeviceMsg {
  DeviceId device;

  friend bool operator==(const DeviceMsg&, const DeviceMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const { w.write_u64(device.value()); }
  static SWING_HOT DeviceMsg decode(ByteReader& r) {
    return DeviceMsg{DeviceId{r.read_u64()}};
  }
};

}  // namespace swing::runtime
