// Swarm: the top-level Swing runtime facade and primary public API.
//
// A Swarm owns the simulated testbed (medium, transport, discovery, devices)
// and the Swing processes on it (one master, one worker per device). Typical
// use:
//
//   Simulator sim;
//   Swarm swarm{sim};
//   auto a = swarm.add_device(device::profile_A(), {1.0, 0.0});
//   auto b = swarm.add_device(device::profile_B(), {2.0, 0.0});
//   swarm.launch_master(a, face_recognition_graph());
//   swarm.launch_worker(b);          // Joins via discovery.
//   swarm.start();
//   sim.run_for(seconds(60));
//   swarm.metrics().throughput_fps(...);
//
// Devices can join mid-run (launch_worker later), leave gracefully or
// abruptly, and move (walker()), reproducing the paper's dynamism
// experiments.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "chaos/fault_plan.h"
#include "common/ids.h"
#include "common/rng.h"
#include "core/tuple_ledger.h"
#include "dataflow/graph.h"
#include "device/device.h"
#include "device/mobility.h"
#include "net/discovery.h"
#include "net/medium.h"
#include "net/transport.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "runtime/master.h"
#include "runtime/metrics.h"
#include "runtime/worker.h"
#include "sim/simulator.h"

namespace swing::runtime {

struct SwarmConfig {
  net::MediumConfig medium{};
  net::TransportConfig transport{};
  WorkerConfig worker{};
  MasterConfig master{};
  std::uint64_t seed = 42;
  // CPU utilisation sampling for metrics (the paper polls `top` periodically).
  SimDuration cpu_sample_period = seconds(1.0);
  // Background OS activity visible in CPU samples even on unselected
  // devices (the paper notes this in §VI-B2).
  double cpu_noise_floor = 0.03;
  // swing-audit: thread a TupleLedger through master and workers and fail
  // shutdown() on any hard invariant violation (ghost events, duplicate
  // source emission, broken reorder monotonicity, non-finite latency).
  // On by default: every scenario/integration test audits for free.
  bool audit = true;
  // swing-obs hop-level tracing (see obs/tracer.h): when enabled, workers
  // record each sampled tuple's lifecycle as Chrome trace events, exported
  // via Swarm::tracer(). Off by default — the registry is always on.
  obs::TraceConfig trace{};
  // swing-chaos: when enabled, a seeded chaos::FaultPlan is installed as the
  // medium's fault hook. All fault draws come from chaos.seed, so two runs
  // with identical scripts and seeds inject identical fault sequences.
  bool chaos_enabled = false;
  chaos::FaultPlanConfig chaos{};

  // Turns on the full recovery path (ACK-timeout retransmission with
  // re-routing, receiver dedup, ack-silence failure detection, local
  // fallback). Off by default: the seed behaviour — drop on failure, wait
  // for estimator decay — stays byte-identical unless a scenario opts in.
  SwarmConfig& with_recovery() {
    worker.recovery.retransmit = true;
    worker.recovery.dedup_window = 1024;
    worker.recovery.local_fallback = true;
    worker.manager.ack_silence_timeout = seconds(4.0);
    return *this;
  }

  // swing-state: workers periodically snapshot stateful instances to the
  // master, which restores the latest checkpoint when the host crashes or
  // leaves, and brokers live migration on planned departures. Off by
  // default — checkpointing is a per-scenario opt-in like recovery.
  SwarmConfig& with_checkpointing(SimDuration interval = seconds(1.0)) {
    worker.checkpoint.enabled = true;
    worker.checkpoint.interval = interval;
    master.restore_from_checkpoint = true;
    return *this;
  }

  // Checkpoint plane v2: between periodic fulls, workers ship incremental
  // delta records (the unit's mutation journal since the last shipped
  // record) — up to `deltas_per_full` deltas per full snapshot. Cuts state
  // bytes on the wire; the master reconstructs restore state as last full +
  // ordered deltas. Layered on with_checkpointing(); 0 keeps full-only.
  SwarmConfig& with_delta_checkpointing(std::size_t deltas_per_full = 8) {
    worker.checkpoint.deltas_per_full = deltas_per_full;
    return *this;
  }

  // Checkpoint plane v2: the master relays every accepted checkpoint record
  // (full or delta) to a per-instance peer worker, re-chosen on eviction.
  // Restore then falls back master store -> peer replica -> state lost, so
  // crash recovery survives the master's own volatile-state loss.
  SwarmConfig& with_peer_replication() {
    master.replicate_to_peer = true;
    return *this;
  }

  // swing-shard: devices group into cells run by cell masters under a
  // gateway coordinator, and every routing change ships as an
  // epoch-versioned update applied at frame boundaries (fixes the stranded
  // mid-run-join frame by construction). Off by default — the single-cell
  // control plane stays byte-identical to the seed.
  SwarmConfig& with_cells(std::size_t cell_size_target = 4) {
    master.cells_enabled = true;
    master.cell_size_target = cell_size_target;
    worker.cells_enabled = true;
    return *this;
  }
};

class Swarm {
 public:
  explicit Swarm(Simulator& sim, SwarmConfig config = {});
  ~Swarm();

  Swarm(const Swarm&) = delete;
  Swarm& operator=(const Swarm&) = delete;

  // --- Testbed construction ---------------------------------------------

  DeviceId add_device(const device::DeviceProfile& profile,
                      net::Position pos);
  // Places the device in a fixed-RSSI "zone" (paper-style placement).
  DeviceId add_device_at_rssi(const device::DeviceProfile& profile,
                              double rssi_dbm);

  [[nodiscard]] device::Device& device(DeviceId id);
  [[nodiscard]] device::Walker& walker(DeviceId id);

  // --- App lifecycle -------------------------------------------------------

  // Starts the master (and its co-located worker) on `id` with the app.
  void launch_master(DeviceId id, dataflow::AppGraph graph);

  // Starts a worker on `id`; it discovers the master and joins. Can be
  // called before or after start() (late join), and again after the
  // device left (the user walks back into range): the device re-attaches
  // to the network with its original placement and joins as a fresh
  // worker.
  void launch_worker(DeviceId id);

  void start();  // Master broadcasts Start: sources begin sensing.
  void stop();   // Master broadcasts Stop.

  // Worker announces Bye, then its device drops off the network.
  void leave_gracefully(DeviceId id);
  // Device vanishes without warning (user walks away / battery dies):
  // upstreams find out through failed sends. Tuples queued on the device
  // but never processed are booked as abrupt-leave drops (swing-audit).
  void leave_abruptly(DeviceId id);

  // --- swing-chaos worker faults (scriptable via Scenario) --------------

  // GC-pause-style freeze: the worker buffers inbound messages and stops
  // sensing/heartbeating until thawed, then replays the backlog.
  void freeze_worker(DeviceId id, bool frozen);
  // Multiplies the device's per-tuple compute cost (thermal throttling).
  void slow_worker(DeviceId id, double factor);

  // --- swing-state live migration ----------------------------------------

  // Planned handoff: every stateful instance on `from` quiesces, drains,
  // snapshots, and resumes on `to` with zero tuple loss. Returns how many
  // handoffs started (see Master::migrate_stateful).
  int migrate_stateful(DeviceId from, DeviceId to);

  // Which 2PC participant a crash_during_migration targets.
  enum class MigrationVictim : std::uint8_t {
    kSource = 0,
    kDestination = 1,
    kMaster = 2,  // Volatile-state loss (crash_master_state), not a device.
  };

  // Chaos verb: the master process loses its in-memory state (checkpoint
  // store + live migration transactions) and runs presumed-abort recovery
  // from its durable decision log. No-op before launch_master.
  void crash_master_state();

  // swing-shard chaos verb: abruptly kills the device currently acting as
  // `cell`'s master (its role device). No-op when cells are off, the cell
  // does not exist, or its role is the gateway's own device. Returns the
  // crashed device (invalid when nothing was crashed).
  DeviceId crash_cell_master(CellId cell);

  // Chaos verb: starts migrating every stateful instance on `from` to `to`
  // and crashes `victim` synchronously the first time the coordinator
  // crosses `phase`. The hook is one-shot; later transactions proceed
  // normally. Returns how many handoffs started.
  int crash_during_migration(DeviceId from, DeviceId to,
                             MigrationPhase phase, MigrationVictim victim);

  // Flushes sink reorder buffers and halts all workers (end of experiment).
  void shutdown();

  // --- Access ---------------------------------------------------------

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] net::Medium& medium() { return medium_; }
  [[nodiscard]] net::Transport& transport() { return transport_; }
  [[nodiscard]] net::Discovery& discovery() { return discovery_; }
  [[nodiscard]] MetricsCollector& metrics() { return metrics_; }
  // The swarm-wide metrics registry: every component (collector, medium,
  // swarm managers, master) registers its instruments here.
  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }
  // The hop-level tracer; records nothing unless SwarmConfig::trace.enabled.
  [[nodiscard]] obs::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return tracer_; }
  // The swing-audit ledger (see core/tuple_ledger.h). audit() snapshots
  // the conservation report at any point; shutdown() checks it.
  [[nodiscard]] const core::TupleLedger& ledger() const { return ledger_; }
  [[nodiscard]] core::AuditReport audit() const { return ledger_.audit(); }
  // The installed fault plan; null unless SwarmConfig::chaos_enabled.
  [[nodiscard]] chaos::FaultPlan* fault_plan() { return fault_plan_.get(); }
  [[nodiscard]] Master* master() { return master_.get(); }
  [[nodiscard]] Worker* worker(DeviceId id);
  [[nodiscard]] const dataflow::AppGraph& graph() const { return graph_; }
  [[nodiscard]] std::vector<DeviceId> devices() const;

  // --- Energy accounting (paper §VI-B2 modelling methodology) ----------

  struct EnergySnapshot {
    SimTime when;
    double cpu_j = 0.0;
    double wifi_j = 0.0;
  };
  struct PowerReport {
    double cpu_w = 0.0;
    double wifi_w = 0.0;
    [[nodiscard]] double total_w() const { return cpu_w + wifi_w; }
  };

  [[nodiscard]] EnergySnapshot energy_snapshot(DeviceId id) const;
  // Average power between two snapshots of the same device.
  [[nodiscard]] static PowerReport power_between(const EnergySnapshot& a,
                                                 const EnergySnapshot& b);
  // Average power from simulation start to now.
  [[nodiscard]] PowerReport average_power(DeviceId id) const;

 private:
  struct Node {
    std::unique_ptr<device::Device> device;
    std::unique_ptr<device::Walker> walker;
    std::unique_ptr<Worker> worker;
    // Original placement, for re-attachment after a leave.
    net::Position home_position{};
    std::optional<double> home_rssi_override;
    double prev_cpu_seconds = 0.0;
    SimTime prev_sample{};
  };

  Node& node(DeviceId id);
  const Node& node(DeviceId id) const;
  void register_dispatch(DeviceId id);
  void sample_cpu();

  Simulator& sim_;
  SwarmConfig config_;
  Rng rng_;
  core::TupleLedger ledger_;
  // Declared before medium_ (whose config carries a pointer to it).
  obs::Registry registry_;
  obs::Tracer tracer_;
  // Declared (and constructed) before medium_, whose config carries the
  // hook pointer; null when chaos is disabled.
  std::unique_ptr<chaos::FaultPlan> fault_plan_;
  net::Medium medium_;
  net::Transport transport_;
  net::Discovery discovery_;
  MetricsCollector metrics_;
  dataflow::AppGraph graph_;
  std::unique_ptr<Master> master_;
  std::map<std::uint64_t, Node> nodes_;
  std::uint64_t next_device_ = 0;
  PeriodicTask cpu_sampler_;
};

}  // namespace swing::runtime
