// Experiment measurement plane.
//
// Collects everything the paper's evaluation reports: per-frame end-to-end
// latency with transmission/queuing/processing decomposition, arrival and
// playback timings (Fig. 8), throughput over time (Figs. 9-10), per-device
// input rates, bytes, CPU utilisation samples (Fig. 5), and drop counts.
// Pure observer: framework behaviour never reads the collector.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "common/time.h"
#include "dataflow/tuple.h"
#include "runtime/messages.h"
#include "sim/trace.h"

namespace swing::runtime {

struct FrameRecord {
  TupleId id;
  SimTime source_time;
  SimTime arrival;
  SimTime display{};
  bool displayed = false;
  DelayBreakdown breakdown;

  [[nodiscard]] double e2e_ms() const {
    return (arrival - source_time).millis();
  }
};

struct DeviceCounters {
  std::uint64_t frames_in = 0;       // Data tuples routed to this device.
  std::uint64_t bytes_in = 0;        // Wire bytes of those tuples.
  std::uint64_t frames_from_source = 0;  // Subset sent by source units.
  SampleStats cpu_util;              // Sampled utilisation, [0, 1].
};

class MetricsCollector {
 public:
  // --- Sink events ----------------------------------------------------

  void on_sink_arrival(const dataflow::Tuple& tuple,
                       const DelayBreakdown& breakdown, SimTime arrival) {
    FrameRecord rec;
    rec.id = tuple.id();
    rec.source_time = tuple.source_time();
    rec.arrival = arrival;
    rec.breakdown = breakdown;
    index_[tuple.id().value()] = frames_.size();
    frames_.push_back(rec);
    arrivals_.record(arrival, double(tuple.id().value()));
  }

  void on_play(TupleId id, SimTime when) {
    auto it = index_.find(id.value());
    if (it == index_.end()) return;
    frames_[it->second].display = when;
    frames_[it->second].displayed = true;
    plays_.record(when, double(id.value()));
  }

  // --- Data-plane events ----------------------------------------------

  void on_routed(DeviceId to, std::uint64_t wire_bytes, bool from_source) {
    auto& c = devices_[to.value()];
    ++c.frames_in;
    c.bytes_in += wire_bytes;
    if (from_source) ++c.frames_from_source;
  }

  void on_send_failed() { ++send_failures_; }
  // A sensed frame was dropped at the source: no downstream to route to, or
  // the dispatch connection was blocked (TCP backpressure) so the camera
  // overran.
  void on_source_dropped() { ++source_drops_; }
  // A tuple was dropped at a worker whose compute queue was full.
  void on_compute_dropped() { ++compute_drops_; }
  // A tuple outlived its TTL before processing and was shed.
  void on_stale_dropped() { ++stale_drops_; }

  // --- Sampling (driven by the runtime's 1 s sampler) ------------------

  void record_cpu_sample(DeviceId id, double utilisation, SimTime now) {
    devices_[id.value()].cpu_util.add(utilisation);
    cpu_series_[id.value()].record(now, utilisation);
  }

  // --- Queries ----------------------------------------------------------

  [[nodiscard]] const std::vector<FrameRecord>& frames() const {
    return frames_;
  }

  [[nodiscard]] std::size_t frames_arrived() const { return frames_.size(); }

  // End-to-end latency stats over frames arriving in [from, to).
  [[nodiscard]] SampleStats latency_stats(SimTime from = SimTime{},
                                          SimTime to = SimTime::max()) const {
    SampleStats stats;
    for (const auto& f : frames_) {
      if (f.arrival >= from && f.arrival < to) stats.add(f.e2e_ms());
    }
    return stats;
  }

  // Mean delivered frame rate over [from, to).
  [[nodiscard]] double throughput_fps(SimTime from, SimTime to) const {
    const double span = (to - from).seconds();
    if (span <= 0.0) return 0.0;
    std::size_t n = 0;
    for (const auto& f : frames_) {
      if (f.arrival >= from && f.arrival < to) ++n;
    }
    return double(n) / span;
  }

  // Frames delivered per one-second bin over [from, to).
  [[nodiscard]] std::vector<std::size_t> throughput_bins(SimTime from,
                                                         SimTime to) const {
    return arrivals_.binned_count(from, to, seconds(1.0));
  }

  [[nodiscard]] const TraceSeries& arrivals() const { return arrivals_; }
  [[nodiscard]] const TraceSeries& plays() const { return plays_; }

  [[nodiscard]] const DeviceCounters& device(DeviceId id) const {
    static const DeviceCounters kEmpty{};
    auto it = devices_.find(id.value());
    return it == devices_.end() ? kEmpty : it->second;
  }

  [[nodiscard]] const TraceSeries& cpu_series(DeviceId id) {
    return cpu_series_[id.value()];
  }

  [[nodiscard]] std::uint64_t send_failures() const { return send_failures_; }
  [[nodiscard]] std::uint64_t source_drops() const { return source_drops_; }
  [[nodiscard]] std::uint64_t compute_drops() const { return compute_drops_; }
  [[nodiscard]] std::uint64_t stale_drops() const { return stale_drops_; }

  // Mean delay decomposition over all frames (Fig. 2).
  [[nodiscard]] DelayBreakdown mean_breakdown() const {
    DelayBreakdown sum;
    if (frames_.empty()) return sum;
    for (const auto& f : frames_) {
      sum.transmission_ms += f.breakdown.transmission_ms;
      sum.queuing_ms += f.breakdown.queuing_ms;
      sum.processing_ms += f.breakdown.processing_ms;
    }
    const double n = double(frames_.size());
    sum.transmission_ms /= n;
    sum.queuing_ms /= n;
    sum.processing_ms /= n;
    return sum;
  }

 private:
  std::vector<FrameRecord> frames_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::unordered_map<std::uint64_t, DeviceCounters> devices_;
  std::map<std::uint64_t, TraceSeries> cpu_series_;
  TraceSeries arrivals_;
  TraceSeries plays_;
  std::uint64_t send_failures_ = 0;
  std::uint64_t source_drops_ = 0;
  std::uint64_t compute_drops_ = 0;
  std::uint64_t stale_drops_ = 0;
};

}  // namespace swing::runtime
