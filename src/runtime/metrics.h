// Experiment measurement plane.
//
// Collects everything the paper's evaluation reports: per-frame end-to-end
// latency with transmission/queuing/processing decomposition, arrival and
// playback timings (Fig. 8), throughput over time (Figs. 9-10), per-device
// input rates, bytes, CPU utilisation samples (Fig. 5), and drop counts.
// Pure observer: framework behaviour never reads the collector.
//
// The collector reports into an obs::Registry (the unified metrics plane,
// see src/obs/registry.h): drop counters are keyed by the audit ledger's
// DropReason taxonomy so the metrics plane and the audit plane agree on
// why tuples disappear, and latency distributions feed HDR histograms with
// p50/p95/p99. By default the collector owns a private registry; the Swarm
// passes its swarm-wide one so Medium/SwarmManager/Master metrics land in
// the same namespace.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "common/time.h"
#include "core/tuple_ledger.h"
#include "dataflow/tuple.h"
#include "obs/registry.h"
#include "runtime/messages.h"
#include "sim/trace.h"

namespace swing::runtime {

struct FrameRecord {
  TupleId id;
  SimTime source_time;
  SimTime arrival;
  SimTime display{};
  bool displayed = false;
  DelayBreakdown breakdown;

  [[nodiscard]] double e2e_ms() const {
    return (arrival - source_time).millis();
  }
};

struct DeviceCounters {
  std::uint64_t frames_in = 0;       // Data tuples routed to this device.
  std::uint64_t bytes_in = 0;        // Wire bytes of those tuples.
  std::uint64_t frames_from_source = 0;  // Subset sent by source units.
  SampleStats cpu_util;              // Sampled utilisation, [0, 1].
};

class MetricsCollector {
 public:
  // With no argument the collector owns a private registry (unit tests,
  // standalone use); the Swarm passes its swarm-wide registry instead.
  explicit MetricsCollector(obs::Registry* registry = nullptr) {
    if (registry == nullptr) {
      own_registry_ = std::make_unique<obs::Registry>();
      registry = own_registry_.get();
    }
    registry_ = registry;
    for (int r = 0; r < core::kDropReasonCount; ++r) {
      drop_counters_[r] = &registry_->counter(
          "tuples_dropped",
          {{"reason", core::drop_reason_name(core::DropReason(r))}});
    }
    delivered_counter_ = &registry_->counter("frames_delivered");
    played_counter_ = &registry_->counter("frames_played");
    retransmit_counter_ = &registry_->counter("tuples_retransmitted");
    dedup_counter_ = &registry_->counter("tuples_deduplicated");
    fallback_counter_ = &registry_->counter("tuples_local_fallback");
    e2e_hist_ = &registry_->histogram("e2e_latency_ms");
    retry_hist_ = &registry_->histogram("retry_latency_ms");
    checkpoint_taken_counter_ = &registry_->counter("checkpoints_taken");
    delta_taken_counter_ = &registry_->counter("deltas_taken");
    checkpoint_restored_counter_ = &registry_->counter("checkpoints_restored");
    migration_completed_counter_ = &registry_->counter("migrations_completed");
    // Checkpoint plane v2: state bytes shipped, split by record kind so the
    // bench can report the delta-log bytes win honestly (the master's
    // replication relay adds the kind=replica series to the same family).
    state_bytes_full_counter_ =
        &registry_->counter("state_bytes", {{"kind", "full"}});
    state_bytes_delta_counter_ =
        &registry_->counter("state_bytes", {{"kind", "delta"}});
    checkpoint_latency_hist_ = &registry_->histogram("checkpoint_latency_ms");
    restore_latency_hist_ = &registry_->histogram("restore_latency_ms");
    transmission_hist_ = &registry_->histogram("delay_transmission_ms");
    queuing_hist_ = &registry_->histogram("delay_queuing_ms");
    processing_hist_ = &registry_->histogram("delay_processing_ms");
  }

  [[nodiscard]] obs::Registry& registry() { return *registry_; }
  [[nodiscard]] const obs::Registry& registry() const { return *registry_; }

  // --- Sink events ----------------------------------------------------

  void on_sink_arrival(const dataflow::Tuple& tuple,
                       const DelayBreakdown& breakdown, SimTime arrival) {
    FrameRecord rec;
    rec.id = tuple.id();
    rec.source_time = tuple.source_time();
    rec.arrival = arrival;
    rec.breakdown = breakdown;
    index_[tuple.id().value()] = frames_.size();
    delivered_counter_->inc();
    e2e_hist_->record(rec.e2e_ms());
    transmission_hist_->record(breakdown.transmission_ms);
    queuing_hist_->record(breakdown.queuing_ms);
    processing_hist_->record(breakdown.processing_ms);
    frames_.push_back(rec);
    arrivals_.record(arrival, double(tuple.id().value()));
  }

  void on_play(TupleId id, SimTime when) {
    auto it = index_.find(id.value());
    if (it == index_.end()) return;
    frames_[it->second].display = when;
    frames_[it->second].displayed = true;
    played_counter_->inc();
    plays_.record(when, double(id.value()));
  }

  // --- Data-plane events ----------------------------------------------

  void on_routed(DeviceId to, std::uint64_t wire_bytes, bool from_source) {
    auto& c = devices_[to.value()];
    ++c.frames_in;
    c.bytes_in += wire_bytes;
    if (from_source) ++c.frames_from_source;
  }

  // A tuple left the pipeline without reaching a sink. One entry point for
  // every drop site, keyed by the audit ledger's taxonomy — the drop sites
  // that also report to the TupleLedger pass the identical reason.
  void on_drop(core::DropReason reason) {
    drop_counters_[std::size_t(reason)]->inc();
  }

  // --- Recovery events (swing-chaos) -----------------------------------

  // The recovery layer re-sent a tuple after an ACK timeout.
  void on_retransmit() { retransmit_counter_->inc(); }

  // A receiver discarded a tuple it had already processed.
  void on_dedup() { dedup_counter_->inc(); }

  // No reachable downstream: the tuple executed on the source device.
  void on_local_fallback() { fallback_counter_->inc(); }

  // A retransmitted tuple was finally ACKed `ms` after its *first* send —
  // the latency cost paid by recovery (retry-latency histogram).
  void on_retry_acked(double ms) { retry_hist_->record(ms); }

  // --- State events (swing-state) --------------------------------------

  // A worker serialized one instance's FULL state (periodic interval,
  // delta-cadence rollover, or migration-final).
  void on_checkpoint_taken(std::uint64_t snapshot_bytes) {
    checkpoint_taken_counter_->inc();
    state_bytes_full_counter_->inc(snapshot_bytes);
  }

  // A worker serialized an incremental delta record.
  void on_delta_taken(std::uint64_t delta_bytes) {
    delta_taken_counter_->inc();
    state_bytes_delta_counter_->inc(delta_bytes);
  }

  // The master stored a checkpoint `ms` after the worker took it.
  void on_checkpoint_stored(double ms) {
    checkpoint_latency_hist_->record(ms);
  }

  // A worker applied a restored snapshot `ms` after the master sent it.
  void on_checkpoint_restored(double ms) {
    checkpoint_restored_counter_->inc();
    restore_latency_hist_->record(ms);
  }

  // The master completed a quiesce/drain/snapshot/transfer/resume handoff.
  void on_migration_completed() { migration_completed_counter_->inc(); }

  // --- Sampling (driven by the runtime's 1 s sampler) ------------------

  void record_cpu_sample(DeviceId id, double utilisation, SimTime now) {
    devices_[id.value()].cpu_util.add(utilisation);
    cpu_series_[id.value()].record(now, utilisation);
  }

  // --- Queries ----------------------------------------------------------

  [[nodiscard]] const std::vector<FrameRecord>& frames() const {
    return frames_;
  }

  [[nodiscard]] std::size_t frames_arrived() const { return frames_.size(); }

  // End-to-end latency stats over frames arriving in [from, to).
  [[nodiscard]] SampleStats latency_stats(SimTime from = SimTime{},
                                          SimTime to = SimTime::max()) const {
    SampleStats stats;
    for (const auto& f : frames_) {
      if (f.arrival >= from && f.arrival < to) stats.add(f.e2e_ms());
    }
    return stats;
  }

  // Mean delivered frame rate over [from, to).
  [[nodiscard]] double throughput_fps(SimTime from, SimTime to) const {
    const double span = (to - from).seconds();
    if (span <= 0.0) return 0.0;
    std::size_t n = 0;
    for (const auto& f : frames_) {
      if (f.arrival >= from && f.arrival < to) ++n;
    }
    return double(n) / span;
  }

  // Frames delivered per one-second bin over [from, to).
  [[nodiscard]] std::vector<std::size_t> throughput_bins(SimTime from,
                                                         SimTime to) const {
    return arrivals_.binned_count(from, to, seconds(1.0));
  }

  [[nodiscard]] const TraceSeries& arrivals() const { return arrivals_; }
  [[nodiscard]] const TraceSeries& plays() const { return plays_; }

  [[nodiscard]] const DeviceCounters& device(DeviceId id) const {
    static const DeviceCounters kEmpty{};
    auto it = devices_.find(id.value());
    return it == devices_.end() ? kEmpty : it->second;
  }

  [[nodiscard]] const TraceSeries& cpu_series(DeviceId id) const {
    static const TraceSeries kEmptySeries{};
    auto it = cpu_series_.find(id.value());
    return it == cpu_series_.end() ? kEmptySeries : it->second;
  }

  // Drops recorded for one reason / across all reasons.
  [[nodiscard]] std::uint64_t drops(core::DropReason reason) const {
    return drop_counters_[std::size_t(reason)]->value();
  }
  [[nodiscard]] std::uint64_t total_drops() const {
    std::uint64_t total = 0;
    for (const auto* c : drop_counters_) total += c->value();
    return total;
  }

  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmit_counter_->value();
  }
  [[nodiscard]] std::uint64_t deduplications() const {
    return dedup_counter_->value();
  }
  [[nodiscard]] std::uint64_t local_fallbacks() const {
    return fallback_counter_->value();
  }
  [[nodiscard]] const obs::Histogram& retry_latency() const {
    return *retry_hist_;
  }
  [[nodiscard]] std::uint64_t checkpoints_taken() const {
    return checkpoint_taken_counter_->value();
  }
  [[nodiscard]] std::uint64_t checkpoints_restored() const {
    return checkpoint_restored_counter_->value();
  }
  [[nodiscard]] std::uint64_t migrations_completed() const {
    return migration_completed_counter_->value();
  }
  [[nodiscard]] std::uint64_t deltas_taken() const {
    return delta_taken_counter_->value();
  }
  // Total checkpoint bytes this worker-side collector shipped (full +
  // delta; the replica series is counted master-side at the relay).
  [[nodiscard]] std::uint64_t state_bytes() const {
    return state_bytes_full_counter_->value() +
           state_bytes_delta_counter_->value();
  }
  [[nodiscard]] std::uint64_t state_bytes_full() const {
    return state_bytes_full_counter_->value();
  }
  [[nodiscard]] std::uint64_t state_bytes_delta() const {
    return state_bytes_delta_counter_->value();
  }

  // The whole-run end-to-end latency distribution (HDR histogram; exact
  // per-window stats come from latency_stats()).
  [[nodiscard]] const obs::Histogram& e2e_latency() const {
    return *e2e_hist_;
  }

  // Mean delay decomposition over all frames (Fig. 2).
  [[nodiscard]] DelayBreakdown mean_breakdown() const {
    DelayBreakdown sum;
    if (frames_.empty()) return sum;
    for (const auto& f : frames_) {
      sum.transmission_ms += f.breakdown.transmission_ms;
      sum.queuing_ms += f.breakdown.queuing_ms;
      sum.processing_ms += f.breakdown.processing_ms;
    }
    const double n = double(frames_.size());
    sum.transmission_ms /= n;
    sum.queuing_ms /= n;
    sum.processing_ms /= n;
    return sum;
  }

 private:
  // Order matters: the owned registry (when used) must outlive the cached
  // instrument pointers below, and destruction runs bottom-up.
  std::unique_ptr<obs::Registry> own_registry_;
  obs::Registry* registry_ = nullptr;
  obs::Counter* drop_counters_[core::kDropReasonCount] = {};
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* played_counter_ = nullptr;
  obs::Counter* retransmit_counter_ = nullptr;
  obs::Counter* dedup_counter_ = nullptr;
  obs::Counter* fallback_counter_ = nullptr;
  obs::Counter* checkpoint_taken_counter_ = nullptr;
  obs::Counter* delta_taken_counter_ = nullptr;
  obs::Counter* checkpoint_restored_counter_ = nullptr;
  obs::Counter* migration_completed_counter_ = nullptr;
  obs::Counter* state_bytes_full_counter_ = nullptr;
  obs::Counter* state_bytes_delta_counter_ = nullptr;
  obs::Histogram* checkpoint_latency_hist_ = nullptr;
  obs::Histogram* restore_latency_hist_ = nullptr;
  obs::Histogram* e2e_hist_ = nullptr;
  obs::Histogram* retry_hist_ = nullptr;
  obs::Histogram* transmission_hist_ = nullptr;
  obs::Histogram* queuing_hist_ = nullptr;
  obs::Histogram* processing_hist_ = nullptr;

  std::vector<FrameRecord> frames_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::unordered_map<std::uint64_t, DeviceCounters> devices_;
  std::map<std::uint64_t, TraceSeries> cpu_series_;
  TraceSeries arrivals_;
  TraceSeries plays_;
};

}  // namespace swing::runtime
