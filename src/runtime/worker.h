// The Swing worker: hosts function-unit instances on one device.
//
// A worker receives Deploy/route-update control messages from the master,
// activates function units ("each device has already installed all the
// function units, the master simply provides the names to activate",
// §IV-B), and runs the data plane: receive tuple -> charge the device's CPU
// for the operator's cost -> ACK the upstream -> run the unit -> route each
// emitted tuple via the instance's SwarmManager and send it on. Source
// instances generate sensed tuples on a timer at the app's input rate; sink
// instances feed the metrics plane and the reordering service.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "core/swarm_manager.h"
#include "core/tuple_ledger.h"
#include "dataflow/graph.h"
#include "device/device.h"
#include "net/transport.h"
#include "obs/tracer.h"
#include "runtime/messages.h"
#include "runtime/metrics.h"
#include "runtime/reorder.h"
#include "shard/shard_messages.h"
#include "sim/simulator.h"
#include "state/state_messages.h"

namespace swing::runtime {

struct WorkerConfig {
  core::SwarmManagerConfig manager{};
  // Sink-side reorder buffer span (paper: 1 second of source data).
  SimDuration reorder_span = seconds(1.0);
  bool enable_reorder = true;
  // Data arriving for a not-yet-activated instance is buffered up to this
  // many tuples (covers the deploy/data race during joins).
  std::size_t pending_data_cap = 256;
  // SEEP-style bounded input buffer: a transform whose device already has
  // this many queued jobs drops new tuples (the real system stops reading
  // the socket; the effect on steady-state throughput is the same).
  std::size_t compute_backlog_cap = 24;
  // A source whose chosen connection has a full TCP window blocks on it
  // (head-of-line!) and retries at this cadence; frames sensed while
  // blocked are dropped, exactly like a stalled camera pipeline. This
  // blocking dispatch is what makes stragglers poison RR (paper §III).
  SimDuration blocked_retry = millis(20);

  // Liveness beacon cadence toward the master (see
  // MasterConfig::member_timeout). Zero disables heartbeats.
  SimDuration heartbeat_period = seconds(2.0);

  // swing-shard cell mode (see DESIGN.md §12, Swarm::with_cells). When on,
  // the worker applies epoch-versioned route updates transactionally at
  // frame boundaries, rejects stale epochs, and reports its cell membership
  // progress (source watermark + applied route seq) on the heartbeat
  // cadence. Off (the default) keeps the single-cell legacy control plane
  // byte-identical.
  bool cells_enabled = false;

  // Real-time staleness shedding: a tuple whose source timestamp is older
  // than this when it reaches a transform is discarded — a face recognised
  // five seconds late is a wasted battery, not a result. Zero disables
  // (the paper's prototype processes everything; see the latency tails in
  // Fig. 4).
  SimDuration tuple_ttl{};

  // SEEP-style per-connection tuple batching: coalesce up to `max_tuples`
  // data messages bound for the same device (or whatever accumulates
  // within `max_delay`) into one wire message, amortising header and MAC
  // overhead. Worth it for high-rate small-tuple apps; off by default
  // because it adds up to `max_delay` of latency per hop.
  struct Batching {
    bool enabled = false;
    std::size_t max_tuples = 8;
    SimDuration max_delay = millis(10);
    std::size_t buffer_cap = 64;  // Pending tuples per device; beyond: drop.
  } batching;

  // swing-chaos recovery (see DESIGN.md §8). All knobs default to the
  // seed's fault-free behaviour: no retransmission, no dedup memory, no
  // local fallback. Swarm::with_recovery() turns the full path on.
  struct Recovery {
    // Upstream ACK-timeout retransmission: every non-loopback data send is
    // tracked until its ACK; silence past the (exponentially backed-off)
    // timeout re-sends the tuple, re-routed to a different downstream when
    // the manager has one.
    bool retransmit = false;
    // The ACK is application-level (sent after processing, §IV-C), so the
    // timeout must sit above typical queuing + compute delay, not RTT —
    // too low and spurious retransmits of already-delivered tuples congest
    // the very window the source dispatch blocks on.
    SimDuration ack_timeout = seconds(2.0);
    double backoff = 2.0;  // Timeout multiplier per attempt.
    int max_retries = 3;
    // Tracked-send table cap; sends beyond it are simply not tracked
    // (bounded memory beats bounded loss here).
    std::size_t max_outstanding = 2048;
    // Receiver-side duplicate suppression: per-instance memory of the last
    // N processed tuple ids. A duplicate is re-ACKed (the original ACK may
    // be what the wire lost) and discarded. 0 disables.
    std::size_t dedup_window = 0;
    // Graceful degradation: when an edge has no reachable downstream (all
    // suspected dead, or retries exhausted), execute the downstream
    // operator on this device instead of dropping the tuple.
    bool local_fallback = false;
  } recovery;

  // swing-state checkpointing (see DESIGN.md §9). Off by default; the
  // Swarm's with_checkpointing() enables it together with the master's
  // restore-on-eviction path. The checkpoint clock is sim-time driven so
  // same-seed runs checkpoint at identical instants.
  struct Checkpoint {
    bool enabled = false;
    SimDuration interval = seconds(1.0);
    // Per-instance cap on the "absorbed since the last shipped snapshot"
    // id list a crash books as DropReason::kStateLost; beyond it the list
    // stops growing (the ledger's drop bookkeeping stays bounded).
    std::size_t max_uncheckpointed = 4096;
    // Checkpoint plane v2: ship this many incremental DeltaMsg records
    // between periodic full snapshots (0 = legacy full-every-interval).
    // A unit that cannot express the interval incrementally (journal
    // overflow, no delta contract) falls back to a full, which restarts
    // the cadence.
    std::size_t deltas_per_full = 0;
  } checkpoint;

  // swing-audit hook (see core/tuple_ledger.h): when set, the worker
  // reports every tuple emission, delivery, drop, reorder release and
  // latency sample to the ledger. Installed by the Swarm; null (off) for
  // bare unit-test workers. Pure observer — never read back.
  core::TupleLedger* ledger = nullptr;

  // swing-obs hook (see obs/tracer.h): when set, the worker records each
  // sampled tuple's lifecycle phases as trace spans. Installed by the
  // Swarm when tracing is enabled; same pure-observer contract as the
  // ledger.
  obs::Tracer* tracer = nullptr;
};

class Worker {
 public:
  Worker(Simulator& sim, device::Device& device, net::Transport& transport,
         const dataflow::AppGraph& graph, WorkerConfig config, Rng rng,
         MetricsCollector& metrics);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  [[nodiscard]] DeviceId device_id() const { return device_.id(); }

  // Sends Hello to the master (called on discovery, or directly).
  void connect_to_master(DeviceId master_device);

  // Inbound message entry point (wired into the transport by the runtime).
  // Malformed payloads are counted and dropped, never propagated.
  void handle_message(const net::Message& msg);

  // Link-failure notification from the transport: a peer device vanished.
  void on_link_down(DeviceId peer);

  // Halts sources and managers (local shutdown; does not notify anyone).
  void shutdown();

  // Graceful leave: tell the master goodbye, then shut down.
  void leave();

  // swing-chaos crash-stop: halts like shutdown() but as a *fault* — no
  // reorder flush, no goodbye, and everything still queued on this device
  // (deploy-race buffers, unflushed batches, the compute queue, a blocked
  // dispatch) is recorded as a DropReason::kAbruptLeave loss rather than
  // benign in-flight residue.
  void crash();

  // swing-chaos freeze: a frozen worker stops processing entirely — no
  // message handling (inbound messages buffer up to pending_data_cap), no
  // heartbeats, no source emissions — then replays the buffered inbox on
  // thaw. Models a GC pause / suspended app.
  void set_frozen(bool frozen);
  [[nodiscard]] bool frozen() const { return frozen_; }

  // swing-chaos slow-down: multiplies every local operator cost (thermal
  // throttling, background load). 1.0 restores normal speed.
  void set_slowdown(double factor) { slowdown_ = factor < 0.0 ? 0.0 : factor; }

  // --- Introspection (tests/benches) ---------------------------------

  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] bool alive() const { return alive_; }
  // The SwarmManager of this device's instance of `op` for the edge toward
  // `down_op`; the first outgoing edge when `down_op` is invalid. Null when
  // the operator has no instance here or no such edge (e.g. sinks).
  [[nodiscard]] const core::SwarmManager* manager_of(
      OperatorId op, OperatorId down_op = OperatorId{}) const;
  [[nodiscard]] const ReorderBuffer* reorder_of(OperatorId op) const;
  [[nodiscard]] std::uint64_t tuples_processed() const { return processed_; }
  [[nodiscard]] std::uint64_t malformed_messages() const {
    return malformed_messages_;
  }
  [[nodiscard]] std::size_t outstanding_sends() const {
    return outstanding_.size();
  }
  // Instances handed off by live migration (still forwarding to the target).
  [[nodiscard]] std::size_t forwarded_instances() const {
    return forwards_.size();
  }
  // Checkpoint plane v2 introspection: peer-replica chains held for other
  // workers' instances, and migration state transfers staged (inert,
  // awaiting COMMIT) on this device.
  [[nodiscard]] std::size_t replica_chain_count() const {
    return replicas_.size();
  }
  [[nodiscard]] std::size_t staged_migration_count() const {
    return staged_migrations_.size();
  }
  // swing-shard introspection: this device's cell (invalid until the first
  // CellAssign) and the highest contiguously-applied route-update seq.
  [[nodiscard]] CellId cell() const { return cell_; }
  [[nodiscard]] DeviceId cell_master() const { return cell_master_; }
  [[nodiscard]] std::uint64_t applied_route_seq() const {
    return route_seq_expected_ - 1;
  }

 private:
  struct Instance;

  class InstanceContext;  // dataflow::Context implementation.

  // A data message committed to a connection; also the unit of
  // retransmission tracking (swing-chaos).
  struct PendingSend {
    DataMsg data;
    DeviceId dst_device;
    TupleId tuple_id;  // For audit attribution if the send ultimately fails.
    std::uint64_t wire = 0;
    bool from_source = false;
    std::size_t edge_index = 0;  // Which edge of the sending instance.
  };

  // Key of one tracked (un-ACKed) send: the sending instance, the tuple,
  // and the edge it went out on — a multi-edge tuple is tracked per edge.
  struct OutKey {
    std::uint64_t inst = 0;
    std::uint64_t tuple = 0;
    std::uint64_t edge = 0;
    friend constexpr auto operator<=>(const OutKey&, const OutKey&) = default;
  };

  struct Outstanding {
    PendingSend send;       // Kept verbatim for re-sending.
    int attempts = 0;       // Retransmissions performed so far.
    SimTime first_sent{};   // For the retry-latency histogram.
    EventId timer{};
    InstanceId last_target;  // Avoided on the next retransmit.
  };

  void dispatch_message(const net::Message& msg);
  // Encodes `msg` into the per-worker send arena and hands the frame span to
  // the transport (which copies it into the in-flight Message synchronously,
  // so the arena is immediately reusable). One arena, zero per-send buffers.
  template <typename M>
  bool send_frame(DeviceId dst, MsgType type, const M& msg,
                  std::size_t wire_bytes = 0);
  void send_on_edge(Instance& from, std::size_t edge_index,
                    const dataflow::Tuple& tuple,
                    const DelayBreakdown& accumulated);
  void activate(const DeployMsg::Assignment& assignment,
                const state::RestoreMsg* restore = nullptr);
  void handle_data(DataMsg data);
  void process_data(Instance& inst, DataMsg data);
  void handle_ack(const AckMsg& ack);
  void add_downstream(const RouteUpdateMsg& update);
  void remove_downstream_instance(InstanceId down, InstanceId upstream);
  void start_sources();
  void stop_sources();
  void start_source(Instance& inst);
  void arm_source(Instance& inst);
  void source_fire(Instance& inst);
  void route_and_send(Instance& from, const dataflow::Tuple& tuple,
                      const DelayBreakdown& accumulated);
  void send_data(Instance& from, PendingSend send);
  void retry_blocked(Instance& inst);
  void enqueue_batched(const PendingSend& send);
  void enqueue_batched_ack(DeviceId dst, const AckMsg& ack);
  void flush_batch(DeviceId dst, bool acks);
  void handle_data_batch(const net::Message& msg);
  void deliver_to_sink(Instance& inst, const dataflow::Tuple& tuple,
                       const DelayBreakdown& accumulated);
  Instance* find_instance(InstanceId id);

  // --- swing-chaos recovery (see WorkerConfig::Recovery) ----------------
  void track_outstanding(Instance& from, const PendingSend& send);
  void on_retry_timeout(const OutKey& key);
  void resolve_outstanding(Instance& inst, const AckMsg& ack);
  // Degraded-mode execution of edge `edge_index`'s downstream operator on
  // this device (no reachable downstream / retries exhausted).
  void execute_locally(Instance& from, std::size_t edge_index, DataMsg data);
  Instance* local_instance_of(OperatorId op);
  Instance* spawn_fallback_instance(OperatorId op);
  void note_compute_done(TupleId id);
  void drop_queued(TupleId id, core::DropReason reason);

  // --- swing-state (see WorkerConfig::Checkpoint, DESIGN.md §9) ---------
  void ensure_checkpoint_task();
  void checkpoint_tick();
  // Serializes the worker envelope (dedup window) + unit full state.
  Bytes full_envelope(Instance& inst);
  // Ships a full snapshot to the master; `migrate_to` marks a
  // migration-final snapshot. Resets the instance's delta cadence.
  void take_checkpoint(Instance& inst, DeviceId migrate_to = DeviceId{});
  // Ships an incremental DeltaMsg chained on the last full snapshot.
  void take_delta(Instance& inst);
  void handle_restore(const state::RestoreMsg& msg);
  // Re-addresses an in-flight DataMsg to the device now hosting `data`'s
  // migrated-away target instance (src fields preserved so the ACK still
  // reaches the original upstream).
  void forward_data(DataMsg&& data, DeviceId target);

  // --- swing-shard cell mode (see DESIGN.md §12) -------------------------
  void handle_cell_assign(DeviceId src, const shard::CellAssignMsg& msg);
  // Seq-ordered ingestion of epoch-versioned route updates: out-of-order
  // arrivals stash until the gap fills (or the master's anti-entropy
  // re-send fills it); already-applied seqs count as stale rejections.
  void handle_epoch_route(const shard::EpochRouteUpdateMsg& msg);
  void apply_epoch_route(const shard::EpochRouteUpdateMsg& msg);
  void send_cell_report();
  void ensure_report_task();
  void count_stale_epoch();

  // --- checkpoint plane v2: peer replication -----------------------------
  void handle_replicate(const state::ReplicateMsg& msg);
  void handle_replica_restore(const state::ReplicaRestoreMsg& msg);

  // --- checkpoint plane v2: two-phase-commit migration --------------------
  // Source role: PREPARE quiesces the instance (arrivals buffer locally so
  // ABORT can resume in place), drains compute, then transfers the final
  // snapshot to both the destination (MigrateStateMsg) and the master
  // (CheckpointMsg, keeping the chain store fresh).
  void handle_migrate_prepare(const state::MigratePrepareMsg& msg);
  void on_migration_drained(Instance& inst);
  void send_prepare_state(Instance& inst);
  // Destination role: stage the transferred state and vote.
  void handle_migrate_state(const state::MigrateStateMsg& msg);
  // Both roles: COMMIT activates the staged copy at the destination and
  // re-routes + retires at the source; ABORT discards the staged copy and
  // resumes the source. Both are idempotent.
  void handle_migrate_commit(const state::MigrateCommitMsg& msg);
  void handle_migrate_abort(const state::MigrateAbortMsg& msg);

  Simulator& sim_;
  device::Device& device_;
  net::Transport& transport_;
  const dataflow::AppGraph& graph_;
  WorkerConfig config_;
  Rng rng_;
  MetricsCollector& metrics_;

  DeviceId master_device_{};
  std::unique_ptr<PeriodicTask> heartbeat_task_;
  std::unique_ptr<PeriodicTask> checkpoint_task_;

  // swing-shard cell mode. The report task runs on the heartbeat cadence
  // even when this worker co-locates with the master (whose sources' frame
  // watermark the gateway needs most).
  CellId cell_{};
  DeviceId cell_master_{};
  std::uint64_t cell_epoch_ = 0;  // Newest epoch observed in any message.
  std::uint64_t route_seq_expected_ = 1;
  std::map<std::uint64_t, shard::EpochRouteUpdateMsg> route_seq_stash_;
  static constexpr std::size_t kRouteStashCap = 64;
  std::uint64_t source_watermark_ = 0;  // One past the max emitted frame id.
  std::unique_ptr<PeriodicTask> report_task_;
  obs::Counter* stale_epoch_counter_ = nullptr;  // Lazy: cell mode only.
  // Migrated-away instances: data arriving for them is forwarded to the
  // device that took them over (covers upstream routing-table lag).
  std::map<std::uint64_t, DeviceId> forwards_;
  bool running_ = false;
  bool alive_ = true;
  bool frozen_ = false;
  double slowdown_ = 1.0;
  std::uint64_t processed_ = 0;
  std::uint64_t malformed_messages_ = 0;

  // Un-ACKed tracked sends (retransmission). std::map: deterministic order.
  std::map<OutKey, Outstanding> outstanding_;
  // Tuples accepted into the device's compute queue and not yet done, so a
  // crash can attribute them (multiset semantics via a count).
  std::map<std::uint64_t, int> compute_queue_;
  // Messages received while frozen, replayed in order on thaw.
  std::deque<net::Message> frozen_inbox_;

  std::map<std::uint64_t, std::unique_ptr<Instance>> instances_;
  // Every instance this worker knows about (routing address book).
  std::map<std::uint64_t, InstanceInfo> peers_;
  // Tuples that raced ahead of their instance's Deploy.
  std::map<std::uint64_t, std::deque<DataMsg>> pending_data_;

  // Checkpoint plane v2: replica chains this worker keeps on behalf of
  // OTHER workers' instances (the master relays every stored record to the
  // instance's peer). Mirrors CheckpointStore's chain discipline: a full
  // resets the chain, a delta extends it only contiguously, anything else
  // clears it and waits for the next full.
  struct ReplicaChain {
    InstanceInfo instance;  // Last known live placement.
    std::uint64_t base_epoch = 0;
    Bytes base;
    std::vector<Bytes> deltas;  // Epochs base_epoch+1, +2, ...
    [[nodiscard]] std::uint64_t tip_epoch() const {
      return base_epoch + deltas.size();
    }
  };
  std::map<std::uint64_t, ReplicaChain> replicas_;  // By InstanceId value.

  // 2PC destination role: state transfers staged by txn id, inert until the
  // coordinator's COMMIT (activate) or ABORT (discard).
  std::map<std::uint64_t, state::MigrateStateMsg> staged_migrations_;

  // Batching service state, per (destination device, data|ack) stream.
  // Elements are encoded straight into the batch message's frame pool as
  // they arrive, so flushing is a single encode of pooled frames — no
  // per-element Bytes at any point.
  struct Batch {
    DataBatchMsg msg;
    // Tuple id per element for audit attribution (empty for ack batches).
    std::vector<TupleId> ids;
    std::uint64_t wire = 0;
    EventId flush_event{};
  };
  Batch& batch_for(DeviceId dst, bool acks) {
    return batches_[dst.value() * 2 + (acks ? 1 : 0)];
  }
  std::map<std::uint64_t, Batch> batches_;

  // Wire plane v2: every control/data send encodes into this reusable arena
  // (see common/bytes.h §SendArena). Exactly one frame is open at a time —
  // send_frame() is never re-entered, because transport sends copy
  // synchronously and deliver via the simulator's event queue.
  SendArena arena_;
};

}  // namespace swing::runtime
