#include "runtime/scenario.h"

#include <stdexcept>

namespace swing::runtime {

void Scenario::arm() {
  if (armed_) throw std::logic_error("scenario already armed");
  armed_ = true;
  armed_at_ = swarm_.sim().now();
  frames_at_last_sample_ = swarm_.metrics().frames_arrived();

  Simulator& sim = swarm_.sim();
  SimDuration latest{};
  for (const auto& action : actions_) {
    latest = std::max(latest, action.when);
    sim.schedule_at(armed_at_ + action.when,
                    [this, label = action.label, fn = action.action] {
                      pending_label_ = label;
                      fn(swarm_);
                    });
  }

  // Self-rescheduling sampler: one throughput sample per period, labelled
  // with whatever event fired inside the interval. Keeps sampling until
  // well past the last declared event, then stops on its own.
  const SimTime stop_after = armed_at_ + latest + seconds(300.0);
  sampler_ = [this, stop_after] {
    const std::size_t frames = swarm_.metrics().frames_arrived();
    Sample s;
    s.t_s = (swarm_.sim().now() - armed_at_).seconds();
    s.fps = double(frames - frames_at_last_sample_) /
            sample_period_.seconds();
    s.label = std::move(pending_label_);
    pending_label_.clear();
    samples_.push_back(std::move(s));
    frames_at_last_sample_ = frames;
    if (swarm_.sim().now() < stop_after) {
      swarm_.sim().schedule_after(sample_period_, sampler_);
    }
  };
  sim.schedule_after(sample_period_, sampler_);
}

}  // namespace swing::runtime
