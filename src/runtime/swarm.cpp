#include "runtime/swarm.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"
#include "common/logging.h"

namespace swing::runtime {

namespace {

net::MediumConfig with_registry(net::MediumConfig config,
                                obs::Registry* registry,
                                net::FaultHook* faults) {
  config.registry = registry;
  if (faults != nullptr) config.faults = faults;
  return config;
}

std::unique_ptr<chaos::FaultPlan> make_fault_plan(const SwarmConfig& config,
                                                  obs::Registry* registry) {
  if (!config.chaos_enabled) return nullptr;
  chaos::FaultPlanConfig plan = config.chaos;
  plan.registry = registry;
  return std::make_unique<chaos::FaultPlan>(plan);
}

}  // namespace

Swarm::Swarm(Simulator& sim, SwarmConfig config)
    : sim_(sim),
      config_(config),
      rng_(config.seed),
      tracer_(config.trace),
      fault_plan_(make_fault_plan(config, &registry_)),
      medium_(sim,
              with_registry(config.medium, &registry_, fault_plan_.get())),
      transport_(sim, medium_, config.transport),
      discovery_(sim),
      metrics_(&registry_),
      cpu_sampler_(sim, config.cpu_sample_period, [this] { sample_cpu(); }) {
  if (config_.audit) {
    // Every master/worker launched from this config reports to the ledger.
    config_.worker.ledger = &ledger_;
    config_.master.ledger = &ledger_;
  }
  // Every component constructed from this config reports into the one
  // swarm-wide registry.
  config_.worker.manager.registry = &registry_;
  config_.master.registry = &registry_;
  if (config_.trace.enabled) {
    config_.worker.tracer = &tracer_;
    config_.master.tracer = &tracer_;
  }
  cpu_sampler_.start();
}

Swarm::~Swarm() = default;

DeviceId Swarm::add_device(const device::DeviceProfile& profile,
                           net::Position pos) {
  const DeviceId id{next_device_++};
  Node n;
  n.device = std::make_unique<device::Device>(sim_, id, profile, rng_.fork());
  n.home_position = pos;
  medium_.attach(id, pos);
  n.walker = std::make_unique<device::Walker>(sim_, medium_, id);
  nodes_.emplace(id.value(), std::move(n));
  return id;
}

DeviceId Swarm::add_device_at_rssi(const device::DeviceProfile& profile,
                                   double rssi_dbm) {
  const DeviceId id = add_device(profile, net::Position{1.0, 0.0});
  medium_.set_rssi_override(id, rssi_dbm);
  node(id).home_rssi_override = rssi_dbm;
  return id;
}

Swarm::Node& Swarm::node(DeviceId id) {
  auto it = nodes_.find(id.value());
  if (it == nodes_.end()) throw std::out_of_range("unknown device");
  return it->second;
}

const Swarm::Node& Swarm::node(DeviceId id) const {
  auto it = nodes_.find(id.value());
  if (it == nodes_.end()) throw std::out_of_range("unknown device");
  return it->second;
}

device::Device& Swarm::device(DeviceId id) { return *node(id).device; }
device::Walker& Swarm::walker(DeviceId id) { return *node(id).walker; }

Worker* Swarm::worker(DeviceId id) {
  auto it = nodes_.find(id.value());
  return it == nodes_.end() ? nullptr : it->second.worker.get();
}

std::vector<DeviceId> Swarm::devices() const {
  std::vector<DeviceId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) out.emplace_back(id);
  return out;
}

void Swarm::register_dispatch(DeviceId id) {
  transport_.register_device(id, [this, id](const net::Message& msg) {
    // The master co-locates with a worker thread on its device; control
    // messages addressed to the master peel off here.
    if (master_ && master_->device() == id) {
      const auto type = MsgType(msg.type);
      if (type == MsgType::kHello || type == MsgType::kHeartbeat ||
          type == MsgType::kLeaveReport || type == MsgType::kBye ||
          type == MsgType::kCheckpoint || type == MsgType::kDelta ||
          type == MsgType::kMigrateAck || type == MsgType::kGatewayHello ||
          type == MsgType::kCellReport) {
        master_->handle_message(msg);
        return;
      }
    }
    if (Worker* w = worker(id)) w->handle_message(msg);
  });
  transport_.set_link_watcher(id, [this, id](DeviceId peer) {
    if (Worker* w = worker(id)) w->on_link_down(peer);
  });
}

void Swarm::launch_master(DeviceId id, dataflow::AppGraph graph) {
  if (master_) throw std::logic_error("master already launched");
  graph.validate();
  graph_ = std::move(graph);

  Node& n = node(id);
  n.worker = std::make_unique<Worker>(sim_, *n.device, transport_, graph_,
                                      config_.worker, rng_.fork(), metrics_);
  register_dispatch(id);
  master_ = std::make_unique<Master>(sim_, id, transport_, discovery_, graph_,
                                     config_.master);
  master_->launch();
}

void Swarm::launch_worker(DeviceId id) {
  if (!master_) throw std::logic_error("launch_master first");
  Node& n = node(id);
  if (n.worker && n.worker->alive()) return;
  if (n.worker) {
    // The device left earlier (worker shut down, radio detached) and is
    // back: re-attach with its original placement and start fresh.
    if (!medium_.attached(id)) {
      medium_.attach(id, n.home_position);
      if (n.home_rssi_override) {
        medium_.set_rssi_override(id, *n.home_rssi_override);
      }
    }
  }
  n.worker = std::make_unique<Worker>(sim_, *n.device, transport_, graph_,
                                      config_.worker, rng_.fork(), metrics_);
  register_dispatch(id);
  // The worker's background discovery service finds the master and connects
  // (paper §IV-C Discovery Service). Resolved through the node table so a
  // stale watcher from a previous life of this device stays harmless.
  discovery_.watch(kSwingService, [this, id](DeviceId provider, const Bytes&) {
    if (Worker* w = worker(id); w != nullptr && w->alive()) {
      w->connect_to_master(provider);
    }
  });
}

void Swarm::start() {
  if (!master_) throw std::logic_error("launch_master first");
  master_->start();
}

void Swarm::stop() {
  if (master_) master_->stop();
}

void Swarm::leave_gracefully(DeviceId id) {
  Node& n = node(id);
  if (!n.worker) return;
  n.worker->leave();
  // Give the Bye a moment to clear the air before the radio goes away.
  sim_.schedule_after(millis(50), [this, id] {
    transport_.unregister_device(id);
    medium_.detach(id);
  });
}

void Swarm::leave_abruptly(DeviceId id) {
  Node& n = node(id);
  // Crash-stop, not an orderly shutdown: queued-but-unprocessed tuples on
  // the vanishing device are booked as abrupt-leave drops rather than
  // silently flushed as if they had been delivered.
  if (n.worker) n.worker->crash();
  transport_.unregister_device(id);
  medium_.detach(id);
}

void Swarm::freeze_worker(DeviceId id, bool frozen) {
  Node& n = node(id);
  if (n.worker) n.worker->set_frozen(frozen);
}

void Swarm::slow_worker(DeviceId id, double factor) {
  Node& n = node(id);
  if (n.worker) n.worker->set_slowdown(factor);
}

int Swarm::migrate_stateful(DeviceId from, DeviceId to) {
  if (!master_) return 0;
  return master_->migrate_stateful(from, to);
}

void Swarm::crash_master_state() {
  if (master_) master_->crash_volatile_state();
}

DeviceId Swarm::crash_cell_master(CellId cell) {
  if (!master_ || !master_->cells_enabled()) return DeviceId{};
  const DeviceId role = master_->cell_role_device(cell);
  // Never crash the gateway's own device this way: that is a different
  // fault (partition_gateway_at models it without killing the swarm).
  if (!role.valid() || role == master_->device()) return DeviceId{};
  leave_abruptly(role);
  return role;
}

int Swarm::crash_during_migration(DeviceId from, DeviceId to,
                                  MigrationPhase phase,
                                  MigrationVictim victim) {
  if (!master_) return 0;
  // One-shot hook: the coordinator copies it before invoking, so clearing
  // it from inside the callback is safe. The crash lands synchronously at
  // the phase boundary — between the coordinator's state transition and
  // whatever it does next — which is exactly the window 2PC must survive.
  master_->set_migration_phase_hook(
      [this, phase, victim, from, to](MigrationPhase p,
                                      const Master::MigrationTxn&) {
        if (p != phase) return;
        master_->set_migration_phase_hook(nullptr);
        switch (victim) {
          case MigrationVictim::kSource:
            leave_abruptly(from);
            break;
          case MigrationVictim::kDestination:
            leave_abruptly(to);
            break;
          case MigrationVictim::kMaster:
            master_->crash_volatile_state();
            break;
        }
      });
  return master_->migrate_stateful(from, to);
}

void Swarm::shutdown() {
  if (master_) master_->stop();
  for (auto& [id, n] : nodes_) {
    if (n.worker) n.worker->shutdown();
  }
  if (config_.audit) {
    // The audit gate: a hard invariant violation (ghost tuple, duplicate
    // source emission, non-monotone reorder release, non-finite latency)
    // fails the run right here, in every test that shuts a swarm down.
    // Residual in-flight tuples are legitimate unless the caller drained
    // first — tests assert report.conserved() for that stronger claim.
    const core::AuditReport report = ledger_.audit();
    SWING_LOG(kInfo) << "swing-audit: " << report.summary();
    SWING_CHECK(report.ok()) << "swing-audit failed: " << report.summary()
                             << (report.violations.empty()
                                     ? ""
                                     : "; first: " + report.violations.front());
  }
}

void Swarm::sample_cpu() {
  const SimTime now = sim_.now();
  for (auto& [id, n] : nodes_) {
    const double total = n.device->total_cpu_seconds(now);
    const double dt = (now - n.prev_sample).seconds();
    if (dt > 0.0) {
      double util = (total - n.prev_cpu_seconds) / dt;
      // OS / background services keep even idle devices slightly busy.
      util += config_.cpu_noise_floor + 0.02 * rng_.uniform();
      util = std::min(util, 1.0);
      metrics_.record_cpu_sample(DeviceId{id}, util, now);
    }
    n.prev_cpu_seconds = total;
    n.prev_sample = now;
  }
}

Swarm::EnergySnapshot Swarm::energy_snapshot(DeviceId id) const {
  const Node& n = node(id);
  const SimTime now = sim_.now();
  const auto& profile = n.device->profile();
  const auto& net_stats = medium_.stats(id);
  EnergySnapshot snap;
  snap.when = now;
  snap.cpu_j = n.device->cpu_energy_j(now);
  snap.wifi_j = profile.wifi_idle_w * now.seconds() +
                (profile.wifi_peak_w - profile.wifi_idle_w) *
                    net_stats.airtime_s;
  return snap;
}

Swarm::PowerReport Swarm::power_between(const EnergySnapshot& a,
                                        const EnergySnapshot& b) {
  const double dt = (b.when - a.when).seconds();
  if (dt <= 0.0) return {};
  return PowerReport{(b.cpu_j - a.cpu_j) / dt, (b.wifi_j - a.wifi_j) / dt};
}

Swarm::PowerReport Swarm::average_power(DeviceId id) const {
  const EnergySnapshot snap = energy_snapshot(id);
  const double t = snap.when.seconds();
  if (t <= 0.0) return {};
  return PowerReport{snap.cpu_j / t, snap.wifi_j / t};
}

}  // namespace swing::runtime
