// The Swing master thread (paper §IV-B/C).
//
// The master is control-plane only: it advertises itself on the network,
// accepts worker connections, decides which function-unit instances each
// device activates, wires up routing tables (who is downstream of whom),
// and broadcasts start/stop. It never touches data tuples. It can (and in
// the paper does) co-locate with worker threads on the same device.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "core/tuple_ledger.h"
#include "dataflow/graph.h"
#include "net/discovery.h"
#include "net/transport.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "runtime/messages.h"
#include "sim/simulator.h"
#include "state/checkpoint_store.h"
#include "state/state_messages.h"

namespace swing::runtime {

inline constexpr const char* kSwingService = "_swing._tcp";

struct MasterConfig {
  // Whether transform operators may be placed on the master's own device.
  // The paper's testbed keeps device A control/sensing-only.
  bool transforms_on_master = false;
  // Members silent (no heartbeat, hello or leave-report) for longer than
  // this are presumed dead and removed. Must comfortably exceed the
  // workers' heartbeat period. Zero disables the sweep.
  SimDuration member_timeout = seconds(6.0);

  // swing-audit hook: control-plane events (admit, deploy, removal,
  // start/stop) fold into the ledger digest so same-seed runs must agree
  // on membership history, not just on the data plane. Installed by the
  // Swarm; null disables. Pure observer.
  core::TupleLedger* ledger = nullptr;

  // swing-obs: when set, control events also count into the registry as
  // "master_events"{kind=admit|deploy|remove|start|stop}. Installed by the
  // Swarm; null disables.
  obs::Registry* registry = nullptr;

  // swing-state: when true, a removed member's stateful instances are
  // redeployed on a surviving device and resumed from their latest stored
  // checkpoint (same InstanceId, new address) instead of being broadcast
  // away. Enabled by SwarmConfig::with_checkpointing().
  bool restore_from_checkpoint = false;

  // swing-obs: snapshot-transfer spans (taken -> stored). Installed by the
  // Swarm when tracing is enabled.
  obs::Tracer* tracer = nullptr;
};

// Control-event kinds the master records in the audit ledger.
enum class MasterEvent : std::uint8_t {
  kAdmit = 1,
  kDeploy = 2,
  kRemove = 3,
  kStart = 4,
  kStop = 5,
  // swing-state: a checkpoint was stored, an instance was redeployed with
  // restored state, and a live migration was commanded.
  kCheckpoint = 6,
  kRestore = 7,
  kMigrate = 8,
};

[[nodiscard]] const char* master_event_name(MasterEvent kind);

class Master {
 public:
  Master(Simulator& sim, DeviceId device, net::Transport& transport,
         net::Discovery& discovery, const dataflow::AppGraph& graph,
         MasterConfig config = {});

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  // Advertises the Swing service so workers can find and join us. The
  // master's own device joins immediately (it hosts sources and sinks).
  void launch();

  // Inbound control messages: Hello, LeaveReport, Bye.
  void handle_message(const net::Message& msg);

  // Tells every member to start sensing / stop.
  void start();
  void stop();

  // Adds a device to the swarm and deploys instances to it. Called from
  // Hello handling; public so tests can drive membership directly.
  void admit(DeviceId device);

  // Removes a departed device: deletes its instances from the registry and
  // broadcasts RemoveDownstream for each to all remaining members — except
  // stateful instances with a stored checkpoint when restore_from_checkpoint
  // is on: those are relocated to a survivor and resumed (same InstanceId).
  void remove_device(DeviceId device);

  // --- swing-state live migration ----------------------------------------

  // Planned handoff of one stateful instance to `to` (a current member).
  // Returns false (and does nothing) when the instance is unknown, not
  // stateful, already on `to`, or `to` cannot host its operator. The actual
  // transfer completes asynchronously when the source's final snapshot
  // arrives (see handle_checkpoint).
  bool migrate_instance(InstanceId instance, DeviceId to);

  // Migrates every stateful instance hosted on `from` to `to`; the planned
  // counterpart of an abrupt leave. Returns how many handoffs started.
  int migrate_stateful(DeviceId from, DeviceId to);

  // --- Introspection -----------------------------------------------------

  [[nodiscard]] DeviceId device() const { return device_; }
  [[nodiscard]] bool is_member(DeviceId id) const {
    return members_.contains(id.value());
  }
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }
  [[nodiscard]] std::vector<InstanceInfo> instances_of(OperatorId op) const;
  [[nodiscard]] std::size_t instance_count() const;
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] const state::CheckpointStore& checkpoints() const {
    return checkpoints_;
  }

 private:
  // Builds and sends the Deploy for a new member, then notifies upstream
  // hosts of the new downstream instances.
  void deploy_to(DeviceId device);
  [[nodiscard]] bool placeable(const dataflow::OperatorDecl& op,
                               DeviceId device) const;
  void send(DeviceId to, MsgType type, Bytes payload);
  // Encodes `msg` into the master's reusable send arena and ships the frame
  // view (wire plane v2); the transport copies it out synchronously.
  template <typename M>
  void send_msg(DeviceId to, MsgType type, const M& msg);
  void note_event(MasterEvent kind, std::uint64_t detail);

  // --- swing-state ------------------------------------------------------
  void handle_checkpoint(const state::CheckpointMsg& msg);
  void complete_migration(const state::CheckpointMsg& msg);
  // Sends RestoreMsg (snapshot + routing seeds) to `target` and re-announces
  // the instance, at its new address, to every upstream host. The registry
  // records (members_/by_op_) must already point at `target`.
  void install_restore(const state::CheckpointStore::Entry& entry,
                       DeviceId target);
  // Re-homes the bookkeeping for `info` to `target` (same InstanceId).
  void relocate_record(const InstanceInfo& info, DeviceId target);
  // Deterministic survivor choice: fewest hosted instances, ties to the
  // lowest device id; invalid when nobody placeable remains.
  [[nodiscard]] DeviceId pick_restore_target(const dataflow::OperatorDecl& op,
                                             DeviceId exclude) const;
  // Whether `op`'s unit opts into the state contract (probed once via the
  // factory and cached).
  [[nodiscard]] bool op_stateful(OperatorId op) const;

  Simulator& sim_;
  DeviceId device_;
  net::Transport& transport_;
  net::Discovery& discovery_;
  const dataflow::AppGraph& graph_;
  MasterConfig config_;

  void sweep_members();

  std::uint64_t next_instance_ = 0;
  bool started_ = false;
  // device id -> instances hosted there.
  std::map<std::uint64_t, std::vector<InstanceInfo>> members_;
  // operator id -> all its instances, in deployment order.
  std::map<std::uint64_t, std::vector<InstanceInfo>> by_op_;
  // device id -> last time we heard from it (heartbeat or control).
  std::map<std::uint64_t, SimTime> last_seen_;
  std::unique_ptr<PeriodicTask> sweep_task_;
  // swing-state: latest snapshot per instance, in-flight planned handoffs
  // (instance -> target), and the per-operator statefulness probe cache.
  state::CheckpointStore checkpoints_;
  // Reusable encode buffer for all control-plane sends (one frame at a time).
  SendArena arena_;
  std::map<std::uint64_t, DeviceId> pending_migrations_;
  mutable std::map<std::uint64_t, bool> stateful_cache_;
};

}  // namespace swing::runtime
