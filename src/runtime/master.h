// The Swing master thread (paper §IV-B/C).
//
// The master is control-plane only: it advertises itself on the network,
// accepts worker connections, decides which function-unit instances each
// device activates, wires up routing tables (who is downstream of whom),
// and broadcasts start/stop. It never touches data tuples. It can (and in
// the paper does) co-locate with worker threads on the same device.
//
// Checkpoint plane v2 additions: the master stores checkpoint *chains*
// (last full snapshot + ordered deltas), relays every accepted record to a
// per-instance peer worker (so restore survives master state loss), and
// drives live migration as a two-phase commit with a write-ahead decision
// log that makes crash-at-any-boundary recoverable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "core/tuple_ledger.h"
#include "dataflow/graph.h"
#include "net/discovery.h"
#include "net/transport.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "runtime/messages.h"
#include "shard/gateway.h"
#include "shard/shard_messages.h"
#include "sim/simulator.h"
#include "state/checkpoint_store.h"
#include "state/state_messages.h"

namespace swing::runtime {

inline constexpr const char* kSwingService = "_swing._tcp";
// swing-shard: each cell's role device (cell master) is advertised under
// this service so workers can observe cell topology without polling.
inline constexpr const char* kSwingCellService = "_swing-cell._tcp";

struct MasterConfig {
  // Whether transform operators may be placed on the master's own device.
  // The paper's testbed keeps device A control/sensing-only.
  bool transforms_on_master = false;
  // Members silent (no heartbeat, hello or leave-report) for longer than
  // this are presumed dead and removed. Must comfortably exceed the
  // workers' heartbeat period. Zero disables the sweep.
  SimDuration member_timeout = seconds(6.0);

  // swing-audit hook: control-plane events (admit, deploy, removal,
  // start/stop) fold into the ledger digest so same-seed runs must agree
  // on membership history, not just on the data plane. Installed by the
  // Swarm; null disables. Pure observer.
  core::TupleLedger* ledger = nullptr;

  // swing-obs: when set, control events also count into the registry as
  // "master_events"{kind=admit|deploy|remove|start|stop}. Installed by the
  // Swarm; null disables.
  obs::Registry* registry = nullptr;

  // swing-state: when true, a removed member's stateful instances are
  // redeployed on a surviving device and resumed from their latest stored
  // checkpoint chain (same InstanceId, new address) instead of being
  // broadcast away. Enabled by SwarmConfig::with_checkpointing().
  bool restore_from_checkpoint = false;

  // swing-state: when true, every accepted checkpoint record (full or
  // delta) is relayed to a master-chosen peer worker as a ReplicateMsg, so
  // an instance can still be restored after the master's own store is lost
  // (fallback chain: master store -> peer replica -> kStateLost). Enabled
  // by SwarmConfig::with_peer_replication().
  bool replicate_to_peer = false;

  // How long the 2PC coordinator waits for the destination's MigrateAck
  // after sending PREPARE before presuming the transfer failed and
  // aborting. Zero disables the timeout.
  SimDuration migration_prepare_timeout = seconds(3.0);

  // swing-obs: snapshot-transfer spans (taken -> stored). Installed by the
  // Swarm when tracing is enabled.
  obs::Tracer* tracer = nullptr;

  // --- swing-shard (hierarchical control plane) --------------------------
  // When true, members group into cells run by a GatewayCoordinator and
  // every routing change ships as an epoch-versioned update applied at
  // frame boundaries. When false (the default), the control plane is
  // byte-identical to the single-cell seed behaviour. Enabled by
  // SwarmConfig::with_cells().
  bool cells_enabled = false;
  // Cell split threshold is 2x this; merge threshold is half of it.
  std::size_t cell_size_target = 4;
  // Route-update boundaries are minted at (global source watermark + this
  // slack), giving in-flight frames below the boundary time to drain under
  // the routing they were emitted with.
  std::uint64_t epoch_boundary_slack = 256;
};

// Control-event kinds the master records in the audit ledger.
enum class MasterEvent : std::uint8_t {
  kAdmit = 1,
  kDeploy = 2,
  kRemove = 3,
  kStart = 4,
  kStop = 5,
  // swing-state: a checkpoint was stored, an instance was redeployed with
  // restored state, and a live migration was commanded.
  kCheckpoint = 6,
  kRestore = 7,
  kMigrate = 8,
  // Checkpoint plane v2: 2PC migration outcomes and delta-record storage.
  kMigrateCommit = 9,
  kMigrateAbort = 10,
  kDelta = 11,
  // swing-shard: cell topology changes and control-epoch bumps.
  kCellSplit = 12,
  kCellMerge = 13,
  kHandoff = 14,
  kEpochBump = 15,
};

[[nodiscard]] const char* master_event_name(MasterEvent kind);

// 2PC coordinator phase boundaries, in order. The chaos harness installs a
// hook that crashes a participant exactly at one of these points, so every
// transition of the migration state machine is exercised under failure.
enum class MigrationPhase : std::uint8_t {
  kPrepareSent = 0,   // PREPARE on the wire, timeout armed.
  kAckReceived = 1,   // Destination staged the state and acked.
  kCommitLogged = 2,  // COMMIT decision durably logged, not yet acted on.
  kCompleted = 3,     // Routes switched, records moved, txn retired.
};

class Master {
 public:
  // One in-flight migration transaction (coordinator side). Volatile: wiped
  // by crash_volatile_state(); recovery re-derives outcomes from the
  // persistent decision log.
  struct MigrationTxn {
    std::uint64_t txn = 0;
    InstanceInfo instance;  // Placement at the source when PREPARE was sent.
    DeviceId from;
    DeviceId to;
    bool acked = false;
    EventId timeout{};
  };

  using MigrationPhaseHook =
      std::function<void(MigrationPhase, const MigrationTxn&)>;

  Master(Simulator& sim, DeviceId device, net::Transport& transport,
         net::Discovery& discovery, const dataflow::AppGraph& graph,
         MasterConfig config = {});

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  // Advertises the Swing service so workers can find and join us. The
  // master's own device joins immediately (it hosts sources and sinks).
  void launch();

  // Inbound control messages: Hello, LeaveReport, Bye.
  void handle_message(const net::Message& msg);

  // Tells every member to start sensing / stop.
  void start();
  void stop();

  // Adds a device to the swarm and deploys instances to it. Called from
  // Hello handling; public so tests can drive membership directly.
  void admit(DeviceId device);

  // Removes a departed device: resolves any migration transactions it was
  // party to, deletes its instances from the registry, restores stateful
  // instances (master chain, then peer replica, then kStateLost), and
  // broadcasts RemoveDownstream for whatever could not be revived.
  void remove_device(DeviceId device);

  // --- swing-state live migration (two-phase commit) ----------------------

  // Starts a transactional handoff of one stateful instance to `to` (a
  // current member): PREPARE is sent to the source, which quiesces, drains,
  // and ships its final snapshot to the destination; the destination stages
  // it inert and acks; the master logs COMMIT and re-routes, or aborts (on
  // timeout / nack / participant death) leaving the source live. Returns
  // false (and does nothing) when the instance is unknown, not stateful,
  // already on `to`, mid-migration, or `to` cannot host its operator.
  bool migrate_instance(InstanceId instance, DeviceId to);

  // Migrates every stateful instance hosted on `from` to `to`; the planned
  // counterpart of an abrupt leave. Returns how many handoffs started.
  int migrate_stateful(DeviceId from, DeviceId to);

  // Chaos hook: called synchronously at each MigrationPhase boundary. The
  // hook may crash a participant (or this master's volatile state) from
  // inside the callback; the coordinator re-validates the transaction after
  // every invocation. Replacing/clearing the hook from within itself is
  // safe.
  void set_migration_phase_hook(MigrationPhaseHook hook) {
    phase_hook_ = std::move(hook);
  }

  // Chaos verb: models the master process losing its in-memory state (the
  // checkpoint store and the live transaction table) while the durable
  // decision log and replica assignments survive. Recovery runs presumed
  // abort: transactions whose last logged decision is PREPARE are aborted;
  // logged-but-unfinished COMMITs are idempotently re-driven to completion.
  void crash_volatile_state();

  // --- Introspection -----------------------------------------------------

  [[nodiscard]] DeviceId device() const { return device_; }
  [[nodiscard]] bool is_member(DeviceId id) const {
    return members_.contains(id.value());
  }
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }
  [[nodiscard]] std::vector<InstanceInfo> instances_of(OperatorId op) const;
  [[nodiscard]] std::size_t instance_count() const;
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] const state::CheckpointStore& checkpoints() const {
    return checkpoints_;
  }
  [[nodiscard]] std::size_t pending_migration_count() const {
    return txns_.size();
  }
  // The peer worker currently assigned to replicate `instance`'s chain;
  // invalid when replication is off or no eligible peer exists.
  [[nodiscard]] DeviceId replica_of(InstanceId instance) const;

  // --- swing-shard introspection ------------------------------------------

  [[nodiscard]] bool cells_enabled() const { return config_.cells_enabled; }
  [[nodiscard]] std::size_t cell_count() const {
    return gateway_ == nullptr ? 0 : gateway_->cell_count();
  }
  [[nodiscard]] CellId cell_of(DeviceId device) const {
    return gateway_ == nullptr ? CellId{} : gateway_->cell_of(device);
  }
  // The device currently acting as `cell`'s master; invalid when the cell
  // does not exist (or cells are off).
  [[nodiscard]] DeviceId cell_role_device(CellId cell) const;
  // Newest minted control epoch (0 before the first membership change).
  [[nodiscard]] std::uint64_t control_epoch() const {
    return gateway_ == nullptr ? 0 : gateway_->epoch();
  }
  [[nodiscard]] const shard::GatewayCoordinator* gateway() const {
    return gateway_.get();
  }

 private:
  // Builds and sends the Deploy for a new member, then notifies upstream
  // hosts of the new downstream instances.
  void deploy_to(DeviceId device);
  [[nodiscard]] bool placeable(const dataflow::OperatorDecl& op,
                               DeviceId device) const;
  void send(DeviceId to, MsgType type, Bytes payload);
  // Encodes `msg` into the master's reusable send arena and ships the frame
  // view (wire plane v2); the transport copies it out synchronously.
  template <typename M>
  void send_msg(DeviceId to, MsgType type, const M& msg);
  void note_event(MasterEvent kind, std::uint64_t detail);

  // --- swing-state ------------------------------------------------------
  void handle_checkpoint(const state::CheckpointMsg& msg);
  void handle_delta(const state::DeltaMsg& msg);
  // Sends RestoreMsg (snapshot + routing seeds) to `target` and re-announces
  // the instance, at its new address, to every upstream host. The registry
  // records (members_/by_op_) must already point at `target`.
  void install_restore(const InstanceInfo& info, std::uint64_t epoch,
                       const Bytes& state, DeviceId target);
  // Flattens `chain` into a single full-envelope state blob (base fast-path
  // when there are no deltas). Returns false on reconstruction failure.
  [[nodiscard]] bool flatten_chain(const state::CheckpointStore::Chain& chain,
                                   OperatorId op, Bytes& out) const;
  // Re-homes the bookkeeping for `info` to `target` (same InstanceId).
  void relocate_record(const InstanceInfo& info, DeviceId target);
  // AddDownstream re-announcement of `info` (at its current address) to the
  // hosts of every upstream instance.
  void announce_instance(const InstanceInfo& info);
  // Deterministic survivor choice: fewest hosted instances, ties to the
  // lowest device id; invalid when nobody placeable remains.
  [[nodiscard]] DeviceId pick_restore_target(const dataflow::OperatorDecl& op,
                                             DeviceId exclude) const;
  // Whether `op`'s unit opts into the state contract (probed once via the
  // factory and cached).
  [[nodiscard]] bool op_stateful(OperatorId op) const;
  void count_restore(const char* source);

  // --- swing-shard --------------------------------------------------------
  // One routing change to one upstream host. Legacy mode ships the plain
  // kAdd/RemoveDownstream exactly as the seed did; cell mode wraps it in an
  // EpochRouteUpdateMsg stamped with the current epoch/boundary and a
  // per-device contiguous sequence number, and logs it for anti-entropy
  // repair (re-sent when a CellReport shows the device behind).
  void send_route_update(DeviceId to, InstanceId upstream,
                         const InstanceInfo& down, bool add);
  // Mints the epoch/boundary one batch of route updates shares: every
  // update caused by one logical membership change carries the same epoch.
  void begin_route_change();
  // Re-sends CellAssign to every member of each affected cell, refreshes
  // the cell-service advertisement for role devices, re-homes checkpoint
  // chains, and syncs gateway stats into the registry.
  void refresh_cells(const std::vector<CellId>& affected);
  void handle_cell_report(DeviceId src, const shard::CellReportMsg& msg);
  void handle_gateway_hello(const shard::GatewayHelloMsg& msg);
  // Diffs gateway stats against the last-synced copy into counters/gauges
  // and per-unit ledger events. Cell mode only; default-mode registry
  // snapshots must stay byte-identical to the seed.
  void sync_gateway_obs();
  void count_master_msg(DeviceId to);
  // The checkpoint store owning `host`'s instances: the host's cell store
  // in cell mode, the flat master store otherwise.
  [[nodiscard]] state::CheckpointStore& store_for(DeviceId host);
  // Moves stored chains into the store of each hosting device's current
  // cell after cell topology changes (split/merge/handoff).
  void rehome_chains();

  // --- peer replication ---------------------------------------------------
  // Relays one just-accepted record to the instance's peer, (re)assigning
  // the peer and re-shipping the whole chain when the assignment is missing
  // or stale.
  void replicate_record(const InstanceInfo& info, state::ReplicateMsg::Kind kind,
                        std::uint64_t epoch, std::uint64_t base_epoch,
                        const Bytes& state);
  // Picks a peer (deterministic: fewest instances, lowest id; never the
  // instance's own host) and ships the full stored chain to it. Returns the
  // chosen peer (invalid when none eligible).
  DeviceId assign_replica(const InstanceInfo& info);

  // --- 2PC coordinator ----------------------------------------------------
  // Persistent write-ahead decision record. kPrepare marks intent; exactly
  // one of kCommit/kAbort decides; kEnd marks the commit fully acted on.
  // Survives crash_volatile_state() — this is the recovery source of truth.
  struct MigrationDecision {
    enum class Kind : std::uint8_t { kPrepare = 0, kCommit = 1, kAbort = 2,
                                     kEnd = 3 };
    std::uint64_t txn = 0;
    Kind kind = Kind::kPrepare;
    InstanceInfo instance;  // Placement at the source at decision time.
    DeviceId from;
    DeviceId to;
  };

  void handle_migrate_ack(const state::MigrateAckMsg& msg);
  // Logs kAbort, notifies both participants, and retires the transaction.
  void abort_txn(std::uint64_t txn_id);
  // Acts on an already-logged COMMIT: re-routes, re-homes the record,
  // notifies both participants, logs kEnd. Idempotent — recovery may re-run
  // it for a decision whose first execution was cut short.
  void finalize_commit(const MigrationDecision& decision);
  // Invokes the chaos phase hook (copied first: it may replace itself).
  void fire_phase(MigrationPhase phase, const MigrationTxn& txn);

  Simulator& sim_;
  DeviceId device_;
  net::Transport& transport_;
  net::Discovery& discovery_;
  const dataflow::AppGraph& graph_;
  MasterConfig config_;

  void sweep_members();

  std::uint64_t next_instance_ = 0;
  bool started_ = false;
  // device id -> instances hosted there.
  std::map<std::uint64_t, std::vector<InstanceInfo>> members_;
  // operator id -> all its instances, in deployment order.
  std::map<std::uint64_t, std::vector<InstanceInfo>> by_op_;
  // device id -> last time we heard from it (heartbeat or control).
  std::map<std::uint64_t, SimTime> last_seen_;
  std::unique_ptr<PeriodicTask> sweep_task_;
  // swing-state: checkpoint chains per instance (volatile — lost by
  // crash_volatile_state) and the per-operator statefulness probe cache.
  state::CheckpointStore checkpoints_;
  // Reusable encode buffer for all control-plane sends (one frame at a time).
  SendArena arena_;
  mutable std::map<std::uint64_t, bool> stateful_cache_;

  // 2PC coordinator state. txns_ is volatile; decisions_ and replica_of_
  // model the master's durable log and survive crash_volatile_state().
  std::uint64_t next_txn_ = 1;
  std::map<std::uint64_t, MigrationTxn> txns_;
  std::vector<MigrationDecision> decisions_;
  // instance id -> peer device currently holding its replica chain.
  std::map<std::uint64_t, DeviceId> replica_of_;
  MigrationPhaseHook phase_hook_;

  // --- swing-shard state (all empty/null when cells are off) -------------
  std::unique_ptr<shard::GatewayCoordinator> gateway_;
  // Epoch/boundary shared by the current batch of route updates.
  std::uint64_t current_epoch_ = 0;
  std::uint64_t current_boundary_ = 0;
  // device id -> last route-update sequence number sent to it.
  std::map<std::uint64_t, std::uint64_t> route_seq_;
  // device id -> recent epoch route updates, for anti-entropy re-send when
  // a CellReport shows the device behind. Bounded; a worker further behind
  // than the log reach re-syncs on its next (re)deploy.
  static constexpr std::size_t kRouteLogCap = 128;
  std::map<std::uint64_t, std::vector<shard::EpochRouteUpdateMsg>> route_log_;
  // cell id -> checkpoint store owned by that cell's master (volatile, like
  // checkpoints_).
  std::map<std::uint64_t, state::CheckpointStore> cell_stores_;
  // cell id -> role device currently advertised under kSwingCellService.
  std::map<std::uint64_t, DeviceId> advertised_roles_;
  // Gateway stats already folded into the registry/ledger.
  shard::GatewayStats synced_{};
};

}  // namespace swing::runtime
