#include "sim/simulator.h"

#include "common/check.h"
#include "common/wallclock.h"

namespace swing {

EventId Simulator::schedule_at(SimTime t, Callback fn) {
  if (t < now_) t = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return EventId{id};
}

bool Simulator::cancel(EventId id) {
  return callbacks_.erase(id.value()) > 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) continue;  // Cancelled; skip.
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    SWING_DCHECK_GE(entry.time.nanos(), now_.nanos())
        << "event queue released an event from the past";
    now_ = entry.time;
    ++executed_;
    fold_digest(entry.time, entry.id);
    fn();
    return true;
  }
  return false;
}

void Simulator::fold_digest(SimTime t, std::uint64_t id) {
  const auto mix = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest_ ^= (v >> (8 * i)) & 0xff;
      digest_ *= 0x100000001b3ULL;  // FNV-1a prime.
    }
  };
  mix(std::uint64_t(t.nanos()));
  mix(id);
}

void Simulator::run_until(SimTime limit) {
  while (!queue_.empty()) {
    // Peek through cancelled entries without firing live ones early.
    const Entry entry = queue_.top();
    if (!callbacks_.contains(entry.id)) {
      queue_.pop();
      continue;
    }
    if (entry.time > limit) break;
    step();
  }
  if (now_ < limit) now_ = limit;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_realtime(SimDuration duration, double speed) {
  const SimTime limit = now_ + duration;
  const WallClockPacer pacer(now_, speed);

  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    if (!callbacks_.contains(entry.id)) {
      queue_.pop();
      continue;
    }
    if (entry.time > limit) break;
    pacer.sleep_until_sim(entry.time);
    step();
  }
  pacer.sleep_until_sim(limit);
  if (now_ < limit) now_ = limit;
}

}  // namespace swing
