#include "sim/simulator.h"

#include <cassert>
#include <chrono>
#include <thread>

namespace swing {

EventId Simulator::schedule_at(SimTime t, Callback fn) {
  if (t < now_) t = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return EventId{id};
}

bool Simulator::cancel(EventId id) {
  return callbacks_.erase(id.value()) > 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) continue;  // Cancelled; skip.
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    assert(entry.time >= now_);
    now_ = entry.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime limit) {
  while (!queue_.empty()) {
    // Peek through cancelled entries without firing live ones early.
    const Entry entry = queue_.top();
    if (!callbacks_.contains(entry.id)) {
      queue_.pop();
      continue;
    }
    if (entry.time > limit) break;
    step();
  }
  if (now_ < limit) now_ = limit;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_realtime(SimDuration duration, double speed) {
  assert(speed > 0.0);
  const SimTime limit = now_ + duration;
  const SimTime sim_start = now_;
  const auto wall_start = std::chrono::steady_clock::now();

  auto wall_deadline = [&](SimTime t) {
    const double sim_elapsed_s = (t - sim_start).seconds();
    return wall_start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(sim_elapsed_s /
                                                          speed));
  };

  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    if (!callbacks_.contains(entry.id)) {
      queue_.pop();
      continue;
    }
    if (entry.time > limit) break;
    std::this_thread::sleep_until(wall_deadline(entry.time));
    step();
  }
  std::this_thread::sleep_until(wall_deadline(limit));
  if (now_ < limit) now_ = limit;
}

}  // namespace swing
