// Time-series tracing for experiments.
//
// Benches record named series (e.g. "throughput_fps", "rssi_dbm.G") as
// (time, value) points and bin or dump them afterwards. This is the
// measurement side-channel; framework behaviour never depends on it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/time.h"

namespace swing {

struct TracePoint {
  SimTime time;
  double value;
};

class TraceSeries {
 public:
  void record(SimTime t, double v) { points_.push_back({t, v}); }

  [[nodiscard]] const std::vector<TracePoint>& points() const {
    return points_;
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  // Averages values into fixed-width bins over [start, end); bins with no
  // points report 0. Useful for throughput-over-time plots.
  [[nodiscard]] std::vector<double> binned_mean(SimTime start, SimTime end,
                                                SimDuration bin) const {
    const auto nbins = static_cast<std::size_t>((end - start) / bin) ;
    std::vector<double> sums(nbins, 0.0);
    std::vector<std::size_t> counts(nbins, 0);
    for (const auto& p : points_) {
      if (p.time < start || p.time >= end) continue;
      const auto idx = static_cast<std::size_t>((p.time - start) / bin);
      if (idx >= nbins) continue;
      sums[idx] += p.value;
      ++counts[idx];
    }
    for (std::size_t i = 0; i < nbins; ++i) {
      if (counts[i] > 0) sums[i] /= double(counts[i]);
    }
    return sums;
  }

  // Counts points per fixed-width bin (e.g. frames completed per second).
  [[nodiscard]] std::vector<std::size_t> binned_count(SimTime start,
                                                      SimTime end,
                                                      SimDuration bin) const {
    const auto nbins = static_cast<std::size_t>((end - start) / bin);
    std::vector<std::size_t> counts(nbins, 0);
    for (const auto& p : points_) {
      if (p.time < start || p.time >= end) continue;
      const auto idx = static_cast<std::size_t>((p.time - start) / bin);
      if (idx < nbins) ++counts[idx];
    }
    return counts;
  }

 private:
  std::vector<TracePoint> points_;
};

class Tracer {
 public:
  TraceSeries& series(const std::string& name) { return series_[name]; }

  [[nodiscard]] bool has(const std::string& name) const {
    return series_.contains(name);
  }

  [[nodiscard]] const std::map<std::string, TraceSeries>& all() const {
    return series_;
  }

 private:
  std::map<std::string, TraceSeries> series_;
};

}  // namespace swing
