// Deterministic discrete-event simulator.
//
// The entire Swing testbed (devices, radio medium, runtime services) runs on
// one of these. Events at equal timestamps execute in scheduling order
// (FIFO), which makes every run bit-for-bit reproducible. The simulator is
// single-threaded on purpose: determinism is worth more than parallelism at
// the scales we simulate (tens of devices, millions of events).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace swing {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `t`. Scheduling in the past is a
  // logic error; the event is clamped to `now` so a slightly-stale caller
  // degrades gracefully instead of corrupting the clock.
  EventId schedule_at(SimTime t, Callback fn);

  EventId schedule_after(SimDuration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Cancelling an already-fired or already-
  // cancelled event is a harmless no-op (returns false).
  bool cancel(EventId id);

  [[nodiscard]] bool pending(EventId id) const {
    return callbacks_.contains(id.value());
  }

  // Executes the next event, if any. Returns false when the queue is empty.
  bool step();

  // Runs events with timestamp <= limit, then advances the clock to `limit`
  // (so rate meters and traces see the full interval even if it was quiet).
  void run_until(SimTime limit);

  void run_for(SimDuration d) { run_until(now_ + d); }

  // Drains the queue completely.
  void run();

  // Runs for `duration` of simulated time, pacing event execution against
  // the wall clock: one simulated second takes 1/speed real seconds. This
  // turns any experiment into a live demo — the framework code cannot tell
  // the difference, because it only ever reads this clock.
  void run_realtime(SimDuration duration, double speed = 1.0);

  [[nodiscard]] std::size_t executed() const { return executed_; }
  [[nodiscard]] std::size_t queued() const { return callbacks_.size(); }

  // Order-sensitive FNV-1a hash over (timestamp, event id) of every
  // executed event: a fingerprint of the whole run. Two runs that schedule
  // or execute anything differently — an extra retry, a reordered tick —
  // diverge here even when their end metrics agree. swing-audit's
  // determinism check asserts equal digests for equal seeds.
  [[nodiscard]] std::uint64_t digest() const { return digest_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // Tie-break: FIFO among equal timestamps.
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void fold_digest(SimTime t, std::uint64_t id);

  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 0;
  std::size_t executed_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Events live here until they fire or are cancelled. Cancelled entries are
  // lazily skipped when popped.
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

// A repeating task bound to a simulator. Starts on construction or start();
// fires every `period` until stopped or destroyed. The first firing is one
// period after start (matching the paper's "every 1 s" management loop).
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, SimDuration period,
               std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start() {
    if (running_) return;
    running_ = true;
    arm();
  }

  void stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(pending_);
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] SimDuration period() const { return period_; }

  // Takes effect from the next arming.
  void set_period(SimDuration period) { period_ = period; }

 private:
  void arm() {
    pending_ = sim_.schedule_after(period_, [this] {
      if (!running_) return;
      fn_();
      if (running_) arm();
    });
  }

  Simulator& sim_;
  SimDuration period_;
  std::function<void()> fn_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace swing
