// Data tuples flowing along graph edges.
//
// A Tuple is an ordered list of (key, Value) fields plus framework metadata:
// the source-assigned sequence id (used by the sink's reordering service)
// and the source timestamp (used for end-to-end latency measurement). The
// serialization service (paper §IV-C) converts tuples to byte arrays at the
// sender and back at the receiver; see encode()/decode().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/time.h"
#include "dataflow/value.h"

namespace swing::dataflow {

class Tuple {
 public:
  Tuple() = default;
  Tuple(TupleId id, SimTime source_time) : id_(id), source_time_(source_time) {}

  [[nodiscard]] TupleId id() const { return id_; }
  void set_id(TupleId id) { id_ = id; }

  // When the source emitted the frame this tuple derives from. Preserved
  // across function units so the sink can compute end-to-end delay.
  [[nodiscard]] SimTime source_time() const { return source_time_; }
  void set_source_time(SimTime t) { source_time_ = t; }

  // --- Fields -------------------------------------------------------------

  Tuple& set(std::string key, Value value) {
    for (auto& [k, v] : fields_) {
      if (k == key) {
        v = std::move(value);
        return *this;
      }
    }
    fields_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  [[nodiscard]] const Value* get(std::string_view key) const {
    for (const auto& [k, v] : fields_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  // Typed accessor; returns nullptr when absent or of a different type.
  template <typename T>
  [[nodiscard]] const T* get_as(std::string_view key) const {
    const Value* v = get(key);
    return v ? std::get_if<T>(v) : nullptr;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& fields()
      const {
    return fields_;
  }
  [[nodiscard]] std::size_t field_count() const { return fields_.size(); }

  // Derives an output tuple: same id/source_time (it is the same logical
  // frame progressing through the pipeline), fresh fields.
  [[nodiscard]] Tuple derive() const { return Tuple{id_, source_time_}; }

  // --- Serialization ------------------------------------------------------

  // Simulated on-air footprint of this tuple (Blob payloads are costed at
  // their synthetic size). Used for airtime/congestion accounting only; for
  // the exact byte count the codec emits, use encoded_size().
  [[nodiscard]] std::uint64_t wire_size() const;

  // Exact number of bytes encode() appends. Encoders that length-prefix a
  // nested tuple frame (DataMsg) write this ahead of encode().
  [[nodiscard]] std::uint64_t encoded_size() const;

  // Full round-trippable encoding, appended to the caller's writer. Blob
  // contents are encoded as (size, tag); real Bytes fields are copied
  // verbatim. decode() throws WireFormatError on malformed input.
  void encode(ByteWriter& w) const;
  static Tuple decode(ByteReader& r);

  friend bool operator==(const Tuple&, const Tuple&) = default;

 private:
  TupleId id_{};
  SimTime source_time_{};
  std::vector<std::pair<std::string, Value>> fields_;
};

}  // namespace swing::dataflow
