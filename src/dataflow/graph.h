// Application dataflow graphs (paper §IV-A).
//
// An AppGraph is a DAG of operator declarations: sources sense data at a
// target rate, transforms compute on tuples, sinks display/collect results.
// The graph is pure declaration — deployment (how many instances of each
// operator, on which devices) is decided by the master at run time, which is
// what lets Swing adapt to whatever swarm shows up.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "dataflow/function_unit.h"

namespace swing::dataflow {

class GraphError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class OperatorKind { kSource, kTransform, kSink };

// Where the master places an operator's instances.
enum class Placement {
  kMaster,   // Single instance on the master's device (sources & sinks:
             // sensing and display happen on the user's own phone).
  kWorkers,  // One instance on every worker device (default for transforms;
             // the paper deploys all function units to all workers and
             // activates them as devices join).
};

// How a source generates data. The generator fabricates the sensed tuple
// (e.g. a 6 kB camera frame as a Blob field); the runtime assigns ids and
// timestamps and paces generation at `rate_per_s`.
struct SourceSpec {
  double rate_per_s = 24.0;
  std::function<Tuple(TupleId, SimTime, Rng&)> generate;
  std::uint64_t max_tuples = 0;  // 0 = run until stopped.

  // Input-rate dynamism (paper §III): the rate switches to `rate_per_s` at
  // each offset after Start. Offsets must be increasing.
  struct RateChange {
    SimDuration after;
    double rate_per_s;
  };
  std::vector<RateChange> rate_schedule;

  // Poisson arrivals: exponentially distributed inter-tuple gaps with the
  // current mean rate, instead of a fixed cadence. Sensing hardware ticks
  // regularly (default); event-driven sources burst.
  bool poisson = false;
};

struct OperatorDecl {
  OperatorId id;
  std::string name;
  OperatorKind kind = OperatorKind::kTransform;
  Placement placement = Placement::kWorkers;
  FunctionUnitFactory factory;
  CostFn cost;  // Reference-device ms per tuple.
  std::optional<SourceSpec> source;
  // Cap on worker instances; 0 = no cap (one per worker).
  std::size_t max_replicas = 0;
  // Tuples bound for this operator are routed by tuple id (id mod the
  // instance count over the id-sorted instance list) instead of by the
  // upstream's policy. Because the mapping depends only on the tuple and
  // the instance set, every upstream sends the same id to the same
  // instance — which is what stateful joins (fan-in) need to see both
  // halves of a frame. Costs load-balance quality; use only where state
  // locality demands it.
  bool partition_by_id = false;
};

class AppGraph {
 public:
  // Adds a sensing source (always placed on the master device).
  OperatorId add_source(std::string name, SourceSpec spec);

  // Adds a compute stage, replicated across workers by default.
  OperatorId add_transform(std::string name, FunctionUnitFactory factory,
                           CostFn cost, std::size_t max_replicas = 0);

  // Adds a sink (always on the master device). `factory` defaults to a unit
  // that simply absorbs results; `cost` defaults to ~0 (display is cheap).
  OperatorId add_sink(std::string name, FunctionUnitFactory factory = nullptr,
                      CostFn cost = nullptr);

  // Adds the edge up -> down. Duplicate or self edges are errors.
  AppGraph& connect(OperatorId up, OperatorId down);

  // Pins a transform to the master's device (single instance) — for
  // source-side preprocessing like sensor windowing that must see the
  // whole sample stream in order. Throws for sources/sinks (already
  // master-placed).
  AppGraph& place_on_master(OperatorId id);

  // Declares that tuples bound for this transform are routed by tuple id
  // (see OperatorDecl::partition_by_id). Throws for sources/sinks.
  AppGraph& partition_by_id(OperatorId id);

  // --- Introspection ------------------------------------------------------

  [[nodiscard]] const std::vector<OperatorDecl>& operators() const {
    return operators_;
  }
  [[nodiscard]] const OperatorDecl& op(OperatorId id) const;
  [[nodiscard]] std::vector<OperatorId> downstreams(OperatorId id) const;
  [[nodiscard]] std::vector<OperatorId> upstreams(OperatorId id) const;
  [[nodiscard]] const std::vector<std::pair<OperatorId, OperatorId>>& edges()
      const {
    return edges_;
  }
  [[nodiscard]] std::vector<OperatorId> sources() const;
  [[nodiscard]] std::vector<OperatorId> sinks() const;

  // Operators in a topological order. Throws GraphError on cycles.
  [[nodiscard]] std::vector<OperatorId> topological_order() const;

  // Full structural validation: at least one source and one sink, acyclic,
  // every operator on a source-to-sink path, sources have no upstreams,
  // sinks have no downstreams. Throws GraphError describing the violation.
  void validate() const;

 private:
  OperatorId add(OperatorDecl decl);
  [[nodiscard]] std::size_t index_of(OperatorId id) const;

  std::vector<OperatorDecl> operators_;
  std::vector<std::pair<OperatorId, OperatorId>> edges_;
  std::uint64_t next_id_ = 0;
};

}  // namespace swing::dataflow
