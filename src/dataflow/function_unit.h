// The function-unit programming API (paper §IV-A).
//
// App developers subclass FunctionUnit and implement process(): receive a
// tuple, compute, and emit() results toward downstream units. The framework
// handles everything else — placement, routing, serialization, transport.
// Compute cost is declared per operator as a CostFn (milliseconds on the
// reference device); the hosting worker charges the device's CPU for that
// long before invoking process(), which is how synthetic kernels (face
// detection, speech recognition, ...) exercise heterogeneous hardware.
#pragma once

#include <functional>
#include <memory>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "dataflow/tuple.h"

namespace swing::dataflow {

// Everything a function unit may ask of its host while processing a tuple.
class Context {
 public:
  virtual ~Context() = default;

  // Sends an output tuple downstream (routed by the swarm manager). A unit
  // may emit zero, one, or many tuples per input.
  virtual void emit(Tuple tuple) = 0;

  virtual SimTime now() const = 0;
  virtual DeviceId device() const = 0;
  virtual InstanceId instance() const = 0;
  // Deterministic per-instance randomness for app logic.
  virtual Rng& rng() = 0;
};

class FunctionUnit {
 public:
  virtual ~FunctionUnit() = default;

  // Called once when the instance is activated on its device.
  virtual void on_deploy(Context& /*ctx*/) {}

  // Called for each incoming tuple after the declared compute cost has been
  // charged to the hosting device.
  virtual void process(const Tuple& input, Context& ctx) = 0;

  // --- Optional state contract (swing-state) ------------------------------
  //
  // A unit whose process() accumulates state across tuples opts in by
  // returning true from stateful() and implementing snapshot_state() /
  // restore_state(). Snapshots must be deterministic: iterate containers in
  // a canonical order so that snapshot → restore → snapshot is a byte
  // fixpoint (the determinism suite asserts this). The checkpoint epoch is
  // carried alongside the snapshot by the runtime (see state::CheckpointMsg);
  // units only serialize their own fields. restore_state() replaces — never
  // merges with — the unit's current state and may throw WireFormatError on
  // malformed bytes.
  [[nodiscard]] virtual bool stateful() const { return false; }
  virtual void snapshot_state(ByteWriter& /*out*/) const {}
  virtual void restore_state(ByteReader& /*in*/) {}

  // --- Optional incremental-checkpoint contract (checkpoint plane v2) -----
  //
  // A stateful unit may additionally journal its mutations so the runtime
  // can ship small deltas between periodic full snapshots. Journaling is
  // armed by the first snapshot_state() call (so non-checkpointing runs pay
  // nothing) and must be bounded: when the journal overflows or the unit
  // cannot express a mutation incrementally, delta_ready() returns false and
  // the runtime falls back to a full snapshot, which re-arms the journal.
  //
  // snapshot_delta() serializes AND clears the journal — each delta covers
  // exactly the mutations since the previous snapshot_delta()/snapshot_state()
  // call. apply_delta() replays a journal onto restored state. The chain
  // invariant, asserted by the StateDelta property tests: for any input
  // sequence, restore_state(full) followed by apply_delta() of each shipped
  // delta in epoch order leaves the unit byte-identical (per snapshot_state)
  // to the live instance.
  [[nodiscard]] virtual bool delta_ready() const { return false; }
  virtual void snapshot_delta(ByteWriter& /*out*/) {}
  virtual void apply_delta(ByteReader& /*in*/) {}
};

using FunctionUnitFactory = std::function<std::unique_ptr<FunctionUnit>()>;

// Reference-device compute cost (ms) of processing one tuple.
using CostFn = std::function<double(const Tuple&)>;

inline CostFn constant_cost(double ref_ms) {
  return [ref_ms](const Tuple&) { return ref_ms; };
}

// A function unit defined by a lambda; convenient for small stages. The
// callable is configuration, not accumulated tuple state.
// swing-lint: stateless
class LambdaUnit final : public FunctionUnit {
 public:
  using Fn = std::function<void(const Tuple&, Context&)>;
  explicit LambdaUnit(Fn fn) : fn_(std::move(fn)) {}
  void process(const Tuple& input, Context& ctx) override { fn_(input, ctx); }

 private:
  Fn fn_;
};

inline FunctionUnitFactory lambda_unit(LambdaUnit::Fn fn) {
  return [fn = std::move(fn)] { return std::make_unique<LambdaUnit>(fn); };
}

// A unit that transforms each input into one output via a pure function.
inline FunctionUnitFactory map_unit(std::function<Tuple(const Tuple&)> fn) {
  return lambda_unit(
      [fn = std::move(fn)](const Tuple& in, Context& ctx) { ctx.emit(fn(in)); });
}

// A unit that forwards its input unchanged (useful as a sink or in tests).
inline FunctionUnitFactory passthrough_unit() {
  return lambda_unit([](const Tuple& in, Context& ctx) { ctx.emit(in); });
}

}  // namespace swing::dataflow
