// Typed packing of custom objects into tuple fields.
//
// The paper's Serialization Service "transforms customized objects into a
// byte array ... at the sender, and transforms the array back to the object
// at the receiver" (§IV-C). These helpers give that pattern a typed API on
// the wire-plane v2 codec (see common/bytes.h and DESIGN.md §"Wire plane
// v2"): any T with
//
//   void encode(ByteWriter& w) const;   // appends T's wire form to w
//   static T decode(ByteReader& r);     // reads T back from a frame view
//
// can be stored in and read from a tuple field directly. Encoding appends
// into the caller-owned buffer behind the writer (a SendArena frame, a
// DataBatchMsg pool, or a field's own storage as below); decoding never
// copies — the reader is a span view, and T::decode chooses where bytes that
// must outlive the frame land. The legacy `Bytes to_bytes() const` /
// `static T from_bytes(const Bytes&)` pair is gone; swing-analyze's
// codec-symmetry rule still recognises stragglers so an accidental revival
// fails CI.
#pragma once

#include <concepts>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "dataflow/tuple.h"

namespace swing::dataflow {

template <typename T>
concept WireCodec = requires(const T& value, ByteWriter& w, ByteReader& r) {
  { value.encode(w) } -> std::same_as<void>;
  { T::decode(r) } -> std::convertible_to<T>;
};

// Serializes `value` into the tuple under `key`. The field's own Bytes
// storage is the encode destination — one allocation, no intermediate.
template <WireCodec T>
void set_packed(Tuple& tuple, std::string key, const T& value) {
  Bytes packed;
  {
    // Scoped so the writer flushes its staged tail before `packed` moves.
    ByteWriter w{packed};
    value.encode(w);
  }
  tuple.set(std::move(key), std::move(packed));
}

// Reads `key` back as a T. nullopt when the field is missing or not a byte
// array; throws WireFormatError when the bytes do not decode as a T.
template <WireCodec T>
std::optional<T> get_packed(const Tuple& tuple, std::string_view key) {
  const Bytes* bytes = tuple.get_as<Bytes>(key);
  if (bytes == nullptr) return std::nullopt;
  ByteReader r{*bytes};
  return T::decode(r);
}

// Owning-mode conveniences for tests, fuzzers, and corpus generation: the
// hot path never round-trips through a fresh Bytes (senders encode into
// their SendArena; receivers decode from the transport frame in place).
template <WireCodec T>
[[nodiscard]] Bytes encode_to_bytes(const T& value) {
  ByteWriter w;
  value.encode(w);
  return w.take();
}

template <WireCodec T>
[[nodiscard]] T decode_from(std::span<const std::uint8_t> frame) {
  ByteReader r{frame};
  return T::decode(r);
}

}  // namespace swing::dataflow
