// Typed packing of custom objects into tuple fields.
//
// The paper's Serialization Service "transforms customized objects into a
// byte array ... at the sender, and transforms the array back to the object
// at the receiver" (§IV-C). These helpers give that pattern a typed API:
// any T with `Bytes to_bytes() const` and `static T from_bytes(const
// Bytes&)` can be stored in and read from a tuple field directly.
#pragma once

#include <concepts>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "dataflow/tuple.h"

namespace swing::dataflow {

template <typename T>
concept Packable = requires(const T& value, const Bytes& bytes) {
  { value.to_bytes() } -> std::convertible_to<Bytes>;
  { T::from_bytes(bytes) } -> std::convertible_to<T>;
};

// Serializes `value` into the tuple under `key`.
template <Packable T>
void set_packed(Tuple& tuple, std::string key, const T& value) {
  tuple.set(std::move(key), value.to_bytes());
}

// Reads `key` back as a T. nullopt when the field is missing or not a byte
// array; throws WireFormatError when the bytes do not decode as a T.
template <Packable T>
std::optional<T> get_packed(const Tuple& tuple, std::string_view key) {
  const Bytes* bytes = tuple.get_as<Bytes>(key);
  if (bytes == nullptr) return std::nullopt;
  return T::from_bytes(*bytes);
}

}  // namespace swing::dataflow
