#include "dataflow/tuple.h"

#include "common/hot.h"
namespace swing::dataflow {

namespace {

// Type tags on the wire.
enum : std::uint8_t {
  kNull = 0,
  kInt = 1,
  kFloat = 2,
  kString = 3,
  kBytes = 4,
  kBlob = 5,
};

void write_value(ByteWriter& w, const Value& v) {
  struct Writer {
    ByteWriter& w;
    void operator()(std::monostate) const { w.write_u8(kNull); }
    void operator()(std::int64_t x) const {
      w.write_u8(kInt);
      w.write_i64(x);
    }
    void operator()(double x) const {
      w.write_u8(kFloat);
      w.write_f64(x);
    }
    void operator()(const std::string& s) const {
      w.write_u8(kString);
      w.write_string(s);
    }
    void operator()(const Bytes& b) const {
      w.write_u8(kBytes);
      w.write_bytes(b);
    }
    void operator()(const Blob& b) const {
      w.write_u8(kBlob);
      w.write_varint(b.size);
      w.write_varint(b.tag);
    }
  };
  std::visit(Writer{w}, v);
}

Value read_value(ByteReader& r) {
  switch (r.read_u8()) {
    case kNull:
      return std::monostate{};
    case kInt:
      return r.read_i64();
    case kFloat:
      return r.read_f64();
    case kString:
      // The variant owns its payload, so this is the decode path's single
      // copy: straight from the frame view into the field's storage.
      return std::string{r.read_view()};
    case kBytes: {
      const auto body = r.read_span();
      return Bytes(body.begin(), body.end());
    }
    case kBlob: {
      Blob b;
      b.size = r.read_varint();
      b.tag = r.read_varint();
      return b;
    }
    default:
      throw WireFormatError("unknown value tag");
  }
}

}  // namespace

std::uint64_t Tuple::wire_size() const {
  // Header: id (8) + source_time (8) + field count varint.
  std::uint64_t size = 8 + 8 + 2;
  for (const auto& [key, value] : fields_) {
    size += 1 + key.size() + value_wire_size(value);
  }
  return size;
}

std::uint64_t Tuple::encoded_size() const {
  std::uint64_t size = 8 + 8 + varint_size(fields_.size());
  for (const auto& [key, value] : fields_) {
    size += varint_size(key.size()) + key.size() + value_encoded_size(value);
  }
  return size;
}

SWING_HOT void Tuple::encode(ByteWriter& w) const {
  // No up-front sizing: arena buffers keep their capacity across frames,
  // so steady-state appends never grow — an exact encoded_size() walk per
  // encode would cost more than the amortised growth it pre-empts. Callers
  // that need the exact length for framing (DataMsg) compute it once and
  // write it as the prefix.
  w.write_u64(id_.value());
  w.write_i64(source_time_.nanos());
  w.write_varint(fields_.size());
  for (const auto& [key, value] : fields_) {
    w.write_string(key);
    write_value(w, value);
  }
}

SWING_HOT Tuple Tuple::decode(ByteReader& r) {
  Tuple t;
  t.id_ = TupleId{r.read_u64()};
  t.source_time_ = SimTime{r.read_i64()};
  const std::uint64_t n = r.read_varint();
  // Bound the claimed field count by the bytes actually present (a field is
  // at least 2 bytes: empty-key length + value tag) before reserving, so a
  // corrupt count fails cleanly instead of attempting a huge allocation.
  if (n > r.remaining() / 2) {
    throw WireFormatError("field count " + std::to_string(n) +
                          " exceeds what " + std::to_string(r.remaining()) +
                          " remaining bytes could hold");
  }
  t.fields_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key{r.read_view()};
    Value value = read_value(r);
    t.fields_.emplace_back(std::move(key), std::move(value));
  }
  return t;
}

}  // namespace swing::dataflow
