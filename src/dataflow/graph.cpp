#include "dataflow/graph.h"

#include <algorithm>
#include <queue>

namespace swing::dataflow {

OperatorId AppGraph::add(OperatorDecl decl) {
  for (const auto& existing : operators_) {
    if (existing.name == decl.name) {
      throw GraphError("duplicate operator name: " + decl.name);
    }
  }
  decl.id = OperatorId{next_id_++};
  operators_.push_back(std::move(decl));
  return operators_.back().id;
}

OperatorId AppGraph::add_source(std::string name, SourceSpec spec) {
  if (!spec.generate) throw GraphError("source needs a generator: " + name);
  if (spec.rate_per_s <= 0.0) {
    throw GraphError("source rate must be positive: " + name);
  }
  OperatorDecl decl;
  decl.name = std::move(name);
  decl.kind = OperatorKind::kSource;
  decl.placement = Placement::kMaster;
  decl.source = std::move(spec);
  return add(std::move(decl));
}

OperatorId AppGraph::add_transform(std::string name,
                                   FunctionUnitFactory factory, CostFn cost,
                                   std::size_t max_replicas) {
  if (!factory) throw GraphError("transform needs a factory: " + name);
  OperatorDecl decl;
  decl.name = std::move(name);
  decl.kind = OperatorKind::kTransform;
  decl.placement = Placement::kWorkers;
  decl.factory = std::move(factory);
  decl.cost = cost ? std::move(cost) : constant_cost(0.0);
  decl.max_replicas = max_replicas;
  return add(std::move(decl));
}

OperatorId AppGraph::add_sink(std::string name, FunctionUnitFactory factory,
                              CostFn cost) {
  OperatorDecl decl;
  decl.name = std::move(name);
  decl.kind = OperatorKind::kSink;
  decl.placement = Placement::kMaster;
  // A sink that emits sends into the void; the default absorbs silently.
  decl.factory = factory ? std::move(factory)
                         : lambda_unit([](const Tuple&, Context&) {});
  decl.cost = cost ? std::move(cost) : constant_cost(0.0);
  return add(std::move(decl));
}

AppGraph& AppGraph::connect(OperatorId up, OperatorId down) {
  if (up == down) throw GraphError("self edge");
  static_cast<void>(index_of(up));  // Throws on unknown ids.
  static_cast<void>(index_of(down));
  if (std::find(edges_.begin(), edges_.end(), std::make_pair(up, down)) !=
      edges_.end()) {
    throw GraphError("duplicate edge");
  }
  edges_.emplace_back(up, down);
  return *this;
}

AppGraph& AppGraph::partition_by_id(OperatorId id) {
  OperatorDecl& decl = operators_[index_of(id)];
  if (decl.kind != OperatorKind::kTransform) {
    throw GraphError("only transforms can be partitioned: " + decl.name);
  }
  decl.partition_by_id = true;
  return *this;
}

AppGraph& AppGraph::place_on_master(OperatorId id) {
  OperatorDecl& decl = operators_[index_of(id)];
  if (decl.kind != OperatorKind::kTransform) {
    throw GraphError("only transforms can be re-placed: " + decl.name);
  }
  decl.placement = Placement::kMaster;
  return *this;
}

std::size_t AppGraph::index_of(OperatorId id) const {
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    if (operators_[i].id == id) return i;
  }
  throw GraphError("unknown operator id");
}

const OperatorDecl& AppGraph::op(OperatorId id) const {
  return operators_[index_of(id)];
}

std::vector<OperatorId> AppGraph::downstreams(OperatorId id) const {
  std::vector<OperatorId> out;
  for (const auto& [up, down] : edges_) {
    if (up == id) out.push_back(down);
  }
  return out;
}

std::vector<OperatorId> AppGraph::upstreams(OperatorId id) const {
  std::vector<OperatorId> out;
  for (const auto& [up, down] : edges_) {
    if (down == id) out.push_back(up);
  }
  return out;
}

std::vector<OperatorId> AppGraph::sources() const {
  std::vector<OperatorId> out;
  for (const auto& op : operators_) {
    if (op.kind == OperatorKind::kSource) out.push_back(op.id);
  }
  return out;
}

std::vector<OperatorId> AppGraph::sinks() const {
  std::vector<OperatorId> out;
  for (const auto& op : operators_) {
    if (op.kind == OperatorKind::kSink) out.push_back(op.id);
  }
  return out;
}

std::vector<OperatorId> AppGraph::topological_order() const {
  std::vector<std::size_t> indegree(operators_.size(), 0);
  for (const auto& [up, down] : edges_) {
    ++indegree[index_of(down)];
  }
  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<OperatorId> order;
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop();
    order.push_back(operators_[i].id);
    for (const auto& [up, down] : edges_) {
      if (up != operators_[i].id) continue;
      const std::size_t j = index_of(down);
      if (--indegree[j] == 0) ready.push(j);
    }
  }
  if (order.size() != operators_.size()) {
    throw GraphError("graph has a cycle");
  }
  return order;
}

void AppGraph::validate() const {
  if (sources().empty()) throw GraphError("graph has no source");
  if (sinks().empty()) throw GraphError("graph has no sink");
  (void)topological_order();  // Cycle check.

  for (const auto& op : operators_) {
    const auto ups = upstreams(op.id);
    const auto downs = downstreams(op.id);
    switch (op.kind) {
      case OperatorKind::kSource:
        if (!ups.empty()) {
          throw GraphError("source has an upstream: " + op.name);
        }
        if (downs.empty()) {
          throw GraphError("source has no downstream: " + op.name);
        }
        break;
      case OperatorKind::kSink:
        if (!downs.empty()) {
          throw GraphError("sink has a downstream: " + op.name);
        }
        if (ups.empty()) {
          throw GraphError("sink has no upstream: " + op.name);
        }
        break;
      case OperatorKind::kTransform:
        if (ups.empty() || downs.empty()) {
          throw GraphError("transform not on a source-sink path: " + op.name);
        }
        break;
    }
  }
}

}  // namespace swing::dataflow
