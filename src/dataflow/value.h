// Values carried inside data tuples.
//
// The paper's tuples hold "a list of serializable data structures, such as a
// bitmap image, a matrix of floating-point values or a text string". We
// support scalars, strings, real byte arrays, and Blob — a synthetic payload
// that has wire size but no materialised content. Blob stands in for sensed
// media (video frames, audio segments): Swing never inspects payload bytes,
// so carrying only the size preserves every behaviour the framework and the
// experiments depend on while keeping simulation memory flat.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"

namespace swing::dataflow {

// Synthetic opaque payload: `size` bytes on the wire, `tag` distinguishes
// content (e.g. which synthetic frame this is).
struct Blob {
  std::uint64_t size = 0;
  std::uint64_t tag = 0;

  friend bool operator==(const Blob&, const Blob&) = default;
};

using Value =
    std::variant<std::monostate, std::int64_t, double, std::string, Bytes,
                 Blob>;

// Simulated on-air size contribution of a value (payload only, excluding the
// key). This is an ESTIMATE used for airtime accounting: length varints are
// costed at their worst case and a Blob is costed at its synthetic payload
// size even though only (size, tag) travel in the encoded frame. Use
// value_encoded_size() for the exact byte count the codec emits.
inline std::uint64_t value_wire_size(const Value& v) {
  struct Sizer {
    std::uint64_t operator()(std::monostate) const { return 1; }
    std::uint64_t operator()(std::int64_t) const { return 9; }
    std::uint64_t operator()(double) const { return 9; }
    std::uint64_t operator()(const std::string& s) const {
      return 1 + 5 + s.size();
    }
    std::uint64_t operator()(const Bytes& b) const { return 1 + 5 + b.size(); }
    std::uint64_t operator()(const Blob& b) const { return 1 + 10 + b.size; }
  };
  return std::visit(Sizer{}, v);
}

// Exact encoded size of a value: the number of bytes Tuple's value codec
// emits for it (tag byte + payload). Encoders use this to write exact length
// prefixes ahead of nested frames.
inline std::uint64_t value_encoded_size(const Value& v) {
  struct Sizer {
    std::uint64_t operator()(std::monostate) const { return 1; }
    std::uint64_t operator()(std::int64_t) const { return 9; }
    std::uint64_t operator()(double) const { return 9; }
    std::uint64_t operator()(const std::string& s) const {
      return 1 + varint_size(s.size()) + s.size();
    }
    std::uint64_t operator()(const Bytes& b) const {
      return 1 + varint_size(b.size()) + b.size();
    }
    std::uint64_t operator()(const Blob& b) const {
      return 1 + varint_size(b.size) + varint_size(b.tag);
    }
  };
  return std::visit(Sizer{}, v);
}

}  // namespace swing::dataflow
