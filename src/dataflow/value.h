// Values carried inside data tuples.
//
// The paper's tuples hold "a list of serializable data structures, such as a
// bitmap image, a matrix of floating-point values or a text string". We
// support scalars, strings, real byte arrays, and Blob — a synthetic payload
// that has wire size but no materialised content. Blob stands in for sensed
// media (video frames, audio segments): Swing never inspects payload bytes,
// so carrying only the size preserves every behaviour the framework and the
// experiments depend on while keeping simulation memory flat.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"

namespace swing::dataflow {

// Synthetic opaque payload: `size` bytes on the wire, `tag` distinguishes
// content (e.g. which synthetic frame this is).
struct Blob {
  std::uint64_t size = 0;
  std::uint64_t tag = 0;

  friend bool operator==(const Blob&, const Blob&) = default;
};

using Value =
    std::variant<std::monostate, std::int64_t, double, std::string, Bytes,
                 Blob>;

// Serialized size contribution of a value (payload only, excluding the key).
inline std::uint64_t value_wire_size(const Value& v) {
  struct Sizer {
    std::uint64_t operator()(std::monostate) const { return 1; }
    std::uint64_t operator()(std::int64_t) const { return 9; }
    std::uint64_t operator()(double) const { return 9; }
    std::uint64_t operator()(const std::string& s) const {
      return 1 + 5 + s.size();
    }
    std::uint64_t operator()(const Bytes& b) const { return 1 + 5 + b.size(); }
    std::uint64_t operator()(const Blob& b) const { return 1 + 10 + b.size; }
  };
  return std::visit(Sizer{}, v);
}

}  // namespace swing::dataflow
