// Service discovery, modelling Android Network Service Discovery (NSD).
//
// The Swing master "broadcasts itself by registering a Network Service on
// the network"; each worker runs a background service that listens for the
// master and connects upon discovery (§IV-C). We model NSD as a registry
// with a propagation delay: watchers learn about services (existing and
// future) a short mDNS-style delay after registration.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/time.h"
#include "sim/simulator.h"

namespace swing::net {

class Discovery {
 public:
  using FoundFn = std::function<void(DeviceId provider, const Bytes& info)>;

  explicit Discovery(Simulator& sim, SimDuration propagation = millis(120))
      : sim_(sim), propagation_(propagation) {}

  Discovery(const Discovery&) = delete;
  Discovery& operator=(const Discovery&) = delete;

  // Registers `provider` as offering `service`; `info` carries
  // service-specific details (e.g. the master's listen address).
  void advertise(const std::string& service, DeviceId provider, Bytes info) {
    services_[service][provider.value()] = info;
    for (const auto& watcher : watchers_[service]) {
      notify(watcher, provider, info);
    }
  }

  void withdraw(const std::string& service, DeviceId provider) {
    auto it = services_.find(service);
    if (it != services_.end()) it->second.erase(provider.value());
  }

  // Subscribes to a service type. The callback fires (after the propagation
  // delay) once per already-registered provider and for each future one.
  void watch(const std::string& service, FoundFn fn) {
    auto it = services_.find(service);
    if (it != services_.end()) {
      // notify() schedules simulator callbacks, so the hash-map's iteration
      // order would decide equal-timestamp FIFO order. Notify in provider-id
      // order to keep same-seed runs byte-identical.
      std::vector<std::pair<std::uint64_t, Bytes>> providers(
          it->second.begin(), it->second.end());
      std::sort(providers.begin(), providers.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [provider, info] : providers) {
        notify(fn, DeviceId{provider}, info);
      }
    }
    watchers_[service].push_back(std::move(fn));
  }

  [[nodiscard]] std::size_t provider_count(const std::string& service) const {
    auto it = services_.find(service);
    return it == services_.end() ? 0 : it->second.size();
  }

 private:
  void notify(const FoundFn& fn, DeviceId provider, Bytes info) {
    sim_.schedule_after(propagation_, [fn, provider, info = std::move(info)] {
      fn(provider, info);
    });
  }

  Simulator& sim_;
  SimDuration propagation_;
  std::unordered_map<std::string, std::unordered_map<std::uint64_t, Bytes>>
      services_;
  std::unordered_map<std::string, std::vector<FoundFn>> watchers_;
};

}  // namespace swing::net
