// Shared 802.11 medium with per-packet round-robin airtime scheduling.
//
// All devices associate with one access point (infrastructure mode, like the
// paper's Linksys E1200 testbed). A message from device S to device D is
// split into MTU-sized packets; each packet consumes channel airtime twice —
// once on S's uplink and once on D's downlink — at the PHY rate dictated by
// that device's RSSI, inflated by the retry factor of weak links. The channel
// serves one packet at a time, round-robin across flows, which reproduces the
// well-known 802.11 rate anomaly: a single weak-signal receiver consumes
// disproportionate airtime and drags down every flow in the BSS. This is the
// exact mechanism that penalises RR/PR routing in the paper (§VI-B1).
//
// Sender-side buffering is bounded per flow (modelling finite TCP socket
// buffers); when the bound is hit new messages are dropped at the sender,
// which bounds measured transmission delay the way TCP backpressure does.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/ids.h"
#include "common/time.h"
#include "net/fault_hook.h"
#include "net/wifi.h"
#include "obs/registry.h"
#include "sim/simulator.h"

namespace swing::net {

// How devices reach each other (paper §II: Swing "can utilize mobile
// hotspot APs, Wi-Fi Direct, WLAN or cellular, as networking technologies").
enum class MediumMode {
  // All traffic relays through one access point: two hops per message,
  // each at the endpoint's AP-link rate (the paper's testbed).
  kInfrastructure,
  // Wi-Fi Direct / ad-hoc: one hop per message at the rate the *pairwise*
  // link supports. Halves airtime for device-to-device traffic but the
  // link quality now depends on where both peers stand.
  kAdhoc,
};

struct MediumConfig {
  MediumMode mode = MediumMode::kInfrastructure;
  PathLossConfig path_loss{};
  // Fraction of PHY rate usable as goodput (MAC/ACK/TCP overhead).
  double mac_efficiency = 0.6;
  std::size_t packet_bytes = 1500;
  // Per-packet fixed MAC overhead (DIFS + preamble + MAC ACK), amortised by
  // A-MPDU aggregation; dominates airtime for small packets.
  SimDuration per_packet_overhead = micros(30);
  // The MAC retries a packet at most this many times before giving up and
  // leaving recovery to TCP. Channel airtime per packet is capped at this
  // multiple; the remaining expected tries show up as *idle* stall time on
  // the flow (TCP timeout/backoff) rather than channel occupancy. Without
  // the cap a near-dead link would monopolise the BSS, which real MACs
  // specifically prevent.
  double mac_retry_airtime_cap = 4.0;
  // Processing latency added at final delivery.
  SimDuration delivery_latency = micros(500);
  // External co-channel interference. The paper ran its experiments "during
  // the night to reduce chances of interference from other wireless
  // communications"; this knob simulates daytime: a neighbouring network
  // periodically occupies the channel for `burst` at the given duty cycle,
  // deferring our transmissions. Zero duty = the paper's quiet night.
  struct Interference {
    double duty = 0.0;  // Fraction of airtime stolen, [0, 1).
    SimDuration burst = millis(20);
  } interference;

  // End-to-end inflight bound per (src, dst) pair, in packets — the TCP
  // send window / socket buffer (16 x 1500 B = 24 kB, a typical Android
  // default). A full window means a write() would block; senders that do
  // not check can_accept() first get a kQueueFull drop. A message larger
  // than the whole window is admitted when the window is empty (a blocking
  // write pushes it through in pieces; we account it atomically).
  std::size_t tcp_window_packets = 16;

  // swing-obs: where delivery/drop counters and the busy-airtime gauge
  // register. Installed by the Swarm (one registry for the whole swarm);
  // a bare Medium owns a private registry.
  obs::Registry* registry = nullptr;

  // swing-chaos: consulted once per non-loopback message before it is
  // queued on the air (see net/fault_hook.h). Null — the default — means a
  // fault-free channel with zero overhead on the send path.
  FaultHook* faults = nullptr;
};

// Reason a message failed to deliver.
enum class DropReason {
  kSenderDisconnected,
  kReceiverDisconnected,
  kQueueFull,
};

inline constexpr int kNetDropReasonCount = 3;

[[nodiscard]] const char* net_drop_reason_name(DropReason reason);

class Medium {
 public:
  using DeliverFn = std::function<void()>;
  using DropFn = std::function<void(DropReason)>;

  Medium(Simulator& sim, MediumConfig config = {});

  // --- Topology -----------------------------------------------------------

  void attach(DeviceId id, Position pos);
  // Detaching drops all in-flight traffic to/from the device.
  void detach(DeviceId id);
  void set_position(DeviceId id, Position pos);
  // Pins a device's RSSI regardless of position (paper's signal "zones").
  void set_rssi_override(DeviceId id, std::optional<double> rssi_dbm);

  [[nodiscard]] bool attached(DeviceId id) const;
  [[nodiscard]] Position position(DeviceId id) const;

  // RSSI of the direct link between two devices (ad-hoc mode). Devices in
  // an override "zone" contribute their zone RSSI: the direct link cannot
  // beat the worse endpoint.
  [[nodiscard]] double pair_rssi(DeviceId a, DeviceId b) const;

  // Whether a message from a to b would currently find a usable path.
  [[nodiscard]] bool reachable(DeviceId a, DeviceId b) const;
  // RSSI of the device's link to the AP; -infinity when not attached.
  [[nodiscard]] double rssi(DeviceId id) const;
  // PHY rate for the device's current RSSI; 0 when out of range.
  [[nodiscard]] double phy_rate_bps(DeviceId id) const;
  [[nodiscard]] bool connected(DeviceId id) const {
    return phy_rate_bps(id) > 0.0;
  }

  // Application-level goodput estimate for a 1-hop transmission to/from the
  // device (used by benches for calibration, not by the framework).
  [[nodiscard]] double goodput_bps(DeviceId id) const;

  // --- Data plane ---------------------------------------------------------

  // Queues a message of `bytes` from `src` to `dst`. `on_deliver` fires at
  // the destination when the last packet arrives; `on_drop` (optional) fires
  // if the message is dropped. Returns false iff dropped immediately.
  // `traffic_class` is an opaque tag forwarded to the fault hook (the
  // transport passes its message type) — the medium itself ignores it.
  bool send(DeviceId src, DeviceId dst, std::size_t bytes,
            DeliverFn on_deliver, DropFn on_drop = nullptr,
            std::uint8_t traffic_class = 0);

  // Whether a message of `bytes` from `src` to `dst` fits the connection's
  // send window right now. Lets callers model TCP backpressure (block
  // instead of drop) — a false result means a write() would block. Returns
  // true for disconnected peers: that send fails with a link error instead.
  [[nodiscard]] bool can_accept(DeviceId src, DeviceId dst,
                                std::size_t bytes) const;

  // Inflight packets on the (src, dst) connection.
  [[nodiscard]] std::size_t inflight_packets(DeviceId src, DeviceId dst) const;

  // --- Accounting ---------------------------------------------------------

  struct DeviceStats {
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_bytes = 0;
    double airtime_s = 0.0;  // Channel time consumed by this device's link.
    std::uint64_t dropped_messages = 0;
  };

  [[nodiscard]] const DeviceStats& stats(DeviceId id) const;
  [[nodiscard]] double total_busy_airtime_s() const { return busy_airtime_s_; }
  [[nodiscard]] std::uint64_t delivered_messages() const {
    return delivered_counter_->value();
  }
  [[nodiscard]] std::uint64_t dropped_messages() const {
    std::uint64_t total = 0;
    for (const auto* c : dropped_counters_) total += c->value();
    return total;
  }
  [[nodiscard]] std::uint64_t dropped_messages(DropReason reason) const {
    return dropped_counters_[std::size_t(reason)]->value();
  }

  // Airtime utilisation of the channel over the whole run so far.
  [[nodiscard]] double utilisation() const {
    const double elapsed = sim_.now().seconds();
    return elapsed > 0.0 ? busy_airtime_s_ / elapsed : 0.0;
  }

 private:
  struct Station {
    Position pos{};
    std::optional<double> rssi_override;
  };

  struct MessageState {
    DeviceId src;
    DeviceId dst;
    std::size_t total_bytes;
    std::size_t packets_remaining_uplink;
    std::size_t packets_remaining_downlink;
    DeliverFn on_deliver;
    DropFn on_drop;
    bool dead = false;
  };
  using MessagePtr = std::shared_ptr<MessageState>;

  struct PacketHop {
    MessagePtr msg;
    DeviceId link_device;  // Whose link's airtime this hop consumes.
    bool downlink;
    // Ad-hoc: the hop runs at the pairwise link rate instead of the
    // device-to-AP rate.
    bool direct = false;
    std::size_t bytes;
  };

  // Flow key: device ID + direction. Uplink and downlink queues of the same
  // station are distinct flows, matching per-TID MAC queues.
  struct FlowKey {
    std::uint64_t device;
    bool downlink;
    friend bool operator==(const FlowKey&, const FlowKey&) = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const {
      return std::hash<std::uint64_t>{}(k.device * 2 + (k.downlink ? 1 : 0));
    }
  };

  struct HopTiming {
    SimDuration airtime;  // Channel occupancy (busy time).
    SimDuration stall;    // Extra idle recovery time before completion.
  };

  void enqueue_hop(PacketHop hop);
  void serve_next();
  void complete_hop(PacketHop hop);
  void drop_message(const MessagePtr& msg, DropReason reason);
  [[nodiscard]] HopTiming hop_timing(const PacketHop& hop) const;
  std::size_t packets_for(std::size_t bytes) const;
  static std::uint64_t pair_key(DeviceId src, DeviceId dst) {
    return src.value() * 0x9e3779b97f4a7c15ULL ^ dst.value();
  }

  Simulator& sim_;
  MediumConfig config_;
  // Declared before the cached counter pointers below (destruction order).
  std::unique_ptr<obs::Registry> own_registry_;
  obs::Counter* delivered_counter_ = nullptr;
  obs::Counter* dropped_counters_[kNetDropReasonCount] = {};
  obs::Gauge* busy_airtime_gauge_ = nullptr;
  std::unordered_map<std::uint64_t, Station> stations_;
  std::unordered_map<FlowKey, std::deque<PacketHop>, FlowKeyHash> flows_;
  // Round-robin order of flows with pending packets.
  std::list<FlowKey> active_flows_;
  // Flows in TCP-recovery stall: not served until the stated time.
  std::unordered_map<FlowKey, SimTime, FlowKeyHash> cooldown_;
  bool channel_busy_ = false;
  // Channel occupied by a foreign network until this time.
  SimTime external_busy_until_{};
  // Recurring foreign-interference burst; reschedules itself each period.
  // Held as a member (not a self-capturing shared_ptr) so it is released
  // with the Medium instead of leaking through a reference cycle.
  std::function<void()> interference_hog_;
  double busy_airtime_s_ = 0.0;
  // Inflight packets per (src, dst) connection, for TCP-window accounting.
  std::unordered_map<std::uint64_t, std::size_t> pair_inflight_;
  mutable std::unordered_map<std::uint64_t, DeviceStats> stats_;
};

}  // namespace swing::net
