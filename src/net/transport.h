// Message transport over the shared medium.
//
// Provides what SEEP gets from TCP sockets on the testbed: typed, framed
// messages between devices, delivery to a per-device handler, and link-
// failure notification (the analogue of a TCP reset / broken socket that
// lets upstream function units detect departed downstreams, §IV-C "Handling
// Joining and Leaving").
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

#include "common/bytes.h"
#include "common/check.h"
#include "common/ids.h"
#include "common/time.h"
#include "net/medium.h"
#include "sim/simulator.h"

namespace swing::net {

struct Message {
  MessageId id;
  DeviceId src;
  DeviceId dst;
  std::uint8_t type = 0;  // Protocol-defined tag (see runtime/messages.h).
  Bytes payload;
  SimTime sent_at;        // Stamped by the transport at send time.
};

struct TransportConfig {
  // Per-message framing overhead on the wire (TCP/IP headers + SEEP frame).
  std::size_t header_bytes = 66;
  // Time from a failed delivery to the sender learning the link is down
  // (TCP reset / keepalive expiry on the real system).
  SimDuration link_down_detection = millis(150);
};

class Transport {
 public:
  using Handler = std::function<void(const Message&)>;
  using LinkDownFn = std::function<void(DeviceId peer)>;

  Transport(Simulator& sim, Medium& medium, TransportConfig config = {})
      : sim_(sim), medium_(medium), config_(config) {}

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // Registers the device's inbound message handler. A device must be
  // attached to the medium separately.
  void register_device(DeviceId id, Handler handler) {
    handlers_[id.value()] = std::move(handler);
  }

  void unregister_device(DeviceId id) {
    handlers_.erase(id.value());
    watchers_.erase(id.value());
  }

  [[nodiscard]] bool registered(DeviceId id) const {
    return handlers_.contains(id.value());
  }

  // Installs `fn` to be told when a message from `id` fails because the
  // peer's link is gone.
  void set_link_watcher(DeviceId id, LinkDownFn fn) {
    watchers_[id.value()] = std::move(fn);
  }

  // Sends a typed message. Returns false iff the message was refused
  // immediately (sender down / receiver down / queue full); link-down
  // notifications still arrive asynchronously in that case.
  //
  // `wire_bytes` overrides the on-air size when nonzero: tuple payloads
  // carry synthetic Blob fields whose bytes are not materialised in the
  // encoded buffer, so the caller passes the true wire footprint.
  // Span overload for arena-backed senders (wire plane v2): the payload is
  // copied into the in-flight Message exactly once, synchronously, so the
  // caller may reuse its SendArena the moment this returns.
  bool send(DeviceId src, DeviceId dst, std::uint8_t type,
            std::span<const std::uint8_t> payload, std::size_t wire_bytes = 0) {
    return send(src, dst, type, Bytes(payload.begin(), payload.end()),
                wire_bytes);
  }

  bool send(DeviceId src, DeviceId dst, std::uint8_t type, Bytes payload,
            std::size_t wire_bytes = 0) {
    SWING_CHECK(src.valid() && dst.valid())
        << "transport send with invalid endpoint " << src << " -> " << dst;
    Message msg;
    msg.id = MessageId{next_id_++};
    msg.src = src;
    msg.dst = dst;
    msg.type = type;
    msg.payload = std::move(payload);
    msg.sent_at = sim_.now();
    const std::size_t wire =
        (wire_bytes ? wire_bytes : msg.payload.size()) + config_.header_bytes;

    auto on_deliver = [this, msg = std::move(msg)]() mutable {
      auto it = handlers_.find(msg.dst.value());
      // The handler can have unregistered while the message was in flight
      // (device left); the data simply disappears, like a closed socket.
      if (it != handlers_.end()) it->second(msg);
    };
    auto on_drop = [this, src, dst](DropReason reason) {
      if (reason == DropReason::kQueueFull) return;  // Congestion, not loss.
      notify_link_down(src, dst);
    };
    return medium_.send(src, dst, wire, std::move(on_deliver),
                        std::move(on_drop), type);
  }

  // Whether a send of this size would be accepted right now (TCP window has
  // room). Senders that must not lose data block on this instead of sending.
  [[nodiscard]] bool can_send(DeviceId src, DeviceId dst,
                              std::size_t payload_bytes,
                              std::size_t wire_bytes = 0) const {
    const std::size_t wire =
        (wire_bytes ? wire_bytes : payload_bytes) + config_.header_bytes;
    return medium_.can_accept(src, dst, wire);
  }

  [[nodiscard]] Medium& medium() { return medium_; }

 private:
  void notify_link_down(DeviceId src, DeviceId dst) {
    sim_.schedule_after(config_.link_down_detection, [this, src, dst] {
      auto it = watchers_.find(src.value());
      if (it != watchers_.end()) it->second(dst);
    });
  }

  Simulator& sim_;
  Medium& medium_;
  TransportConfig config_;
  std::uint64_t next_id_ = 0;
  std::unordered_map<std::uint64_t, Handler> handlers_;
  std::unordered_map<std::uint64_t, LinkDownFn> watchers_;
};

}  // namespace swing::net
