#include "net/medium.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <vector>

#include "common/check.h"
#include "common/hot.h"
#include "common/logging.h"

namespace swing::net {

const char* net_drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kSenderDisconnected:
      return "sender-disconnected";
    case DropReason::kReceiverDisconnected:
      return "receiver-disconnected";
    case DropReason::kQueueFull:
      return "queue-full";
  }
  return "unknown";
}

Medium::Medium(Simulator& sim, MediumConfig config)
    : sim_(sim), config_(config) {
  obs::Registry* registry = config_.registry;
  if (registry == nullptr) {
    own_registry_ = std::make_unique<obs::Registry>();
    registry = own_registry_.get();
  }
  delivered_counter_ = &registry->counter("net_messages_delivered");
  for (int r = 0; r < kNetDropReasonCount; ++r) {
    dropped_counters_[r] = &registry->counter(
        "net_messages_dropped",
        {{"reason", net_drop_reason_name(DropReason(r))}});
  }
  busy_airtime_gauge_ = &registry->gauge("net_busy_airtime_s");
  if (config_.interference.duty > 0.0) {
    SWING_CHECK_LT(config_.interference.duty, 1.0)
        << "interference duty cycle must leave the channel some airtime";
    // Foreign bursts at a fixed cadence: period = burst / duty.
    const SimDuration period =
        config_.interference.burst * (1.0 / config_.interference.duty);
    interference_hog_ = [this, period] {
      external_busy_until_ = sim_.now() + config_.interference.burst;
      sim_.schedule_at(external_busy_until_, [this] { serve_next(); });
      sim_.schedule_after(period, interference_hog_);
    };
    sim_.schedule_after(period, interference_hog_);
  }
}

void Medium::attach(DeviceId id, Position pos) {
  stations_[id.value()] = Station{pos, std::nullopt};
  stats_.try_emplace(id.value());
}

void Medium::detach(DeviceId id) {
  stations_.erase(id.value());
  // In-flight traffic involving the device dies; hops are skipped lazily in
  // serve_next() once their message is marked dead. Drops fold into the
  // ledger and obs counters, so the flows must be visited in a stable order
  // (drop_message is idempotent via msg->dead, making duplicates across
  // up/downlink flows safe).
  std::vector<FlowKey> keys;
  keys.reserve(flows_.size());
  for (const auto& [key, queue] : flows_) keys.push_back(key);
  std::sort(keys.begin(), keys.end(), [](const FlowKey& a, const FlowKey& b) {
    return std::tie(a.device, a.downlink) < std::tie(b.device, b.downlink);
  });
  for (const FlowKey& key : keys) {
    for (auto& hop : flows_[key]) {
      if (hop.msg->src == id || hop.msg->dst == id) {
        drop_message(hop.msg, hop.msg->dst == id
                                  ? DropReason::kReceiverDisconnected
                                  : DropReason::kSenderDisconnected);
      }
    }
  }
}

void Medium::set_position(DeviceId id, Position pos) {
  auto it = stations_.find(id.value());
  SWING_CHECK(it != stations_.end())
      << "set_position on unattached device " << id;
  it->second.pos = pos;
}

void Medium::set_rssi_override(DeviceId id, std::optional<double> rssi_dbm) {
  auto it = stations_.find(id.value());
  SWING_CHECK(it != stations_.end())
      << "set_rssi_override on unattached device " << id;
  it->second.rssi_override = rssi_dbm;
}

bool Medium::attached(DeviceId id) const {
  return stations_.contains(id.value());
}

Position Medium::position(DeviceId id) const {
  auto it = stations_.find(id.value());
  return it == stations_.end() ? Position{} : it->second.pos;
}

double Medium::rssi(DeviceId id) const {
  auto it = stations_.find(id.value());
  if (it == stations_.end()) {
    return -std::numeric_limits<double>::infinity();
  }
  if (it->second.rssi_override) return *it->second.rssi_override;
  return rssi_from_distance(distance(it->second.pos, Position{}),
                            config_.path_loss);
}

double Medium::phy_rate_bps(DeviceId id) const {
  const auto lq = link_quality(rssi(id));
  return lq ? lq->mcs.rate_bps : 0.0;
}

double Medium::pair_rssi(DeviceId a, DeviceId b) const {
  auto ia = stations_.find(a.value());
  auto ib = stations_.find(b.value());
  if (ia == stations_.end() || ib == stations_.end()) {
    return -std::numeric_limits<double>::infinity();
  }
  const double direct = rssi_from_distance(
      distance(ia->second.pos, ib->second.pos), config_.path_loss);
  // A device pinned to a weak "zone" is weak for direct links too: its
  // zone RSSI caps what any link involving it can achieve.
  double capped = direct;
  if (ia->second.rssi_override) {
    capped = std::min(capped, *ia->second.rssi_override);
  }
  if (ib->second.rssi_override) {
    capped = std::min(capped, *ib->second.rssi_override);
  }
  return capped;
}

bool Medium::reachable(DeviceId a, DeviceId b) const {
  if (a == b) return attached(a);
  if (config_.mode == MediumMode::kAdhoc) {
    return link_quality(pair_rssi(a, b)).has_value();
  }
  return connected(a) && connected(b);
}

double Medium::goodput_bps(DeviceId id) const {
  const auto lq = link_quality(rssi(id));
  if (!lq) return 0.0;
  // Effective bits/s for a full packet including overhead, retries and
  // recovery stalls — what a single saturating flow would see on this
  // device's AP link.
  const double payload_s = double(config_.packet_bytes) * 8.0 /
                           (lq->mcs.rate_bps * config_.mac_efficiency);
  const SimDuration per_packet =
      (SimDuration(config_.per_packet_overhead) + seconds(payload_s)) *
      lq->tries;
  return double(config_.packet_bytes) * 8.0 / per_packet.seconds();
}

std::size_t Medium::packets_for(std::size_t bytes) const {
  return bytes == 0 ? 1 : (bytes + config_.packet_bytes - 1) /
                              config_.packet_bytes;
}

std::size_t Medium::inflight_packets(DeviceId src, DeviceId dst) const {
  auto it = pair_inflight_.find(pair_key(src, dst));
  return it == pair_inflight_.end() ? 0 : it->second;
}

bool Medium::can_accept(DeviceId src, DeviceId dst,
                        std::size_t bytes) const {
  (void)bytes;
  if (!connected(src) || !connected(dst)) return true;  // Fails as an error.
  if (src == dst) return true;  // Loopback has no window.
  // TCP semantics: a write is admitted whenever the window has any room;
  // a message larger than the remaining window simply overshoots it (the
  // kernel buffers one application write beyond the advertised window).
  return inflight_packets(src, dst) < config_.tcp_window_packets;
}

SWING_HOT bool Medium::send(DeviceId src, DeviceId dst, std::size_t bytes,
                  DeliverFn on_deliver, DropFn on_drop,
                  std::uint8_t traffic_class) {
  auto fail = [&](DropReason reason) {
    dropped_counters_[std::size_t(reason)]->inc();
    if (attached(src)) ++stats_[src.value()].dropped_messages;
    if (on_drop) on_drop(reason);
    return false;
  };

  if (config_.mode == MediumMode::kAdhoc && src != dst) {
    if (!attached(src)) return fail(DropReason::kSenderDisconnected);
    if (!attached(dst) || !reachable(src, dst)) {
      return fail(DropReason::kReceiverDisconnected);
    }
  } else {
    if (!connected(src)) return fail(DropReason::kSenderDisconnected);
    if (!connected(dst)) return fail(DropReason::kReceiverDisconnected);
  }

  // swing-chaos: the installed fault plan may lose, clone, or delay this
  // message. A chaos drop happens after the sender's write already
  // succeeded — upper layers see silence, never an error, which is exactly
  // the blindness that forces ACK-timeout recovery upstream.
  FaultDecision fault;
  if (config_.faults != nullptr && src != dst) {
    fault = config_.faults->on_message(src, dst, traffic_class, sim_.now());
    if (fault.drop) return true;
    if (fault.extra_delay.nanos() > 0) {
      on_deliver = [this, extra = fault.extra_delay,
                    cb = std::move(on_deliver)] {
        sim_.schedule_after(extra, cb);
      };
    }
  }

  // Local loopback (master and worker threads co-located on one device, or
  // adjacent function units deployed to the same device) skips the radio.
  if (src == dst) {
    delivered_counter_->inc();
    sim_.schedule_after(config_.delivery_latency,
                        [cb = std::move(on_deliver)] { cb(); });
    return true;
  }

  const std::size_t npackets = packets_for(bytes);
  // Even an empty message occupies one packet (an empty frame still rides
  // the air); zero packets would enqueue nothing and never complete.
  SWING_DCHECK_GT(npackets, 0u)
      << "message " << src << " -> " << dst << " produced no packets";
  std::size_t& inflight = pair_inflight_[pair_key(src, dst)];
  if (inflight >= config_.tcp_window_packets) {
    return fail(DropReason::kQueueFull);
  }
  inflight += npackets;
  // A chaos clone rides the channel (and occupies window accounting) like
  // any other message; only the original's admission was window-checked,
  // matching a below-the-window MAC/TCP retransmission artefact.
  const int copies = fault.duplicate ? 2 : 1;
  if (fault.duplicate) inflight += npackets;

  // Ad-hoc mode: the packet reaches the peer in one direct hop, so there
  // is no separate uplink phase.
  const bool direct = config_.mode == MediumMode::kAdhoc;
  const std::size_t last = bytes == 0 ? 0 : bytes % config_.packet_bytes;
  for (int copy = 0; copy < copies; ++copy) {
    // The shared MessageState *is* the in-flight message: every queued
    // hop and the delivery/drop callbacks co-own it, so the allocation
    // is the ownership model, not an avoidable temporary.
    auto msg = std::make_shared<MessageState>();  // swing-lint: allow(hotpath-alloc)
    msg->src = src;
    msg->dst = dst;
    msg->total_bytes = bytes;
    msg->packets_remaining_uplink = npackets;
    msg->packets_remaining_downlink = npackets;
    if (copy + 1 == copies) {
      msg->on_deliver = std::move(on_deliver);
      msg->on_drop = std::move(on_drop);
    } else {
      msg->on_deliver = on_deliver;
      msg->on_drop = on_drop;
    }

    for (std::size_t i = 0; i < npackets; ++i) {
      const std::size_t pbytes =
          (i + 1 == npackets && last != 0) ? last : config_.packet_bytes;
      // Built once and moved straight into the flow queue: the hop is
      // the queue element, not a per-iteration scratch copy.
      PacketHop hop{msg, src, /*downlink=*/direct, direct, pbytes};  // swing-lint: allow(hotpath-alloc)
      enqueue_hop(std::move(hop));
    }
  }
  return true;
}

SWING_HOT void Medium::enqueue_hop(PacketHop hop) {
  // Direct (ad-hoc) hops queue per connection: a stalled pair must not
  // hold up the sender's traffic to other peers.
  const FlowKey key{hop.direct ? pair_key(hop.msg->src, hop.msg->dst)
                               : hop.link_device.value(),
                    hop.downlink};
  auto [it, inserted] = flows_.try_emplace(key);
  it->second.push_back(std::move(hop));
  if (inserted || it->second.size() == 1) {
    active_flows_.push_back(key);
  }
  if (!channel_busy_) serve_next();
}

SWING_HOT void Medium::serve_next() {
  if (channel_busy_) return;  // One transmission at a time: CSMA serialises.
  const SimTime now = sim_.now();
  if (now < external_busy_until_) {
    // A foreign network holds the channel; CSMA defers until it frees.
    sim_.schedule_at(external_busy_until_, [this] { serve_next(); });
    return;
  }
  SimTime earliest_wakeup = SimTime::max();
  // One full rotation over the active flows at most; flows in recovery
  // cooldown rotate to the back without being counted as served.
  std::size_t budget = active_flows_.size();
  while (!active_flows_.empty() && budget-- > 0) {
    const FlowKey key = active_flows_.front();
    active_flows_.pop_front();
    auto it = flows_.find(key);
    if (it == flows_.end() || it->second.empty()) continue;

    if (auto cd = cooldown_.find(key); cd != cooldown_.end()) {
      if (cd->second > now) {
        earliest_wakeup = std::min(earliest_wakeup, cd->second);
        active_flows_.push_back(key);
        continue;
      }
      cooldown_.erase(cd);
    }

    PacketHop hop = std::move(it->second.front());
    it->second.pop_front();
    // Keep the flow in rotation while it still has packets.
    if (!it->second.empty()) {
      active_flows_.push_back(key);
    } else {
      flows_.erase(it);
    }

    if (hop.msg->dead) continue;  // Message dropped while queued.

    // A station can lose association (or, ad-hoc, the pair can drift out
    // of range) while packets are queued.
    const bool path_ok = hop.direct
                             ? reachable(hop.msg->src, hop.msg->dst)
                             : connected(hop.link_device);
    if (!path_ok) {
      drop_message(hop.msg, hop.downlink ? DropReason::kReceiverDisconnected
                                         : DropReason::kSenderDisconnected);
      continue;
    }

    const HopTiming timing = hop_timing(hop);
    channel_busy_ = true;
    busy_airtime_s_ += timing.airtime.seconds();
    busy_airtime_gauge_->set(busy_airtime_s_);
    stats_[hop.link_device.value()].airtime_s += timing.airtime.seconds();
    if (timing.stall.nanos() > 0) {
      // The find() at the top of the rotation erased any expired entry,
      // so this insert targets a key that is absent by construction; the
      // earlier iterator cannot survive the erase to be reused here.
      cooldown_[key] = now + timing.airtime + timing.stall;  // swing-lint: allow(double-lookup)
    }
    // The channel frees after the airtime; the packet completes after any
    // recovery stall on top (during which other flows transmit).
    sim_.schedule_after(timing.airtime, [this] {
      channel_busy_ = false;
      serve_next();
    });
    sim_.schedule_after(timing.airtime + timing.stall,
                        [this, hop = std::move(hop)]() mutable {
                          complete_hop(std::move(hop));
                        });
    return;
  }
  if (earliest_wakeup != SimTime::max()) {
    sim_.schedule_at(earliest_wakeup, [this] { serve_next(); });
  }
}

SWING_HOT void Medium::complete_hop(PacketHop hop) {
  if (hop.msg->dead) return;
  if (!hop.downlink) {
    stats_[hop.msg->src.value()].tx_bytes += hop.bytes;
    SWING_DCHECK_GT(hop.msg->packets_remaining_uplink, 0u)
        << "uplink hop completed for a fully-sent message";
    --hop.msg->packets_remaining_uplink;
    // The AP forwards the packet on the receiver's downlink.
    enqueue_hop(PacketHop{hop.msg, hop.msg->dst, /*downlink=*/true,
                          /*direct=*/false, hop.bytes});
  } else {
    // Ad-hoc (direct) hops are single-phase: the one airtime slot is both
    // the sender's transmission and the receiver's reception, so tx is
    // charged here rather than in a separate uplink completion.
    // The uplink branch above touches the same entry, but the branches
    // are disjoint (direct hops are always enqueued downlink).
    if (hop.direct) stats_[hop.msg->src.value()].tx_bytes += hop.bytes;  // swing-lint: allow(double-lookup)
    stats_[hop.msg->dst.value()].rx_bytes += hop.bytes;
    SWING_DCHECK_GT(hop.msg->packets_remaining_downlink, 0u)
        << "downlink hop completed for a fully-delivered message";
    --hop.msg->packets_remaining_downlink;
    auto window = pair_inflight_.find(pair_key(hop.msg->src, hop.msg->dst));
    if (window != pair_inflight_.end() && window->second > 0) {
      --window->second;
    }
    if (hop.msg->packets_remaining_downlink == 0) {
      delivered_counter_->inc();
      sim_.schedule_after(config_.delivery_latency,
                          [cb = std::move(hop.msg->on_deliver)] { cb(); });
    }
  }
}

void Medium::drop_message(const MessagePtr& msg, DropReason reason) {
  if (msg->dead) return;
  msg->dead = true;
  // Release the window space its undelivered packets held.
  auto window = pair_inflight_.find(pair_key(msg->src, msg->dst));
  if (window != pair_inflight_.end()) {
    window->second -= std::min(window->second,
                               msg->packets_remaining_downlink);
  }
  dropped_counters_[std::size_t(reason)]->inc();
  if (attached(msg->src)) ++stats_[msg->src.value()].dropped_messages;
  if (msg->on_drop) msg->on_drop(reason);
}

Medium::HopTiming Medium::hop_timing(const PacketHop& hop) const {
  const auto lq = link_quality(hop.direct
                                   ? pair_rssi(hop.msg->src, hop.msg->dst)
                                   : rssi(hop.link_device));
  SWING_CHECK(lq) << "hop scheduled over a dead link (device "
                  << hop.link_device << ")";
  const double payload_s =
      double(hop.bytes) * 8.0 / (lq->mcs.rate_bps * config_.mac_efficiency);
  const SimDuration single_try =
      SimDuration(config_.per_packet_overhead) + seconds(payload_s);
  const double air_tries =
      std::min(lq->tries, config_.mac_retry_airtime_cap);
  return HopTiming{single_try * air_tries,
                   single_try * (lq->tries - air_tries)};
}

const Medium::DeviceStats& Medium::stats(DeviceId id) const {
  static const DeviceStats kEmpty{};
  auto it = stats_.find(id.value());
  return it == stats_.end() ? kEmpty : it->second;
}

}  // namespace swing::net
