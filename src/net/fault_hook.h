// swing-chaos injection point (see src/chaos/fault_plan.h for the planner).
//
// The medium consults an installed FaultHook once per message before queuing
// it on the air. The hook decides whether the wire loses the message, clones
// it, or delays its delivery — faults a real 802.11/TCP stack produces and
// the sender cannot observe synchronously (which is exactly why the runtime
// needs ACK-timeout retransmission, src/runtime/worker.cpp). The interface
// lives in net/ so the medium stays ignorant of chaos scheduling; the chaos
// library implements it without net/ depending on chaos/.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/time.h"

namespace swing::net {

// What the fault layer does to one message.
struct FaultDecision {
  bool drop = false;       // Lost on the air; the sender still sees success.
  bool duplicate = false;  // A second copy rides the channel too.
  SimDuration extra_delay{};  // Added to this message's delivery (spike).
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  // Consulted once per medium send (loopback excluded). `traffic_class` is
  // the transport's message type tag (runtime::MsgType), which lets a plan
  // target ACK traffic specifically.
  virtual FaultDecision on_message(DeviceId src, DeviceId dst,
                                   std::uint8_t traffic_class,
                                   SimTime now) = 0;
};

}  // namespace swing::net
