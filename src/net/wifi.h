// Wi-Fi physical-layer model: positions, path loss, RSSI, 802.11n rates.
//
// The paper's testbed is a single 802.11n 2.4 GHz BSS (Linksys E1200) with
// devices placed in zones of Good (> -30 dBm), Fair and Bad (-80..-70 dBm)
// signal. We model RSSI with a standard indoor log-distance path-loss curve
// and map RSSI to a single-stream 802.11n MCS rate with per-MCS receiver
// sensitivity and a packet-error-rate penalty that grows near sensitivity.
// The mechanism that matters for Swing is preserved: weak-signal devices get
// low PHY rates and high retry counts, consuming disproportionate airtime.
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>

namespace swing::net {

// Planar position in meters. The access point sits at the origin.
struct Position {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(Position, Position) = default;
};

inline double distance(Position a, Position b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

struct PathLossConfig {
  double tx_power_dbm = 16.0;    // Typical 2.4 GHz AP/client EIRP.
  double ref_loss_db = 40.0;     // Path loss at 1 m (2.4 GHz free space).
  double exponent = 3.0;         // Indoor with obstructions.
  double min_distance_m = 0.25;  // Clamp to avoid log(0) at the AP.
};

// RSSI in dBm at the AP for a device at distance `d_m` (symmetric link).
inline double rssi_from_distance(double d_m, const PathLossConfig& cfg = {}) {
  const double d = std::max(d_m, cfg.min_distance_m);
  return cfg.tx_power_dbm - cfg.ref_loss_db -
         10.0 * cfg.exponent * std::log10(std::max(d, 1.0));
}

// Inverse of rssi_from_distance: distance (m) that yields the given RSSI.
// Used by benches to place devices in the paper's signal zones.
inline double distance_for_rssi(double rssi_dbm,
                                const PathLossConfig& cfg = {}) {
  const double loss = cfg.tx_power_dbm - cfg.ref_loss_db - rssi_dbm;
  if (loss <= 0.0) return cfg.min_distance_m;
  return std::pow(10.0, loss / (10.0 * cfg.exponent));
}

// One 802.11n (HT20, single stream, long GI) rate step.
struct McsEntry {
  int index;
  double rate_bps;          // PHY data rate.
  double sensitivity_dbm;   // Minimum RSSI the rate is usable at in-situ.
};

// 802.11n MCS0-7 table. Sensitivities are calibrated to the paper's 2.4 GHz
// office testbed rather than lab chipset specs: with co-channel interference
// and cheap tablet radios, rates degrade ~10 dB earlier than datasheet
// sensitivity. This calibration makes the paper's "Bad" zone (-80..-70 dBm)
// saturate under a 24 FPS x 6 kB stream, reproducing Fig. 2's multi-second
// transmission delays.
inline constexpr McsEntry kMcsTable[] = {
    {7, 65.0e6, -55.0}, {6, 58.5e6, -58.0}, {5, 52.0e6, -61.0},
    {4, 39.0e6, -64.0}, {3, 26.0e6, -67.0}, {2, 19.5e6, -71.0},
    {1, 13.0e6, -75.0}, {0, 6.5e6, -80.0},
};

// RSSI below which no MCS is usable and the association drops.
inline constexpr double kDisconnectRssiDbm = kMcsTable[7].sensitivity_dbm;

// Per-MCS packet error rate. Near the sensitivity floor the PER climbs
// steeply; with >8 dB of margin it is negligible.
inline double mcs_packet_error_rate(double rssi_dbm, const McsEntry& mcs) {
  const double margin = rssi_dbm - mcs.sensitivity_dbm;
  if (margin >= 8.0) return 0.01;
  if (margin < 0.0) return 1.0;
  // Linear from 0.88 at zero margin to 0.01 at 8 dB.
  return 0.88 - margin * (0.87 / 8.0);
}

// Residual loss from co-channel interference and fading that MAC retries do
// not hide (it triggers TCP recovery stalls). Grows as RSSI falls below
// -65 dBm; calibrated so the paper's "Bad" zone (-80..-70 dBm) collapses
// below a 24 FPS x 6 kB offered load, reproducing Fig. 2.
inline double residual_loss(double rssi_dbm) {
  const double loss = 0.9 * (-65.0 - rssi_dbm) / 13.0;
  return std::clamp(loss, 0.0, 0.92);
}

// The operating point a Minstrel-style rate controller converges to: the
// usable MCS that maximises expected goodput at this RSSI, with the expected
// number of transmissions per delivered packet.
struct LinkQuality {
  McsEntry mcs;
  double tries;  // >= 1; expected transmissions per delivered packet.
};

inline std::optional<LinkQuality> link_quality(double rssi_dbm) {
  const double residual = residual_loss(rssi_dbm);
  std::optional<LinkQuality> best;
  double best_goodput = 0.0;
  for (const auto& entry : kMcsTable) {
    const double per = mcs_packet_error_rate(rssi_dbm, entry);
    if (per >= 1.0) continue;
    const double delivery = (1.0 - per) * (1.0 - residual);
    const double goodput = entry.rate_bps * delivery;
    if (goodput > best_goodput) {
      best_goodput = goodput;
      best = LinkQuality{entry, 1.0 / delivery};
    }
  }
  return best;
}

}  // namespace swing::net
