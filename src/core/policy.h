// Routing policies (paper §V, §VI-B).
//
// A RoutingPolicy turns per-downstream estimates into a routing decision:
// which downstream function units to use (worker selection) and with what
// weights (data routing). The five policies evaluated in the paper:
//
//   RR  — round robin over all downstreams (stream-processing default).
//   PR  — processing-delay-weighted routing, no selection.
//   LR  — latency-weighted routing, no selection.
//   PRS — processing-delay-weighted routing + worker selection.
//   LRS — latency-weighted routing + worker selection (Swing's algorithm).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"

namespace swing::core {

// RR..LRS are the paper's five policies (§VI-B). ELRS is this repo's
// energy-aware extension of LRS: same latency-based worker selection, but
// routing weights additionally favour downstreams with fuller batteries
// and devices below a battery floor are spared entirely (the paper's
// stated objective includes "minimization of ... energy usage").
enum class PolicyKind { kRR, kPR, kLR, kPRS, kLRS, kELRS };

[[nodiscard]] std::string policy_name(PolicyKind kind);
// Parses "RR"/"PR"/"LR"/"PRS"/"LRS" (case-insensitive); throws
// std::invalid_argument otherwise.
[[nodiscard]] PolicyKind policy_from_name(const std::string& name);

[[nodiscard]] constexpr bool policy_uses_selection(PolicyKind kind) {
  return kind == PolicyKind::kPRS || kind == PolicyKind::kLRS ||
         kind == PolicyKind::kELRS;
}
[[nodiscard]] constexpr bool policy_uses_latency(PolicyKind kind) {
  return kind == PolicyKind::kLR || kind == PolicyKind::kLRS ||
         kind == PolicyKind::kELRS;
}
[[nodiscard]] constexpr bool policy_uses_battery(PolicyKind kind) {
  return kind == PolicyKind::kELRS;
}

// The paper's evaluated policies (the figure benches sweep exactly these).
inline constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kRR, PolicyKind::kPR, PolicyKind::kLR, PolicyKind::kPRS,
    PolicyKind::kLRS};

// What the upstream knows about one downstream function unit, distilled from
// ACK measurements (see LatencyEstimator).
struct DownstreamInfo {
  InstanceId id;
  double latency_ms = 0.0;     // L_i: network + queuing + processing.
  double processing_ms = 0.0;  // W_i: processing component only.
  double battery = 1.0;        // Remaining battery fraction (last ACK).
};

struct RoutingDecision {
  // Selected downstreams with aligned normalized weights (sum to 1).
  std::vector<InstanceId> selected;
  std::vector<double> weights;
  // When true the router cycles deterministically instead of sampling
  // (round-robin semantics).
  bool round_robin = false;
};

// Tunables shared by the built-in policies.
struct PolicyOptions {
  // Scales worker selection's sum-rate constraint: the minimum prefix must
  // satisfy sum(mu_i) >= headroom * Lambda. 1.0 is the paper's behaviour;
  // >1 trades energy for slack against estimate noise (selection
  // hysteresis — see the ablation bench).
  double selection_headroom = 1.0;
  // ELRS: routing weight p_i ∝ (1/L_i) * battery_i^exponent. 0 disables
  // the battery term (degenerates to LRS).
  double battery_exponent = 1.0;
  // ELRS: downstreams below this remaining-battery floor are dropped from
  // selection while any peer above it can serve.
  double min_battery = 0.05;
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  // `input_rate_per_s` is the upstream's measured incoming tuple rate
  // Lambda, used by worker selection's sum-rate constraint.
  [[nodiscard]] virtual RoutingDecision decide(
      std::span<const DownstreamInfo> downstreams,
      double input_rate_per_s) const = 0;

  [[nodiscard]] virtual PolicyKind kind() const = 0;

  static std::unique_ptr<RoutingPolicy> make(PolicyKind kind,
                                             PolicyOptions options = {});
};

// Worker Selection (paper §V-A): sorts downstreams by service rate
// mu_i = 1/delay_i descending and returns the minimum prefix whose summed
// rate meets `input_rate_per_s`; all of them if infeasible. Exposed
// standalone for testing and for custom policies. `headroom` scales the
// rate constraint (1.0 = paper behaviour).
[[nodiscard]] std::vector<DownstreamInfo> select_workers(
    std::span<const DownstreamInfo> downstreams, double input_rate_per_s,
    bool by_latency, double headroom = 1.0);

// Inverse-delay normalized weights over `downstreams` (p_i ∝ 1/delay_i).
[[nodiscard]] std::vector<double> inverse_delay_weights(
    std::span<const DownstreamInfo> downstreams, bool by_latency);

}  // namespace swing::core
