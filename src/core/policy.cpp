#include "core/policy.h"

#include <algorithm>
#include <cmath>
#include <cctype>
#include <stdexcept>

#include "common/check.h"

namespace swing::core {

// Debug label, cold callers only in practice; every literal fits SSO.
std::string policy_name(PolicyKind kind) {  // swing-lint: allow(heavy-copy)
  switch (kind) {
    case PolicyKind::kRR:   return "RR";
    case PolicyKind::kPR:   return "PR";
    case PolicyKind::kLR:   return "LR";
    case PolicyKind::kPRS:  return "PRS";
    case PolicyKind::kLRS:  return "LRS";
    case PolicyKind::kELRS: return "ELRS";
  }
  SWING_UNREACHABLE("invalid PolicyKind");
}

PolicyKind policy_from_name(const std::string& name) {
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) upper.push_back(char(std::toupper(unsigned(c))));
  static constexpr PolicyKind kEvery[] = {
      PolicyKind::kRR,  PolicyKind::kPR,  PolicyKind::kLR,
      PolicyKind::kPRS, PolicyKind::kLRS, PolicyKind::kELRS};
  for (PolicyKind kind : kEvery) {
    if (policy_name(kind) == upper) return kind;
  }
  throw std::invalid_argument("unknown policy: " + name);
}

namespace {

double delay_of(const DownstreamInfo& d, bool by_latency) {
  // Guard against zero/negative estimates: treat as a very fast downstream
  // rather than dividing by zero.
  const double raw = by_latency ? d.latency_ms : d.processing_ms;
  return std::max(raw, 1e-3);
}

}  // namespace

// The selected subset IS the product of this function; the vector is
// built once per decision epoch, not per tuple.
std::vector<DownstreamInfo> select_workers(  // swing-lint: allow(heavy-copy)
    std::span<const DownstreamInfo> downstreams, double input_rate_per_s,
    bool by_latency, double headroom) {
  std::vector<DownstreamInfo> sorted(downstreams.begin(), downstreams.end());
  std::sort(sorted.begin(), sorted.end(),
            [&](const DownstreamInfo& a, const DownstreamInfo& b) {
              return delay_of(a, by_latency) < delay_of(b, by_latency);
            });
  const double target = input_rate_per_s * headroom;
  double sum_rate = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    sum_rate += 1000.0 / delay_of(sorted[i], by_latency);  // mu_i in 1/s.
    if (sum_rate >= target) {
      sorted.resize(i + 1);
      // Postcondition (paper §V-A): the selected prefix's service rate
      // covers the input rate.
      SWING_DCHECK_GE(sum_rate, target)
          << "worker selection returned an underprovisioned prefix";
      return sorted;
    }
  }
  // Sum-rate constraint unsatisfiable: use every downstream (paper §V-A).
  SWING_DCHECK_EQ(sorted.size(), downstreams.size())
      << "infeasible selection must fall back to every downstream";
  return sorted;
}

// Weight set built once per decision epoch; returning it is the API.
std::vector<double> inverse_delay_weights(  // swing-lint: allow(heavy-copy)
    std::span<const DownstreamInfo> downstreams, bool by_latency) {
  std::vector<double> weights;
  weights.reserve(downstreams.size());
  double total = 0.0;
  for (const auto& d : downstreams) {
    const double w = 1.0 / delay_of(d, by_latency);
    weights.push_back(w);
    total += w;
  }
  SWING_DCHECK(downstreams.empty() || total > 0.0)
      << "delay_of() clamps to 1e-3 ms, so every weight is positive";
  for (double& w : weights) w /= total;
  return weights;
}

namespace {

class BasePolicy : public RoutingPolicy {
 public:
  BasePolicy(PolicyKind kind, PolicyOptions options)
      : kind_(kind), options_(options) {}
  [[nodiscard]] PolicyKind kind() const override { return kind_; }

  [[nodiscard]] RoutingDecision decide(
      std::span<const DownstreamInfo> downstreams,
      double input_rate_per_s) const override {
    RoutingDecision decision;
    if (downstreams.empty()) return decision;

    if (kind_ == PolicyKind::kRR) {
      decision.round_robin = true;
      decision.selected.reserve(downstreams.size());
      for (const auto& d : downstreams) decision.selected.push_back(d.id);
      decision.weights.assign(downstreams.size(),
                              1.0 / double(downstreams.size()));
      return decision;
    }

    const bool by_latency = policy_uses_latency(kind_);

    // ELRS: spare nearly-empty devices when any healthy peer exists.
    std::vector<DownstreamInfo> pool(downstreams.begin(), downstreams.end());
    if (policy_uses_battery(kind_)) {
      std::vector<DownstreamInfo> healthy;
      healthy.reserve(pool.size());
      for (const auto& d : pool) {
        if (d.battery >= options_.min_battery) healthy.push_back(d);
      }
      if (!healthy.empty()) pool = std::move(healthy);
    }

    std::vector<DownstreamInfo> chosen;
    if (policy_uses_selection(kind_)) {
      chosen = select_workers(pool, input_rate_per_s, by_latency,
                              options_.selection_headroom);
    } else {
      chosen = std::move(pool);
    }
    decision.weights = inverse_delay_weights(chosen, by_latency);
    if (policy_uses_battery(kind_) && options_.battery_exponent > 0.0) {
      // Fuller batteries carry proportionally more of the stream, draining
      // the swarm evenly instead of burning the fastest device first.
      double total = 0.0;
      for (std::size_t i = 0; i < chosen.size(); ++i) {
        decision.weights[i] *= std::pow(std::max(chosen[i].battery, 1e-3),
                                        options_.battery_exponent);
        total += decision.weights[i];
      }
      for (double& w : decision.weights) w /= total;
    }
    decision.selected.reserve(chosen.size());
    for (const auto& d : chosen) decision.selected.push_back(d.id);

    // Postconditions every policy must satisfy: at least one downstream is
    // selected (the pool was non-empty), weights align with selections, and
    // the distribution is normalized.
    SWING_CHECK(!decision.selected.empty())
        << policy_name(kind_) << " selected no downstreams from a pool of "
        << downstreams.size();
    SWING_CHECK_EQ(decision.selected.size(), decision.weights.size());
    double weight_sum = 0.0;
    for (double w : decision.weights) {
      SWING_DCHECK_GE(w, 0.0);
      weight_sum += w;
    }
    SWING_DCHECK(std::abs(weight_sum - 1.0) < 1e-9)
        << policy_name(kind_) << " weights sum to " << weight_sum;
    return decision;
  }

 private:
  PolicyKind kind_;
  PolicyOptions options_;
};

}  // namespace

std::unique_ptr<RoutingPolicy> RoutingPolicy::make(PolicyKind kind,
                                                   PolicyOptions options) {
  return std::make_unique<BasePolicy>(kind, options);
}

}  // namespace swing::core
