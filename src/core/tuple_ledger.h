// swing-audit: global tuple-conservation and ordering invariant auditor.
//
// The LRS routing claims (throughput, latency vs RR) rest on every tuple
// being routed, ACKed, and reordered exactly once. Nothing in the data plane
// enforces that globally: a routing regression that silently loses tuples
// under skew still "passes" throughput-shaped tests, just with worse
// numbers (SWARM observes exactly this failure mode in streaming load
// balancers). The ledger closes that hole: every source emission must be
// accounted for — delivered to a sink, dropped with a recorded reason,
// noted as in-flight at shutdown, or absorbed by a stateful operator
// (e.g. the gesture windower consumes 25 samples per emitted window).
//
// Audited invariants (see DESIGN.md "swing-audit"):
//   conservation   emitted == delivered + consumed + dropped + in-flight
//                  (per tuple id; ghost events — a delivery or drop for an
//                  id that was never emitted — are hard violations)
//   monotonicity   reorder-buffer releases are non-decreasing in id per
//                  sink instance (release-mode check; the buffer's own
//                  SWING_DCHECK only guards debug builds)
//   finiteness     every ACK-derived latency sample is finite and >= 0
//   determinism    the event stream folds into a digest; identical seeds
//                  must yield identical digests across runs
//
// The ledger is a passive observer threaded through the runtime (worker,
// reorder, master) by the Swarm; framework behaviour never reads it. All
// bookkeeping is deterministic so the digest doubles as a replay check.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace swing::core {

// Why a tuple left the pipeline without reaching a sink. Every drop site in
// the runtime must pick one; an unexplained disappearance is the bug class
// this ledger exists to catch.
enum class DropReason : std::uint8_t {
  kNoDownstream = 0,    // No routable downstream instance on an edge.
  kSendFailed = 1,      // Transport refused the send / peer unknown.
  kBackpressureShed = 2,  // Transform shed on a congested connection.
  kComputeBacklog = 3,  // Receiving device's compute queue was full.
  kStaleTtl = 4,        // Outlived tuple_ttl before processing.
  kPendingOverflow = 5,  // Deploy/data race buffer overflowed.
  kBatchOverflow = 6,   // Batching service buffer was full.
  kLateReorder = 7,     // Arrived after a larger id already played.
  // The camera overran while its dispatch was head-of-line blocked. The
  // frame never received a tuple id, so the ledger records nothing — this
  // reason exists for the metrics plane, which shares this taxonomy.
  kSourceOverrun = 8,
  // swing-chaos recovery: every retransmission attempt timed out without an
  // ACK and no local fallback was possible. Terminal — the recovery layer
  // gave the tuple up deliberately instead of letting it vanish.
  kRetryExhausted = 9,
  // The tuple was queued on a device that crashed (abrupt leave, §IV-C).
  // Distinct from in-flight-at-shutdown: a crash is a fault, not a drain.
  kAbruptLeave = 10,
  // swing-state: the tuple's contribution to operator state was absorbed
  // after the last shipped checkpoint, and the host crashed before the next
  // one — the restored instance cannot replay it. Booked at crash time so
  // conservation audits exactly even though the work itself is gone.
  kStateLost = 11,
};

inline constexpr int kDropReasonCount = 12;

[[nodiscard]] const char* drop_reason_name(DropReason reason);

// The audit outcome. `violations` lists hard invariant breaches (ghost
// events, duplicate emission, non-monotone release, non-finite latency);
// `in_flight_residual` counts tuples with no terminal event — legitimate
// for tuples still traversing the network at shutdown, and expected to be
// zero after a stop + drain (see conserved()).
struct AuditReport {
  std::uint64_t emitted = 0;
  std::uint64_t delivered = 0;   // Unique ids that reached a sink.
  std::uint64_t consumed = 0;    // Unique ids absorbed by stateful units.
  std::uint64_t dropped = 0;     // Unique ids with a recorded drop.
  std::uint64_t in_flight_recorded = 0;  // Noted queued at worker shutdown.
  std::uint64_t in_flight_residual = 0;  // Emitted, no terminal event.
  std::uint64_t duplicate_deliveries = 0;  // Extra sink arrivals (fan-in).
  std::uint64_t reemissions = 0;  // Transform-minted ids (windowing).
  std::uint64_t retransmissions = 0;   // Recovery re-sends (swing-chaos).
  std::uint64_t deduplications = 0;    // Receiver-side duplicate discards.
  std::uint64_t latency_samples = 0;
  std::uint64_t control_events = 0;
  std::map<DropReason, std::uint64_t> drops_by_reason;
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  // Strict conservation: ok() and nothing unaccounted. Holds after the
  // sources stop and the swarm drains before shutdown.
  [[nodiscard]] bool conserved() const {
    return ok() && in_flight_residual == 0;
  }
  [[nodiscard]] std::string summary() const;
};

class TupleLedger {
 public:
  // --- Data-plane events (recorded by the worker) -----------------------

  // A source generated a tuple. Each id must be emitted exactly once
  // (sources namespace ids as seq * n_sources + ordinal); a repeat here is
  // a hard violation (e.g. a rejoin double-starting a source).
  void on_emitted(TupleId id, SimTime now);

  // A stateful transform minted a tuple whose id differs from its input's
  // (the gesture windower numbers windows 0, 1, 2, ... independently of
  // sample ids). Opens the id like on_emitted but an already-known id is
  // legal — window ids intentionally collide with the sample-id space, and
  // the record simply continues under the delivered-wins bucketing.
  void on_reemitted(TupleId id, SimTime now);

  // A sink received the tuple (pre-reorder arrival).
  void on_delivered(TupleId id, SimTime now);

  // A stateful transform absorbed the tuple without emitting a successor
  // (windowing, filtering): a legitimate terminal state.
  void on_consumed(TupleId id);

  void on_dropped(TupleId id, DropReason reason);

  // Still queued somewhere inside a worker when it shut down.
  void on_in_flight_at_shutdown(TupleId id);

  // The recovery layer re-sent the tuple after an ACK timeout
  // (swing-chaos). Not a terminal state — the retransmitted copy must still
  // be delivered, dropped, or noted in flight. A retransmission of a tuple
  // never emitted is a hard violation.
  void on_retransmitted(TupleId id, SimTime now);

  // A receiver discarded the tuple as a duplicate (retransmit raced the
  // original, or the chaos layer cloned it on the wire). Not terminal —
  // some copy was, or will be, accounted separately.
  void on_deduplicated(TupleId id, SimTime now);

  // A reorder buffer released `id` for playback at sink `sink`. Release
  // ids must be non-decreasing per sink instance.
  void on_played(InstanceId sink, TupleId id, SimTime now);

  // An ACK-derived latency measurement, before it reaches the estimator.
  // Must be finite and non-negative.
  void on_latency_sample(double latency_ms);

  // --- Control-plane events (recorded by the master) --------------------

  // Folded into the digest so membership/deployment divergence between
  // same-seed runs is detected even when the data plane happens to agree.
  void on_control_event(std::uint8_t kind, std::uint64_t detail,
                        SimTime now);

  // --- Audit ------------------------------------------------------------

  [[nodiscard]] AuditReport audit() const;

  // Order-sensitive FNV-1a hash of every recorded event. Two runs with the
  // same seed must produce identical digests (tested in
  // tests/integration/test_determinism.cpp).
  [[nodiscard]] std::uint64_t digest() const { return digest_; }

  [[nodiscard]] std::uint64_t events() const { return events_; }

 private:
  struct Record {
    bool emitted = false;
    bool delivered = false;
    bool consumed = false;
    bool noted_in_flight = false;
    std::uint16_t drop_mask = 0;      // Bit per DropReason.
    std::uint8_t delivery_count = 0;  // Saturating; duplicates beyond 1.
  };

  Record& record(TupleId id) { return tuples_[id.value()]; }
  void violation(std::string message);
  void fold(std::uint8_t kind, std::uint64_t a, std::uint64_t b);

  // Keyed by raw id; std::map so audit() iterates deterministically.
  std::map<std::uint64_t, Record> tuples_;
  std::map<std::uint64_t, TupleId> last_played_;  // Per sink instance.
  std::map<DropReason, std::uint64_t> drop_events_;
  std::vector<std::string> violations_;
  std::uint64_t dropped_violations_ = 0;  // Beyond the cap below.
  std::uint64_t duplicate_deliveries_ = 0;
  std::uint64_t reemissions_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t deduplications_ = 0;
  std::uint64_t latency_samples_ = 0;
  std::uint64_t control_events_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.

  static constexpr std::size_t kMaxViolations = 32;
};

}  // namespace swing::core
