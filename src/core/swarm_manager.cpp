#include "core/swarm_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace swing::core {

SwarmManager::SwarmManager(SwarmManagerConfig config, Rng rng)
    : config_(config),
      rng_(rng),
      policy_(RoutingPolicy::make(config.policy, config.policy_options)),
      estimator_(config.estimator),
      rate_meter_(config.rate_window) {
  if (config_.registry != nullptr) {
    routed_counter_ = &config_.registry->counter(
        "manager_routed_tuples", {{"policy", policy_name(config_.policy)}});
  }
}

void SwarmManager::add_downstream(InstanceId id) {
  if (std::find(downstreams_.begin(), downstreams_.end(), id) !=
      downstreams_.end()) {
    return;
  }
  downstreams_.push_back(id);
  std::sort(downstreams_.begin(), downstreams_.end());
  estimator_.add_downstream(id);
  update_decision(SimTime{});
}

void SwarmManager::remove_downstream(InstanceId id) {
  auto it = std::find(downstreams_.begin(), downstreams_.end(), id);
  if (it == downstreams_.end()) return;
  downstreams_.erase(it);
  estimator_.remove_downstream(id);
  update_decision(SimTime{});
}

void SwarmManager::set_downstreams(const std::vector<InstanceId>& ids) {
  for (InstanceId id : downstreams_) {
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
      estimator_.remove_downstream(id);
    }
  }
  downstreams_ = ids;
  std::sort(downstreams_.begin(), downstreams_.end());
  downstreams_.erase(std::unique(downstreams_.begin(), downstreams_.end()),
                     downstreams_.end());
  for (InstanceId id : downstreams_) estimator_.add_downstream(id);
  update_decision(SimTime{});
}

std::optional<SwarmManager::RouteChoice> SwarmManager::route(SimTime now) {
  if (downstreams_.empty()) return std::nullopt;
  ++routed_;
  if (routed_counter_ != nullptr) routed_counter_->inc();

  // Probe mode: one tuple to each downstream in turn, so estimates of
  // unselected units stay fresh.
  if (probe_remaining_ > 0) {
    --probe_remaining_;
    probe_cursor_ = (probe_cursor_ + 1) % downstreams_.size();
    return RouteChoice{downstreams_[probe_cursor_], /*probe=*/true};
  }

  // Bootstrap probing: downstreams with no measurement yet (just joined)
  // get every Nth tuple so their first ACK arrives quickly.
  if (policy_->kind() != PolicyKind::kRR &&
      config_.probe_unmeasured_every > 0 &&
      routed_ % std::uint64_t(config_.probe_unmeasured_every) == 0) {
    std::vector<InstanceId> unmeasured;
    for (InstanceId id : downstreams_) {
      if (!estimator_.measured(id)) unmeasured.push_back(id);
    }
    if (!unmeasured.empty()) {
      unmeasured_cursor_ = (unmeasured_cursor_ + 1) % unmeasured.size();
      return RouteChoice{unmeasured[unmeasured_cursor_], /*probe=*/true};
    }
  }

  const auto selected = route_selected(now);
  if (!selected) return std::nullopt;
  return RouteChoice{*selected, /*probe=*/false};
}

std::optional<InstanceId> SwarmManager::route_selected(SimTime now) {
  if (downstreams_.empty()) return std::nullopt;
  if (decision_.selected.empty()) update_decision(now);
  if (decision_.selected.empty()) return std::nullopt;

  if (decision_.round_robin) {
    rr_cursor_ = (rr_cursor_ + 1) % decision_.selected.size();
    return decision_.selected[rr_cursor_];
  }

  if (config_.routing_mode == RoutingMode::kDeterministic) {
    // Smooth weighted round-robin: add each weight to its credit, pick the
    // largest credit, charge it one full quantum. Realised split converges
    // to the weights with zero variance.
    if (swrr_credit_.size() != decision_.selected.size()) {
      swrr_credit_.assign(decision_.selected.size(), 0.0);
    }
    std::size_t best = 0;
    for (std::size_t i = 0; i < swrr_credit_.size(); ++i) {
      swrr_credit_[i] += decision_.weights[i];
      if (swrr_credit_[i] > swrr_credit_[best]) best = i;
    }
    swrr_credit_[best] -= 1.0;
    return decision_.selected[best];
  }

  const std::size_t i = rng_.weighted_pick(decision_.weights);
  return decision_.selected[i];
}

void SwarmManager::tick(SimTime now) {
  ++tick_count_;
  update_decision(now);

  const bool estimate_driven = policy_->kind() != PolicyKind::kRR;
  if (estimate_driven && config_.probe_every_ticks > 0 &&
      tick_count_ % std::uint64_t(config_.probe_every_ticks) == 0) {
    probe_remaining_ =
        int(downstreams_.size()) * std::max(config_.probe_passes, 1);
  }
}

void SwarmManager::update_decision(SimTime now) {
  const double rate = config_.target_rate_override > 0.0
                          ? config_.target_rate_override
                          : rate_meter_.rate(now);

  if (policy_->kind() == PolicyKind::kRR) {
    decision_ = policy_->decide(estimator_.estimates(), rate);
  } else {
    // Estimate-driven policies decide over *measured* downstreams only;
    // unmeasured ones are fed by bootstrap probing until their first ACK.
    // With nothing measured yet, fall back to round-robin over everyone.
    std::vector<DownstreamInfo> measured;
    for (const DownstreamInfo& info : estimator_.estimates()) {
      if (estimator_.measured(info.id)) measured.push_back(info);
    }
    if (measured.empty()) {
      decision_.selected = downstreams_;
      decision_.weights.assign(downstreams_.size(),
                               1.0 / double(downstreams_.size()));
      decision_.round_robin = true;
    } else {
      decision_ = policy_->decide(measured, rate);
    }
  }
  if (rr_cursor_ >= decision_.selected.size()) rr_cursor_ = 0;
  // A fresh decision may reorder or replace instances; stale credits would
  // be charged to the wrong downstream.
  swrr_credit_.clear();
  SWING_LOG(kDebug) << "manager policy=" << policy_name(policy_->kind())
                    << " rate=" << rate
                    << " selected=" << decision_.selected.size() << "/"
                    << downstreams_.size();
}

}  // namespace swing::core
