#include "core/swarm_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace swing::core {

SwarmManager::SwarmManager(SwarmManagerConfig config, Rng rng)
    : config_(config),
      rng_(rng),
      policy_(RoutingPolicy::make(config.policy, config.policy_options)),
      estimator_(config.estimator),
      rate_meter_(config.rate_window) {
  if (config_.registry != nullptr) {
    routed_counter_ = &config_.registry->counter(
        "manager_routed_tuples", {{"policy", policy_name(config_.policy)}});
    evicted_counter_ = &config_.registry->counter(
        "workers_evicted", {{"cause", "ack-silence"}});
  }
}

void SwarmManager::add_downstream(InstanceId id) {
  if (std::find(downstreams_.begin(), downstreams_.end(), id) !=
      downstreams_.end()) {
    return;
  }
  downstreams_.push_back(id);
  std::sort(downstreams_.begin(), downstreams_.end());
  estimator_.add_downstream(id);
  update_decision(SimTime{});
}

void SwarmManager::remove_downstream(InstanceId id) {
  auto it = std::find(downstreams_.begin(), downstreams_.end(), id);
  if (it == downstreams_.end()) return;
  downstreams_.erase(it);
  estimator_.remove_downstream(id);
  pending_since_.erase(id.value());
  suspects_.erase(id.value());
  update_decision(SimTime{});
}

void SwarmManager::set_downstreams(const std::vector<InstanceId>& ids) {
  for (InstanceId id : downstreams_) {
    if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
      estimator_.remove_downstream(id);
    }
  }
  downstreams_ = ids;
  std::sort(downstreams_.begin(), downstreams_.end());
  downstreams_.erase(std::unique(downstreams_.begin(), downstreams_.end()),
                     downstreams_.end());
  for (InstanceId id : downstreams_) estimator_.add_downstream(id);
  update_decision(SimTime{});
}

void SwarmManager::seed_route_epoch() {
  route_history_.clear();
  route_history_.push_back(RouteEpochEntry{0, 0, downstreams_});
}

bool SwarmManager::apply_route_epoch(std::uint64_t epoch,
                                     std::uint64_t boundary, InstanceId id,
                                     bool add) {
  const auto mutate = [&](std::vector<InstanceId>& downs) {
    if (add) {
      if (std::find(downs.begin(), downs.end(), id) == downs.end()) {
        downs.push_back(id);
        std::sort(downs.begin(), downs.end());
      }
    } else {
      downs.erase(std::remove(downs.begin(), downs.end(), id), downs.end());
    }
  };
  if (!route_history_.empty() && epoch < route_history_.back().epoch) {
    return false;  // Stale: an older epoch arrived after a newer one.
  }
  if (!route_history_.empty() && epoch == route_history_.back().epoch) {
    // Another update of the same logical change (one deploy batch shares
    // one epoch), or an idempotent re-delivery: coalesce into the newest
    // entry instead of forking a second set at the same boundary.
    mutate(route_history_.back().downs);
  } else {
    std::vector<InstanceId> downs =
        route_history_.empty() ? downstreams_ : route_history_.back().downs;
    mutate(downs);
    if (!route_history_.empty()) {
      // Monotone boundaries: a later epoch can never apply earlier than an
      // earlier one, or the newest-entry-with-boundary<=frame lookup would
      // become ambiguous between hosts.
      boundary = std::max(boundary, route_history_.back().boundary);
    }
    route_history_.push_back(
        RouteEpochEntry{epoch, boundary, std::move(downs)});
    if (route_history_.size() > kMaxRouteHistory) {
      route_history_.erase(route_history_.begin());
    }
  }
  if (add) {
    add_downstream(id);
  } else {
    remove_downstream(id);
  }
  return true;
}

const std::vector<InstanceId>* SwarmManager::downstreams_at(
    std::uint64_t frame) const {
  if (route_history_.empty()) return nullptr;
  for (auto it = route_history_.rbegin(); it != route_history_.rend(); ++it) {
    if (it->boundary <= frame) return &it->downs;
  }
  // The frame predates the oldest retained boundary (history was trimmed);
  // the oldest surviving set is the best remaining approximation.
  return &route_history_.front().downs;
}

std::optional<SwarmManager::RouteChoice> SwarmManager::route(SimTime now) {
  if (downstreams_.empty()) return std::nullopt;
  ++routed_;
  if (routed_counter_ != nullptr) routed_counter_->inc();

  // Probe mode: one tuple to each downstream in turn, so estimates of
  // unselected units stay fresh. Probes deliberately include suspects —
  // a suspect that ACKs a probe is rehabilitated (the heal path).
  if (probe_remaining_ > 0) {
    --probe_remaining_;
    probe_cursor_ = (probe_cursor_ + 1) % downstreams_.size();
    note_routed(downstreams_[probe_cursor_], now);
    return RouteChoice{downstreams_[probe_cursor_], /*probe=*/true};
  }

  // Bootstrap probing: downstreams with no measurement yet (just joined)
  // get every Nth tuple so their first ACK arrives quickly.
  if (policy_->kind() != PolicyKind::kRR &&
      config_.probe_unmeasured_every > 0 &&
      routed_ % std::uint64_t(config_.probe_unmeasured_every) == 0) {
    std::vector<InstanceId> unmeasured;
    unmeasured.reserve(downstreams_.size());
    for (InstanceId id : downstreams_) {
      if (!estimator_.measured(id)) unmeasured.push_back(id);
    }
    if (!unmeasured.empty()) {
      unmeasured_cursor_ = (unmeasured_cursor_ + 1) % unmeasured.size();
      note_routed(unmeasured[unmeasured_cursor_], now);
      return RouteChoice{unmeasured[unmeasured_cursor_], /*probe=*/true};
    }
  }

  const auto selected = route_selected(now);
  if (!selected) return std::nullopt;
  note_routed(*selected, now);
  return RouteChoice{*selected, /*probe=*/false};
}

std::optional<InstanceId> SwarmManager::route_selected(SimTime now) {
  if (downstreams_.empty()) return std::nullopt;
  if (decision_.selected.empty()) update_decision(now);
  if (decision_.selected.empty()) return std::nullopt;

  if (decision_.round_robin) {
    rr_cursor_ = (rr_cursor_ + 1) % decision_.selected.size();
    return decision_.selected[rr_cursor_];
  }

  if (config_.routing_mode == RoutingMode::kDeterministic) {
    // Smooth weighted round-robin: add each weight to its credit, pick the
    // largest credit, charge it one full quantum. Realised split converges
    // to the weights with zero variance.
    if (swrr_credit_.size() != decision_.selected.size()) {
      swrr_credit_.assign(decision_.selected.size(), 0.0);
    }
    std::size_t best = 0;
    for (std::size_t i = 0; i < swrr_credit_.size(); ++i) {
      swrr_credit_[i] += decision_.weights[i];
      if (swrr_credit_[i] > swrr_credit_[best]) best = i;
    }
    swrr_credit_[best] -= 1.0;
    return decision_.selected[best];
  }

  const std::size_t i = rng_.weighted_pick(decision_.weights);
  return decision_.selected[i];
}

std::optional<InstanceId> SwarmManager::route_avoiding(SimTime now,
                                                       InstanceId avoid) {
  if (downstreams_.empty()) return std::nullopt;
  if (decision_.selected.empty()) update_decision(now);

  // Weighted pick over the decision minus the avoided / suspected targets.
  std::vector<InstanceId> candidates;
  std::vector<double> weights;
  candidates.reserve(decision_.selected.size());
  weights.reserve(decision_.selected.size());
  for (std::size_t i = 0; i < decision_.selected.size(); ++i) {
    const InstanceId id = decision_.selected[i];
    if (id == avoid || suspected(id)) continue;
    candidates.push_back(id);
    weights.push_back(decision_.weights.empty() ? 1.0 : decision_.weights[i]);
  }
  if (candidates.empty()) {
    // The decision offers nothing else; any non-suspect downstream will do
    // (its estimate is stale, but a stale worker beats a dead one).
    candidates.reserve(downstreams_.size());
    for (InstanceId id : downstreams_) {
      if (id != avoid && !suspected(id)) candidates.push_back(id);
    }
    weights.assign(candidates.size(), 1.0);
  }
  InstanceId chosen;
  if (!candidates.empty()) {
    chosen = candidates[candidates.size() == 1
                            ? 0
                            : rng_.weighted_pick(weights)];
  } else if (!suspected(avoid)) {
    chosen = avoid;  // Sole live candidate: retry the same downstream.
  } else {
    return std::nullopt;
  }
  ++routed_;
  if (routed_counter_ != nullptr) routed_counter_->inc();
  note_routed(chosen, now);
  return chosen;
}

void SwarmManager::record_ack(InstanceId id, double latency_ms,
                              double processing_ms, SimTime now,
                              double battery) {
  if (config_.ack_silence_timeout.nanos() > 0) {
    pending_since_.erase(id.value());
    suspects_.erase(id.value());
  }
  estimator_.record_ack(id, latency_ms, processing_ms, now, battery);
}

void SwarmManager::note_routed(InstanceId id, SimTime now) {
  if (config_.ack_silence_timeout.nanos() == 0) return;
  // Keep the oldest un-ACKed route: the clock measures silence since the
  // first outstanding tuple, not since the most recent one.
  pending_since_.try_emplace(id.value(), now);
}

void SwarmManager::tick(SimTime now) {
  ++tick_count_;

  // Failure detection: downstreams silent past the timeout are suspected
  // and drop out of the next decision (computed just below).
  if (config_.ack_silence_timeout.nanos() > 0) {
    for (const auto& [raw, since] : pending_since_) {
      if (now - since < config_.ack_silence_timeout) continue;
      if (suspects_.insert(raw).second && evicted_counter_ != nullptr) {
        evicted_counter_->inc();
      }
    }
  }

  update_decision(now);

  const bool estimate_driven = policy_->kind() != PolicyKind::kRR;
  if (estimate_driven && config_.probe_every_ticks > 0 &&
      tick_count_ % std::uint64_t(config_.probe_every_ticks) == 0) {
    probe_remaining_ =
        int(downstreams_.size()) * std::max(config_.probe_passes, 1);
  }

  // Desperation probing: with every downstream suspected there is nothing
  // left to route to, so burn one probe pass per tick — either someone
  // ACKs (partition healed, suspicion cleared) or the caller's recovery
  // layer falls back to local execution in the meantime.
  if (!downstreams_.empty() && suspects_.size() >= downstreams_.size()) {
    probe_remaining_ = std::max(probe_remaining_, int(downstreams_.size()));
  }
}

void SwarmManager::update_decision(SimTime now) {
  const double rate = config_.target_rate_override > 0.0
                          ? config_.target_rate_override
                          : rate_meter_.rate(now);

  if (policy_->kind() == PolicyKind::kRR) {
    if (suspects_.empty()) {
      decision_ = policy_->decide(estimator_.estimates(), rate);
    } else {
      auto all = estimator_.estimates();
      std::vector<DownstreamInfo> live;
      live.reserve(all.size());
      for (const DownstreamInfo& info : all) {
        if (!suspected(info.id)) live.push_back(info);
      }
      if (live.empty()) live = std::move(all);  // All suspect.
      decision_ = policy_->decide(live, rate);
    }
  } else {
    // Estimate-driven policies decide over *measured* downstreams only;
    // unmeasured ones are fed by bootstrap probing until their first ACK.
    // Suspects (ack-silent, likely dead) are excluded outright. With
    // nothing measured yet, fall back to round-robin over everyone live.
    std::vector<DownstreamInfo> measured;
    measured.reserve(estimator_.downstream_count());
    for (const DownstreamInfo& info : estimator_.estimates()) {
      if (estimator_.measured(info.id) && !suspected(info.id)) {
        measured.push_back(info);
      }
    }
    if (measured.empty()) {
      std::vector<InstanceId> live;
      live.reserve(downstreams_.size());
      for (InstanceId id : downstreams_) {
        if (!suspected(id)) live.push_back(id);
      }
      if (live.empty()) live = downstreams_;  // All suspect: last resort.
      decision_.selected = live;
      decision_.weights.assign(live.size(), 1.0 / double(live.size()));
      decision_.round_robin = true;
    } else {
      decision_ = policy_->decide(measured, rate);
    }
  }
  if (rr_cursor_ >= decision_.selected.size()) rr_cursor_ = 0;
  // A fresh decision may reorder or replace instances; stale credits would
  // be charged to the wrong downstream.
  swrr_credit_.clear();
  SWING_LOG(kDebug) << "manager policy=" << policy_name(policy_->kind())
                    << " rate=" << rate
                    << " selected=" << decision_.selected.size() << "/"
                    << downstreams_.size();
}

}  // namespace swing::core
