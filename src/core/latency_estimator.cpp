#include "core/latency_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace swing::core {

LatencyEstimator::Entry& LatencyEstimator::entry_for(InstanceId id) {
  auto [it, inserted] = entries_.try_emplace(id.value());
  if (inserted) {
    it->second.latency = Ewma{config_.ewma_alpha};
    it->second.processing = Ewma{config_.ewma_alpha};
  }
  return it->second;
}

void LatencyEstimator::add_downstream(InstanceId id) { entry_for(id); }

void LatencyEstimator::remove_downstream(InstanceId id) {
  entries_.erase(id.value());
}

void LatencyEstimator::record_ack(InstanceId id, double latency_ms,
                                  double processing_ms, SimTime now,
                                  double battery) {
  // ACK measurements come off the (simulated) wire; a negative or NaN sample
  // would silently poison the EWMA and every routing decision after it.
  SWING_CHECK(latency_ms >= 0.0 && std::isfinite(latency_ms))
      << "ACK latency sample " << latency_ms << " ms from downstream " << id;
  SWING_CHECK(processing_ms >= 0.0 && std::isfinite(processing_ms))
      << "ACK processing sample " << processing_ms << " ms from downstream "
      << id;
  SWING_CHECK(battery >= 0.0 && battery <= 1.0)
      << "ACK battery fraction " << battery << " from downstream " << id;
  Entry& entry = entry_for(id);
  entry.latency.add(latency_ms);
  entry.processing.add(processing_ms);
  entry.battery = battery;
  entry.last_ack = now;
  SWING_DCHECK_GE(entry.latency.value(), 0.0)
      << "EWMA of non-negative samples went negative";
  SWING_DCHECK_GE(entry.processing.value(), 0.0);
}

// Deliberate snapshot: callers sort/filter the copy without holding the
// estimator still. Pre-sized, once per decision epoch.
std::vector<DownstreamInfo> LatencyEstimator::estimates() const {  // swing-lint: allow(heavy-copy)
  std::vector<DownstreamInfo> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    out.push_back(DownstreamInfo{
        InstanceId{id},
        entry.latency.initialized() ? entry.latency.value()
                                    : config_.default_latency_ms,
        entry.processing.initialized() ? entry.processing.value()
                                       : config_.default_processing_ms,
        entry.battery,
    });
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(out.begin(), out.end(),
            [](const DownstreamInfo& a, const DownstreamInfo& b) {
              return a.id < b.id;
            });
  return out;
}

DownstreamInfo LatencyEstimator::estimate(InstanceId id) const {
  auto it = entries_.find(id.value());
  if (it == entries_.end()) {
    return DownstreamInfo{id, config_.default_latency_ms,
                          config_.default_processing_ms, 1.0};
  }
  return DownstreamInfo{
      id,
      it->second.latency.initialized() ? it->second.latency.value()
                                       : config_.default_latency_ms,
      it->second.processing.initialized() ? it->second.processing.value()
                                          : config_.default_processing_ms,
      it->second.battery,
  };
}

SimTime LatencyEstimator::last_ack(InstanceId id) const {
  auto it = entries_.find(id.value());
  return it == entries_.end() ? SimTime{} : it->second.last_ack;
}

}  // namespace swing::core
