#include "core/tuple_ledger.h"

#include <cstring>
#include <sstream>

#include "common/check.h"

namespace swing::core {

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kNoDownstream:
      return "no-downstream";
    case DropReason::kSendFailed:
      return "send-failed";
    case DropReason::kBackpressureShed:
      return "backpressure-shed";
    case DropReason::kComputeBacklog:
      return "compute-backlog";
    case DropReason::kStaleTtl:
      return "stale-ttl";
    case DropReason::kPendingOverflow:
      return "pending-overflow";
    case DropReason::kBatchOverflow:
      return "batch-overflow";
    case DropReason::kLateReorder:
      return "late-reorder";
    case DropReason::kSourceOverrun:
      return "source-overrun";
    case DropReason::kRetryExhausted:
      return "retry-exhausted";
    case DropReason::kAbruptLeave:
      return "abrupt-leave";
    case DropReason::kStateLost:
      return "state-lost";
  }
  return "unknown";
}

void TupleLedger::violation(std::string message) {
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(std::move(message));
  } else {
    ++dropped_violations_;
  }
}

void TupleLedger::fold(std::uint8_t kind, std::uint64_t a, std::uint64_t b) {
  ++events_;
  const auto mix = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest_ ^= (v >> (8 * i)) & 0xff;
      digest_ *= 0x100000001b3ULL;  // FNV-1a prime.
    }
  };
  digest_ ^= kind;
  digest_ *= 0x100000001b3ULL;
  mix(a);
  mix(b);
}

void TupleLedger::on_emitted(TupleId id, SimTime now) {
  fold(1, id.value(), std::uint64_t(now.nanos()));
  Record& rec = record(id);
  if (rec.emitted) {
    std::ostringstream os;
    os << "tuple " << id << " emitted more than once";
    violation(os.str());
    return;
  }
  rec.emitted = true;
}

void TupleLedger::on_reemitted(TupleId id, SimTime now) {
  fold(8, id.value(), std::uint64_t(now.nanos()));
  ++reemissions_;
  // Open (or re-open) the id: a fresh id becomes accountable like a source
  // emission; a colliding id keeps its record and the delivered-wins
  // bucketing in audit() resolves the shared id to one terminal state.
  record(id).emitted = true;
}

void TupleLedger::on_delivered(TupleId id, SimTime now) {
  fold(2, id.value(), std::uint64_t(now.nanos()));
  Record& rec = record(id);
  if (!rec.emitted) {
    std::ostringstream os;
    os << "ghost delivery: tuple " << id << " reached a sink but was never "
       << "emitted by a source";
    violation(os.str());
  }
  if (rec.delivered) ++duplicate_deliveries_;
  rec.delivered = true;
  if (rec.delivery_count < 0xff) ++rec.delivery_count;
}

void TupleLedger::on_consumed(TupleId id) {
  fold(3, id.value(), 0);
  Record& rec = record(id);
  if (!rec.emitted) {
    std::ostringstream os;
    os << "ghost consumption: tuple " << id << " absorbed by an operator "
       << "but never emitted by a source";
    violation(os.str());
  }
  rec.consumed = true;
}

void TupleLedger::on_dropped(TupleId id, DropReason reason) {
  fold(4, id.value(), std::uint64_t(reason));
  ++drop_events_[reason];
  Record& rec = record(id);
  if (!rec.emitted) {
    std::ostringstream os;
    os << "ghost drop: tuple " << id << " dropped ("
       << drop_reason_name(reason) << ") but never emitted by a source";
    violation(os.str());
  }
  rec.drop_mask |= std::uint16_t(1u << std::uint8_t(reason));
}

void TupleLedger::on_in_flight_at_shutdown(TupleId id) {
  fold(5, id.value(), 0);
  Record& rec = record(id);
  if (!rec.emitted) {
    std::ostringstream os;
    os << "ghost residue: tuple " << id << " queued at shutdown but never "
       << "emitted by a source";
    violation(os.str());
  }
  rec.noted_in_flight = true;
}

void TupleLedger::on_retransmitted(TupleId id, SimTime now) {
  fold(9, id.value(), std::uint64_t(now.nanos()));
  ++retransmissions_;
  if (!record(id).emitted) {
    std::ostringstream os;
    os << "ghost retransmission: tuple " << id << " re-sent but never "
       << "emitted by a source";
    violation(os.str());
  }
}

void TupleLedger::on_deduplicated(TupleId id, SimTime now) {
  fold(10, id.value(), std::uint64_t(now.nanos()));
  ++deduplications_;
  if (!record(id).emitted) {
    std::ostringstream os;
    os << "ghost dedup: tuple " << id << " discarded as a duplicate but "
       << "never emitted by a source";
    violation(os.str());
  }
}

void TupleLedger::on_played(InstanceId sink, TupleId id, SimTime now) {
  fold(6, id.value(), sink.value());
  (void)now;
  auto [it, fresh] = last_played_.try_emplace(sink.value(), id);
  if (!fresh) {
    if (id < it->second) {
      std::ostringstream os;
      os << "reorder monotonicity broken at sink " << sink << ": released "
         << id << " after " << it->second;
      violation(os.str());
    } else {
      it->second = id;
    }
  }
}

void TupleLedger::on_latency_sample(double latency_ms) {
  ++latency_samples_;
  // Latency folds into the digest via its bit pattern: same-seed runs must
  // measure identical latencies, not merely finite ones.
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof latency_ms);
  std::memcpy(&bits, &latency_ms, sizeof bits);
  fold(7, bits, 0);
  if (!std::isfinite(latency_ms) || latency_ms < 0.0) {
    std::ostringstream os;
    os << "latency sample " << latency_ms
       << " ms is not finite and non-negative";
    violation(os.str());
  }
}

void TupleLedger::on_control_event(std::uint8_t kind, std::uint64_t detail,
                                   SimTime now) {
  ++control_events_;
  fold(std::uint8_t(0x80u | kind), detail, std::uint64_t(now.nanos()));
}

AuditReport TupleLedger::audit() const {
  AuditReport report;
  report.duplicate_deliveries = duplicate_deliveries_;
  report.reemissions = reemissions_;
  report.retransmissions = retransmissions_;
  report.deduplications = deduplications_;
  report.latency_samples = latency_samples_;
  report.control_events = control_events_;
  report.drops_by_reason = drop_events_;
  report.violations = violations_;
  if (dropped_violations_ > 0) {
    report.violations.push_back(
        "... and " + std::to_string(dropped_violations_) + " more");
  }
  // Only emitted ids are bucketed (ghosts were already flagged as
  // violations when their events arrived), and each lands in exactly one
  // bucket, so the conservation identity
  //   emitted == delivered + consumed + dropped + in-flight
  // holds by construction; what audit() adds is the residual count and the
  // accumulated violations.
  for (const auto& [raw, rec] : tuples_) {
    if (!rec.emitted) continue;
    ++report.emitted;
    if (rec.delivered) {
      ++report.delivered;
    } else if (rec.consumed) {
      ++report.consumed;
    } else if (rec.drop_mask != 0) {
      ++report.dropped;
    } else if (rec.noted_in_flight) {
      ++report.in_flight_recorded;
    } else {
      ++report.in_flight_residual;
    }
  }
  SWING_DCHECK_EQ(report.emitted,
                  report.delivered + report.consumed + report.dropped +
                      report.in_flight_recorded + report.in_flight_residual)
      << "tuple ledger accounting identity broken";
  return report;
}

std::string AuditReport::summary() const {
  std::ostringstream os;
  os << "emitted " << emitted << " (+" << reemissions
     << " reemitted), delivered " << delivered << " (+"
     << duplicate_deliveries << " dup), consumed " << consumed
     << ", dropped " << dropped << " {";
  bool first = true;
  for (const auto& [reason, n] : drops_by_reason) {
    if (!first) os << ", ";
    first = false;
    os << drop_reason_name(reason) << ": " << n;
  }
  os << "}, retransmitted " << retransmissions << ", deduplicated "
     << deduplications << ", in-flight " << in_flight_recorded
     << " recorded + " << in_flight_residual << " residual, "
     << latency_samples
     << " latency samples, " << control_events << " control events, "
     << violations.size() << " violation(s)";
  return os.str();
}

}  // namespace swing::core
