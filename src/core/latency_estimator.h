// Per-downstream latency estimation (paper §V-B).
//
// The upstream attaches a timestamp to each tuple; the downstream ACKs after
// processing with the original timestamp echoed; the upstream computes
// now - timestamp = L_i sample (network + queuing + processing + negligible
// ACK time) and folds it into a moving average. The ACK also reports the
// measured processing time, which feeds the PR/PRS baselines. Downstreams
// that were never measured (e.g. just joined) report the optimistic default
// so traffic reaches them and real estimates form quickly.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"
#include "common/time.h"
#include "core/policy.h"

namespace swing::core {

struct EstimatorConfig {
  double ewma_alpha = 0.3;
  // Estimate assumed for a downstream with no ACKs yet. Optimistic (fast),
  // so new arrivals are tried immediately — the paper activates new devices
  // "as soon as they join".
  double default_latency_ms = 40.0;
  double default_processing_ms = 30.0;
};

class LatencyEstimator {
 public:
  explicit LatencyEstimator(EstimatorConfig config = {}) : config_(config) {}

  // Registers a downstream (idempotent). Estimates start at the defaults.
  void add_downstream(InstanceId id);
  void remove_downstream(InstanceId id);
  [[nodiscard]] bool tracks(InstanceId id) const {
    return entries_.contains(id.value());
  }

  // Folds one ACK measurement in. Unknown downstreams are added implicitly
  // (an ACK can race with a route update). `battery` is the remaining
  // battery fraction the ACK reported (latest value wins; it moves slowly).
  void record_ack(InstanceId id, double latency_ms, double processing_ms,
                  SimTime now, double battery = 1.0);

  // Estimates for every registered downstream, defaults where unmeasured.
  [[nodiscard]] std::vector<DownstreamInfo> estimates() const;

  [[nodiscard]] DownstreamInfo estimate(InstanceId id) const;

  // Time of the downstream's most recent ACK; SimTime{} if never.
  [[nodiscard]] SimTime last_ack(InstanceId id) const;

  // Whether the downstream has at least one real measurement (vs defaults).
  [[nodiscard]] bool measured(InstanceId id) const {
    auto it = entries_.find(id.value());
    return it != entries_.end() && it->second.latency.initialized();
  }

  [[nodiscard]] std::size_t downstream_count() const {
    return entries_.size();
  }

 private:
  struct Entry {
    Ewma latency;
    Ewma processing;
    double battery = 1.0;
    SimTime last_ack{};
  };

  Entry& entry_for(InstanceId id);

  EstimatorConfig config_;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace swing::core
