// The Swarm Management Service run by every upstream function unit.
//
// Owns the routing table for the unit's downstreams: measures the incoming
// tuple rate Lambda, folds ACK latency samples into the estimator, re-runs
// the policy on a periodic tick (1 s in the paper), and answers "where does
// this tuple go?" per tuple in O(1) (a weighted random draw, §V-A "Data
// Routing"). Estimate freshness for unselected downstreams is maintained by
// periodically switching to a short round-robin probe pass over all
// downstreams (§V-B).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/time.h"
#include "core/latency_estimator.h"
#include "core/policy.h"
#include "obs/registry.h"

namespace swing::core {

// How tuples are spread over the weighted decision.
enum class RoutingMode {
  // The paper's choice: one weighted random draw per tuple (O(1), but the
  // realised split has binomial variance).
  kProbabilistic,
  // Ablation alternative: smooth weighted round-robin (nginx-style
  // deficit counters) — deterministic, zero split variance, still O(n)
  // only in the number of *selected* downstreams.
  kDeterministic,
};

struct SwarmManagerConfig {
  PolicyKind policy = PolicyKind::kLRS;
  PolicyOptions policy_options{};
  RoutingMode routing_mode = RoutingMode::kProbabilistic;
  // When > 0, worker selection targets this rate (the paper's §IV-A
  // programmer-declared "maximum input data rate that needs to be
  // sustained") instead of the measured incoming rate Lambda.
  double target_rate_override = 0.0;
  EstimatorConfig estimator{};
  // How often the routing decision is recomputed (the worker drives tick()).
  SimDuration update_period = seconds(1.0);
  // Every N ticks, route one round-robin pass over ALL downstreams so that
  // unselected units keep fresh estimates. 0 disables probing.
  int probe_every_ticks = 10;
  // Round-robin passes per probe burst.
  int probe_passes = 1;
  // A downstream with no measurement yet (just joined) receives every Nth
  // tuple until its first ACK arrives, so estimates bootstrap within ~1 s
  // of a join without flooding an unknown device.
  int probe_unmeasured_every = 8;
  // Window over which the incoming rate Lambda is measured.
  SimDuration rate_window = seconds(1.0);

  // swing-chaos failure detection: a downstream that has had a tuple routed
  // to it but produced no ACK for this long is *suspected* — excluded from
  // the routing decision until an ACK clears it. This evicts dead workers
  // far ahead of the estimator's slow EWMA decay (which would keep sending
  // a crashed worker traffic for many update periods). Zero disables the
  // detector (the seed behaviour).
  SimDuration ack_silence_timeout{};

  // swing-obs: when set, routed-tuple counts aggregate into the swarm-wide
  // registry as "manager_routed_tuples"{policy=...} (all edge managers of
  // one swarm share the counter). Null keeps the manager registry-free —
  // per-manager counts stay available via routed_tuples().
  obs::Registry* registry = nullptr;
};

class SwarmManager {
 public:
  SwarmManager(SwarmManagerConfig config, Rng rng);

  // --- Membership (driven by deploy/update/leave control messages) --------

  void add_downstream(InstanceId id);
  void remove_downstream(InstanceId id);
  void set_downstreams(const std::vector<InstanceId>& ids);
  [[nodiscard]] const std::vector<InstanceId>& downstreams() const {
    return downstreams_;
  }
  [[nodiscard]] bool has_downstreams() const { return !downstreams_.empty(); }

  // --- Epoch-versioned routing (swing-shard) -----------------------------
  //
  // In cell mode every membership change arrives as an epoch-versioned
  // update with a frame boundary: the new downstream set applies only to
  // frames with id >= boundary, and older frames keep routing by the set
  // that was current when they were emitted. Because boundaries are minted
  // centrally (gateway watermark + slack) and entries are applied in epoch
  // order, every upstream host holding the same updates partitions any
  // given frame id identically — regardless of when each host learned of
  // the change. That is the property the mid-run-join frame-partitioning
  // fix rests on (tests/shard/test_epoch_routing.cpp).

  // Starts epoch routing: snapshots the current downstream set as the
  // epoch-0 baseline applying from frame 0.
  void seed_route_epoch();

  // Applies one versioned add/remove on top of the newest history entry.
  // Returns false (and changes nothing) when `epoch` is not newer than the
  // last applied epoch — the stale-epoch rejection path. Also folds the
  // change into the legacy membership view (estimator, decision).
  bool apply_route_epoch(std::uint64_t epoch, std::uint64_t boundary,
                         InstanceId id, bool add);

  // The downstream set that partitions frame `frame`: the newest history
  // entry whose boundary is <= the frame id. Null when epoch routing was
  // never seeded (the single-cell / legacy mode).
  [[nodiscard]] const std::vector<InstanceId>* downstreams_at(
      std::uint64_t frame) const;

  [[nodiscard]] bool epoch_routing() const { return !route_history_.empty(); }
  // Newest applied epoch (0 = only the seed baseline).
  [[nodiscard]] std::uint64_t route_epoch() const {
    return route_history_.empty() ? 0 : route_history_.back().epoch;
  }

  // --- Data path -----------------------------------------------------------

  // Must be called once per tuple entering this unit (measures Lambda).
  void on_tuple_in(SimTime now) { rate_meter_.record(now); }

  struct RouteChoice {
    InstanceId id;
    // True when this tuple is an estimate-refresh probe rather than a
    // weighted-decision pick. Probes are opportunistic: a caller whose
    // connection to the probe target is congested should fall back to
    // route_selected() instead of blocking on it.
    bool probe = false;
  };

  // Chooses the downstream for the next outgoing tuple. nullopt when no
  // downstream exists.
  std::optional<RouteChoice> route(SimTime now);

  // Chooses per the current decision only (never probes).
  std::optional<InstanceId> route_selected(SimTime now);

  // Re-routes a retransmission: picks from the current decision while
  // avoiding `avoid` (the downstream that timed out) and every suspect.
  // Falls back to any non-suspect downstream, then to `avoid` itself if it
  // is the only live candidate. nullopt when nothing routable remains.
  std::optional<InstanceId> route_avoiding(SimTime now, InstanceId avoid);

  // Folds in an ACK measurement; clears ack-silence suspicion.
  void record_ack(InstanceId id, double latency_ms, double processing_ms,
                  SimTime now, double battery = 1.0);

  // --- Control loop ----------------------------------------------------

  // Recomputes the routing decision; call every update_period.
  void tick(SimTime now);

  // --- Introspection -----------------------------------------------------

  [[nodiscard]] const RoutingDecision& decision() const { return decision_; }
  [[nodiscard]] double input_rate(SimTime now) const {
    return rate_meter_.rate(now);
  }
  [[nodiscard]] const LatencyEstimator& estimator() const {
    return estimator_;
  }
  [[nodiscard]] PolicyKind policy() const { return policy_->kind(); }
  [[nodiscard]] bool probing() const { return probe_remaining_ > 0; }
  [[nodiscard]] std::uint64_t routed_tuples() const { return routed_; }
  // Whether the ack-silence detector currently excludes this downstream.
  [[nodiscard]] bool suspected(InstanceId id) const {
    return suspects_.contains(id.value());
  }
  [[nodiscard]] std::size_t suspect_count() const { return suspects_.size(); }

 private:
  void update_decision(SimTime now);
  // Starts the ack-silence clock for a routed-to downstream (no-op when the
  // detector is off or a clock is already running).
  void note_routed(InstanceId id, SimTime now);

  SwarmManagerConfig config_;
  Rng rng_;
  obs::Counter* routed_counter_ = nullptr;  // Null when no registry is set.
  std::unique_ptr<RoutingPolicy> policy_;
  LatencyEstimator estimator_;
  RateMeter rate_meter_;

  std::vector<InstanceId> downstreams_;  // Sorted by id, deterministic.

  // Epoch route history, oldest first. Sets are sorted, so equal membership
  // implies identical element order (and thus identical modulus routing)
  // across hosts. Bounded: frames older than the trimmed-off boundaries
  // have long since drained.
  struct RouteEpochEntry {
    std::uint64_t epoch = 0;
    std::uint64_t boundary = 0;
    std::vector<InstanceId> downs;
  };
  static constexpr std::size_t kMaxRouteHistory = 32;
  std::vector<RouteEpochEntry> route_history_;

  RoutingDecision decision_;
  // Smooth-weighted-round-robin deficit counters, aligned with
  // decision_.selected (deterministic mode only).
  std::vector<double> swrr_credit_;
  std::size_t rr_cursor_ = 0;     // Cycles decision_.selected.
  std::size_t probe_cursor_ = 0;  // Cycles downstreams_ during probes.
  std::size_t unmeasured_cursor_ = 0;
  int probe_remaining_ = 0;
  std::uint64_t tick_count_ = 0;
  std::uint64_t routed_ = 0;

  // swing-chaos failure detection (ack_silence_timeout > 0). Ordered
  // containers keep suspect iteration deterministic.
  std::map<std::uint64_t, SimTime> pending_since_;  // Oldest un-ACKed route.
  std::set<std::uint64_t> suspects_;
  obs::Counter* evicted_counter_ = nullptr;
};

}  // namespace swing::core
