// swing-shard gateway coordinator: swarm-of-swarms control plane.
//
// Devices group into cells; the first (lowest-id) member of each cell holds
// the cell-master role — it owns the LRS routing tables, latency estimates
// and checkpoint/replica map for its members' slice of SwarmManager state
// (the runtime Master scopes those per cell via this coordinator, see
// Master::store_for). The gateway federates the cells: it places admitted
// devices, splits a cell that grows past 2x the size target, merges a cell
// that shrinks below half the target into its smallest sibling, hands
// devices off between cells, and mints the global monotonically-increasing
// control epoch that versions every routing change (DESIGN.md §12).
//
// The coordinator is deliberately runtime-free: it operates on raw device
// ids with ordered-map state and no clock, randomness, or I/O, so the same
// admission sequence always yields the same cells — the scalability bench
// (bench/ext_scalability) drives it directly at 100k devices, and the
// runtime Master embeds it for the real message plane.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"

namespace swing::shard {

struct GatewayConfig {
  // Steady-state members per cell. A cell splits when it reaches 2x this
  // and merges away when it drops below half of it.
  std::size_t cell_size_target = 4;
  // Route-boundary slack: a new epoch's route set applies from frame
  // (watermark + slack), giving every upstream host this many frames of
  // headroom to learn about the change (including one anti-entropy round
  // for a lost update) before any frame crosses the boundary.
  std::uint64_t epoch_boundary_slack = 256;
};

// Counters mirrored into the obs registry by the runtime Master; kept here
// so the standalone bench can measure control-plane cost without obs.
struct GatewayStats {
  std::uint64_t epoch_bumps = 0;
  std::uint64_t cell_splits = 0;
  std::uint64_t cell_merges = 0;
  std::uint64_t handoffs = 0;       // Devices moved between existing cells.
  std::uint64_t promotions = 0;     // Role re-assignments after member loss.
  std::uint64_t control_msgs = 0;   // Bench-counted gateway+cell messages.
};

// Bookkeeping for one cell. Members map device id -> reported source frame
// watermark (0 until the member's first CellReport).
class CellMaster {
 public:
  explicit CellMaster(CellId id) : id_(id) {}

  [[nodiscard]] CellId id() const { return id_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool has_member(DeviceId device) const {
    return members_.contains(device.value());
  }
  // The member holding the cell-master role: the lowest device id, so the
  // role is a pure function of membership and survives coordinator restarts.
  [[nodiscard]] DeviceId role_device() const {
    return members_.empty() ? DeviceId{} : DeviceId{members_.begin()->first};
  }
  // Whether the current role holder has confirmed with a GatewayHello.
  [[nodiscard]] bool role_confirmed() const { return role_confirmed_; }
  [[nodiscard]] std::vector<DeviceId> members() const;
  // Max member-reported watermark (frames emitted by sources in this cell).
  [[nodiscard]] std::uint64_t watermark() const;

 private:
  friend class GatewayCoordinator;

  CellId id_;
  bool role_confirmed_ = false;
  std::map<std::uint64_t, std::uint64_t> members_;  // device -> watermark
};

class GatewayCoordinator {
 public:
  explicit GatewayCoordinator(GatewayConfig config = {});

  // --- Membership -------------------------------------------------------
  // Each mutator returns the ids of every cell whose membership or role
  // changed, in ascending order; the runtime Master re-sends CellAssign to
  // the members of each (a since-dropped id may appear after a merge).

  std::vector<CellId> admit(DeviceId device);
  std::vector<CellId> remove(DeviceId device);
  std::vector<CellId> handoff(DeviceId device, CellId to);

  // --- Reports & epochs -------------------------------------------------

  // Folds a member's CellReport watermark into the cell and global views.
  void report(DeviceId device, std::uint64_t watermark);
  // The role holder of `cell` confirmed its assignment.
  void note_hello(CellId cell, DeviceId device);

  // Mints the next global epoch (monotone, starts at 1).
  std::uint64_t bump_epoch();
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  // The frame boundary for the next routing change: max reported watermark
  // plus the configured slack, clamped monotone so later epochs never apply
  // earlier than previous ones. 0 until any source has emitted (pre-start
  // deploys apply from the first frame).
  std::uint64_t route_boundary();

  // --- Introspection ----------------------------------------------------

  [[nodiscard]] CellId cell_of(DeviceId device) const;
  [[nodiscard]] const CellMaster* cell(CellId id) const;
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }
  [[nodiscard]] const std::map<std::uint64_t, CellMaster>& cells() const {
    return cells_;
  }
  [[nodiscard]] const GatewayStats& stats() const { return stats_; }
  [[nodiscard]] const GatewayConfig& config() const { return config_; }

  // Bench hook: account messages the embedding control plane sent.
  void count_control_msgs(std::uint64_t n) { stats_.control_msgs += n; }

 private:
  // Inserts into the lowest-id cell with room (< 2x target), else a new one.
  CellId place(DeviceId device);
  void maybe_split(CellId id, std::vector<CellId>& affected);
  void maybe_merge(CellId id, std::vector<CellId>& affected);
  void note_membership_change(CellMaster& cell, DeviceId old_role);

  GatewayConfig config_;
  GatewayStats stats_;
  std::uint64_t epoch_ = 0;
  std::uint64_t boundary_ = 0;  // Monotone route-boundary floor.
  std::uint64_t global_watermark_ = 0;
  std::uint64_t next_cell_ = 0;
  std::map<std::uint64_t, CellMaster> cells_;    // Keyed by CellId value.
  std::map<std::uint64_t, std::uint64_t> cell_of_;  // device -> cell
};

}  // namespace swing::shard
