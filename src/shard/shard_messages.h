// swing-shard wire protocol: hierarchical control-plane messages.
//
// The shard plane groups devices into cells and versions every routing
// change with a global epoch (see DESIGN.md §12):
//
//   CellAssignMsg        master -> worker  membership: "you belong to cell C,
//                                          whose cell-master role is held by
//                                          device R". Re-sent to every member
//                                          of a cell whenever the cell's
//                                          composition or role changes
//                                          (admit, split, merge, handoff,
//                                          role promotion after a crash).
//   EpochRouteUpdateMsg  master -> worker  an epoch-versioned routing change:
//                                          a RouteUpdateMsg plus the epoch
//                                          that minted it, the frame boundary
//                                          from which it applies, and a
//                                          per-destination contiguous `seq`
//                                          so lost updates are detectable
//                                          and repairable (anti-entropy via
//                                          CellReportMsg).
//   GatewayHelloMsg      worker -> master  the device holding a cell-master
//                                          role confirms it observed its
//                                          assignment (role liveness).
//   CellReportMsg        worker -> master  periodic per-member report: the
//                                          member's source frame watermark
//                                          (feeds the gateway's route
//                                          boundary) and the highest
//                                          contiguously-applied route seq
//                                          (triggers re-send of anything the
//                                          member missed).
//
// Codec conventions follow runtime/messages.h: encode(ByteWriter&) appends
// into a caller-owned buffer, decode(ByteReader&) reads a non-owning frame
// view, WireFormatError is the only legal rejection, and byte-fixpoint
// round-trips are enforced by the fuzz harnesses (fuzz/fuzz_cell_assign.cpp
// and friends).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/hot.h"
#include "common/ids.h"
#include "runtime/messages.h"

namespace swing::shard {

using runtime::RouteUpdateMsg;

// Master -> worker: cell membership for one device. `epoch` is the global
// control epoch at assignment time, so a member can order assignments that
// race with route updates.
struct CellAssignMsg {
  CellId cell;
  DeviceId device;       // The assignee (sanity check on delivery).
  DeviceId cell_master;  // Which member currently holds the role.
  std::uint64_t epoch = 0;

  friend bool operator==(const CellAssignMsg&, const CellAssignMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(cell.value());
    w.write_u64(device.value());
    w.write_u64(cell_master.value());
    w.write_u64(epoch);
  }
  static SWING_HOT CellAssignMsg decode(ByteReader& r) {
    CellAssignMsg msg;
    msg.cell = CellId{r.read_u64()};
    msg.device = DeviceId{r.read_u64()};
    msg.cell_master = DeviceId{r.read_u64()};
    msg.epoch = r.read_u64();
    return msg;
  }
};

// Master -> worker: one epoch-versioned routing change. The nested
// RouteUpdateMsg is exactly the legacy kAddDownstream/kRemoveDownstream
// payload; `op` says which of the two it is. The receiver applies updates in
// `seq` order (contiguous per destination device), records the change in the
// affected edge's route history keyed by (epoch, boundary_frame), and routes
// each frame by the newest entry whose boundary is <= the frame id — so two
// upstream hosts that received the same updates route any given frame
// identically regardless of delivery timing.
struct EpochRouteUpdateMsg {
  enum class Op : std::uint8_t { kAdd = 0, kRemove = 1 };

  std::uint64_t seq = 0;    // Contiguous per destination device, from 1.
  std::uint64_t epoch = 0;  // Global control epoch that minted this change.
  // First frame id the new route set applies to (watermark + slack,
  // monotone). 0 = applies from the beginning (pre-start deploys).
  std::uint64_t boundary_frame = 0;
  Op op = Op::kAdd;
  RouteUpdateMsg route;

  friend bool operator==(const EpochRouteUpdateMsg&,
                         const EpochRouteUpdateMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(seq);
    w.write_u64(epoch);
    w.write_u64(boundary_frame);
    w.write_u8(static_cast<std::uint8_t>(op));
    route.encode(w);
  }
  static SWING_HOT EpochRouteUpdateMsg decode(ByteReader& r) {
    EpochRouteUpdateMsg msg;
    msg.seq = r.read_u64();
    msg.epoch = r.read_u64();
    msg.boundary_frame = r.read_u64();
    const std::uint8_t op = r.read_u8();
    if (op > static_cast<std::uint8_t>(Op::kRemove)) {
      throw WireFormatError("epoch route op " + std::to_string(op) +
                            " out of range");
    }
    msg.op = static_cast<Op>(op);
    msg.route = RouteUpdateMsg::decode(r);
    return msg;
  }
};

// Worker -> master: the device assigned a cell-master role acknowledges it.
struct GatewayHelloMsg {
  CellId cell;
  DeviceId device;
  std::uint64_t epoch = 0;  // Echo of the assignment's epoch.

  friend bool operator==(const GatewayHelloMsg&,
                         const GatewayHelloMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(cell.value());
    w.write_u64(device.value());
    w.write_u64(epoch);
  }
  static SWING_HOT GatewayHelloMsg decode(ByteReader& r) {
    GatewayHelloMsg msg;
    msg.cell = CellId{r.read_u64()};
    msg.device = DeviceId{r.read_u64()};
    msg.epoch = r.read_u64();
    return msg;
  }
};

// Worker -> master: per-member liveness + progress report, piggybacked on
// the heartbeat cadence. `watermark` is one past the largest frame id any
// local source has emitted (0 = no sources / nothing emitted); the gateway
// folds the max over all members into its route boundary. `applied_seq` is
// the highest contiguously-applied EpochRouteUpdateMsg seq; the master
// re-sends anything newer from its log (anti-entropy repair of lost control
// messages).
struct CellReportMsg {
  CellId cell;
  DeviceId device;
  std::uint64_t watermark = 0;
  std::uint64_t applied_seq = 0;
  std::uint64_t epoch = 0;  // Newest epoch the member has observed.

  friend bool operator==(const CellReportMsg&, const CellReportMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(cell.value());
    w.write_u64(device.value());
    w.write_u64(watermark);
    w.write_u64(applied_seq);
    w.write_u64(epoch);
  }
  static SWING_HOT CellReportMsg decode(ByteReader& r) {
    CellReportMsg msg;
    msg.cell = CellId{r.read_u64()};
    msg.device = DeviceId{r.read_u64()};
    msg.watermark = r.read_u64();
    msg.applied_seq = r.read_u64();
    msg.epoch = r.read_u64();
    return msg;
  }
};

}  // namespace swing::shard
