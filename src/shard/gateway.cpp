#include "shard/gateway.h"

#include <algorithm>

namespace swing::shard {

std::vector<DeviceId> CellMaster::members() const {
  std::vector<DeviceId> out;
  out.reserve(members_.size());
  for (const auto& [raw, wm] : members_) out.emplace_back(raw);
  return out;
}

std::uint64_t CellMaster::watermark() const {
  std::uint64_t max = 0;
  for (const auto& [raw, wm] : members_) max = std::max(max, wm);
  return max;
}

GatewayCoordinator::GatewayCoordinator(GatewayConfig config)
    : config_(config) {
  if (config_.cell_size_target == 0) config_.cell_size_target = 1;
}

CellId GatewayCoordinator::place(DeviceId device) {
  const std::size_t cap = 2 * config_.cell_size_target;
  for (auto& [raw, cell] : cells_) {
    if (cell.size() < cap) {
      cell.members_.emplace(device.value(), 0);
      return cell.id();
    }
  }
  const CellId id{next_cell_++};
  CellMaster cell{id};
  cell.members_.emplace(device.value(), 0);
  cells_.emplace(id.value(), std::move(cell));
  return id;
}

void GatewayCoordinator::note_membership_change(CellMaster& cell,
                                                DeviceId old_role) {
  if (cell.role_device() != old_role) {
    cell.role_confirmed_ = false;
    if (old_role.valid()) ++stats_.promotions;
  }
}

std::vector<CellId> GatewayCoordinator::admit(DeviceId device) {
  std::vector<CellId> affected;
  if (cell_of_.contains(device.value())) return affected;
  const CellId id = place(device);
  cell_of_[device.value()] = id.value();
  affected.push_back(id);
  maybe_split(id, affected);
  bump_epoch();
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

std::vector<CellId> GatewayCoordinator::remove(DeviceId device) {
  std::vector<CellId> affected;
  auto it = cell_of_.find(device.value());
  if (it == cell_of_.end()) return affected;
  const CellId id{it->second};
  cell_of_.erase(it);
  auto cit = cells_.find(id.value());
  if (cit == cells_.end()) return affected;
  CellMaster& cell = cit->second;
  const DeviceId old_role = cell.role_device();
  cell.members_.erase(device.value());
  affected.push_back(id);
  if (cell.members_.empty()) {
    cells_.erase(cit);  // Retired, not merged: nothing left to move.
  } else {
    note_membership_change(cell, old_role);
    maybe_merge(id, affected);
  }
  bump_epoch();
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

std::vector<CellId> GatewayCoordinator::handoff(DeviceId device, CellId to) {
  std::vector<CellId> affected;
  auto it = cell_of_.find(device.value());
  auto dst = cells_.find(to.value());
  if (it == cell_of_.end() || dst == cells_.end()) return affected;
  const CellId from{it->second};
  if (from == to) return affected;
  auto src = cells_.find(from.value());
  if (src == cells_.end()) return affected;

  const std::uint64_t watermark = src->second.members_[device.value()];
  const DeviceId src_role = src->second.role_device();
  const DeviceId dst_role = dst->second.role_device();
  src->second.members_.erase(device.value());
  dst->second.members_.emplace(device.value(), watermark);
  cell_of_[device.value()] = to.value();
  ++stats_.handoffs;
  affected.push_back(from);
  affected.push_back(to);
  note_membership_change(dst->second, dst_role);
  if (src->second.members_.empty()) {
    cells_.erase(src);
  } else {
    note_membership_change(src->second, src_role);
    maybe_merge(from, affected);
  }
  maybe_split(to, affected);
  bump_epoch();
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

void GatewayCoordinator::maybe_split(CellId id, std::vector<CellId>& affected) {
  auto it = cells_.find(id.value());
  if (it == cells_.end()) return;
  CellMaster& cell = it->second;
  if (cell.size() < 2 * config_.cell_size_target) return;

  // Split the sorted membership in half: the low half keeps the cell (and
  // its role holder), the high half becomes a fresh cell.
  const CellId fresh_id{next_cell_++};
  CellMaster fresh{fresh_id};
  const std::size_t keep = cell.size() / 2;
  auto mid = cell.members_.begin();
  std::advance(mid, keep);
  for (auto m = mid; m != cell.members_.end(); ++m) {
    fresh.members_.emplace(m->first, m->second);
    cell_of_[m->first] = fresh_id.value();
  }
  cell.members_.erase(mid, cell.members_.end());
  cells_.emplace(fresh_id.value(), std::move(fresh));
  ++stats_.cell_splits;
  affected.push_back(id);
  affected.push_back(fresh_id);
}

void GatewayCoordinator::maybe_merge(CellId id, std::vector<CellId>& affected) {
  auto it = cells_.find(id.value());
  if (it == cells_.end()) return;
  CellMaster& cell = it->second;
  if (cell.size() >= std::max<std::size_t>(1, config_.cell_size_target / 2)) {
    return;
  }

  // Merge into the smallest other cell whose combined size stays below the
  // split threshold (no instant re-split); ties break on lowest cell id.
  CellMaster* best = nullptr;
  const std::size_t cap = 2 * config_.cell_size_target;
  for (auto& [raw, other] : cells_) {
    if (other.id() == id) continue;
    if (other.size() + cell.size() >= cap) continue;
    if (best == nullptr || other.size() < best->size()) best = &other;
  }
  if (best == nullptr) return;  // Singleton swarm or everyone near capacity.

  const DeviceId best_role = best->role_device();
  for (const auto& [raw, wm] : cell.members_) {
    best->members_.emplace(raw, wm);
    cell_of_[raw] = best->id().value();
  }
  affected.push_back(id);
  affected.push_back(best->id());
  note_membership_change(*best, best_role);
  ++stats_.cell_merges;
  cells_.erase(id.value());
}

void GatewayCoordinator::report(DeviceId device, std::uint64_t watermark) {
  auto it = cell_of_.find(device.value());
  if (it == cell_of_.end()) return;
  auto cit = cells_.find(it->second);
  if (cit == cells_.end()) return;
  auto m = cit->second.members_.find(device.value());
  if (m != cit->second.members_.end()) {
    m->second = std::max(m->second, watermark);
  }
  global_watermark_ = std::max(global_watermark_, watermark);
}

void GatewayCoordinator::note_hello(CellId cell, DeviceId device) {
  auto it = cells_.find(cell.value());
  if (it == cells_.end()) return;
  if (it->second.role_device() == device) it->second.role_confirmed_ = true;
}

std::uint64_t GatewayCoordinator::bump_epoch() {
  ++stats_.epoch_bumps;
  return ++epoch_;
}

std::uint64_t GatewayCoordinator::route_boundary() {
  if (global_watermark_ > 0) {
    boundary_ = std::max(boundary_,
                         global_watermark_ + config_.epoch_boundary_slack);
  }
  return boundary_;
}

CellId GatewayCoordinator::cell_of(DeviceId device) const {
  auto it = cell_of_.find(device.value());
  return it == cell_of_.end() ? CellId{} : CellId{it->second};
}

const CellMaster* GatewayCoordinator::cell(CellId id) const {
  auto it = cells_.find(id.value());
  return it == cells_.end() ? nullptr : &it->second;
}

}  // namespace swing::shard
