#include "apps/scene_analysis.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "apps/face_recognition.h"
#include "common/rng.h"
#include "dataflow/function_unit.h"
#include "dataflow/tuple.h"
#include "dataflow/value.h"

namespace swing::apps {

using dataflow::Blob;
using dataflow::Context;
using dataflow::FunctionUnit;
using dataflow::Tuple;

std::string detect_object(std::uint64_t tag) {
  static const char* kObjects[] = {"backpack", "laptop",  "coffee cup",
                                   "bicycle",  "umbrella", "phone",
                                   "notebook", "camera"};
  SplitMix64 sm{tag ^ 0x0b7ec70b7ec7ULL};
  return kObjects[sm.next() % std::size(kObjects)];
}

namespace {

// Face branch: embeds and names the dominant face (same synthetic kernel
// as the face-recognition app).
// swing-lint: stateless — the gallery is configuration built in the
// constructor, not state accumulated from tuples.
class FaceBranchUnit final : public FunctionUnit {
 public:
  FaceBranchUnit() : names_(face_gallery(32)) {
    gallery_.reserve(names_.size());
    for (std::size_t i = 0; i < names_.size(); ++i) {
      gallery_.push_back(face_embedding(0x1000 + i));
    }
  }

  void process(const Tuple& input, Context& ctx) override {
    const auto* frame = input.get_as<Blob>("frame");
    if (frame == nullptr) return;
    Tuple out = input.derive();
    out.set("face_label",
            names_[match_face(face_embedding(frame->tag), gallery_)]);
    ctx.emit(std::move(out));
  }

 private:
  std::vector<std::string> names_;
  std::vector<Embedding> gallery_;
};

class ObjectBranchUnit final : public FunctionUnit {
 public:
  void process(const Tuple& input, Context& ctx) override {
    const auto* frame = input.get_as<Blob>("frame");
    if (frame == nullptr) return;
    Tuple out = input.derive();
    out.set("object_label", detect_object(frame->tag));
    ctx.emit(std::move(out));
  }
};

// Fusion: joins the two branch results of each frame by tuple id. Stateful
// with bounded memory: half-results older than `window` frames are evicted
// (their sibling was lost upstream).
class FusionUnit final : public FunctionUnit {
 public:
  explicit FusionUnit(std::size_t window) : window_(window) {}

  void process(const Tuple& input, Context& ctx) override {
    const std::uint64_t id = input.id().value();
    auto [it, inserted] = pending_.try_emplace(id, input);
    if (inserted) {
      journal_insert(id, it->second);
      order_.push_back(id);
      evict();
      return;
    }
    // Second half arrived: merge fields from both and emit the scene.
    Tuple merged = it->second;
    for (const auto& [key, value] : input.fields()) {
      merged.set(key, value);
    }
    journal_erase(id);
    pending_.erase(it);
    // Keep order_ consistent with pending_: a stale id would both corrupt
    // snapshots and make evict() drop live halves early.
    order_.erase(std::find(order_.begin(), order_.end(), id));

    const auto* face = merged.get_as<std::string>("face_label");
    const auto* object = merged.get_as<std::string>("object_label");
    if (face == nullptr || object == nullptr) return;
    Tuple out = merged.derive();
    out.set("scene", *face + " with a " + *object);
    ctx.emit(std::move(out));
  }

  // --- swing-state contract ----------------------------------------------
  // The join state is the pending half-results; arrival order (the deque)
  // is the canonical serialization order, so two instances holding the same
  // state produce byte-identical snapshots. `window_` is configuration and
  // is not serialized.

  [[nodiscard]] bool stateful() const override { return true; }

  void snapshot_state(ByteWriter& out) const override {
    out.write_varint(order_.size());
    for (const std::uint64_t id : order_) {
      out.write_u64(id);
      const Tuple& t = pending_.at(id);
      out.write_varint(t.encoded_size());
      t.encode(out);
    }
    // A full snapshot is the delta chain's new base: re-arm journaling and
    // drop mutations the snapshot already covers.
    journaling_ = true;
    journal_overflow_ = false;
    journal_.clear();
  }

  void restore_state(ByteReader& in) override {
    pending_.clear();
    order_.clear();
    const std::uint64_t n = in.read_varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t id = in.read_u64();
      const std::uint64_t frame_len = in.read_varint();
      ByteReader frame{in.take_span(frame_len)};
      pending_.emplace(id, Tuple::decode(frame));
      order_.push_back(id);
    }
    evict();  // A snapshot from a larger-window config still fits ours.
  }

  // --- incremental-checkpoint contract -------------------------------------
  // The journal is the ordered list of join-table mutations since the last
  // shipped record: `insert` (first half arrived; the serialized tuple rides
  // along) or `erase` (sibling matched and the pair was emitted). Eviction is
  // NOT journaled: replaying inserts through the same evict() on an identical
  // base reproduces it deterministically.

  [[nodiscard]] bool delta_ready() const override {
    return journaling_ && !journal_overflow_;
  }

  void snapshot_delta(ByteWriter& out) override {
    out.write_varint(journal_.size());
    for (const Op& op : journal_) {
      out.write_u8(op.erase ? 1 : 0);
      out.write_u64(op.id);
      if (!op.erase) out.write_bytes(op.frame);  // Length-prefixed.
    }
    journal_.clear();
  }

  void apply_delta(ByteReader& in) override {
    const std::uint64_t n = in.read_varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      const bool erase = in.read_u8() != 0;
      const std::uint64_t id = in.read_u64();
      if (erase) {
        if (pending_.erase(id) > 0) {
          order_.erase(std::find(order_.begin(), order_.end(), id));
        }
        continue;
      }
      ByteReader frame{in.read_span()};
      Tuple t = Tuple::decode(frame);
      if (pending_.try_emplace(id, std::move(t)).second) {
        order_.push_back(id);
        evict();
      }
    }
  }

  private:
   struct Op {
     bool erase = false;
     std::uint64_t id = 0;
     Bytes frame;  // Serialized tuple for inserts; empty for erases.
   };
   // Past this many buffered mutations a delta stops paying for itself next
   // to the windowed full snapshot; fall back to a full.
   static constexpr std::size_t kMaxJournalOps = 512;

   void journal_insert(std::uint64_t id, const Tuple& t) {
     if (!journaling_ || journal_overflow_) return;
     if (journal_.size() >= kMaxJournalOps) {
       journal_overflow_ = true;
       journal_.clear();
       return;
     }
     ByteWriter w;
     t.encode(w);
     journal_.push_back(Op{false, id, w.take()});
   }

   void journal_erase(std::uint64_t id) {
     if (!journaling_ || journal_overflow_) return;
     if (journal_.size() >= kMaxJournalOps) {
       journal_overflow_ = true;
       journal_.clear();
       return;
     }
     journal_.push_back(Op{true, id, {}});
   }

   void evict() {
     while (order_.size() > window_) {
       pending_.erase(order_.front());
       order_.pop_front();
     }
   }

   std::size_t window_;
   std::unordered_map<std::uint64_t, Tuple> pending_;
   std::deque<std::uint64_t> order_;
   // Delta journal; armed by the first full snapshot (mutable: taking a full
   // snapshot is logically const for the join state but resets the journal).
   mutable bool journaling_ = false;
   mutable bool journal_overflow_ = false;
   mutable std::vector<Op> journal_;
};

}  // namespace

dataflow::AppGraph scene_analysis_graph(const SceneAnalysisConfig& config) {
  dataflow::AppGraph graph;

  dataflow::SourceSpec camera;
  camera.rate_per_s = config.fps;
  camera.max_tuples = config.max_frames;
  camera.generate = [bytes = config.frame_bytes](TupleId id, SimTime, Rng&) {
    Tuple t;
    t.set("frame", Blob{bytes, id.value() / 24});
    return t;
  };
  const auto src = graph.add_source("camera", std::move(camera));

  const auto faces = graph.add_transform(
      "face_branch", [] { return std::make_unique<FaceBranchUnit>(); },
      dataflow::constant_cost(config.face_cost_ms));

  const auto objects = graph.add_transform(
      "object_branch", [] { return std::make_unique<ObjectBranchUnit>(); },
      dataflow::constant_cost(config.object_cost_ms));

  // Fusion replicates across workers like any transform; id-partitioned
  // routing guarantees both halves of a frame meet at the same instance.
  const auto fusion = graph.add_transform(
      "fusion",
      [window = config.join_window] {
        return std::make_unique<FusionUnit>(window);
      },
      dataflow::constant_cost(config.fusion_cost_ms));
  graph.partition_by_id(fusion);

  const auto sink = graph.add_sink("display", config.display);

  graph.connect(src, faces).connect(src, objects);
  graph.connect(faces, fusion).connect(objects, fusion);
  graph.connect(fusion, sink);
  return graph;
}

}  // namespace swing::apps
