#include "apps/voice_translation.h"

#include <map>
#include <sstream>

#include "common/rng.h"
#include "dataflow/function_unit.h"
#include "dataflow/tuple.h"
#include "dataflow/value.h"

namespace swing::apps {

using dataflow::Blob;
using dataflow::Context;
using dataflow::FunctionUnit;
using dataflow::Tuple;

namespace {

// Lexicon of (english, spanish, kind) entries for the toy Apertium.
enum class WordKind { kNoun, kAdjective, kVerb, kOther };

struct LexEntry {
  const char* en;
  const char* es;
  WordKind kind;
};

constexpr LexEntry kLexicon[] = {
    {"the", "el", WordKind::kOther},
    {"a", "un", WordKind::kOther},
    {"red", "rojo", WordKind::kAdjective},
    {"big", "grande", WordKind::kAdjective},
    {"small", "pequeno", WordKind::kAdjective},
    {"old", "viejo", WordKind::kAdjective},
    {"house", "casa", WordKind::kNoun},
    {"dog", "perro", WordKind::kNoun},
    {"cat", "gato", WordKind::kNoun},
    {"book", "libro", WordKind::kNoun},
    {"friend", "amigo", WordKind::kNoun},
    {"water", "agua", WordKind::kNoun},
    {"street", "calle", WordKind::kNoun},
    {"runs", "corre", WordKind::kVerb},
    {"eats", "come", WordKind::kVerb},
    {"sees", "ve", WordKind::kVerb},
    {"has", "tiene", WordKind::kVerb},
    {"is", "es", WordKind::kVerb},
    {"here", "aqui", WordKind::kOther},
    {"now", "ahora", WordKind::kOther},
};

const LexEntry* lookup(const std::string& en) {
  for (const auto& entry : kLexicon) {
    if (en == entry.en) return &entry;
  }
  return nullptr;
}

}  // namespace

std::string recognize_speech(std::uint64_t tag) {
  // A fixed, deterministic decode of the audio content tag: templates like
  // "the <adj> <noun> <verb>" keep phrases grammatical for the translator.
  SplitMix64 sm{tag ^ 0x5beec45beec4ULL};
  auto pick = [&](WordKind kind) -> const char* {
    // Collect candidates of the kind, then pick one.
    const char* chosen = "the";
    std::uint64_t n = 0;
    for (const auto& entry : kLexicon) {
      if (entry.kind == kind && sm.next() % ++n == 0) chosen = entry.en;
    }
    return chosen;
  };
  std::ostringstream phrase;
  phrase << "the " << pick(WordKind::kAdjective) << ' '
         << pick(WordKind::kNoun) << ' ' << pick(WordKind::kVerb);
  if (sm.next() % 2 == 0) phrase << ' ' << pick(WordKind::kOther);
  return phrase.str();
}

std::string translate_to_spanish(const std::string& english) {
  // Tokenise.
  std::vector<std::string> words;
  std::istringstream in{english};
  for (std::string w; in >> w;) words.push_back(std::move(w));

  // Translate word by word, handling a plural suffix rule (-s -> -s after
  // vowel, -es otherwise) for unknown plurals of known nouns.
  struct Out {
    std::string word;
    WordKind kind;
  };
  std::vector<Out> out;
  out.reserve(words.size());
  for (const auto& w : words) {
    if (const LexEntry* hit = lookup(w)) {
      out.push_back({hit->es, hit->kind});
      continue;
    }
    // Plural rule: "dogs" -> lookup "dog", pluralise the Spanish.
    if (w.size() > 1 && w.back() == 's') {
      if (const LexEntry* base = lookup(w.substr(0, w.size() - 1))) {
        std::string es = base->es;
        const char last = es.back();
        es += (last == 'a' || last == 'e' || last == 'o' || last == 'i' ||
               last == 'u')
                  ? "s"
                  : "es";
        out.push_back({std::move(es), base->kind});
        continue;
      }
    }
    out.push_back({"[" + w + "]", WordKind::kOther});  // Untranslated.
  }

  // Transfer rule: English adjective-noun becomes Spanish noun-adjective.
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i].kind == WordKind::kAdjective &&
        out[i + 1].kind == WordKind::kNoun) {
      std::swap(out[i], out[i + 1]);
      ++i;
    }
  }

  std::string result;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (i) result += ' ';
    result += out[i].word;
  }
  return result;
}

namespace {

class SpeechRecognizerUnit final : public FunctionUnit {
 public:
  void process(const Tuple& input, Context& ctx) override {
    const auto* audio = input.get_as<Blob>("audio");
    if (audio == nullptr) return;
    Tuple out = input.derive();
    out.set("text_en", recognize_speech(audio->tag));
    ctx.emit(std::move(out));
  }
};

class TranslatorUnit final : public FunctionUnit {
 public:
  void process(const Tuple& input, Context& ctx) override {
    const auto* text = input.get_as<std::string>("text_en");
    if (text == nullptr) return;
    Tuple out = input.derive();
    out.set("text_es", translate_to_spanish(*text));
    ctx.emit(std::move(out));
  }
};

}  // namespace

dataflow::AppGraph voice_translation_graph(
    const VoiceTranslationConfig& config) {
  dataflow::AppGraph graph;

  dataflow::SourceSpec mic;
  mic.rate_per_s = config.fps;
  mic.max_tuples = config.max_frames;
  mic.generate = [frame_bytes = config.frame_bytes](TupleId id, SimTime,
                                                    Rng&) {
    Tuple t;
    t.set("audio", Blob{frame_bytes, id.value()});
    return t;
  };
  const auto src = graph.add_source("mic", std::move(mic));

  const auto recognizer = graph.add_transform(
      "recognizer", [] { return std::make_unique<SpeechRecognizerUnit>(); },
      dataflow::constant_cost(config.recognize_cost_ms));

  const auto translator = graph.add_transform(
      "translator", [] { return std::make_unique<TranslatorUnit>(); },
      dataflow::constant_cost(config.translate_cost_ms));

  const auto sink = graph.add_sink("display", config.display);

  graph.connect(src, recognizer);
  graph.connect(recognizer, translator);
  graph.connect(translator, sink);
  return graph;
}

}  // namespace swing::apps
