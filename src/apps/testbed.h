// The paper's wireless testbed (§III, §VI).
//
// Nine heterogeneous devices A..I on one 802.11n BSS. A (Galaxy S3) runs
// the master thread and hosts the app's source and sink; B..I run worker
// threads. For the policy-comparison experiments (§VI-B) devices B, C and D
// sit in weak-signal locations. Testbed wraps a Simulator + Swarm with this
// layout so benches, tests and examples build the exact same rig.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "dataflow/graph.h"
#include "runtime/swarm.h"
#include "sim/simulator.h"

namespace swing::apps {

struct TestbedConfig {
  core::PolicyKind policy = core::PolicyKind::kLRS;
  // Which testbed devices (by letter) run worker threads. A is always the
  // master/source/sink device.
  std::vector<std::string> workers = {"B", "C", "D", "E", "F", "G", "H", "I"};
  // Paper §VI-B: B, C, D placed at locations of poor Wi-Fi signal.
  bool weak_signal_bcd = true;
  double strong_rssi_dbm = -35.0;
  double weak_rssi_dbm = -78.5;
  std::uint64_t seed = 42;
  // Applied to every device profile before construction (e.g. shrink
  // batteries for energy experiments). Null = stock profiles.
  std::function<void(device::DeviceProfile&)> profile_tweak;
  // Further knobs pass straight through to the Swarm.
  runtime::SwarmConfig swarm{};
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] runtime::Swarm& swarm() { return *swarm_; }
  [[nodiscard]] const TestbedConfig& config() const { return config_; }

  // Device id of testbed letter "A".."I"; throws std::out_of_range for
  // letters not in this testbed.
  [[nodiscard]] DeviceId id(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& worker_names() const {
    return config_.workers;
  }

  // Launches the app: master on A, workers everywhere else, waits for
  // discovery + deployment to settle, then starts sensing.
  void launch(dataflow::AppGraph graph);

  // Runs the experiment for `duration` after an initial `warmup` (the
  // warmup lets estimates converge; measurements usually window past it).
  void run(SimDuration duration) { sim_.run_for(duration); }

 private:
  TestbedConfig config_;
  Simulator sim_;
  std::unique_ptr<runtime::Swarm> swarm_;
  std::map<std::string, DeviceId> ids_;
};

}  // namespace swing::apps
