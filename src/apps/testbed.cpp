#include "apps/testbed.h"

#include <stdexcept>

#include "device/profile.h"

namespace swing::apps {

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)) {
  runtime::SwarmConfig swarm_config = config_.swarm;
  swarm_config.seed = config_.seed;
  swarm_config.worker.manager.policy = config_.policy;
  swarm_ = std::make_unique<runtime::Swarm>(sim_, swarm_config);

  auto place = [&](const std::string& name) {
    const bool weak = config_.weak_signal_bcd &&
                      (name == "B" || name == "C" || name == "D");
    const double rssi =
        weak ? config_.weak_rssi_dbm : config_.strong_rssi_dbm;
    device::DeviceProfile profile = device::profile_by_name(name);
    if (config_.profile_tweak) config_.profile_tweak(profile);
    ids_[name] = swarm_->add_device_at_rssi(profile, rssi);
  };

  place("A");
  for (const auto& name : config_.workers) place(name);
}

DeviceId Testbed::id(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) throw std::out_of_range("no such device: " + name);
  return it->second;
}

void Testbed::launch(dataflow::AppGraph graph) {
  swarm_->launch_master(id("A"), std::move(graph));
  for (const auto& name : config_.workers) {
    swarm_->launch_worker(id(name));
  }
  // Let discovery, Hello and Deploy settle (sub-second on the testbed).
  sim_.run_for(seconds(1.0));
  swarm_->start();
}

}  // namespace swing::apps
