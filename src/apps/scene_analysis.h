// Scene analysis: a third sensing app with a non-linear dataflow graph.
//
// The paper's introduction motivates cognitive apps combining "face, object,
// or gesture detection and recognition"; this app does both at once on a
// diamond-shaped graph, exercising fan-out (one tuple to two downstream
// operators) and fan-in (a stateful join unit):
//
//            +--> face branch  ---+
//   camera --+                    +--> fusion --> display
//            +--> object branch --+
//
// The fusion unit joins the two half-results of each frame by tuple id.
// Its operator is declared `partition_by_id`, so every upstream routes a
// given frame's half to the same fusion instance no matter which device the
// branch ran on — the join parallelises across the swarm.
#pragma once

#include <cstdint>
#include <string>

#include "dataflow/graph.h"

namespace swing::apps {

struct SceneAnalysisConfig {
  double fps = 12.0;
  std::uint64_t max_frames = 0;
  std::uint64_t frame_bytes = 6000;
  double face_cost_ms = 55.0;    // Detect + recognise the dominant face.
  double object_cost_ms = 75.0;  // Object detector pass.
  double fusion_cost_ms = 3.0;   // Cheap join + formatting.
  // Entries for frames whose second half never arrives are evicted after
  // this many newer frames (bounded state).
  std::size_t join_window = 256;
  // Custom display sink; null = absorb silently.
  dataflow::FunctionUnitFactory display;
};

// Deterministic object label for a frame content tag.
std::string detect_object(std::uint64_t tag);

// Builds the diamond graph. Field keys: "frame" (Blob) from the camera;
// "face_label" / "object_label" (string) from the branches; "scene"
// (string) from the fusion unit.
dataflow::AppGraph scene_analysis_graph(const SceneAnalysisConfig& = {});

}  // namespace swing::apps
