// Gesture recognition: a fourth sensing app in a different workload regime.
//
// The paper's introduction motivates "gesture detection and recognition".
// Unlike the video/audio apps (few large tuples), this one senses an
// accelerometer at 50 Hz — many tiny tuples — and demonstrates source-side
// preprocessing: a stateful windowing unit pinned to the master's device
// aggregates 25 samples (0.5 s) into a feature window, and only the
// windows (2 Hz) fan out to the swarm for the expensive classification:
//
//   accelerometer (50 Hz) -> windower (master) -> classifier (workers)
//                         -> display
//
// The feature extraction and the rule-based classifier are real,
// deterministic, unit-testable code.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "dataflow/graph.h"

namespace swing::apps {

struct GestureConfig {
  double sample_hz = 50.0;
  std::size_t window_samples = 25;  // 0.5 s windows.
  std::uint64_t max_samples = 0;
  double window_cost_ms = 1.0;      // Aggregation is cheap.
  double classify_cost_ms = 120.0;  // DTW-style matching is not.
  // Custom display sink; null = absorb silently.
  dataflow::FunctionUnitFactory display;
};

// One accelerometer sample (m/s^2). Generated deterministically from the
// gesture the user is "performing" at that time.
struct AccelSample {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;
};

// Summary features of one window, computed by the windowing unit.
struct GestureFeatures {
  float mean_magnitude = 0.0f;
  float variance = 0.0f;
  float energy = 0.0f;        // Mean squared deviation from gravity.
  float dominant_axis = 0.0f; // 0 = x, 1 = y, 2 = z.
  float mean_bias = 0.0f;     // |mean x| + |mean y|: DC offset (tilt).

  // Wire-plane v2 codec (see dataflow/codec.h): appended to the caller's
  // writer, decoded from a frame view. Throws WireFormatError on bad input.
  void encode(ByteWriter& w) const;
  static GestureFeatures decode(ByteReader& r);
};

// The gesture the synthetic user performs during a given window index
// (cycles still -> shake -> tilt -> circle).
std::string true_gesture(std::uint64_t window_index);

// Deterministic sample synthesis for sample `i` of the stream.
AccelSample synth_sample(std::uint64_t sample_index,
                         std::size_t window_samples);

// Feature extraction over a window of samples.
GestureFeatures extract_features(const std::vector<AccelSample>& window);

// Rule-based classifier (stands in for a DTW template matcher).
std::string classify_gesture(const GestureFeatures& features);

// Builds the app graph. Field keys: "accel" (Bytes, one packed sample)
// from the source; "features" (Bytes) from the windower; "gesture"
// (string) from the classifier.
dataflow::AppGraph gesture_recognition_graph(const GestureConfig& = {});

}  // namespace swing::apps
