// The paper's first evaluation app: camera-based face recognition.
//
// Four function units (paper §IV-A, §VI-A):
//   camera      (source) — reads 400x226 video frames (6.0 kB) at 24 FPS
//   detector    — finds face regions in a frame  (OpenCV CascadeClassifier)
//   recognizer  — matches faces against a name gallery (FaceRecognizer)
//   display     (sink) — shows the annotated result
//
// The vision kernels are synthetic: frames are Blob payloads and the
// detector/recognizer run small deterministic feature-hash computations
// whose *cost* is calibrated to Table I (92.9 ms per frame total on the
// reference Galaxy Nexus, split ~65/35 between detect and recognize).
// Swing treats function units as opaque, so this preserves every behaviour
// the framework and the experiments observe.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/graph.h"

namespace swing::apps {

struct FaceRecognitionConfig {
  double fps = 24.0;
  std::uint64_t max_frames = 0;   // 0 = run until stopped.
  std::uint64_t frame_bytes = 6000;
  std::uint64_t face_bytes = 2000;  // Cropped face region sent onward.
  // Reference-device (Galaxy Nexus) costs; the 92.9 ms total is Table I.
  double detect_cost_ms = 60.4;
  double recognize_cost_ms = 32.5;
  std::size_t gallery_size = 32;
  // Custom display sink (e.g. to capture results); null = absorb silently.
  dataflow::FunctionUnitFactory display;
};

// Deterministic 16-d face embedding derived from a face blob's content tag
// (stands in for LBP histogram features).
using Embedding = std::array<float, 16>;
Embedding face_embedding(std::uint64_t tag);

// The name gallery the recognizer matches against.
std::vector<std::string> face_gallery(std::size_t size);

// Nearest-gallery-entry match; returns the index of the best match.
std::size_t match_face(const Embedding& probe,
                       const std::vector<Embedding>& gallery);

// Builds the 4-stage app graph. Field keys: "frame" (Blob) out of the
// camera; "face" (Blob) + "num_faces" (int) out of the detector; "name"
// (string) + "confidence" (double) out of the recognizer.
dataflow::AppGraph face_recognition_graph(
    const FaceRecognitionConfig& config = {});

}  // namespace swing::apps
