#include "apps/gesture_recognition.h"

#include <cmath>
#include <numbers>

#include "common/bytes.h"
#include "common/hot.h"
#include "common/rng.h"
#include "dataflow/codec.h"
#include "dataflow/function_unit.h"
#include "dataflow/tuple.h"
#include "dataflow/value.h"

namespace swing::apps {

using dataflow::Context;
using dataflow::FunctionUnit;
using dataflow::Tuple;

SWING_HOT void GestureFeatures::encode(ByteWriter& w) const {
  w.write_f64(mean_magnitude);
  w.write_f64(variance);
  w.write_f64(energy);
  w.write_f64(dominant_axis);
  w.write_f64(mean_bias);
}

SWING_HOT GestureFeatures GestureFeatures::decode(ByteReader& r) {
  GestureFeatures f;
  f.mean_magnitude = float(r.read_f64());
  f.variance = float(r.read_f64());
  f.energy = float(r.read_f64());
  f.dominant_axis = float(r.read_f64());
  f.mean_bias = float(r.read_f64());
  return f;
}

std::string true_gesture(std::uint64_t window_index) {
  static const char* kCycle[] = {"still", "shake", "tilt", "circle"};
  return kCycle[(window_index / 4) % 4];  // Two seconds per gesture.
}

AccelSample synth_sample(std::uint64_t sample_index,
                         std::size_t window_samples) {
  const std::uint64_t window = sample_index / window_samples;
  const double phase =
      2.0 * std::numbers::pi *
      double(sample_index % window_samples) / double(window_samples);
  const std::string gesture = true_gesture(window);
  // Small deterministic sensor noise.
  SplitMix64 sm{sample_index * 0x9e3779b97f4a7c15ULL};
  const auto noise = [&] {
    return float(double(sm.next() >> 11) * 0x1.0p-53 - 0.5) * 0.2f;
  };

  AccelSample s;
  s.z = 9.81f;  // Gravity.
  if (gesture == "shake") {
    s.x = 6.0f * float(std::sin(6.0 * phase));
  } else if (gesture == "tilt") {
    s.y = 3.0f;
    s.z = 8.0f;
  } else if (gesture == "circle") {
    s.x = 2.5f * float(std::sin(phase));
    s.y = 2.5f * float(std::cos(phase));
  }
  s.x += noise();
  s.y += noise();
  s.z += noise();
  return s;
}

GestureFeatures extract_features(const std::vector<AccelSample>& window) {
  GestureFeatures f;
  if (window.empty()) return f;
  double sum_mag = 0.0, sum_sq = 0.0, energy = 0.0;
  double ax = 0.0, ay = 0.0, az = 0.0;
  double mean_x = 0.0, mean_y = 0.0;
  for (const auto& s : window) {
    const double mag = std::sqrt(double(s.x) * s.x + double(s.y) * s.y +
                                 double(s.z) * s.z);
    sum_mag += mag;
    sum_sq += mag * mag;
    energy += double(s.x) * s.x + double(s.y) * s.y +
              (double(s.z) - 9.81) * (double(s.z) - 9.81);
    ax += std::abs(double(s.x));
    ay += std::abs(double(s.y));
    az += std::abs(double(s.z) - 9.81);
    mean_x += s.x;
    mean_y += s.y;
  }
  const double n = double(window.size());
  f.mean_magnitude = float(sum_mag / n);
  f.variance = float(sum_sq / n - (sum_mag / n) * (sum_mag / n));
  f.energy = float(energy / n);
  f.dominant_axis = ax >= ay && ax >= az ? 0.0f : (ay >= az ? 1.0f : 2.0f);
  f.mean_bias = float(std::abs(mean_x / n) + std::abs(mean_y / n));
  return f;
}

std::string classify_gesture(const GestureFeatures& f) {
  if (f.energy < 0.5f) return "still";
  // A sustained DC offset means the device is held at an angle.
  if (f.mean_bias > 1.5f) return "tilt";
  if (f.energy > 15.0f) return "shake";
  return "circle";
}

namespace {

// Stateful windowing unit: buffers samples, emits one feature tuple per
// full window. Pinned to the master device so it sees the stream in order.
class WindowUnit final : public FunctionUnit {
 public:
  explicit WindowUnit(std::size_t window_samples)
      : window_samples_(window_samples) {}

  void process(const Tuple& input, Context& ctx) override {
    const auto* packed = input.get_as<Bytes>("accel");
    if (packed == nullptr) return;
    ByteReader r{*packed};
    AccelSample s;
    s.x = float(r.read_f64());
    s.y = float(r.read_f64());
    s.z = float(r.read_f64());
    buffer_.push_back(s);
    journal_append(s);
    if (buffer_.size() < window_samples_) return;

    Tuple out{TupleId{window_index_++}, input.source_time()};
    dataflow::set_packed(out, "features", extract_features(buffer_));
    buffer_.clear();
    ctx.emit(std::move(out));
  }

  // --- swing-state contract ----------------------------------------------
  // State = the window counter plus the partially filled buffer, in arrival
  // order. Samples round-trip exactly: float widened to f64 and narrowed
  // back is the identity. `window_samples_` is configuration.

  [[nodiscard]] bool stateful() const override { return true; }

  void snapshot_state(ByteWriter& out) const override {
    out.write_u64(window_index_);
    out.write_varint(buffer_.size());
    for (const AccelSample& s : buffer_) {
      out.write_f64(s.x);
      out.write_f64(s.y);
      out.write_f64(s.z);
    }
    // Full snapshot = new delta base: re-arm and clear the journal.
    journaling_ = true;
    journal_overflow_ = false;
    journal_.clear();
  }

  void restore_state(ByteReader& in) override {
    window_index_ = in.read_u64();
    buffer_.clear();
    const std::uint64_t n = in.read_varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      AccelSample s;
      s.x = float(in.read_f64());
      s.y = float(in.read_f64());
      s.z = float(in.read_f64());
      buffer_.push_back(s);
    }
  }

  // --- incremental-checkpoint contract -------------------------------------
  // The journal is the samples appended since the last shipped record; the
  // window roll (emit + clear at window_samples_) is deterministic, so
  // replaying appends through the same roll logic reproduces both the buffer
  // and the window counter.

  [[nodiscard]] bool delta_ready() const override {
    return journaling_ && !journal_overflow_;
  }

  void snapshot_delta(ByteWriter& out) override {
    out.write_varint(journal_.size());
    for (const AccelSample& s : journal_) {
      out.write_f64(s.x);
      out.write_f64(s.y);
      out.write_f64(s.z);
    }
    journal_.clear();
  }

  void apply_delta(ByteReader& in) override {
    const std::uint64_t n = in.read_varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      AccelSample s;
      s.x = float(in.read_f64());
      s.y = float(in.read_f64());
      s.z = float(in.read_f64());
      buffer_.push_back(s);
      if (buffer_.size() >= window_samples_) {
        // The live unit emitted this window; the replica only rolls state.
        ++window_index_;
        buffer_.clear();
      }
    }
  }

 private:
  // Bound the journal to a few windows' worth of samples; past that a full
  // snapshot (at most one window of state) is smaller anyway.
  static constexpr std::size_t kMaxJournalSamples = 1024;

  void journal_append(const AccelSample& s) {
    if (!journaling_ || journal_overflow_) return;
    if (journal_.size() >= kMaxJournalSamples) {
      journal_overflow_ = true;
      journal_.clear();
      return;
    }
    journal_.push_back(s);
  }

  std::size_t window_samples_;
  std::vector<AccelSample> buffer_;
  std::uint64_t window_index_ = 0;
  // Armed by the first full snapshot; mutable because snapshot_state() is
  // logically const for the window state but resets the journal.
  mutable bool journaling_ = false;
  mutable bool journal_overflow_ = false;
  mutable std::vector<AccelSample> journal_;
};

// swing-lint: stateless — pure per-tuple transform.
class ClassifierUnit final : public FunctionUnit {
 public:
  void process(const Tuple& input, Context& ctx) override {
    const auto features =
        dataflow::get_packed<GestureFeatures>(input, "features");
    if (!features) return;
    Tuple out = input.derive();
    out.set("gesture", classify_gesture(*features));
    ctx.emit(std::move(out));
  }
};

}  // namespace

dataflow::AppGraph gesture_recognition_graph(const GestureConfig& config) {
  dataflow::AppGraph graph;

  dataflow::SourceSpec accel;
  accel.rate_per_s = config.sample_hz;
  accel.max_tuples = config.max_samples;
  accel.generate = [n = config.window_samples](TupleId id, SimTime, Rng&) {
    const AccelSample s = synth_sample(id.value(), n);
    ByteWriter w;
    w.write_f64(s.x);
    w.write_f64(s.y);
    w.write_f64(s.z);
    Tuple t;
    t.set("accel", w.take());
    return t;
  };
  const auto src = graph.add_source("accelerometer", std::move(accel));

  const auto windower = graph.add_transform(
      "windower",
      [n = config.window_samples] { return std::make_unique<WindowUnit>(n); },
      dataflow::constant_cost(config.window_cost_ms));
  graph.place_on_master(windower);

  const auto classifier = graph.add_transform(
      "classifier", [] { return std::make_unique<ClassifierUnit>(); },
      dataflow::constant_cost(config.classify_cost_ms));

  const auto sink = graph.add_sink("display", config.display);

  graph.connect(src, windower);
  graph.connect(windower, classifier);
  graph.connect(classifier, sink);
  return graph;
}

}  // namespace swing::apps
