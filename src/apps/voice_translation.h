// The paper's second evaluation app: voice translation (EN -> ES).
//
// Four function units (paper §VI-A):
//   mic         (source) — reads 72.0 kB audio frames from files
//   recognizer  — speech-to-text  (CMU PocketSphinx in the paper)
//   translator  — English-to-Spanish (Apertium rule-based MT)
//   display     (sink) — shows the translated text
//
// As with face recognition, the NLP kernels are synthetic-but-real code:
// the recognizer deterministically decodes an audio Blob's content tag into
// an English phrase, and the translator is a miniature Apertium-style
// rule-based system (dictionary lookup + suffix rules + simple
// adjective-noun reordering) that is independently unit-testable. Costs are
// calibrated so the per-device throughput is well below the input rate,
// making the app compute-bound across the swarm (the paper's motivation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/graph.h"

namespace swing::apps {

struct VoiceTranslationConfig {
  double fps = 12.0;  // Audio frames per second offered by the source.
  std::uint64_t max_frames = 0;
  std::uint64_t frame_bytes = 72000;
  // Reference-device (Galaxy Nexus) costs per audio frame.
  double recognize_cost_ms = 200.0;  // ASR dominates (PocketSphinx).
  double translate_cost_ms = 40.0;   // Rule-based MT is lighter.
  // Custom display sink (e.g. to capture captions); null = absorb silently.
  dataflow::FunctionUnitFactory display;
};

// Deterministic "speech recognition": decodes an audio tag into an English
// phrase (3-6 words from a fixed lexicon).
std::string recognize_speech(std::uint64_t tag);

// Miniature rule-based English -> Spanish translation: dictionary lookup,
// plural suffix handling, and adjective-noun reordering.
std::string translate_to_spanish(const std::string& english);

// Builds the 4-stage app graph. Field keys: "audio" (Blob) out of the mic;
// "text_en" (string) out of the recognizer; "text_es" (string) out of the
// translator.
dataflow::AppGraph voice_translation_graph(
    const VoiceTranslationConfig& config = {});

}  // namespace swing::apps
