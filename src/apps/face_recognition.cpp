#include "apps/face_recognition.h"

#include <cmath>

#include "common/rng.h"
#include "dataflow/function_unit.h"
#include "dataflow/tuple.h"
#include "dataflow/value.h"

namespace swing::apps {

using dataflow::Blob;
using dataflow::Context;
using dataflow::FunctionUnit;
using dataflow::Tuple;

Embedding face_embedding(std::uint64_t tag) {
  // Expand the content tag into a unit-normalised 16-d feature vector with
  // a SplitMix64 stream — deterministic, well-spread, cheap.
  SplitMix64 sm{tag ^ 0xfacefacefacefaceULL};
  Embedding e{};
  double norm = 0.0;
  for (auto& x : e) {
    x = float(double(sm.next() >> 11) * 0x1.0p-53 - 0.5);
    norm += double(x) * double(x);
  }
  const float inv = float(1.0 / std::sqrt(norm));
  for (auto& x : e) x *= inv;
  return e;
}

std::vector<std::string> face_gallery(std::size_t size) {
  static const char* kNames[] = {
      "alice", "bob",   "carol", "dave",  "erin",  "frank", "grace",
      "heidi", "ivan",  "judy",  "karl",  "laura", "mike",  "nina",
      "oscar", "peggy", "quinn", "rosa",  "steve", "trudy", "uma",
      "victor", "wendy", "xena", "yusuf", "zara",
  };
  std::vector<std::string> gallery;
  gallery.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    std::string name = kNames[i % std::size(kNames)];
    if (i >= std::size(kNames)) name += std::to_string(i / std::size(kNames));
    gallery.push_back(std::move(name));
  }
  return gallery;
}

std::size_t match_face(const Embedding& probe,
                       const std::vector<Embedding>& gallery) {
  std::size_t best = 0;
  float best_score = -2.0f;
  for (std::size_t i = 0; i < gallery.size(); ++i) {
    float dot = 0.0f;
    for (std::size_t d = 0; d < probe.size(); ++d) {
      dot += probe[d] * gallery[i][d];
    }
    if (dot > best_score) {
      best_score = dot;
      best = i;
    }
  }
  return best;
}

namespace {

// Detector: "finds" 1-2 faces in the frame and forwards the dominant face
// region (a smaller blob) with its content tag, which encodes identity.
// swing-lint: stateless — face_bytes_ is constructor configuration.
class DetectorUnit final : public FunctionUnit {
 public:
  explicit DetectorUnit(std::uint64_t face_bytes)
      : face_bytes_(face_bytes) {}

  void process(const Tuple& input, Context& ctx) override {
    const auto* frame = input.get_as<Blob>("frame");
    if (frame == nullptr) return;  // Malformed input: nothing detectable.
    const std::int64_t num_faces = 1 + std::int64_t(frame->tag % 2);
    Tuple out = input.derive();
    out.set("face", Blob{face_bytes_, frame->tag});
    out.set("num_faces", num_faces);
    ctx.emit(std::move(out));
  }

 private:
  std::uint64_t face_bytes_;
};

// Recognizer: embeds the face region and matches the gallery.
// swing-lint: stateless — the gallery is configuration, not tuple state.
class RecognizerUnit final : public FunctionUnit {
 public:
  explicit RecognizerUnit(std::size_t gallery_size) {
    names_ = face_gallery(gallery_size);
    gallery_.reserve(gallery_size);
    for (std::size_t i = 0; i < gallery_size; ++i) {
      gallery_.push_back(face_embedding(/*tag=*/0x1000 + i));
    }
  }

  void process(const Tuple& input, Context& ctx) override {
    const auto* face = input.get_as<Blob>("face");
    if (face == nullptr) return;
    const Embedding probe = face_embedding(face->tag);
    const std::size_t hit = match_face(probe, gallery_);
    float confidence = 0.0f;
    for (std::size_t d = 0; d < probe.size(); ++d) {
      confidence += probe[d] * gallery_[hit][d];
    }
    Tuple out = input.derive();
    out.set("name", names_[hit]);
    out.set("confidence", double(confidence));
    ctx.emit(std::move(out));
  }

 private:
  std::vector<std::string> names_;
  std::vector<Embedding> gallery_;
};

}  // namespace

dataflow::AppGraph face_recognition_graph(
    const FaceRecognitionConfig& config) {
  dataflow::AppGraph graph;

  dataflow::SourceSpec camera;
  camera.rate_per_s = config.fps;
  camera.max_tuples = config.max_frames;
  camera.generate = [frame_bytes = config.frame_bytes](TupleId id, SimTime,
                                                       Rng&) {
    Tuple t;
    // The tag models frame content: consecutive frames mostly show the same
    // person, switching every ~48 frames (2 s of video).
    t.set("frame", Blob{frame_bytes, id.value() / 48});
    return t;
  };
  const auto src = graph.add_source("camera", std::move(camera));

  const auto detector = graph.add_transform(
      "detector",
      [face_bytes = config.face_bytes] {
        return std::make_unique<DetectorUnit>(face_bytes);
      },
      dataflow::constant_cost(config.detect_cost_ms));

  const auto recognizer = graph.add_transform(
      "recognizer",
      [gallery = config.gallery_size] {
        return std::make_unique<RecognizerUnit>(gallery);
      },
      dataflow::constant_cost(config.recognize_cost_ms));

  const auto sink = graph.add_sink("display", config.display);

  graph.connect(src, detector);
  graph.connect(detector, recognizer);
  graph.connect(recognizer, sink);
  return graph;
}

}  // namespace swing::apps
