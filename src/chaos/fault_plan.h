// swing-chaos: a seeded, deterministic fault plan for the shared medium.
//
// The paper's dynamism experiments (§VI-C) script joins, abrupt leaves, and
// weak-signal walks, but the failures in between — the lost ACK, the packet
// that arrives twice, the link that silently dies for ten seconds — only
// ever happened here by accident. FaultPlan makes them first-class and
// reproducible: it implements net::FaultHook, draws every decision from one
// seeded Rng in message order, and exposes knobs that the Scenario DSL
// schedules (drop_acks_between, partition_at, ...). Two runs with the same
// seed and the same script inject byte-identical fault sequences, so chaos
// tests can assert registry-snapshot and ledger-digest equality.
//
// Faults are pairwise-symmetric where they model a link (partitions, pair
// loss) and directional where they model the channel (global loss, dup,
// delay spikes). Worker-side faults — crash-stop, freeze, slow-down — are
// not injected here: they live on runtime::Worker (crash()/set_frozen()/
// set_slowdown()) and are scripted through the same Scenario verbs.
#pragma once

#include <cstdint>
#include <map>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "net/fault_hook.h"
#include "obs/registry.h"

namespace swing::chaos {

struct FaultPlanConfig {
  // Seed for the per-message fault draws ("--chaos-seed" in the benches).
  std::uint64_t seed = 1;
  // Global probabilities applied to every non-loopback message.
  double loss = 0.0;       // P(message lost on the air).
  double duplicate = 0.0;  // P(a second copy is delivered).
  double delay_p = 0.0;    // P(delivery delayed by `delay_spike`).
  SimDuration delay_spike = millis(200);
  // Additional loss applied to ACK-class messages only (kAck / kAckBatch),
  // on top of `loss` — the fault that specifically exercises retransmission
  // without ever losing data.
  double ack_loss = 0.0;
  // swing-obs: injected-fault counters land here as
  // chaos_injected{fault=loss|ack-loss|duplicate|delay|partition}.
  // Installed by the Swarm; null keeps the plan registry-free.
  obs::Registry* registry = nullptr;
};

class FaultPlan final : public net::FaultHook {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  // --- Scriptable knobs (effective from the next message on) -------------

  void set_loss(double p) { config_.loss = p; }
  void set_ack_loss(double p) { config_.ack_loss = p; }
  void set_duplicate(double p) { config_.duplicate = p; }
  void set_delay_spike(double p, SimDuration spike) {
    config_.delay_p = p;
    config_.delay_spike = spike;
  }

  // Pairwise (both directions) probabilistic loss between two devices.
  void set_loss_between(DeviceId a, DeviceId b, double p);
  // ACK-only loss between two devices — the Scenario's drop_acks_between.
  void set_ack_loss_between(DeviceId a, DeviceId b, double p);
  // Hard partition: every message between a and b is lost until `heal_at`
  // (SimTime::max() partitions forever). Silent — neither endpoint gets a
  // link-down error, exactly like a half-dead AP association.
  void partition(DeviceId a, DeviceId b, SimTime heal_at);
  void heal(DeviceId a, DeviceId b);
  [[nodiscard]] bool partitioned(DeviceId a, DeviceId b, SimTime now) const;

  // --- net::FaultHook ----------------------------------------------------

  net::FaultDecision on_message(DeviceId src, DeviceId dst,
                                std::uint8_t traffic_class,
                                SimTime now) override;

  // Total faults injected so far (sum over kinds).
  [[nodiscard]] std::uint64_t injected() const { return injected_; }

 private:
  struct PairFaults {
    double loss = 0.0;
    double ack_loss = 0.0;
    SimTime heal_at{};  // Partitioned while now < heal_at.
    bool partitioned = false;
  };

  // Unordered pair key; std::map keeps iteration deterministic.
  static std::uint64_t pair_key(DeviceId a, DeviceId b) {
    const std::uint64_t lo = a.value() < b.value() ? a.value() : b.value();
    const std::uint64_t hi = a.value() < b.value() ? b.value() : a.value();
    return lo * 0x9e3779b97f4a7c15ULL ^ hi;
  }
  void count(const char* fault);

  FaultPlanConfig config_;
  Rng rng_;
  std::map<std::uint64_t, PairFaults> pairs_;
  std::uint64_t injected_ = 0;
};

}  // namespace swing::chaos
