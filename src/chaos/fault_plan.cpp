#include "chaos/fault_plan.h"

#include <utility>

// For the ACK-class message tags only; the chaos library does not link
// against the runtime (MsgType is a header-only enum).
#include "runtime/messages.h"

namespace swing::chaos {

namespace {

bool is_ack_class(std::uint8_t traffic_class) {
  return traffic_class == std::uint8_t(runtime::MsgType::kAck) ||
         traffic_class == std::uint8_t(runtime::MsgType::kAckBatch);
}

}  // namespace

FaultPlan::FaultPlan(FaultPlanConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

void FaultPlan::set_loss_between(DeviceId a, DeviceId b, double p) {
  pairs_[pair_key(a, b)].loss = p;
}

void FaultPlan::set_ack_loss_between(DeviceId a, DeviceId b, double p) {
  pairs_[pair_key(a, b)].ack_loss = p;
}

void FaultPlan::partition(DeviceId a, DeviceId b, SimTime heal_at) {
  auto& pair = pairs_[pair_key(a, b)];
  pair.partitioned = true;
  pair.heal_at = heal_at;
}

void FaultPlan::heal(DeviceId a, DeviceId b) {
  auto it = pairs_.find(pair_key(a, b));
  if (it != pairs_.end()) it->second.partitioned = false;
}

bool FaultPlan::partitioned(DeviceId a, DeviceId b, SimTime now) const {
  auto it = pairs_.find(pair_key(a, b));
  return it != pairs_.end() && it->second.partitioned &&
         now < it->second.heal_at;
}

void FaultPlan::count(const char* fault) {
  ++injected_;
  if (config_.registry != nullptr) {
    config_.registry->counter("chaos_injected", {{"fault", fault}}).inc();
  }
}

net::FaultDecision FaultPlan::on_message(DeviceId src, DeviceId dst,
                                         std::uint8_t traffic_class,
                                         SimTime now) {
  net::FaultDecision decision;

  double loss = config_.loss;
  double ack_loss = config_.ack_loss;
  bool cut = false;
  if (auto it = pairs_.find(pair_key(src, dst)); it != pairs_.end()) {
    const PairFaults& pair = it->second;
    if (pair.partitioned && now < pair.heal_at) cut = true;
    if (pair.loss > loss) loss = pair.loss;
    if (pair.ack_loss > ack_loss) ack_loss = pair.ack_loss;
  }

  if (cut) {
    count("partition");
    decision.drop = true;
    return decision;
  }

  // One draw per potential fault, in fixed order, whether or not the fault
  // is enabled — so turning a knob on mid-run does not shift the stream the
  // other faults see. Determinism across runs only requires identical knob
  // schedules, which the Scenario provides.
  const double roll_loss = rng_.uniform();
  const double roll_ack = rng_.uniform();
  const double roll_dup = rng_.uniform();
  const double roll_delay = rng_.uniform();

  if (roll_loss < loss) {
    count("loss");
    decision.drop = true;
    return decision;
  }
  if (is_ack_class(traffic_class) && roll_ack < ack_loss) {
    count("ack-loss");
    decision.drop = true;
    return decision;
  }
  if (roll_dup < config_.duplicate) {
    count("duplicate");
    decision.duplicate = true;
  }
  if (roll_delay < config_.delay_p) {
    count("delay");
    decision.extra_delay = config_.delay_spike;
  }
  return decision;
}

}  // namespace swing::chaos
