#include "state/checkpoint_store.h"

namespace swing::state {

bool CheckpointStore::store(const CheckpointMsg& msg) {
  auto it = entries_.find(msg.instance.instance.value());
  if (it != entries_.end() && msg.epoch < it->second.epoch) return false;
  Entry entry;
  entry.instance = msg.instance;
  entry.epoch = msg.epoch;
  entry.taken_ns = msg.taken_ns;
  entry.state = msg.state;
  entries_[msg.instance.instance.value()] = std::move(entry);
  return true;
}

const CheckpointStore::Entry* CheckpointStore::latest(
    InstanceId instance) const {
  auto it = entries_.find(instance.value());
  return it == entries_.end() ? nullptr : &it->second;
}

void CheckpointStore::erase(InstanceId instance) {
  entries_.erase(instance.value());
}

}  // namespace swing::state
