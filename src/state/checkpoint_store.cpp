#include "state/checkpoint_store.h"

namespace swing::state {

bool CheckpointStore::store(const CheckpointMsg& msg) {
  auto it = chains_.find(msg.instance.instance.value());
  if (it != chains_.end() && msg.epoch < it->second.base.epoch) return false;
  Entry entry;
  entry.instance = msg.instance;
  entry.epoch = msg.epoch;
  entry.taken_ns = msg.taken_ns;
  entry.state = msg.state;
  Chain& chain = chains_[msg.instance.instance.value()];
  chain.base = std::move(entry);
  chain.deltas.clear();  // Epoch GC: the new base subsumes the old run.
  return true;
}

bool CheckpointStore::store_delta(const DeltaMsg& msg) {
  auto it = chains_.find(msg.instance.instance.value());
  if (it == chains_.end()) return false;  // No base to chain onto.
  Chain& chain = it->second;
  if (msg.base_epoch != chain.base.epoch) return false;
  if (msg.epoch != chain.tip_epoch() + 1) return false;
  if (chain.deltas.size() >= kMaxDeltasPerChain) return false;
  Entry entry;
  entry.instance = msg.instance;
  entry.epoch = msg.epoch;
  entry.taken_ns = msg.taken_ns;
  entry.state = msg.delta;
  chain.deltas.push_back(std::move(entry));
  return true;
}

const CheckpointStore::Chain* CheckpointStore::chain(
    InstanceId instance) const {
  auto it = chains_.find(instance.value());
  return it == chains_.end() ? nullptr : &it->second;
}

const CheckpointStore::Entry* CheckpointStore::latest(
    InstanceId instance) const {
  auto it = chains_.find(instance.value());
  return it == chains_.end() ? nullptr : &it->second.base;
}

void CheckpointStore::erase(InstanceId instance) {
  chains_.erase(instance.value());
}

std::optional<CheckpointStore::Chain> CheckpointStore::extract(
    InstanceId instance) {
  auto it = chains_.find(instance.value());
  if (it == chains_.end()) return std::nullopt;
  Chain chain = std::move(it->second);
  chains_.erase(it);
  return chain;
}

void CheckpointStore::adopt(InstanceId instance, Chain chain) {
  chains_[instance.value()] = std::move(chain);
}

std::vector<std::uint64_t> CheckpointStore::instances() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(chains_.size());
  for (const auto& [id, chain] : chains_) ids.push_back(id);
  return ids;  // chains_ is an ordered map, so ids come out sorted.
}

}  // namespace swing::state
