// Chain reconstruction: last full snapshot + ordered deltas -> flat state.
//
// Every checkpoint record carries the worker envelope in front of the unit
// payload:
//
//   full   [varint dedup_count][u64 dedup ids...][unit snapshot_state]
//   delta  [varint new_id_count][u64 dedup ids...][unit snapshot_delta]
//
// reconstruct_state() replays a chain onto a freshly built unit and
// re-serializes the result as a FULL envelope, byte-compatible with
// RestoreMsg::state — so every restore path (master store, worker peer
// replica) feeds the same activation code. Shared by runtime/master.cpp and
// runtime/worker.cpp; throws WireFormatError on malformed records.
#pragma once

#include <vector>

#include "common/bytes.h"

namespace swing::dataflow {
class FunctionUnit;
}

namespace swing::state {

// Applies `base` (a full-envelope record) and then each delta record in
// order to `unit`, returning the merged full-envelope state. Dedup ids from
// the base and every delta are concatenated in chain order (bounded to the
// most recent 65536 — far past any configured dedup window).
Bytes reconstruct_state(dataflow::FunctionUnit& unit, const Bytes& base,
                        const std::vector<const Bytes*>& deltas);

}  // namespace swing::state
