// Master-side storage for operator-state checkpoint chains.
//
// Checkpoint plane v2: per instance the store holds the last FULL snapshot
// (the chain base) plus the ordered run of incremental deltas chained onto
// it. Epoch GC is structural — a newer full snapshot replaces the base and
// drops every delta it subsumes, so the store never holds more than one
// base + one delta run per instance. Reconstruction (base state replayed
// through each delta) lives in state/state_chain.h and is shared with the
// worker-side peer replica store.
//
// The master consults the store when a member dies (redeploy-and-restore)
// and relays every accepted record to the instance's peer replica.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "state/state_messages.h"

namespace swing::state {

class CheckpointStore {
 public:
  struct Entry {
    InstanceInfo instance;      // Where the snapshot was taken.
    std::uint64_t epoch = 0;
    std::int64_t taken_ns = 0;  // Sim time of serialization on the worker.
    Bytes state;
  };

  struct Chain {
    Entry base;                 // Last full snapshot.
    std::vector<Entry> deltas;  // Contiguous epochs base.epoch+1, +2, ...

    // Epoch of the newest record in the chain.
    [[nodiscard]] std::uint64_t tip_epoch() const {
      return deltas.empty() ? base.epoch : deltas.back().epoch;
    }
  };

  // Defensive bound on an instance's delta run: the worker ships a full
  // every few deltas, so a run this long means the full stream is lost —
  // reject further deltas and wait for the next base.
  static constexpr std::size_t kMaxDeltasPerChain = 256;

  // Records a full snapshot if it is at least as new as the held base
  // (equal epochs overwrite: a migration-final snapshot re-announcing the
  // current epoch must supersede the periodic one). Accepting a full GCs
  // every delta of the previous chain. Returns whether stored.
  bool store(const CheckpointMsg& msg);

  // Appends a delta if it extends the held chain contiguously: same base
  // epoch, and exactly one past the current tip. Anything else — no chain,
  // a gap, a stale duplicate, an over-long run — is rejected; the worker's
  // periodic fulls re-seed the chain and self-heal. Returns whether stored.
  bool store_delta(const DeltaMsg& msg);

  // The full chain for `instance`, or nullptr if no full was ever stored.
  [[nodiscard]] const Chain* chain(InstanceId instance) const;

  // The chain base (last FULL snapshot) for `instance`, or nullptr.
  [[nodiscard]] const Entry* latest(InstanceId instance) const;

  // Forgets `instance` (e.g. after its operator is torn down for good).
  void erase(InstanceId instance);

  // swing-shard cell re-homing: moves the chain for `instance` out of this
  // store (nullopt when absent), and installs a chain moved from another
  // store (overwriting any held chain — the mover owns the newer truth).
  [[nodiscard]] std::optional<Chain> extract(InstanceId instance);
  void adopt(InstanceId instance, Chain chain);

  // Sorted ids of every instance with a stored chain.
  [[nodiscard]] std::vector<std::uint64_t> instances() const;

  // Drops every chain (master state loss; exercised by chaos tests).
  void clear() { chains_.clear(); }

  [[nodiscard]] std::size_t size() const { return chains_.size(); }

 private:
  std::map<std::uint64_t, Chain> chains_;  // Keyed by InstanceId value.
};

}  // namespace swing::state
