// Master-side storage for the latest operator-state checkpoint per instance.
//
// The store is intentionally dumb: latest-epoch-wins per InstanceId, no
// history (incremental/delta checkpoints are a ROADMAP follow-up). The
// master consults it when a member dies (redeploy-and-restore) and when a
// live migration's final snapshot arrives (transfer-to-target).
#pragma once

#include <cstdint>
#include <map>

#include "common/bytes.h"
#include "common/ids.h"
#include "state/state_messages.h"

namespace swing::state {

class CheckpointStore {
 public:
  struct Entry {
    InstanceInfo instance;      // Where the snapshot was taken.
    std::uint64_t epoch = 0;
    std::int64_t taken_ns = 0;  // Sim time of serialization on the worker.
    Bytes state;
  };

  // Records `msg` if it is at least as new as what is held for the instance
  // (equal epochs overwrite: a migration-final snapshot re-announcing the
  // current epoch must supersede the periodic one). Returns whether stored.
  bool store(const CheckpointMsg& msg);

  // The freshest snapshot for `instance`, or nullptr if none was ever taken.
  [[nodiscard]] const Entry* latest(InstanceId instance) const;

  // Forgets `instance` (e.g. after its operator is torn down for good).
  void erase(InstanceId instance);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::uint64_t, Entry> entries_;  // Keyed by InstanceId value.
};

}  // namespace swing::state
