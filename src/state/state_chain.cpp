#include "state/state_chain.h"

#include <cstdint>

#include "dataflow/function_unit.h"
#include "runtime/messages.h"

namespace swing::state {

namespace {

constexpr std::size_t kMaxMergedDedupIds = 65536;

// Reads one record's envelope prefix, appending its dedup ids to `ids`;
// leaves the reader positioned at the unit payload.
void read_envelope_ids(ByteReader& r, std::vector<std::uint64_t>& ids) {
  const std::uint64_t n = r.read_varint();
  runtime::check_wire_count(n, r, 8, "checkpoint dedup id");
  for (std::uint64_t i = 0; i < n; ++i) ids.push_back(r.read_u64());
}

}  // namespace

Bytes reconstruct_state(dataflow::FunctionUnit& unit, const Bytes& base,
                        const std::vector<const Bytes*>& deltas) {
  std::vector<std::uint64_t> ids;
  ByteReader base_reader{base};
  read_envelope_ids(base_reader, ids);
  unit.restore_state(base_reader);
  for (const Bytes* delta : deltas) {
    ByteReader r{*delta};
    read_envelope_ids(r, ids);
    unit.apply_delta(r);
  }
  if (ids.size() > kMaxMergedDedupIds) {
    ids.erase(ids.begin(),
              ids.begin() + std::ptrdiff_t(ids.size() - kMaxMergedDedupIds));
  }
  ByteWriter w;
  w.write_varint(ids.size());
  for (const std::uint64_t id : ids) w.write_u64(id);
  unit.snapshot_state(w);
  return w.take();
}

}  // namespace swing::state
