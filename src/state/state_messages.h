// swing-state wire protocol: checkpoint, restore, and migration messages.
//
// Three control-plane messages thread operator state through the swarm:
//
//   CheckpointMsg  worker -> master   periodic (or migration-final) snapshot
//                                     of one instance's operator state.
//   RestoreMsg     master -> worker   redeploy an instance WITH state: the
//                                     target activates the instance from this
//                                     message alone (it carries the routing
//                                     seeds a DeployMsg would), then applies
//                                     the snapshot before replaying any data
//                                     buffered while the instance was absent.
//   MigrateMsg     master -> worker   command the current host to quiesce,
//                                     drain, snapshot, and hand the instance
//                                     to `to_device`.
//
// Codec conventions follow runtime/messages.h: encode(ByteWriter&) appends
// into a caller-owned buffer, decode(ByteReader&) reads a non-owning frame
// view, WireFormatError is the only legal rejection, check_wire_count() runs
// before any reserve so hostile counts fail recoverably, and byte-fixpoint
// round-trips are enforced by the fuzz harnesses (fuzz/fuzz_checkpoint.cpp
// and friends).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/hot.h"
#include "common/ids.h"
#include "runtime/messages.h"

namespace swing::state {

using runtime::check_wire_count;
using runtime::InstanceInfo;

// One instance's serialized operator state plus the worker-level envelope
// (dedup window), stamped with a monotonically increasing epoch. A snapshot
// taken as the final step of a live migration carries the handoff target in
// `migrate_to` (invalid id for periodic checkpoints).
struct CheckpointMsg {
  InstanceInfo instance;
  std::uint64_t epoch = 0;
  std::int64_t taken_ns = 0;  // Sim time the worker serialized the state.
  DeviceId migrate_to{};      // Valid only for migration-final snapshots.
  Bytes state;

  friend bool operator==(const CheckpointMsg&, const CheckpointMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    instance.encode(w);
    w.write_u64(epoch);
    w.write_i64(taken_ns);
    w.write_u64(migrate_to.value());
    w.write_bytes(state);
  }
  static SWING_HOT CheckpointMsg decode(ByteReader& r) {
    CheckpointMsg msg;
    msg.instance = InstanceInfo::decode(r);
    msg.epoch = r.read_u64();
    msg.taken_ns = r.read_i64();
    msg.migrate_to = DeviceId{r.read_u64()};
    const auto body = r.read_span();
    msg.state.assign(body.begin(), body.end());
    return msg;
  }
};

// Redeploy-with-state. `instance` names the SAME InstanceId the snapshot was
// taken under but with the new hosting device — keeping the id stable is what
// lets id-partitioned fan-in and the retransmission path find the revived
// instance without a membership change. `downstreams` seeds the instance's
// routing table exactly as a DeployMsg assignment would.
struct RestoreMsg {
  InstanceInfo instance;
  std::uint64_t epoch = 0;
  std::int64_t sent_ns = 0;  // Sim time the master dispatched the restore.
  Bytes state;
  std::vector<InstanceInfo> downstreams;

  friend bool operator==(const RestoreMsg&, const RestoreMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    instance.encode(w);
    w.write_u64(epoch);
    w.write_i64(sent_ns);
    w.write_bytes(state);
    w.write_varint(downstreams.size());
    for (const auto& d : downstreams) d.encode(w);
  }
  static SWING_HOT RestoreMsg decode(ByteReader& r) {
    RestoreMsg msg;
    msg.instance = InstanceInfo::decode(r);
    msg.epoch = r.read_u64();
    msg.sent_ns = r.read_i64();
    const auto body = r.read_span();
    msg.state.assign(body.begin(), body.end());
    const auto n = r.read_varint();
    check_wire_count(n, r, 24, "restore downstream");
    msg.downstreams.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      msg.downstreams.push_back(InstanceInfo::decode(r));
    }
    return msg;
  }
};

// Master-initiated planned handoff: the hosting worker quiesces the named
// instance (new input is forwarded to `to_device`), drains its compute
// queue, ships a final snapshot (CheckpointMsg with migrate_to set), and
// retires the local copy. Zero tuple loss is asserted by the ledger.
struct MigrateMsg {
  InstanceId instance;
  DeviceId to_device;

  friend bool operator==(const MigrateMsg&, const MigrateMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(instance.value());
    w.write_u64(to_device.value());
  }
  static SWING_HOT MigrateMsg decode(ByteReader& r) {
    MigrateMsg msg;
    msg.instance = InstanceId{r.read_u64()};
    msg.to_device = DeviceId{r.read_u64()};
    return msg;
  }
};

}  // namespace swing::state
