// swing-state wire protocol: checkpoint, delta, replication, restore, and
// two-phase-commit migration messages.
//
// The checkpoint plane threads operator state through the swarm:
//
//   CheckpointMsg      worker -> master  periodic (or migration-final) FULL
//                                        snapshot of one instance's state.
//   DeltaMsg           worker -> master  incremental journal record chained
//                                        onto the last full snapshot.
//   ReplicateMsg       master -> worker  relay of a stored full/delta record
//                                        to the instance's peer replica.
//   RestoreMsg         master -> worker  redeploy an instance WITH state: the
//                                        target activates the instance from
//                                        this message alone (it carries the
//                                        routing seeds a DeployMsg would),
//                                        then applies the snapshot before
//                                        replaying buffered data.
//   ReplicaRestoreMsg  master -> worker  fallback restore after master state
//                                        loss: the peer reconstructs the
//                                        instance from its replica chain.
//
// Live migration is a two-phase commit driven by the master:
//
//   MigratePrepareMsg  master -> source  quiesce, drain, transfer state.
//   MigrateStateMsg    source -> dest    the final snapshot, staged (inert)
//                                        at the destination until COMMIT.
//   MigrateAckMsg      dest   -> master  vote: state staged and hostable.
//   MigrateCommitMsg   master -> both    dest activates staged state; source
//                                        re-routes buffered input and retires.
//   MigrateAbortMsg    master -> both    dest discards staged state; source
//                                        resumes processing locally.
//
// Codec conventions follow runtime/messages.h: encode(ByteWriter&) appends
// into a caller-owned buffer, decode(ByteReader&) reads a non-owning frame
// view, WireFormatError is the only legal rejection, check_wire_count() runs
// before any reserve so hostile counts fail recoverably, and byte-fixpoint
// round-trips are enforced by the fuzz harnesses (fuzz/fuzz_checkpoint.cpp
// and friends).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/hot.h"
#include "common/ids.h"
#include "runtime/messages.h"

namespace swing::state {

using runtime::check_wire_count;
using runtime::InstanceInfo;

// One instance's serialized operator state plus the worker-level envelope
// (dedup window), stamped with a monotonically increasing epoch. A snapshot
// taken as the final step of a live migration carries the handoff target in
// `migrate_to` (invalid id for periodic checkpoints).
struct CheckpointMsg {
  InstanceInfo instance;
  std::uint64_t epoch = 0;
  std::int64_t taken_ns = 0;  // Sim time the worker serialized the state.
  DeviceId migrate_to{};      // Valid only for migration-final snapshots.
  Bytes state;

  friend bool operator==(const CheckpointMsg&, const CheckpointMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    instance.encode(w);
    w.write_u64(epoch);
    w.write_i64(taken_ns);
    w.write_u64(migrate_to.value());
    w.write_bytes(state);
  }
  static SWING_HOT CheckpointMsg decode(ByteReader& r) {
    CheckpointMsg msg;
    msg.instance = InstanceInfo::decode(r);
    msg.epoch = r.read_u64();
    msg.taken_ns = r.read_i64();
    msg.migrate_to = DeviceId{r.read_u64()};
    const auto body = r.read_span();
    msg.state.assign(body.begin(), body.end());
    return msg;
  }
};

// Redeploy-with-state. `instance` names the SAME InstanceId the snapshot was
// taken under but with the new hosting device — keeping the id stable is what
// lets id-partitioned fan-in and the retransmission path find the revived
// instance without a membership change. `downstreams` seeds the instance's
// routing table exactly as a DeployMsg assignment would.
struct RestoreMsg {
  InstanceInfo instance;
  std::uint64_t epoch = 0;
  std::int64_t sent_ns = 0;  // Sim time the master dispatched the restore.
  Bytes state;
  std::vector<InstanceInfo> downstreams;

  friend bool operator==(const RestoreMsg&, const RestoreMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    instance.encode(w);
    w.write_u64(epoch);
    w.write_i64(sent_ns);
    w.write_bytes(state);
    w.write_varint(downstreams.size());
    for (const auto& d : downstreams) d.encode(w);
  }
  static SWING_HOT RestoreMsg decode(ByteReader& r) {
    RestoreMsg msg;
    msg.instance = InstanceInfo::decode(r);
    msg.epoch = r.read_u64();
    msg.sent_ns = r.read_i64();
    const auto body = r.read_span();
    msg.state.assign(body.begin(), body.end());
    const auto n = r.read_varint();
    check_wire_count(n, r, 24, "restore downstream");
    msg.downstreams.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      msg.downstreams.push_back(InstanceInfo::decode(r));
    }
    return msg;
  }
};

// Incremental checkpoint record: the operator's journal of mutations since
// the full snapshot at `base_epoch`, wrapped in the same worker envelope
// (newly remembered dedup ids) as a full snapshot. Epochs are contiguous:
// a delta at epoch E chains onto the record at E-1, and the chain bottoms
// out at the full snapshot whose epoch equals `base_epoch`.
struct DeltaMsg {
  InstanceInfo instance;
  std::uint64_t epoch = 0;
  std::uint64_t base_epoch = 0;  // Epoch of the full snapshot this chains on.
  std::int64_t taken_ns = 0;     // Sim time the worker serialized the delta.
  Bytes delta;

  friend bool operator==(const DeltaMsg&, const DeltaMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    instance.encode(w);
    w.write_u64(epoch);
    w.write_u64(base_epoch);
    w.write_i64(taken_ns);
    w.write_bytes(delta);
  }
  static SWING_HOT DeltaMsg decode(ByteReader& r) {
    DeltaMsg msg;
    msg.instance = InstanceInfo::decode(r);
    msg.epoch = r.read_u64();
    msg.base_epoch = r.read_u64();
    msg.taken_ns = r.read_i64();
    const auto body = r.read_span();
    msg.delta.assign(body.begin(), body.end());
    return msg;
  }
};

// Master -> peer relay of one stored checkpoint record, so a copy of every
// instance's chain survives master state loss. `kind` distinguishes full
// snapshots (which reset the replica chain) from deltas (which extend it).
struct ReplicateMsg {
  enum class Kind : std::uint8_t { kFull = 0, kDelta = 1 };

  InstanceInfo instance;  // Where the instance currently lives (NOT the peer).
  Kind kind = Kind::kFull;
  std::uint64_t epoch = 0;
  std::uint64_t base_epoch = 0;  // Meaningful for deltas; == epoch for fulls.
  std::int64_t sent_ns = 0;
  Bytes state;

  friend bool operator==(const ReplicateMsg&, const ReplicateMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    instance.encode(w);
    w.write_u8(static_cast<std::uint8_t>(kind));
    w.write_u64(epoch);
    w.write_u64(base_epoch);
    w.write_i64(sent_ns);
    w.write_bytes(state);
  }
  static SWING_HOT ReplicateMsg decode(ByteReader& r) {
    ReplicateMsg msg;
    msg.instance = InstanceInfo::decode(r);
    const auto k = r.read_u8();
    if (k > static_cast<std::uint8_t>(Kind::kDelta)) {
      throw WireFormatError("replicate kind " + std::to_string(k) +
                            " out of range");
    }
    msg.kind = static_cast<Kind>(k);
    msg.epoch = r.read_u64();
    msg.base_epoch = r.read_u64();
    msg.sent_ns = r.read_i64();
    const auto body = r.read_span();
    msg.state.assign(body.begin(), body.end());
    return msg;
  }
};

// Master -> peer fallback restore after master state loss: the peer holds
// the replica chain locally, so this message carries only identity and
// routing — the peer reconstructs the state bytes itself and activates the
// instance on its own device. If the peer no longer holds a usable chain,
// the instance's queued tuples are dropped as kStateLost.
struct ReplicaRestoreMsg {
  InstanceInfo instance;  // The FAILED placement (id + op + dead device).
  std::int64_t sent_ns = 0;
  std::vector<InstanceInfo> downstreams;

  friend bool operator==(const ReplicaRestoreMsg&,
                         const ReplicaRestoreMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    instance.encode(w);
    w.write_i64(sent_ns);
    w.write_varint(downstreams.size());
    for (const auto& d : downstreams) d.encode(w);
  }
  static SWING_HOT ReplicaRestoreMsg decode(ByteReader& r) {
    ReplicaRestoreMsg msg;
    msg.instance = InstanceInfo::decode(r);
    msg.sent_ns = r.read_i64();
    const auto n = r.read_varint();
    check_wire_count(n, r, 24, "replica restore downstream");
    msg.downstreams.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      msg.downstreams.push_back(InstanceInfo::decode(r));
    }
    return msg;
  }
};

// 2PC PREPARE, master -> source host: quiesce the named instance (new input
// is buffered, NOT forwarded — an ABORT must be able to resume in place),
// drain its compute queue, then transfer the final snapshot to `to_device`
// (MigrateStateMsg) and to the master (CheckpointMsg). Wire-compatible with
// the pre-2PC MigrateMsg plus a leading transaction id.
struct MigratePrepareMsg {
  std::uint64_t txn = 0;
  InstanceId instance;
  DeviceId to_device;

  friend bool operator==(const MigratePrepareMsg&,
                         const MigratePrepareMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(txn);
    w.write_u64(instance.value());
    w.write_u64(to_device.value());
  }
  static SWING_HOT MigratePrepareMsg decode(ByteReader& r) {
    MigratePrepareMsg msg;
    msg.txn = r.read_u64();
    msg.instance = InstanceId{r.read_u64()};
    msg.to_device = DeviceId{r.read_u64()};
    return msg;
  }
};

// 2PC state transfer, source -> destination: the final snapshot, staged
// inert at the destination until the coordinator's COMMIT (or discarded on
// ABORT). `instance.device` already names the destination.
struct MigrateStateMsg {
  std::uint64_t txn = 0;
  InstanceInfo instance;
  std::uint64_t epoch = 0;
  std::int64_t sent_ns = 0;
  Bytes state;

  friend bool operator==(const MigrateStateMsg&,
                         const MigrateStateMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(txn);
    instance.encode(w);
    w.write_u64(epoch);
    w.write_i64(sent_ns);
    w.write_bytes(state);
  }
  static SWING_HOT MigrateStateMsg decode(ByteReader& r) {
    MigrateStateMsg msg;
    msg.txn = r.read_u64();
    msg.instance = InstanceInfo::decode(r);
    msg.epoch = r.read_u64();
    msg.sent_ns = r.read_i64();
    const auto body = r.read_span();
    msg.state.assign(body.begin(), body.end());
    return msg;
  }
};

// 2PC vote, destination -> master: the transferred state is staged and the
// destination can host the instance (`ok`), or the transfer must abort.
struct MigrateAckMsg {
  std::uint64_t txn = 0;
  InstanceId instance;
  bool ok = false;

  friend bool operator==(const MigrateAckMsg&, const MigrateAckMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(txn);
    w.write_u64(instance.value());
    w.write_u8(ok ? 1 : 0);
  }
  static SWING_HOT MigrateAckMsg decode(ByteReader& r) {
    MigrateAckMsg msg;
    msg.txn = r.read_u64();
    msg.instance = InstanceId{r.read_u64()};
    msg.ok = r.read_u8() != 0;
    return msg;
  }
};

// 2PC COMMIT, master -> source and destination. The destination activates
// its staged state using `downstreams` as the routing seed; the source
// installs a forward to `instance.device`, flushes input buffered during
// PREPARE, and retires its copy. Idempotent: a host that has already acted
// on (or never saw) the transaction ignores the message.
struct MigrateCommitMsg {
  std::uint64_t txn = 0;
  InstanceInfo instance;  // The committed placement (id + op + destination).
  std::vector<InstanceInfo> downstreams;

  friend bool operator==(const MigrateCommitMsg&,
                         const MigrateCommitMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(txn);
    instance.encode(w);
    w.write_varint(downstreams.size());
    for (const auto& d : downstreams) d.encode(w);
  }
  static SWING_HOT MigrateCommitMsg decode(ByteReader& r) {
    MigrateCommitMsg msg;
    msg.txn = r.read_u64();
    msg.instance = InstanceInfo::decode(r);
    const auto n = r.read_varint();
    check_wire_count(n, r, 24, "migrate commit downstream");
    msg.downstreams.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      msg.downstreams.push_back(InstanceInfo::decode(r));
    }
    return msg;
  }
};

// 2PC ABORT, master -> source and destination: the destination discards the
// staged state, the source resumes processing (including input buffered
// during PREPARE) in place. Idempotent, same as COMMIT.
struct MigrateAbortMsg {
  std::uint64_t txn = 0;
  InstanceId instance;

  friend bool operator==(const MigrateAbortMsg&,
                         const MigrateAbortMsg&) = default;

  SWING_HOT void encode(ByteWriter& w) const {
    w.write_u64(txn);
    w.write_u64(instance.value());
  }
  static SWING_HOT MigrateAbortMsg decode(ByteReader& r) {
    MigrateAbortMsg msg;
    msg.txn = r.read_u64();
    msg.instance = InstanceId{r.read_u64()};
    return msg;
  }
};

}  // namespace swing::state
