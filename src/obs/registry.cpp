#include "obs/registry.h"

#include <algorithm>

#include "common/check.h"

namespace swing::obs {

// `labels` arrives by value on purpose: normalisation sorts it in place,
// so the copy is the working buffer, not an oversight.
// The encoded key it returns is the lookup handle callers store; building
// that string is the function's one job, hence the allow on the signature.
std::string Registry::encode_key(const std::string& name,  // swing-lint: allow(heavy-copy)
                                 Labels labels) {  // swing-lint: allow(heavy-copy)
  std::sort(labels.begin(), labels.end());
  std::size_t extra = 2;  // braces
  for (const auto& [k, v] : labels) extra += k.size() + v.size() + 2;
  std::string key = name;
  if (!labels.empty()) {
    key.reserve(key.size() + extra);
    key.push_back('{');
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) key.push_back(',');
      key += labels[i].first;
      key.push_back('=');
      key += labels[i].second;
    }
    key.push_back('}');
  }
  return key;
}

Registry::Entry& Registry::entry(const std::string& name,
                                 const Labels& labels) {
  return entries_[encode_key(name, labels)];
}

const Registry::Entry* Registry::find(const std::string& name,
                                      const Labels& labels) const {
  const auto it = entries_.find(encode_key(name, labels));
  return it == entries_.end() ? nullptr : &it->second;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  MutexLock lock(mu_);
  Entry& e = entry(name, labels);
  SWING_CHECK(!e.gauge && !e.histogram)
      << "metric '" << name << "' already registered as a different kind";
  // One-time per instrument: call sites cache the returned reference and
  // never come back here on the hot path (unique_ptr keeps it stable).
  if (!e.counter) e.counter = std::make_unique<Counter>();  // swing-lint: allow(hotpath-alloc)
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  MutexLock lock(mu_);
  Entry& e = entry(name, labels);
  SWING_CHECK(!e.counter && !e.histogram)
      << "metric '" << name << "' already registered as a different kind";
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels) {
  MutexLock lock(mu_);
  Entry& e = entry(name, labels);
  SWING_CHECK(!e.counter && !e.gauge)
      << "metric '" << name << "' already registered as a different kind";
  if (!e.histogram) e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

const Counter* Registry::find_counter(const std::string& name,
                                      const Labels& labels) const {
  MutexLock lock(mu_);
  const Entry* e = find(name, labels);
  return e ? e->counter.get() : nullptr;
}

const Gauge* Registry::find_gauge(const std::string& name,
                                  const Labels& labels) const {
  MutexLock lock(mu_);
  const Entry* e = find(name, labels);
  return e ? e->gauge.get() : nullptr;
}

const Histogram* Registry::find_histogram(const std::string& name,
                                          const Labels& labels) const {
  MutexLock lock(mu_);
  const Entry* e = find(name, labels);
  return e ? e->histogram.get() : nullptr;
}

std::uint64_t Registry::counter_total(const std::string& name) const {
  MutexLock lock(mu_);
  std::uint64_t total = 0;
  // Encoded keys sort name-first, so the name's metrics are contiguous:
  // `name` exactly, or `name{...}`.
  for (auto it = entries_.lower_bound(name); it != entries_.end(); ++it) {
    const std::string& key = it->first;
    if (key.rfind(name, 0) != 0) break;
    if (key.size() != name.size() && key[name.size()] != '{') continue;
    if (it->second.counter) total += it->second.counter->value();
  }
  return total;
}

Json Registry::snapshot() const {
  MutexLock lock(mu_);
  Json out = Json::object();
  for (const auto& [key, e] : entries_) {
    if (e.counter) {
      out[key] = e.counter->value();
    } else if (e.gauge) {
      out[key] = e.gauge->value();
    } else if (e.histogram) {
      Json h = Json::object();
      h["count"] = e.histogram->count();
      h["mean"] = e.histogram->mean();
      h["min"] = e.histogram->min();
      h["p50"] = e.histogram->p50();
      h["p95"] = e.histogram->p95();
      h["p99"] = e.histogram->p99();
      h["max"] = e.histogram->max();
      out[key] = std::move(h);
    }
  }
  return out;
}

}  // namespace swing::obs
