#include "obs/bench_report.h"

#include <fstream>

namespace swing::obs {

#ifndef SWING_GIT_DESCRIBE
#define SWING_GIT_DESCRIBE "unknown"
#endif

const char* build_git_describe() { return SWING_GIT_DESCRIBE; }

BenchReport::BenchReport(std::string bench_name, std::uint64_t seed)
    : name_(std::move(bench_name)), root_(Json::object()) {
  root_["bench"] = name_;
  root_["git"] = build_git_describe();
  root_["seed"] = seed;
  root_["config"] = Json::object();
  root_["results"] = Json::array();
}

void BenchReport::add_stats(Json& row, const std::string& prefix,
                            const SampleStats& stats) {
  row[prefix + "_count"] = std::uint64_t(stats.count());
  row[prefix + "_min"] = stats.min();
  row[prefix + "_mean"] = stats.mean();
  row[prefix + "_p50"] = stats.quantile(0.50);
  row[prefix + "_p95"] = stats.quantile(0.95);
  row[prefix + "_p99"] = stats.quantile(0.99);
  row[prefix + "_max"] = stats.max();
  row[prefix + "_stddev"] = stats.stddev();
}

bool BenchReport::write(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  out << to_json() << '\n';
  return bool(out);
}

}  // namespace swing::obs
