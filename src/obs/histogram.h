// HDR-style latency histogram: log-linear buckets, bounded relative error.
//
// Values (milliseconds, or any non-negative unit) are recorded into integer
// sub-microsecond buckets arranged as 32 linear sub-buckets per power of
// two, the classic HdrHistogram layout: quantile queries are O(buckets)
// with ~3% worst-case relative error while recording stays O(1) with no
// allocation on the hot path after warm-up. Exact count/sum/min/max are
// tracked alongside so mean and extremes are precise.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace swing::obs {

class Histogram {
 public:
  void record(double value) {
    if (!(value >= 0.0) || !std::isfinite(value)) value = 0.0;
    ++count_;
    sum_ += value;
    if (value < min_ || count_ == 1) min_ = value;
    if (value > max_ || count_ == 1) max_ = value;
    const std::size_t idx = bucket_index(to_units(value));
    if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
    ++buckets_[idx];
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / double(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

  // Bucket-resolution quantile, q in [0, 1]. Returns the representative
  // (midpoint) value of the bucket containing the q-th ranked sample,
  // clamped to the exact observed [min, max].
  [[nodiscard]] double quantile(double q) const {
    SWING_DCHECK(q >= 0.0 && q <= 1.0) << "quantile " << q;
    if (count_ == 0) return 0.0;
    const auto target = std::uint64_t(std::ceil(q * double(count_)));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      cumulative += buckets_[i];
      if (cumulative >= target && buckets_[i] > 0) {
        const double v = from_units(bucket_midpoint(i));
        return v < min_ ? min_ : (v > max_ ? max_ : v);
      }
    }
    return max_;
  }

  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  void reset() { *this = Histogram{}; }

 private:
  // 32 linear sub-buckets per octave.
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  // Unit scale: 1/1024 of the recorded unit (sub-milliunit resolution for
  // latencies in ms), power of two so the scaling is exact.
  static constexpr double kScale = 1024.0;

  static std::uint64_t to_units(double value) {
    const double scaled = value * kScale;
    constexpr double kCeiling = 9.0e18;
    return scaled >= kCeiling ? std::uint64_t(kCeiling)
                              : std::uint64_t(scaled);
  }
  static double from_units(double units) { return units / kScale; }

  static std::size_t bucket_index(std::uint64_t u) {
    if (u < kSub) return std::size_t(u);
    const int top = 63 - std::countl_zero(u);  // u >= 32, so top >= 5.
    const int shift = top - kSubBits;
    const auto sub = std::size_t((u >> shift) - kSub);  // [0, 32).
    return kSub + std::size_t(shift) * kSub + sub;
  }

  // Midpoint of the value range covered by bucket i, in units.
  static double bucket_midpoint(std::size_t i) {
    if (i < kSub) return double(i);
    const std::size_t shift = (i - kSub) / kSub;
    const std::size_t sub = (i - kSub) % kSub;
    const double lo = double((kSub + sub) << shift);
    const double width = double(std::uint64_t{1} << shift);
    return lo + width / 2.0;
  }

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> buckets_;
};

}  // namespace swing::obs
