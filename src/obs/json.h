// Minimal deterministic JSON document model for the observability plane.
//
// Every machine-readable artifact this repo emits (metrics snapshots,
// Chrome trace exports, BENCH_*.json reports) is built through this type so
// the output is byte-identical across same-seed runs: objects preserve
// insertion order, doubles print via std::to_chars shortest round-trip, and
// there is no locale or wall-clock dependence anywhere. The parser exists
// for the test/validation side (trace-format checks, schema checks) — it is
// not a general-purpose JSON library and keeps to the subset we emit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace swing::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  // Insertion-ordered object; keys are unique (set replaces).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  Json(bool b) : value_(b) {}
  Json(int v) : value_(std::int64_t{v}) {}
  Json(std::int64_t v) : value_(v) {}
  Json(std::uint64_t v) : value_(v) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string{s}) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }

  // --- Type queries -----------------------------------------------------

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<std::int64_t>(value_) ||
           std::holds_alternative<std::uint64_t>(value_) ||
           std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(value_);
  }

  // --- Accessors (tests / validators) -----------------------------------

  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(value_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(value_);
  }

  // Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const {
    return find(key) != nullptr;
  }

  // --- Builders ----------------------------------------------------------

  // Object element access: inserts a null member on first use. The Json must
  // be (or become) an object.
  Json& operator[](std::string_view key);
  // Appends to an array (the Json must be, or becomes, an array).
  Json& push_back(Json element);

  [[nodiscard]] std::size_t size() const;

  // --- Serialization ------------------------------------------------------

  // Compact deterministic encoding when indent < 0; pretty-printed with the
  // given indent width otherwise.
  [[nodiscard]] std::string dump(int indent = -1) const;

  // Strict parse of a complete JSON document; nullopt on any error.
  static std::optional<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      value_ = nullptr;
};

// Deterministic shortest-round-trip rendering of a double (std::to_chars).
// NaN/inf are not representable in JSON and render as null.
void append_json_number(std::string& out, double v);

}  // namespace swing::obs
