// The unified metrics registry: every runtime subsystem reports here.
//
// A metric is identified by {name, labels}: asking twice for the same key
// returns the same instrument, so call sites cache a reference once and hit
// a plain integer/double on the hot path. Three instrument kinds:
//
//   Counter    monotone uint64 (tuples routed, messages dropped, ...)
//   Gauge      last-written double (airtime, queue depth, ...)
//   Histogram  HDR-style latency distribution with p50/p95/p99/max
//
// The registry is a passive observation plane — framework behaviour never
// reads it — and iteration order is deterministic (sorted by encoded key)
// so snapshots of same-seed runs are byte-identical. The registration map
// is mutex-protected (clang -Wthread-safety proves the discipline; see
// common/thread_annotations.h): the simulation itself is single-threaded,
// but snapshot pollers and trace exporters may read from outside the
// event loop. The instruments themselves stay plain — hot-path inc()/set()
// calls go through cached references and are only ever touched from the
// simulation thread.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/histogram.h"
#include "obs/json.h"

namespace swing::obs {

// Label set for one metric, e.g. {{"reason", "stale-ttl"}}. Order given by
// the caller is irrelevant: keys are normalised (sorted) on registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Each returns the unique instrument for {name, labels}, creating it on
  // first use. Requesting an existing key as a different kind is a contract
  // violation (SWING_CHECK).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mu_);
    return entries_.size();
  }

  // Read-side lookups (queries/tests); nullptr when the key was never
  // registered or holds a different kind.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name, const Labels& labels = {}) const;

  // Sum of every counter sharing `name`, across all label sets.
  [[nodiscard]] std::uint64_t counter_total(const std::string& name) const;

  // Deterministic full snapshot, keyed "name{k=v,...}"; histograms expand
  // to {count, mean, min, p50, p95, p99, max}.
  [[nodiscard]] Json snapshot() const;

  // Canonical encoded key, e.g. `tuples_dropped{reason=stale-ttl}`.
  static std::string encode_key(const std::string& name, Labels labels);

 private:
  struct Entry {
    // Exactly one is set; unique_ptr keeps instrument addresses stable
    // across map rehashes so cached references never dangle.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(const std::string& name, const Labels& labels)
      SWING_REQUIRES(mu_);
  [[nodiscard]] const Entry* find(const std::string& name,
                                  const Labels& labels) const
      SWING_REQUIRES(mu_);

  mutable Mutex mu_;
  // Instrument addresses (behind unique_ptr) are stable, so references
  // returned by counter()/gauge()/histogram() outlive the lock safely.
  std::map<std::string, Entry> entries_ SWING_GUARDED_BY(mu_);
};

}  // namespace swing::obs
