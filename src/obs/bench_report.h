// Machine-readable bench telemetry: the BENCH_<name>.json report.
//
// Every bench binary emits one of these next to its ASCII tables so the
// repo accumulates a perf trajectory that optimisation PRs are judged
// against. The schema (validated by tools/check_bench_json.py and the CI
// bench-smoke job):
//
//   {
//     "bench":   "fig04_policies",          // binary name
//     "git":     "<git describe at build>", // provenance of the numbers
//     "seed":    42,                        // RNG seed of the run
//     "config":  { ... },                   // knobs that shaped the run
//     "results": [ {..}, {..} ],            // one object per table row
//     "summary": { ... }                    // optional headline scalars
//   }
//
// Reports are fully deterministic: same binary + same seed + same flags =>
// byte-identical bytes (no timestamps, no environment leakage), which is
// what makes them diffable across PRs.
#pragma once

#include <string>

#include "common/stats.h"
#include "obs/json.h"

namespace swing::obs {

// `git describe` captured at configure time; "unknown" outside a git
// checkout.
[[nodiscard]] const char* build_git_describe();

class BenchReport {
 public:
  BenchReport(std::string bench_name, std::uint64_t seed);

  [[nodiscard]] const std::string& name() const { return name_; }

  // Run configuration (flags, durations, topology knobs...).
  void set_config(const std::string& key, Json value) {
    root_["config"][key] = std::move(value);
  }

  // Appends a result row; callers fill in its fields.
  Json& add_result() { return root_["results"].push_back(Json::object()); }

  // Headline scalars (speedups, totals).
  void set_summary(const std::string& key, Json value) {
    root_["summary"][key] = std::move(value);
  }

  // Expands `stats` into <prefix>_{count,min,mean,p50,p95,p99,max,stddev}
  // fields on `row` — the standard latency-percentile block.
  static void add_stats(Json& row, const std::string& prefix,
                        const SampleStats& stats);

  [[nodiscard]] std::string to_json() const { return root_.dump(1); }

  // Writes the report (with trailing newline); returns false on I/O error.
  bool write(const std::string& path) const;

 private:
  std::string name_;
  Json root_;
};

}  // namespace swing::obs
