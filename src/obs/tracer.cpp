#include "obs/tracer.h"

#include <fstream>

namespace swing::obs {

const char* trace_phase_name(TracePhase phase) {
  switch (phase) {
    case TracePhase::kEmit:
      return "emit";
    case TracePhase::kRoute:
      return "route";
    case TracePhase::kTx:
      return "tx";
    case TracePhase::kQueue:
      return "queue";
    case TracePhase::kProcess:
      return "process";
    case TracePhase::kAck:
      return "ack";
    case TracePhase::kRelease:
      return "reorder-release";
    case TracePhase::kDisplay:
      return "display";
    case TracePhase::kSnapshot:
      return "snapshot";
    case TracePhase::kTransfer:
      return "state-transfer";
    case TracePhase::kRestoreState:
      return "restore";
  }
  return "unknown";
}

void Tracer::span(TracePhase phase, TupleId tuple, DeviceId track,
                  SimTime start, SimDuration duration) {
  if (!config_.enabled) return;
  if (events_.size() >= config_.max_events) {
    ++dropped_;
    return;
  }
  tracks_.try_emplace(track.value(), tracks_.size());
  events_.push_back(Event{phase, true, tuple.value(), track.value(),
                          start.nanos(),
                          duration.nanos() < 0 ? 0 : duration.nanos()});
}

void Tracer::instant(TracePhase phase, TupleId tuple, DeviceId track,
                     SimTime at) {
  if (!config_.enabled) return;
  if (events_.size() >= config_.max_events) {
    ++dropped_;
    return;
  }
  tracks_.try_emplace(track.value(), tracks_.size());
  events_.push_back(
      Event{phase, false, tuple.value(), track.value(), at.nanos(), 0});
}

Json Tracer::chrome_trace() const {
  Json root = Json::object();
  Json& trace_events = root["traceEvents"];
  trace_events = Json::array();

  // Track metadata: one process for the swarm, one named thread per device.
  {
    Json meta = Json::object();
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = std::int64_t{1};
    meta["tid"] = std::int64_t{0};
    meta["args"]["name"] = "swing swarm";
    trace_events.push_back(std::move(meta));
  }
  for (const auto& [device, order] : tracks_) {
    Json meta = Json::object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = std::int64_t{1};
    meta["tid"] = std::int64_t(device);
    meta["args"]["name"] = "device " + std::to_string(device);
    trace_events.push_back(std::move(meta));
    // Keep device tracks listed in device order in the UI.
    Json sort = Json::object();
    sort["name"] = "thread_sort_index";
    sort["ph"] = "M";
    sort["pid"] = std::int64_t{1};
    sort["tid"] = std::int64_t(device);
    sort["args"]["sort_index"] = std::int64_t(order);
    trace_events.push_back(std::move(sort));
  }

  for (const Event& e : events_) {
    Json ev = Json::object();
    ev["name"] = trace_phase_name(e.phase);
    ev["cat"] = "tuple";
    ev["ph"] = e.complete ? "X" : "i";
    // Chrome trace timestamps are microseconds; sub-microsecond precision
    // survives as a fractional part.
    ev["ts"] = double(e.ts_ns) / 1000.0;
    if (e.complete) {
      ev["dur"] = double(e.dur_ns) / 1000.0;
    } else {
      ev["s"] = "t";  // Thread-scoped instant.
    }
    ev["pid"] = std::int64_t{1};
    ev["tid"] = std::int64_t(e.track);
    ev["args"]["tuple"] = e.tuple;
    trace_events.push_back(std::move(ev));
  }

  root["displayTimeUnit"] = "ms";
  if (dropped_ > 0) {
    root["droppedEvents"] = std::uint64_t(dropped_);
  }
  return root;
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  write_chrome_trace(out);
  return bool(out);
}

}  // namespace swing::obs
