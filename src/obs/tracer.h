// Hop-level tuple tracing: the tuple lifecycle as Chrome trace events.
//
// Every phase a tuple passes through — source-emit, route-decision,
// transmission, compute-queue wait, processing, ACK, reorder-release,
// display — is recorded as a span or instant on the simulation clock and
// exported as Chrome trace-event JSON (the `{"traceEvents": [...]}` format)
// that loads directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. Each device is one track (tid), so a tuple's journey
// reads as a staircase across the devices it visited.
//
// Tracing the full tuple rate of a long run is expensive; the sampling knob
// keeps full-rate runs cheap: only tuples whose id falls on the sampling
// stride are recorded, and a hard event cap bounds memory regardless.
// Like the metrics registry and the audit ledger, the tracer is a passive
// observer: framework behaviour never reads it.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "obs/json.h"

namespace swing::obs {

// One lifecycle phase of a tuple; span names in the exported trace.
enum class TracePhase : std::uint8_t {
  kEmit = 0,     // Source generated the tuple (instant).
  kRoute = 1,    // Swarm manager picked a downstream instance (instant).
  kTx = 2,       // Wire transmission, send timestamp -> receive (span).
  kQueue = 3,    // Waiting in the receiving device's compute queue (span).
  kProcess = 4,  // Function-unit execution (span).
  kAck = 5,      // Upstream received the ACK (instant).
  kRelease = 6,  // Reorder buffer released the tuple (instant).
  kDisplay = 7,  // Sink played the tuple (instant).
  // swing-state checkpoint/migration lifecycle. The "tuple" id on these
  // events is the instance id being snapshotted/moved, not a data tuple.
  kSnapshot = 8,      // Worker serialized an instance's state (instant).
  kTransfer = 9,      // Snapshot in flight, taken -> stored (span).
  kRestoreState = 10,  // Target worker applied a restored snapshot (instant).
};

[[nodiscard]] const char* trace_phase_name(TracePhase phase);

struct TraceConfig {
  bool enabled = false;
  // Record only tuples with id % sample_every == 0. 1 = trace everything.
  std::uint64_t sample_every = 1;
  // Hard memory bound; events beyond it are counted, not stored.
  std::size_t max_events = 1u << 20;
};

class Tracer {
 public:
  explicit Tracer(TraceConfig config = {}) : config_(config) {
    if (config_.sample_every == 0) config_.sample_every = 1;
  }

  [[nodiscard]] bool enabled() const { return config_.enabled; }

  // Whether this tuple's lifecycle is being recorded. The fast pre-check
  // call sites gate on before doing any other trace work.
  [[nodiscard]] bool sampled(TupleId id) const {
    return config_.enabled && id.valid() &&
           id.value() % config_.sample_every == 0;
  }

  // A phase with duration (Chrome "X" complete event).
  void span(TracePhase phase, TupleId tuple, DeviceId track, SimTime start,
            SimDuration duration);
  // A point-in-time phase (Chrome "i" instant event, thread scope).
  void instant(TracePhase phase, TupleId tuple, DeviceId track, SimTime at);

  [[nodiscard]] std::size_t events() const { return events_.size(); }
  [[nodiscard]] std::size_t dropped_events() const { return dropped_; }

  // --- Export -----------------------------------------------------------

  // Chrome trace-event JSON: {"traceEvents": [...], ...}. Events are
  // emitted in recording order (sim-time order per device), preceded by
  // process/thread metadata naming each device track.
  [[nodiscard]] Json chrome_trace() const;
  [[nodiscard]] std::string chrome_trace_json() const {
    return chrome_trace().dump(1);
  }
  void write_chrome_trace(std::ostream& os) const {
    os << chrome_trace_json() << '\n';
  }
  // Writes to `path`; returns false (and records nothing) on I/O failure.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  struct Event {
    TracePhase phase;
    bool complete;  // X (span) vs i (instant).
    std::uint64_t tuple;
    std::uint64_t track;
    std::int64_t ts_ns;
    std::int64_t dur_ns;
  };

  TraceConfig config_;
  std::vector<Event> events_;
  // Devices seen, in first-seen order (value = order index), for stable
  // thread-name metadata.
  std::map<std::uint64_t, std::size_t> tracks_;
  std::size_t dropped_ = 0;
};

}  // namespace swing::obs
