#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace swing::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(std::size_t(indent) * std::size_t(depth), ' ');
}

}  // namespace

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integral doubles print without an exponent or trailing ".0" so counters
  // surfaced as doubles stay readable; everything else is shortest
  // round-trip, which is deterministic for a given value.
  if (v == std::int64_t(v) && std::abs(v) < 1e15) {
    char buf[32];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), std::int64_t(v));
    SWING_CHECK(ec == std::errc{});
    out.append(buf, ptr);
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  SWING_CHECK(ec == std::errc{});
  out.append(buf, ptr);
}

double Json::as_double() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return double(*i);
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) return double(*u);
  return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    return std::int64_t(*u);
  }
  if (const auto* d = std::get_if<double>(&value_)) return std::int64_t(*d);
  return std::get<std::int64_t>(value_);
}

const Json* Json::find(std::string_view key) const {
  const auto* obj = std::get_if<Object>(&value_);
  if (obj == nullptr) return nullptr;
  for (const auto& [k, v] : *obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) value_ = Object{};
  auto& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) return v;
  }
  obj.emplace_back(std::string{key}, Json{});
  return obj.back().second;
}

Json& Json::push_back(Json element) {
  if (is_null()) value_ = Array{};
  auto& arr = std::get<Array>(value_);
  arr.push_back(std::move(element));
  return arr.back();
}

std::size_t Json::size() const {
  if (const auto* arr = std::get_if<Array>(&value_)) return arr->size();
  if (const auto* obj = std::get_if<Object>(&value_)) return obj->size();
  return 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* n = std::get_if<std::int64_t>(&value_)) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), *n);
    SWING_CHECK(ec == std::errc{});
    out.append(buf, ptr);
  } else if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), *u);
    SWING_CHECK(ec == std::errc{});
    out.append(buf, ptr);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    append_json_number(out, *d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    append_escaped(out, *s);
  } else if (const auto* arr = std::get_if<Array>(&value_)) {
    if (arr->empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < arr->size(); ++i) {
      if (i > 0) out.push_back(',');
      append_newline_indent(out, indent, depth + 1);
      (*arr)[i].dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& obj = std::get<Object>(value_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i > 0) out.push_back(',');
      append_newline_indent(out, indent, depth + 1);
      append_escaped(out, obj[i].first);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      obj[i].second.dump_to(out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: strict recursive descent over the emitted subset.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // Trailing garbage.
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        auto s = string();
        if (!s) return std::nullopt;
        return Json{std::move(*s)};
      }
      case 't':
        return literal("true") ? std::optional<Json>{Json{true}}
                               : std::nullopt;
      case 'f':
        return literal("false") ? std::optional<Json>{Json{false}}
                                : std::nullopt;
      case 'n':
        return literal("null") ? std::optional<Json>{Json{}} : std::nullopt;
      default:
        return number();
    }
  }

  std::optional<Json> object() {
    if (!eat('{')) return std::nullopt;
    Json obj = Json::object();
    skip_ws();
    if (eat('}')) return obj;
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      auto v = value();
      if (!v) return std::nullopt;
      obj[*key] = std::move(*v);
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return obj;
      return std::nullopt;
    }
  }

  std::optional<Json> array() {
    if (!eat('[')) return std::nullopt;
    Json arr = Json::array();
    skip_ws();
    if (eat(']')) return arr;
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return arr;
      return std::nullopt;
    }
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            const auto [ptr, ec] = std::from_chars(
                text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
            if (ec != std::errc{} || ptr != text_.data() + pos_ + 4) {
              return std::nullopt;
            }
            pos_ += 4;
            // We only emit \u00xx control escapes; decode the BMP subset as
            // a single byte when it fits, else substitute '?'.
            out.push_back(code < 0x80 ? char(code) : '?');
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // Unterminated.
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) return std::nullopt;
    if (integral) {
      std::int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return Json{v};
      }
      // Fall through for out-of-range integers.
    }
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      return std::nullopt;
    }
    return Json{d};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser{text}.run();
}

}  // namespace swing::obs
