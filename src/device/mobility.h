// User mobility: moves a device's position (and hence RSSI) over time.
//
// The paper's mobility experiment (§VI-C, Fig. 10) walks a user between
// discrete signal zones; Walker supports both smooth straight-line walks at
// pedestrian speed and scheduled zone jumps (RSSI overrides), updating the
// medium as it goes.
#pragma once

#include <functional>
#include <optional>

#include "common/ids.h"
#include "common/time.h"
#include "net/medium.h"
#include "sim/simulator.h"

namespace swing::device {

class Walker {
 public:
  Walker(Simulator& sim, net::Medium& medium, DeviceId id,
         SimDuration update_period = millis(100))
      : sim_(sim), medium_(medium), id_(id), period_(update_period) {}

  Walker(const Walker&) = delete;
  Walker& operator=(const Walker&) = delete;

  // Walks in a straight line from the current position to `dest` at
  // `speed_mps`, updating the medium every update period. Any RSSI override
  // is cleared first so position drives signal again. `arrived` (optional)
  // fires on arrival.
  void walk_to(net::Position dest, double speed_mps,
               std::function<void()> arrived = nullptr);

  // Instantly pins the device's RSSI (paper-style zone placement).
  void jump_to_rssi(double rssi_dbm) {
    cancel_walk();
    medium_.set_rssi_override(id_, rssi_dbm);
  }

  // Schedules a zone jump at an absolute simulation time.
  void jump_to_rssi_at(SimTime when, double rssi_dbm) {
    sim_.schedule_at(when, [this, rssi_dbm] { jump_to_rssi(rssi_dbm); });
  }

  [[nodiscard]] bool walking() const { return walking_; }

  void cancel_walk() {
    walking_ = false;
    sim_.cancel(pending_);
  }

 private:
  void step(net::Position dest, double speed_mps,
            std::function<void()> arrived);

  Simulator& sim_;
  net::Medium& medium_;
  DeviceId id_;
  SimDuration period_;
  net::Position pos_{};
  bool walking_ = false;
  EventId pending_{};
};

}  // namespace swing::device
