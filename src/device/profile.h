// Device hardware profiles.
//
// The paper's testbed uses nine heterogeneous handsets (§III, Table I). A
// profile captures what Swing's policies can observe about a device: how
// fast it processes function-unit work (perf_index, calibrated so the
// simulated face-recognition pipeline reproduces Table I's per-frame
// processing delays) and how much power its CPU and Wi-Fi radio draw
// (calibrated to the published battery behaviour of each model; exact watts
// are not load-bearing, only the ordering "newer devices are faster AND more
// energy-efficient per unit work", which drives the PRS-vs-LRS energy story
// in §VI-B2).
#pragma once

#include <string>
#include <vector>

namespace swing::device {

struct DeviceProfile {
  std::string name;   // Testbed letter, e.g. "B".
  std::string model;  // Marketing name, e.g. "Galaxy Nexus".

  // Relative single-thread compute speed; 1.0 = Galaxy Nexus (device B).
  // service_time = reference_cost / perf_index.
  double perf_index = 1.0;

  // Coefficient of variation of per-job service time (log-normal jitter).
  double service_cv = 0.10;

  // CPU power model: P = idle + utilisation * (peak - idle).
  double cpu_idle_w = 0.10;
  double cpu_peak_w = 1.4;

  // Wi-Fi power model: P = idle + airtime_fraction * (peak - idle).
  double wifi_idle_w = 0.02;
  double wifi_peak_w = 0.80;

  double battery_wh = 6.5;  // Typical phone battery (~1750 mAh @ 3.7 V).

  // Derived: work per joule at full tilt, for documentation/tests.
  [[nodiscard]] double efficiency() const {
    return perf_index / cpu_peak_w;
  }
};

// The paper's testbed devices A..I. perf_index values are calibrated from
// Table I: perf = 92.9 ms / processing_delay_ms (Galaxy Nexus B = 1.0).
//   B 92.9ms  C 121.6ms  D 167.7ms  E 463.4ms  F 166.4ms
//   G 82.2ms  H 71.3ms   I 78.0ms
const DeviceProfile& profile_A();  // Galaxy S3 (source/master in the paper).
const DeviceProfile& profile_B();  // Galaxy Nexus
const DeviceProfile& profile_C();  // Insignia7 tablet
const DeviceProfile& profile_D();  // NeuTab7 tablet
const DeviceProfile& profile_E();  // Galaxy S
const DeviceProfile& profile_F();  // DragonTouch tablet
const DeviceProfile& profile_G();  // Galaxy Nexus
const DeviceProfile& profile_H();  // LG Nexus 4
const DeviceProfile& profile_I();  // Galaxy Note 2

// All nine testbed profiles in order A..I.
const std::vector<DeviceProfile>& testbed_profiles();

// "Cloudlet mode" (paper §II): Swing can use a stationary Android VM on
// nearby server hardware as just another worker. Roughly an order of
// magnitude faster than the phones and mains-powered (energy effectively
// free for the swarm's battery budget, modelled as high draw it can
// afford). LRS adopts it through the ordinary worker path — no special
// casing anywhere in the framework.
const DeviceProfile& cloudlet_profile();

// Profile lookup by testbed letter ("A".."I"); throws std::out_of_range.
const DeviceProfile& profile_by_name(const std::string& name);

}  // namespace swing::device
