#include "device/device.h"

namespace swing::device {

void Device::execute(double ref_cost_ms, DoneFn done,
                     std::function<bool()> admit) {
  queue_.push_back(
      Job{ref_cost_ms, sim_.now(), std::move(done), std::move(admit)});
  if (!busy_) start_next();
}

void Device::start_next() {
  // Shed jobs whose admission check fails at service start (e.g. they went
  // stale while queued) without consuming CPU.
  while (!queue_.empty() && queue_.front().admit &&
         !queue_.front().admit()) {
    queue_.pop_front();
  }
  if (queue_.empty()) return;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  busy_ = true;

  const double nominal_ms =
      job.ref_cost_ms / profile_.perf_index * load_multiplier();
  const double actual_ms =
      rng_.lognormal_mean_cv(nominal_ms, profile_.service_cv);
  const SimDuration service = millis(actual_ms);
  const SimTime started = sim_.now();

  sim_.schedule_after(service, [this, job = std::move(job), started,
                                service]() mutable {
    busy_seconds_ += service.seconds();
    ++jobs_completed_;
    busy_ = false;
    const JobTiming timing{job.submitted, started, sim_.now()};
    // Start the next job before the completion callback so a callback that
    // re-submits work observes a consistent queue.
    start_next();
    if (job.done) job.done(timing);
  });
}

}  // namespace swing::device
