// Simulated mobile device: compute execution, CPU accounting, energy.
//
// A Device executes function-unit jobs one at a time (the Swing worker is a
// single processing thread per device), tracks cumulative CPU-busy time for
// utilisation reporting, and integrates CPU energy. Background load — the
// paper's "another compute intensive benchmark" dynamism experiment —
// inflates service times via time-sharing and shows up in reported CPU
// usage, exactly as `top` would see it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>

#include "common/check.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "device/profile.h"
#include "sim/simulator.h"

namespace swing::device {

// Timestamps of one executed job, for delay decomposition (Fig. 2).
struct JobTiming {
  SimTime submitted;
  SimTime started;
  SimTime finished;

  [[nodiscard]] SimDuration queuing() const { return started - submitted; }
  [[nodiscard]] SimDuration processing() const { return finished - started; }
};

class Device {
 public:
  using DoneFn = std::function<void(const JobTiming&)>;

  Device(Simulator& sim, DeviceId id, DeviceProfile profile, Rng rng)
      : sim_(sim), id_(id), profile_(std::move(profile)), rng_(rng) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] DeviceId id() const { return id_; }
  [[nodiscard]] const DeviceProfile& profile() const { return profile_; }

  // --- Compute --------------------------------------------------------

  // Submits a job whose cost is `ref_cost_ms` milliseconds on the reference
  // device (perf_index 1.0). Jobs run FIFO; `done` fires at completion with
  // the queue/processing timestamps. `admit`, when given, is evaluated as
  // the job reaches the head of the queue: returning false sheds the job
  // without consuming any CPU (and without invoking `done`) — the hook for
  // deadline/staleness checks that depend on how long the job waited.
  void execute(double ref_cost_ms, DoneFn done,
               std::function<bool()> admit = nullptr);

  // Jobs waiting plus the one in service.
  [[nodiscard]] std::size_t backlog() const {
    return queue_.size() + (busy_ ? 1 : 0);
  }

  // Expected (jitter-free) service time for a job at current conditions.
  [[nodiscard]] SimDuration nominal_service_time(double ref_cost_ms) const {
    return millis(ref_cost_ms / profile_.perf_index * load_multiplier());
  }

  // --- Dynamism ---------------------------------------------------------

  // Fraction [0, 1] of CPU consumed by other apps. Inflates service times
  // and reported utilisation.
  void set_background_load(double fraction) {
    SWING_CHECK(fraction >= 0.0 && fraction <= 1.0)
        << "background load " << fraction;
    settle_background(sim_.now());
    background_load_ = fraction;
  }
  [[nodiscard]] double background_load() const { return background_load_; }

  // --- Accounting -------------------------------------------------------

  // Cumulative seconds the CPU spent on Swing jobs.
  [[nodiscard]] double busy_seconds() const { return busy_seconds_; }

  // Cumulative CPU-seconds including background load, as `top` would count.
  [[nodiscard]] double total_cpu_seconds(SimTime now) const {
    return busy_seconds_ + background_seconds_ +
           background_load_ * (now - background_since_).seconds();
  }

  [[nodiscard]] std::uint64_t jobs_completed() const {
    return jobs_completed_;
  }

  // CPU energy consumed up to `now`, in joules.
  [[nodiscard]] double cpu_energy_j(SimTime now) const {
    const double elapsed = now.seconds();
    return profile_.cpu_idle_w * elapsed +
           (profile_.cpu_peak_w - profile_.cpu_idle_w) *
               total_cpu_seconds(now);
  }

  // Remaining battery as a fraction of a full charge, based on CPU drain
  // (radio drain is an order of magnitude smaller for these apps, §VI-B2).
  // Devices report this in ACKs so energy-aware policies can spare
  // nearly-empty peers.
  [[nodiscard]] double battery_fraction(SimTime now) const {
    const double capacity_j = profile_.battery_wh * 3600.0;
    if (capacity_j <= 0.0) return 1.0;
    const double remaining = 1.0 - cpu_energy_j(now) / capacity_j;
    return std::clamp(remaining, 0.0, 1.0);
  }

 private:
  struct Job {
    double ref_cost_ms;
    SimTime submitted;
    DoneFn done;
    std::function<bool()> admit;
  };

  // Time-sharing with background work: a device running a compute benchmark
  // at fraction b services Swing jobs at 1/(1 + 1.5 b) speed. The 1.5 factor
  // is calibrated to Fig. 2's processing-delay growth from 20% to 100% load.
  [[nodiscard]] double load_multiplier() const {
    return 1.0 + 1.5 * background_load_;
  }

  void settle_background(SimTime now) {
    background_seconds_ +=
        background_load_ * (now - background_since_).seconds();
    background_since_ = now;
  }

  void start_next();

  Simulator& sim_;
  DeviceId id_;
  DeviceProfile profile_;
  Rng rng_;

  std::deque<Job> queue_;
  bool busy_ = false;
  double background_load_ = 0.0;
  SimTime background_since_{};
  double background_seconds_ = 0.0;
  double busy_seconds_ = 0.0;
  std::uint64_t jobs_completed_ = 0;
};

}  // namespace swing::device
