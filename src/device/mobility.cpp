#include "device/mobility.h"

#include <cmath>

namespace swing::device {

void Walker::walk_to(net::Position dest, double speed_mps,
                     std::function<void()> arrived) {
  cancel_walk();
  medium_.set_rssi_override(id_, std::nullopt);
  pos_ = medium_.position(id_);
  walking_ = true;
  step(dest, speed_mps, std::move(arrived));
}

void Walker::step(net::Position dest, double speed_mps,
                  std::function<void()> arrived) {
  const double remaining = net::distance(pos_, dest);
  const double stride = speed_mps * period_.seconds();
  if (remaining <= stride) {
    pos_ = dest;
    medium_.set_position(id_, pos_);
    walking_ = false;
    if (arrived) arrived();
    return;
  }
  const double frac = stride / remaining;
  pos_.x += (dest.x - pos_.x) * frac;
  pos_.y += (dest.y - pos_.y) * frac;
  medium_.set_position(id_, pos_);
  pending_ = sim_.schedule_after(
      period_, [this, dest, speed_mps, arrived = std::move(arrived)]() mutable {
        if (walking_) step(dest, speed_mps, std::move(arrived));
      });
}

}  // namespace swing::device
