#include "device/profile.h"

#include <stdexcept>

namespace swing::device {

namespace {

DeviceProfile make(std::string name, std::string model, double perf,
                   double cpu_peak_w, double battery_wh) {
  DeviceProfile p;
  p.name = std::move(name);
  p.model = std::move(model);
  p.perf_index = perf;
  p.cpu_peak_w = cpu_peak_w;
  p.battery_wh = battery_wh;
  return p;
}

}  // namespace

// perf_index = 92.9 / Table I processing delay. Peak CPU watts reflect each
// SoC's era: the 2010 Galaxy S (E) burns almost as much as a Nexus 4 while
// doing a fifth of the work — that inefficiency is what makes LR/RR waste
// energy on it.
const DeviceProfile& profile_A() {
  static const DeviceProfile p = make("A", "Galaxy S3", 1.15, 1.5, 7.8);
  return p;
}
const DeviceProfile& profile_B() {
  static const DeviceProfile p = make("B", "Galaxy Nexus", 1.000, 1.4, 6.5);
  return p;
}
const DeviceProfile& profile_C() {
  static const DeviceProfile p = make("C", "Insignia7", 0.764, 1.2, 10.8);
  return p;
}
const DeviceProfile& profile_D() {
  static const DeviceProfile p = make("D", "NeuTab7", 0.554, 1.1, 8.1);
  return p;
}
const DeviceProfile& profile_E() {
  static const DeviceProfile p = make("E", "Galaxy S", 0.200, 1.3, 5.6);
  return p;
}
const DeviceProfile& profile_F() {
  static const DeviceProfile p = make("F", "DragonTouch", 0.558, 1.1, 8.1);
  return p;
}
const DeviceProfile& profile_G() {
  static const DeviceProfile p = make("G", "Galaxy Nexus", 1.130, 1.4, 6.5);
  return p;
}
const DeviceProfile& profile_H() {
  static const DeviceProfile p = make("H", "LG Nexus 4", 1.303, 1.6, 7.8);
  return p;
}
const DeviceProfile& profile_I() {
  static const DeviceProfile p = make("I", "Galaxy Note 2", 1.191, 1.5, 11.4);
  return p;
}

const DeviceProfile& cloudlet_profile() {
  static const DeviceProfile p = [] {
    DeviceProfile c = make("CL", "Cloudlet VM", 9.0, 25.0, 1e6);
    c.cpu_idle_w = 8.0;   // Server-class host, mains powered.
    c.wifi_peak_w = 1.2;  // Wired-backed AP interface.
    c.service_cv = 0.05;
    return c;
  }();
  return p;
}

const std::vector<DeviceProfile>& testbed_profiles() {
  static const std::vector<DeviceProfile> all = {
      profile_A(), profile_B(), profile_C(), profile_D(), profile_E(),
      profile_F(), profile_G(), profile_H(), profile_I(),
  };
  return all;
}

const DeviceProfile& profile_by_name(const std::string& name) {
  for (const auto& p : testbed_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown testbed device: " + name);
}

}  // namespace swing::device
