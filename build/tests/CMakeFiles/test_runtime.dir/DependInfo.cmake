
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/test_batching.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_batching.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_batching.cpp.o.d"
  "/root/repo/tests/runtime/test_extensions.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_extensions.cpp.o.d"
  "/root/repo/tests/runtime/test_failure_injection.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_failure_injection.cpp.o.d"
  "/root/repo/tests/runtime/test_master.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_master.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_master.cpp.o.d"
  "/root/repo/tests/runtime/test_messages.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_messages.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_messages.cpp.o.d"
  "/root/repo/tests/runtime/test_metrics.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_metrics.cpp.o.d"
  "/root/repo/tests/runtime/test_reorder.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_reorder.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_reorder.cpp.o.d"
  "/root/repo/tests/runtime/test_scenario.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_scenario.cpp.o.d"
  "/root/repo/tests/runtime/test_source_dynamics.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_source_dynamics.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_source_dynamics.cpp.o.d"
  "/root/repo/tests/runtime/test_worker_integration.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_worker_integration.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_worker_integration.cpp.o.d"
  "/root/repo/tests/runtime/test_worker_unit.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_worker_unit.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_worker_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/swing_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/swing_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swing_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/swing_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/swing_device.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swing_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swing_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
