file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/test_batching.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_batching.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_extensions.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_extensions.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_failure_injection.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_master.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_master.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_messages.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_messages.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_metrics.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_metrics.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_reorder.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_reorder.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_scenario.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_scenario.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_source_dynamics.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_source_dynamics.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_worker_integration.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_worker_integration.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_worker_unit.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_worker_unit.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
