file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_energy_aware.cpp.o"
  "CMakeFiles/test_core.dir/core/test_energy_aware.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_estimator.cpp.o"
  "CMakeFiles/test_core.dir/core/test_estimator.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_policy.cpp.o"
  "CMakeFiles/test_core.dir/core/test_policy.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_policy_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_policy_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_routing_modes.cpp.o"
  "CMakeFiles/test_core.dir/core/test_routing_modes.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_swarm_manager.cpp.o"
  "CMakeFiles/test_core.dir/core/test_swarm_manager.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
