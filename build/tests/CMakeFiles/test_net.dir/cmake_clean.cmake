file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_adhoc.cpp.o"
  "CMakeFiles/test_net.dir/net/test_adhoc.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_discovery.cpp.o"
  "CMakeFiles/test_net.dir/net/test_discovery.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_medium.cpp.o"
  "CMakeFiles/test_net.dir/net/test_medium.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_medium_properties.cpp.o"
  "CMakeFiles/test_net.dir/net/test_medium_properties.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_transport.cpp.o"
  "CMakeFiles/test_net.dir/net/test_transport.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_wifi.cpp.o"
  "CMakeFiles/test_net.dir/net/test_wifi.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
