file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_app_matrix.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_app_matrix.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_dynamics.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_dynamics.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_policies.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_policies.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_random_swarms.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_random_swarms.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
