file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/apps/test_face_recognition.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_face_recognition.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_gesture_recognition.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_gesture_recognition.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_scene_analysis.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_scene_analysis.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_testbed.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_testbed.cpp.o.d"
  "CMakeFiles/test_apps.dir/apps/test_voice_translation.cpp.o"
  "CMakeFiles/test_apps.dir/apps/test_voice_translation.cpp.o.d"
  "test_apps"
  "test_apps.pdb"
  "test_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
