
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/test_face_recognition.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_face_recognition.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_face_recognition.cpp.o.d"
  "/root/repo/tests/apps/test_gesture_recognition.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_gesture_recognition.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_gesture_recognition.cpp.o.d"
  "/root/repo/tests/apps/test_scene_analysis.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_scene_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_scene_analysis.cpp.o.d"
  "/root/repo/tests/apps/test_testbed.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_testbed.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_testbed.cpp.o.d"
  "/root/repo/tests/apps/test_voice_translation.cpp" "tests/CMakeFiles/test_apps.dir/apps/test_voice_translation.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/test_voice_translation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/swing_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/swing_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swing_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/swing_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/swing_device.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swing_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swing_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
