
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_ascii_chart.cpp" "tests/CMakeFiles/test_common.dir/common/test_ascii_chart.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_ascii_chart.cpp.o.d"
  "/root/repo/tests/common/test_bytes.cpp" "tests/CMakeFiles/test_common.dir/common/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_bytes.cpp.o.d"
  "/root/repo/tests/common/test_ids.cpp" "tests/CMakeFiles/test_common.dir/common/test_ids.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_ids.cpp.o.d"
  "/root/repo/tests/common/test_logging.cpp" "tests/CMakeFiles/test_common.dir/common/test_logging.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_logging.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_table.cpp" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  "/root/repo/tests/common/test_time.cpp" "tests/CMakeFiles/test_common.dir/common/test_time.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/swing_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/swing_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swing_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/swing_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/swing_device.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swing_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swing_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
