file(REMOVE_RECURSE
  "CMakeFiles/face_recognition_swarm.dir/face_recognition_swarm.cpp.o"
  "CMakeFiles/face_recognition_swarm.dir/face_recognition_swarm.cpp.o.d"
  "face_recognition_swarm"
  "face_recognition_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/face_recognition_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
