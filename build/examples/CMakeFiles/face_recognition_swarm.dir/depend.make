# Empty dependencies file for face_recognition_swarm.
# This may be replaced when dependencies are built.
