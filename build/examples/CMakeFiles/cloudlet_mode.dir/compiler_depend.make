# Empty compiler generated dependencies file for cloudlet_mode.
# This may be replaced when dependencies are built.
