file(REMOVE_RECURSE
  "CMakeFiles/cloudlet_mode.dir/cloudlet_mode.cpp.o"
  "CMakeFiles/cloudlet_mode.dir/cloudlet_mode.cpp.o.d"
  "cloudlet_mode"
  "cloudlet_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudlet_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
