file(REMOVE_RECURSE
  "CMakeFiles/gesture_demo.dir/gesture_demo.cpp.o"
  "CMakeFiles/gesture_demo.dir/gesture_demo.cpp.o.d"
  "gesture_demo"
  "gesture_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesture_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
