# Empty compiler generated dependencies file for gesture_demo.
# This may be replaced when dependencies are built.
