file(REMOVE_RECURSE
  "CMakeFiles/mobility_demo.dir/mobility_demo.cpp.o"
  "CMakeFiles/mobility_demo.dir/mobility_demo.cpp.o.d"
  "mobility_demo"
  "mobility_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
