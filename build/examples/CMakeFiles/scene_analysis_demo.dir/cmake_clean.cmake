file(REMOVE_RECURSE
  "CMakeFiles/scene_analysis_demo.dir/scene_analysis_demo.cpp.o"
  "CMakeFiles/scene_analysis_demo.dir/scene_analysis_demo.cpp.o.d"
  "scene_analysis_demo"
  "scene_analysis_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scene_analysis_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
