# Empty dependencies file for scene_analysis_demo.
# This may be replaced when dependencies are built.
