file(REMOVE_RECURSE
  "CMakeFiles/voice_translation_swarm.dir/voice_translation_swarm.cpp.o"
  "CMakeFiles/voice_translation_swarm.dir/voice_translation_swarm.cpp.o.d"
  "voice_translation_swarm"
  "voice_translation_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_translation_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
