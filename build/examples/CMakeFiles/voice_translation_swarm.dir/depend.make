# Empty dependencies file for voice_translation_swarm.
# This may be replaced when dependencies are built.
