# Empty dependencies file for workflow_walkthrough.
# This may be replaced when dependencies are built.
