file(REMOVE_RECURSE
  "CMakeFiles/workflow_walkthrough.dir/workflow_walkthrough.cpp.o"
  "CMakeFiles/workflow_walkthrough.dir/workflow_walkthrough.cpp.o.d"
  "workflow_walkthrough"
  "workflow_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
