# Empty compiler generated dependencies file for ablate_estimator.
# This may be replaced when dependencies are built.
