file(REMOVE_RECURSE
  "CMakeFiles/ablate_estimator.dir/ablate_estimator.cpp.o"
  "CMakeFiles/ablate_estimator.dir/ablate_estimator.cpp.o.d"
  "ablate_estimator"
  "ablate_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
