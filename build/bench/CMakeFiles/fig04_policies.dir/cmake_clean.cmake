file(REMOVE_RECURSE
  "CMakeFiles/fig04_policies.dir/fig04_policies.cpp.o"
  "CMakeFiles/fig04_policies.dir/fig04_policies.cpp.o.d"
  "fig04_policies"
  "fig04_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
