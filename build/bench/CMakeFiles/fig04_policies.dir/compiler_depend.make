# Empty compiler generated dependencies file for fig04_policies.
# This may be replaced when dependencies are built.
