file(REMOVE_RECURSE
  "CMakeFiles/table1_heterogeneity.dir/table1_heterogeneity.cpp.o"
  "CMakeFiles/table1_heterogeneity.dir/table1_heterogeneity.cpp.o.d"
  "table1_heterogeneity"
  "table1_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
