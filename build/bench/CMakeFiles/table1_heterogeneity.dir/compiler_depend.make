# Empty compiler generated dependencies file for table1_heterogeneity.
# This may be replaced when dependencies are built.
