
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_routing.cpp" "bench/CMakeFiles/ablate_routing.dir/ablate_routing.cpp.o" "gcc" "bench/CMakeFiles/ablate_routing.dir/ablate_routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/swing_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/swing_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/swing_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/swing_core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/swing_device.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/swing_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/swing_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
