file(REMOVE_RECURSE
  "CMakeFiles/ablate_batching.dir/ablate_batching.cpp.o"
  "CMakeFiles/ablate_batching.dir/ablate_batching.cpp.o.d"
  "ablate_batching"
  "ablate_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
