file(REMOVE_RECURSE
  "CMakeFiles/ablate_input_buffer.dir/ablate_input_buffer.cpp.o"
  "CMakeFiles/ablate_input_buffer.dir/ablate_input_buffer.cpp.o.d"
  "ablate_input_buffer"
  "ablate_input_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_input_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
