# Empty compiler generated dependencies file for ablate_input_buffer.
# This may be replaced when dependencies are built.
