# Empty compiler generated dependencies file for fig09_join_leave.
# This may be replaced when dependencies are built.
