file(REMOVE_RECURSE
  "CMakeFiles/fig09_join_leave.dir/fig09_join_leave.cpp.o"
  "CMakeFiles/fig09_join_leave.dir/fig09_join_leave.cpp.o.d"
  "fig09_join_leave"
  "fig09_join_leave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_join_leave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
