file(REMOVE_RECURSE
  "CMakeFiles/fig01_single_device.dir/fig01_single_device.cpp.o"
  "CMakeFiles/fig01_single_device.dir/fig01_single_device.cpp.o.d"
  "fig01_single_device"
  "fig01_single_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_single_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
