# Empty dependencies file for fig01_single_device.
# This may be replaced when dependencies are built.
