file(REMOVE_RECURSE
  "CMakeFiles/ablate_ttl.dir/ablate_ttl.cpp.o"
  "CMakeFiles/ablate_ttl.dir/ablate_ttl.cpp.o.d"
  "ablate_ttl"
  "ablate_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
