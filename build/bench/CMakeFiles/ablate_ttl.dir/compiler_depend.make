# Empty compiler generated dependencies file for ablate_ttl.
# This may be replaced when dependencies are built.
