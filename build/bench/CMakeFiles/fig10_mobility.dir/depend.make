# Empty dependencies file for fig10_mobility.
# This may be replaced when dependencies are built.
