file(REMOVE_RECURSE
  "CMakeFiles/fig10_mobility.dir/fig10_mobility.cpp.o"
  "CMakeFiles/fig10_mobility.dir/fig10_mobility.cpp.o.d"
  "fig10_mobility"
  "fig10_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
