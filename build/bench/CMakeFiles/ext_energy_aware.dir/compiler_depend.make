# Empty compiler generated dependencies file for ext_energy_aware.
# This may be replaced when dependencies are built.
