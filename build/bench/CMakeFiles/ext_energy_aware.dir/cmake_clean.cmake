file(REMOVE_RECURSE
  "CMakeFiles/ext_energy_aware.dir/ext_energy_aware.cpp.o"
  "CMakeFiles/ext_energy_aware.dir/ext_energy_aware.cpp.o.d"
  "ext_energy_aware"
  "ext_energy_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_energy_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
