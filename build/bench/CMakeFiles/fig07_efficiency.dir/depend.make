# Empty dependencies file for fig07_efficiency.
# This may be replaced when dependencies are built.
