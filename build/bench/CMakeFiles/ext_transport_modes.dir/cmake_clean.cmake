file(REMOVE_RECURSE
  "CMakeFiles/ext_transport_modes.dir/ext_transport_modes.cpp.o"
  "CMakeFiles/ext_transport_modes.dir/ext_transport_modes.cpp.o.d"
  "ext_transport_modes"
  "ext_transport_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_transport_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
