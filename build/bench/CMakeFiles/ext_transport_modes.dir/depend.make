# Empty dependencies file for ext_transport_modes.
# This may be replaced when dependencies are built.
