file(REMOVE_RECURSE
  "CMakeFiles/ablate_selection.dir/ablate_selection.cpp.o"
  "CMakeFiles/ablate_selection.dir/ablate_selection.cpp.o.d"
  "ablate_selection"
  "ablate_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
