# Empty compiler generated dependencies file for ablate_selection.
# This may be replaced when dependencies are built.
