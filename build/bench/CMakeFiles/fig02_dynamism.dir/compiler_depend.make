# Empty compiler generated dependencies file for fig02_dynamism.
# This may be replaced when dependencies are built.
