file(REMOVE_RECURSE
  "CMakeFiles/fig02_dynamism.dir/fig02_dynamism.cpp.o"
  "CMakeFiles/fig02_dynamism.dir/fig02_dynamism.cpp.o.d"
  "fig02_dynamism"
  "fig02_dynamism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_dynamism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
