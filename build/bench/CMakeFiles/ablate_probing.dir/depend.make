# Empty dependencies file for ablate_probing.
# This may be replaced when dependencies are built.
