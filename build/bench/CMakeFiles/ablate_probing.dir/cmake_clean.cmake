file(REMOVE_RECURSE
  "CMakeFiles/ablate_probing.dir/ablate_probing.cpp.o"
  "CMakeFiles/ablate_probing.dir/ablate_probing.cpp.o.d"
  "ablate_probing"
  "ablate_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
