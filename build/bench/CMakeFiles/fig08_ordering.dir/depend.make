# Empty dependencies file for fig08_ordering.
# This may be replaced when dependencies are built.
