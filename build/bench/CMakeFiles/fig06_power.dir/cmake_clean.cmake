file(REMOVE_RECURSE
  "CMakeFiles/fig06_power.dir/fig06_power.cpp.o"
  "CMakeFiles/fig06_power.dir/fig06_power.cpp.o.d"
  "fig06_power"
  "fig06_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
