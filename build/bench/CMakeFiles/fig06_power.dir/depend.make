# Empty dependencies file for fig06_power.
# This may be replaced when dependencies are built.
