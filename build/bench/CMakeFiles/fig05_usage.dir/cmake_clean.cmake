file(REMOVE_RECURSE
  "CMakeFiles/fig05_usage.dir/fig05_usage.cpp.o"
  "CMakeFiles/fig05_usage.dir/fig05_usage.cpp.o.d"
  "fig05_usage"
  "fig05_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
