# Empty dependencies file for fig05_usage.
# This may be replaced when dependencies are built.
