# Empty compiler generated dependencies file for ablate_reorder.
# This may be replaced when dependencies are built.
