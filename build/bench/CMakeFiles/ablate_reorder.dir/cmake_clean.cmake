file(REMOVE_RECURSE
  "CMakeFiles/ablate_reorder.dir/ablate_reorder.cpp.o"
  "CMakeFiles/ablate_reorder.dir/ablate_reorder.cpp.o.d"
  "ablate_reorder"
  "ablate_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
