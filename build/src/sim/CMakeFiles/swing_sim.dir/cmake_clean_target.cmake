file(REMOVE_RECURSE
  "libswing_sim.a"
)
