# Empty compiler generated dependencies file for swing_sim.
# This may be replaced when dependencies are built.
