file(REMOVE_RECURSE
  "CMakeFiles/swing_sim.dir/simulator.cpp.o"
  "CMakeFiles/swing_sim.dir/simulator.cpp.o.d"
  "libswing_sim.a"
  "libswing_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swing_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
