file(REMOVE_RECURSE
  "CMakeFiles/swing_net.dir/medium.cpp.o"
  "CMakeFiles/swing_net.dir/medium.cpp.o.d"
  "libswing_net.a"
  "libswing_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swing_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
