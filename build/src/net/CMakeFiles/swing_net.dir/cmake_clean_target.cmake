file(REMOVE_RECURSE
  "libswing_net.a"
)
