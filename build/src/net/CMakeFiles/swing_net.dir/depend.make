# Empty dependencies file for swing_net.
# This may be replaced when dependencies are built.
