file(REMOVE_RECURSE
  "CMakeFiles/swing_core.dir/latency_estimator.cpp.o"
  "CMakeFiles/swing_core.dir/latency_estimator.cpp.o.d"
  "CMakeFiles/swing_core.dir/policy.cpp.o"
  "CMakeFiles/swing_core.dir/policy.cpp.o.d"
  "CMakeFiles/swing_core.dir/swarm_manager.cpp.o"
  "CMakeFiles/swing_core.dir/swarm_manager.cpp.o.d"
  "libswing_core.a"
  "libswing_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swing_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
