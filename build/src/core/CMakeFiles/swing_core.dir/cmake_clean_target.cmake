file(REMOVE_RECURSE
  "libswing_core.a"
)
