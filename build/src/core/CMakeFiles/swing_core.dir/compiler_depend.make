# Empty compiler generated dependencies file for swing_core.
# This may be replaced when dependencies are built.
