
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/latency_estimator.cpp" "src/core/CMakeFiles/swing_core.dir/latency_estimator.cpp.o" "gcc" "src/core/CMakeFiles/swing_core.dir/latency_estimator.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/swing_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/swing_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/swarm_manager.cpp" "src/core/CMakeFiles/swing_core.dir/swarm_manager.cpp.o" "gcc" "src/core/CMakeFiles/swing_core.dir/swarm_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
