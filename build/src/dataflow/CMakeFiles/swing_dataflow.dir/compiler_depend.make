# Empty compiler generated dependencies file for swing_dataflow.
# This may be replaced when dependencies are built.
