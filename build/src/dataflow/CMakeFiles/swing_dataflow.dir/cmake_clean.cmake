file(REMOVE_RECURSE
  "CMakeFiles/swing_dataflow.dir/graph.cpp.o"
  "CMakeFiles/swing_dataflow.dir/graph.cpp.o.d"
  "CMakeFiles/swing_dataflow.dir/tuple.cpp.o"
  "CMakeFiles/swing_dataflow.dir/tuple.cpp.o.d"
  "libswing_dataflow.a"
  "libswing_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swing_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
