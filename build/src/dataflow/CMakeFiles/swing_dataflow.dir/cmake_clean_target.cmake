file(REMOVE_RECURSE
  "libswing_dataflow.a"
)
