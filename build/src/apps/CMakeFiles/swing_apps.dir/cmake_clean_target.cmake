file(REMOVE_RECURSE
  "libswing_apps.a"
)
