file(REMOVE_RECURSE
  "CMakeFiles/swing_apps.dir/face_recognition.cpp.o"
  "CMakeFiles/swing_apps.dir/face_recognition.cpp.o.d"
  "CMakeFiles/swing_apps.dir/gesture_recognition.cpp.o"
  "CMakeFiles/swing_apps.dir/gesture_recognition.cpp.o.d"
  "CMakeFiles/swing_apps.dir/scene_analysis.cpp.o"
  "CMakeFiles/swing_apps.dir/scene_analysis.cpp.o.d"
  "CMakeFiles/swing_apps.dir/testbed.cpp.o"
  "CMakeFiles/swing_apps.dir/testbed.cpp.o.d"
  "CMakeFiles/swing_apps.dir/voice_translation.cpp.o"
  "CMakeFiles/swing_apps.dir/voice_translation.cpp.o.d"
  "libswing_apps.a"
  "libswing_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swing_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
