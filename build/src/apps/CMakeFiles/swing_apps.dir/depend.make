# Empty dependencies file for swing_apps.
# This may be replaced when dependencies are built.
