file(REMOVE_RECURSE
  "libswing_runtime.a"
)
