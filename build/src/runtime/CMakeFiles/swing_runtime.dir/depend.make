# Empty dependencies file for swing_runtime.
# This may be replaced when dependencies are built.
