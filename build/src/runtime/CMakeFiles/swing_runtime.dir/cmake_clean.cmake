file(REMOVE_RECURSE
  "CMakeFiles/swing_runtime.dir/master.cpp.o"
  "CMakeFiles/swing_runtime.dir/master.cpp.o.d"
  "CMakeFiles/swing_runtime.dir/scenario.cpp.o"
  "CMakeFiles/swing_runtime.dir/scenario.cpp.o.d"
  "CMakeFiles/swing_runtime.dir/swarm.cpp.o"
  "CMakeFiles/swing_runtime.dir/swarm.cpp.o.d"
  "CMakeFiles/swing_runtime.dir/worker.cpp.o"
  "CMakeFiles/swing_runtime.dir/worker.cpp.o.d"
  "libswing_runtime.a"
  "libswing_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swing_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
