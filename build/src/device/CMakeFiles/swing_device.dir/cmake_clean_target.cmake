file(REMOVE_RECURSE
  "libswing_device.a"
)
