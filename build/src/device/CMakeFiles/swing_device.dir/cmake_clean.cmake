file(REMOVE_RECURSE
  "CMakeFiles/swing_device.dir/device.cpp.o"
  "CMakeFiles/swing_device.dir/device.cpp.o.d"
  "CMakeFiles/swing_device.dir/mobility.cpp.o"
  "CMakeFiles/swing_device.dir/mobility.cpp.o.d"
  "CMakeFiles/swing_device.dir/profile.cpp.o"
  "CMakeFiles/swing_device.dir/profile.cpp.o.d"
  "libswing_device.a"
  "libswing_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swing_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
