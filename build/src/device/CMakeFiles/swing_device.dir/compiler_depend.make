# Empty compiler generated dependencies file for swing_device.
# This may be replaced when dependencies are built.
