#!/usr/bin/env sh
# Regenerates every paper figure/table plus the ablation and extension
# studies. Pass a build dir (default: build).
BUILD="${1:-build}"
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "===== $(basename "$b") ====="
  "$b"
  echo
done
