#!/usr/bin/env sh
# Regenerates every paper figure/table plus the ablation and extension
# studies.
#
# Usage: run_all_benches.sh [--smoke] [build_dir]
#
#   --smoke    CI mode: only verify that every bench binary exists and is
#              runnable (SWING_BENCH_SMOKE=1 is exported so benches that
#              honour it can shorten their runs). Fails if any binary exits
#              nonzero; skips nothing silently.
#   build_dir  Build tree to look in (default: build).
SMOKE=0
if [ "$1" = "--smoke" ]; then
  SMOKE=1
  shift
fi
BUILD="${1:-build}"

if [ ! -d "$BUILD/bench" ]; then
  echo "run_all_benches: no bench dir under '$BUILD' (build first)" >&2
  exit 2
fi

FAILED=0
RAN=0
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  RAN=$((RAN + 1))
  if [ "$SMOKE" = "1" ]; then
    # Smoke: run under the env flag; a bench that ignores it still runs,
    # just longer. micro_components understands benchmark's own filters.
    case "$(basename "$b")" in
      micro_components)
        SWING_BENCH_SMOKE=1 "$b" --benchmark_min_time=0.01 >/dev/null 2>&1
        ;;
      *)
        SWING_BENCH_SMOKE=1 "$b" >/dev/null 2>&1
        ;;
    esac
    if [ "$?" = "0" ]; then
      echo "ok $(basename "$b")"
    else
      echo "FAIL $(basename "$b")"
      FAILED=1
    fi
  else
    echo "===== $(basename "$b") ====="
    "$b" || FAILED=1
    echo
  fi
done

if [ "$RAN" = "0" ]; then
  echo "run_all_benches: no bench binaries found under $BUILD/bench" >&2
  exit 2
fi
exit "$FAILED"
