#!/usr/bin/env python3
"""swing-lint: repo-specific correctness lint for the Swing codebase.

Rules (see DESIGN.md "Correctness tooling"):

  wall-clock      No std::chrono clocks / C time syscalls outside
                  src/common/. Framework code must read only the simulator
                  clock (common/time.h); the only wall-clock consumer is the
                  realtime pacer quarantined in src/common/wallclock.h.
  ambient-rand    No std::rand/srand, std::random_device, or standard-library
                  engines outside src/common/. All randomness flows through
                  the deterministic common/rng.h so runs replay bit-for-bit.
  pragma-once     Every header starts its include guard with #pragma once.
  include-cycle   The quoted-include graph under src/ must be acyclic.
  raw-new-delete  No raw new/delete expressions in src/; ownership is
                  expressed with containers and smart pointers.
  bare-assert     No bare assert() in src/; use SWING_CHECK (always on) or
                  SWING_DCHECK (debug) from common/check.h so contract
                  failures carry context and behave uniformly across builds.
  fuzz-harness    Every wire decoder in src/ (a `static T decode(ByteReader&)`
                  declaration, or the legacy `static T from_bytes(...)`)
                  must be exercised by a fuzz harness: some fuzz/*.cpp must
                  reference T::decode or drive T through the fuzz_harness.h
                  templates. Decoders parse untrusted bytes; an unfuzzed
                  decoder is an untested attack surface.
  drop-reason-wired
                  Every DropReason enumerator (src/core/tuple_ledger.h)
                  must be named in tuple_ledger.cpp's drop_reason_name
                  switch AND raised from at least one other src/ file. An
                  enumerator nobody raises is dead taxonomy; one without a
                  name breaks the tuples_dropped{reason=} counters and the
                  audit summary (swing-chaos added kRetryExhausted and
                  kAbruptLeave this way — keep the invariant mechanical).
  stateful-unit-must-checkpoint
                  A FunctionUnit subclass with per-instance data members
                  accumulates state that dies with its host unless it opts
                  into the swing-state contract. Such a class must either
                  override snapshot_state/restore_state or carry a
                  `// swing-lint: stateless` waiver (immediately above the
                  class or inside it) declaring its members configuration
                  or output channels rather than tuple state.

Suppression: append `// swing-lint: allow(<rule>)` to the offending line
(the stateful-unit rule uses the class-level `// swing-lint: stateless`
waiver instead).

Usage:
  swing_lint.py [--root REPO_ROOT]      scan the repo; nonzero exit on findings
  swing_lint.py --self-test             run the rules against tools/lint_fixtures
"""

from __future__ import annotations

import argparse
import collections
import pathlib
import re
import sys

CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock"
    r"|clock_gettime|gettimeofday|timespec_get)\b"
)
AMBIENT_RAND_RE = re.compile(
    r"(?:\bstd\s*::\s*rand\b|(?<![\w:])s?rand\s*\("
    r"|\brandom_device\b|\bmt19937(?:_64)?\b|\bdefault_random_engine\b"
    r"|\bminstd_rand0?\b|\branlux\d+\b)"
)
RAW_NEW_RE = re.compile(r"(?<![\w:])new\b(?!\s*\()")
RAW_DELETE_RE = re.compile(r"(?<![\w:])delete\b(?!\s*\()")
# Bare assert( — but not static_assert, ASSERT_EQ, foo.assert_x or
# qualified names (the look-behind excludes word chars, '.', ':').
BARE_ASSERT_RE = re.compile(r"(?<![\w.:])assert\s*\(")
# Wire decoder declarations: the v2 `static T decode(ByteReader&)` shape
# and the legacy `static T from_bytes(...)` (kept so a straggler revival is
# still held to the fuzz-coverage bar).
DECODER_DECL_RE = re.compile(
    r"\bstatic\s+(?:SWING_HOT\s+)?(\w+)\s+"
    r"(?:decode\s*\(\s*ByteReader|from_bytes\s*\()")
# A harness covers T when it names T::decode / T::from_bytes directly or
# drives it through the fuzz_harness.h templates
# (swing_fuzz_decode<ns::T> / swing_fuzz_roundtrip_bytes<ns::T>).
FUZZ_REF_RE = re.compile(r"\b(\w+)\s*::\s*(?:decode|from_bytes)\b")
FUZZ_TEMPLATE_REF_RE = re.compile(r"\bswing_fuzz_\w+\s*<\s*([\w:\s]+?)\s*>")
DEFAULTED_DELETE_RE = re.compile(r"=\s*delete\b")
ALLOW_RE = re.compile(r"//\s*swing-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)
DROP_ENUM_RE = re.compile(r"enum\s+class\s+DropReason[^{]*\{(.*?)\}", re.DOTALL)
DROP_ENUMERATOR_RE = re.compile(r"\b(k\w+)\b")
FUNCTION_UNIT_CLASS_RE = re.compile(
    r"\bclass\s+(\w+)[^;{]*:\s*public\s+(?:\w+\s*::\s*)?FunctionUnit\b")
STATELESS_WAIVER_RE = re.compile(r"//\s*swing-lint:\s*stateless\b")
# A class-scope data member by this codebase's convention: a type, then a
# trailing-underscore name, optionally an initializer, then ';'. Types with
# parentheses (std::function<void()>) are not matched — acceptable for a
# heuristic that only runs on class-scope lines.
MEMBER_DECL_RE = re.compile(
    r"^\s*[A-Za-z_][\w:<>,\s*&]*[\s*&](\w+_)\s*(?:=[^;]*|\{[^;]*\})?;\s*$")
MEMBER_EXCLUDE_RE = re.compile(r"^\s*(?:using|typedef|friend|static)\b")

Finding = collections.namedtuple("Finding", "path line rule message")


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment and string-literal contents with spaces.

    Newlines are preserved so offsets still map to the original line
    numbers. Handles //, /* */, "..." (with escapes), '...', and R"(...)"
    raw strings.
    """
    out = []
    i, n = 0, len(text)

    def blank(segment: str) -> str:
        return "".join(c if c == "\n" else " " for c in segment)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            out.append(blank(text[i:end]))
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append(blank(text[i:end]))
            i = end
        elif c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^(]*)\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            end = text.find(closer, i + m.end())
            end = n if end == -1 else end + len(closer)
            out.append('""' + blank(text[i + 2 : end]))
            i = end
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + blank(text[i + 1 : j - 1]) + (c if j <= n else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowed_rules(raw_line: str) -> set[str]:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {rule.strip() for rule in m.group(1).split(",")}


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.findings: list[Finding] = []

    def report(self, path: pathlib.Path, line: int, rule: str, message: str):
        rel = path.relative_to(self.root) if path.is_relative_to(self.root) else path
        self.findings.append(Finding(str(rel), line, rule, message))

    # --- Per-file pattern rules --------------------------------------------

    def scan_file(self, path: pathlib.Path, *, determinism_exempt: bool,
                  check_new_delete: bool, check_bare_assert: bool = False):
        raw = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = raw.splitlines()
        code = strip_comments_and_strings(raw)
        code_lines = code.splitlines()

        if path.suffix in {".h", ".hpp"} and not PRAGMA_ONCE_RE.search(raw):
            self.report(path, 1, "pragma-once",
                        "header is missing '#pragma once'")

        for lineno, line in enumerate(code_lines, start=1):
            raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
            allowed = allowed_rules(raw_line)

            if not determinism_exempt:
                if WALL_CLOCK_RE.search(line) and "wall-clock" not in allowed:
                    self.report(
                        path, lineno, "wall-clock",
                        "wall-clock access outside src/common/ "
                        "(use the simulator clock, common/time.h, or "
                        "common/wallclock.h for demo pacing)")
                if AMBIENT_RAND_RE.search(line) and "ambient-rand" not in allowed:
                    self.report(
                        path, lineno, "ambient-rand",
                        "nondeterministic randomness outside src/common/ "
                        "(use the seeded common/rng.h Rng)")

            if check_new_delete and "raw-new-delete" not in allowed:
                if RAW_NEW_RE.search(line):
                    self.report(path, lineno, "raw-new-delete",
                                "raw 'new' in src/ (use std::make_unique / "
                                "containers)")
                deleted = DEFAULTED_DELETE_RE.sub(" ", line)
                if RAW_DELETE_RE.search(deleted):
                    self.report(path, lineno, "raw-new-delete",
                                "raw 'delete' in src/ (use RAII ownership)")

            if (check_bare_assert and "bare-assert" not in allowed
                    and BARE_ASSERT_RE.search(line)):
                self.report(path, lineno, "bare-assert",
                            "bare assert() in src/ (use SWING_CHECK / "
                            "SWING_DCHECK from common/check.h)")

    # --- Include-cycle rule -------------------------------------------------

    def scan_include_cycles(self, src_root: pathlib.Path):
        graph: dict[str, list[str]] = {}
        known = {
            str(p.relative_to(src_root)): p
            for p in sorted(src_root.rglob("*.h")) + sorted(src_root.rglob("*.hpp"))
        }
        for rel, path in known.items():
            raw = path.read_text(encoding="utf-8", errors="replace")
            # Strip comments but keep string contents: the include path IS a
            # string literal. Commented-out includes blank to nothing.
            stripped = strip_comments_and_strings(raw).splitlines()
            raw_lines = raw.splitlines()
            live = "\n".join(
                raw_lines[i] for i in range(len(raw_lines))
                if i < len(stripped) and "include" in stripped[i])
            deps = []
            for inc in INCLUDE_RE.findall(live):
                if inc in known:
                    deps.append(inc)
                else:
                    sibling = (path.parent / inc).resolve()
                    if sibling.is_relative_to(src_root.resolve()):
                        rel_sib = str(sibling.relative_to(src_root.resolve()))
                        if rel_sib in known:
                            deps.append(rel_sib)
            graph[rel] = deps

        WHITE, GRAY, BLACK = 0, 1, 2
        color = dict.fromkeys(graph, WHITE)
        stack: list[str] = []
        reported: set[frozenset] = set()

        def visit(node: str):
            color[node] = GRAY
            stack.append(node)
            for dep in graph[node]:
                if color[dep] == GRAY:
                    cycle = stack[stack.index(dep):] + [dep]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        self.report(known[dep], 1, "include-cycle",
                                    "include cycle: " + " -> ".join(cycle))
                elif color[dep] == WHITE:
                    visit(dep)
            stack.pop()
            color[node] = BLACK

        for node in graph:
            if color[node] == WHITE:
                visit(node)

    # --- Fuzz-coverage rule -------------------------------------------------

    def scan_fuzz_coverage(self, src_root: pathlib.Path,
                           fuzz_root: pathlib.Path):
        """Every wire decoder decl in src/ needs a fuzz harness.

        Coverage means some fuzz/*.cpp references `T::decode` /
        `T::from_bytes` or instantiates a fuzz_harness.h template with T
        (`swing_fuzz_decode<ns::T>`). Reported at the decl site.
        """
        covered: set[str] = set()
        if fuzz_root.is_dir():
            for harness in sorted(fuzz_root.glob("*.cpp")):
                code = strip_comments_and_strings(
                    harness.read_text(encoding="utf-8", errors="replace"))
                covered.update(FUZZ_REF_RE.findall(code))
                for arg in FUZZ_TEMPLATE_REF_RE.findall(code):
                    covered.add(arg.split("::")[-1].strip())

        for path in sorted(src_root.rglob("*")):
            if path.suffix not in CXX_SUFFIXES:
                continue
            raw = path.read_text(encoding="utf-8", errors="replace")
            raw_lines = raw.splitlines()
            code_lines = strip_comments_and_strings(raw).splitlines()
            for lineno, line in enumerate(code_lines, start=1):
                m = DECODER_DECL_RE.search(line)
                if not m or m.group(1) in covered:
                    continue
                raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
                if "fuzz-harness" in allowed_rules(raw_line):
                    continue
                self.report(
                    path, lineno, "fuzz-harness",
                    f"wire decoder {m.group(1)}::decode has no fuzz "
                    f"harness (add fuzz/fuzz_<name>.cpp; see "
                    f"fuzz/fuzz_harness.h)")

    # --- Drop-reason wiring rule -------------------------------------------

    def scan_drop_reasons(self, header: pathlib.Path,
                          ledger_cpp: pathlib.Path,
                          src_root: pathlib.Path):
        """Each DropReason enumerator must be named and actually raised.

        "Named": referenced in the ledger .cpp (the drop_reason_name switch
        that feeds counters and audit summaries). "Raised": referenced in at
        least one src/ file other than the ledger pair — a reason nobody
        raises is dead taxonomy. Findings land on the enumerator's decl line.
        """
        if not header.is_file():
            return
        raw = header.read_text(encoding="utf-8", errors="replace")
        code = strip_comments_and_strings(raw)
        m = DROP_ENUM_RE.search(code)
        if not m:
            return
        enumerators = DROP_ENUMERATOR_RE.findall(m.group(1))
        if not enumerators:
            return

        ledger_code = ""
        if ledger_cpp.is_file():
            ledger_code = strip_comments_and_strings(
                ledger_cpp.read_text(encoding="utf-8", errors="replace"))
        other_code = []
        for path in sorted(src_root.rglob("*")):
            if path.suffix not in CXX_SUFFIXES:
                continue
            if path.resolve() in (header.resolve(), ledger_cpp.resolve()):
                continue
            other_code.append(strip_comments_and_strings(
                path.read_text(encoding="utf-8", errors="replace")))

        code_lines = code.splitlines()
        raw_lines = raw.splitlines()
        for name in enumerators:
            word = re.compile(rf"\b{re.escape(name)}\b")
            decl_line = next(
                (i for i, line in enumerate(code_lines, start=1)
                 if word.search(line)), 1)
            raw_line = (raw_lines[decl_line - 1]
                        if decl_line <= len(raw_lines) else "")
            if "drop-reason-wired" in allowed_rules(raw_line):
                continue
            if not word.search(ledger_code):
                self.report(
                    header, decl_line, "drop-reason-wired",
                    f"DropReason::{name} has no entry in "
                    f"{ledger_cpp.name}'s drop_reason_name switch "
                    f"(counters and audit summaries would say 'unknown')")
            if not any(word.search(code) for code in other_code):
                self.report(
                    header, decl_line, "drop-reason-wired",
                    f"DropReason::{name} is never raised outside the "
                    f"ledger (dead taxonomy — wire a drop site or remove "
                    f"the enumerator)")

    # --- Stateful-unit rule -------------------------------------------------

    def scan_stateful_units(self, *roots: pathlib.Path):
        """FunctionUnit subclasses with data members must checkpoint.

        State held in members is lost on crash/migration unless the class
        overrides snapshot_state/restore_state (the swing-state contract).
        Classes whose members are genuinely not tuple state (configuration,
        output channels) carry a `// swing-lint: stateless` waiver above or
        inside the class. Member detection is a heuristic: class-scope lines
        declaring a trailing-underscore name.
        """
        for root in roots:
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*")):
                if path.suffix in CXX_SUFFIXES:
                    self._scan_stateful_file(path)

    def _scan_stateful_file(self, path: pathlib.Path):
        raw = path.read_text(encoding="utf-8", errors="replace")
        code = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()

        for m in FUNCTION_UNIT_CLASS_RE.finditer(code):
            open_idx = code.find("{", m.end())
            if open_idx == -1:
                continue
            # Brace-match the class body (comments/strings already blanked).
            depth, i = 0, open_idx
            while i < len(code):
                if code[i] == "{":
                    depth += 1
                elif code[i] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            body = code[open_idx : i + 1]
            if "snapshot_state" in body and "restore_state" in body:
                continue

            decl_line = code.count("\n", 0, m.start()) + 1
            end_line = code.count("\n", 0, i) + 1
            region = "\n".join(raw_lines[max(0, decl_line - 6) : end_line])
            if STATELESS_WAIVER_RE.search(region):
                continue

            # Collect members: lines whose start sits at class scope
            # (depth 1 relative to the class's own opening brace).
            members = []
            line_depth = 0
            for line in body.splitlines():
                if (line_depth == 1 and not MEMBER_EXCLUDE_RE.match(line)):
                    dm = MEMBER_DECL_RE.match(line)
                    if dm:
                        members.append(dm.group(1))
                line_depth += line.count("{") - line.count("}")
            if members:
                self.report(
                    path, decl_line, "stateful-unit-must-checkpoint",
                    f"FunctionUnit subclass {m.group(1)} holds state "
                    f"({', '.join(members)}) but does not override "
                    f"snapshot_state/restore_state; implement the "
                    f"swing-state contract or waive with "
                    f"'// swing-lint: stateless'")

    # --- Tree walks ---------------------------------------------------------

    def scan_tree(self):
        src = self.root / "src"
        for path in sorted(src.rglob("*")):
            if path.suffix in CXX_SUFFIXES:
                exempt = path.is_relative_to(src / "common")
                self.scan_file(path, determinism_exempt=exempt,
                               check_new_delete=True, check_bare_assert=True)
        self.scan_include_cycles(src)
        self.scan_fuzz_coverage(src, self.root / "fuzz")
        self.scan_drop_reasons(src / "core" / "tuple_ledger.h",
                               src / "core" / "tuple_ledger.cpp", src)
        self.scan_stateful_units(src, self.root / "tests",
                                 self.root / "bench", self.root / "examples")
        for tree in ("tests", "bench", "examples", "fuzz"):
            for path in sorted((self.root / tree).rglob("*")):
                if path.suffix in CXX_SUFFIXES:
                    self.scan_file(path, determinism_exempt=False,
                                   check_new_delete=False)


def run_scan(root: pathlib.Path) -> int:
    linter = Linter(root)
    linter.scan_tree()
    for f in linter.findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if linter.findings:
        print(f"swing-lint: {len(linter.findings)} finding(s)", file=sys.stderr)
        return 1
    print("swing-lint: clean")
    return 0


def run_scan_files(root: pathlib.Path, paths: list[pathlib.Path]) -> int:
    """Per-file scan of an explicit subset (swing_check --changed-only).

    Applies the same per-tree flags as scan_tree() but skips the
    cross-file passes (include cycles, drop-reason wiring, fuzz
    coverage, stateful-unit contract) — those need the whole tree and
    run on the full gate. A speed mode, not the gate.
    """
    linter = Linter(root)
    src = root / "src"
    paths = sorted(p for p in paths
                   if p.suffix in CXX_SUFFIXES and p.is_file())
    if not paths:
        print("swing-lint: no C++ sources in the changed set")
        return 0
    for path in paths:
        if path.is_relative_to(src):
            exempt = path.is_relative_to(src / "common")
            linter.scan_file(path, determinism_exempt=exempt,
                             check_new_delete=True, check_bare_assert=True)
        else:
            linter.scan_file(path, determinism_exempt=False,
                             check_new_delete=False)
    for f in linter.findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if linter.findings:
        print(f"swing-lint: {len(linter.findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"swing-lint: clean ({len(paths)} changed files)")
    return 0


# --- Self-test against tools/lint_fixtures ----------------------------------
#
# Each fixture file declares the findings it must produce with lines of the
# form `// expect-lint: <rule>` (one per expected finding of that rule).
# Fixtures with no expect-lint lines must scan clean. The include-cycle rule
# is exercised by the cycle_*.h fixture pair.

EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z-]+)")


def run_self_test(fixtures: pathlib.Path) -> int:
    failures = []
    fixture_files = [p for p in sorted(fixtures.rglob("*")) if p.suffix in CXX_SUFFIXES]
    if not fixture_files:
        print(f"swing-lint self-test: no fixtures under {fixtures}", file=sys.stderr)
        return 1

    linter = Linter(fixtures)
    for path in fixture_files:
        exempt = "exempt" in path.name
        linter.scan_file(path, determinism_exempt=exempt,
                         check_new_delete="no_new_delete" not in path.name,
                         check_bare_assert="no_bare_assert" not in path.name)
    linter.scan_include_cycles(fixtures)
    linter.scan_fuzz_coverage(fixtures, fixtures / "fuzz")
    linter.scan_stateful_units(fixtures)
    linter.scan_drop_reasons(fixtures / "drop_reason" / "tuple_ledger.h",
                             fixtures / "drop_reason" / "tuple_ledger.cpp",
                             fixtures / "drop_reason")

    got = collections.Counter((f.path, f.rule) for f in linter.findings)
    want = collections.Counter()
    for path in fixture_files:
        rel = str(path.relative_to(fixtures))
        for rule in EXPECT_RE.findall(path.read_text(encoding="utf-8")):
            want[(rel, rule)] += 1

    for key in sorted(set(want) | set(got)):
        if want[key] != got[key]:
            failures.append(
                f"{key[0]}: rule '{key[1]}': expected {want[key]} finding(s), "
                f"got {got[key]}")

    if failures:
        for line in failures:
            print(f"swing-lint self-test FAIL: {line}", file=sys.stderr)
        return 1
    print(f"swing-lint self-test: {len(fixture_files)} fixtures, "
          f"{sum(got.values())} expected findings matched")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("--self-test", action="store_true",
                        help="check the rules against tools/lint_fixtures")
    args = parser.parse_args()
    root = args.root.resolve()
    if args.self_test:
        return run_self_test(root / "tools" / "lint_fixtures")
    return run_scan(root)


if __name__ == "__main__":
    sys.exit(main())
