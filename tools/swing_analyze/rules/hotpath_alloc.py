"""hotpath-alloc: no avoidable heap allocation in hot functions.

Every allocation on the per-tuple path is latency the paper's mobile
targets pay at 24 FPS. On the hot set (functions reachable from
SWING_HOT roots — see callgraph.py) this rule flags:

  * `new` expressions and `make_shared`/`make_unique` calls — a heap
    object per tuple/packet;
  * per-iteration temporaries: a `std::string`/`std::vector` local, or a
    local of a record type that owns heap storage (a `net::Message`, a
    `Tuple`), declared *inside* a loop body — one allocation per
    element. Exempt when the local is move-constructed (reuses the
    source's storage) or `std::move`d later in the same loop (the
    deserialize shape: materialise an element, hand its storage to the
    container — the allocation is the element, not scratch);
  * container growth in a loop (`push_back`/`emplace_back`/`insert`/
    `append`) with no preceding `X.reserve(...)` in the same function —
    amortized-O(1) still reallocates log(n) times, and the element count
    is almost always known up front here. Node- and chunk-based
    containers (map/set/deque/list) are exempt: they cannot reserve,
    and their per-node cost is the heavy-copy rule's business.

A first-use allocation that is genuinely amortized (a registry entry, a
lazily built table) is suppressed inline with
`// swing-lint: allow(hotpath-alloc)` plus a justification — the allow
comment is the audit trail.
"""

from __future__ import annotations

from swing_analyze import callgraph, sizing
from swing_analyze.cpp_lexer import Token, match_forward
from swing_analyze.cpp_model import Method, Model
from swing_analyze.finding import Finding

RULE = "hotpath-alloc"

_GROWTH_OPS = {"push_back", "emplace_back", "emplace", "append", "insert"}
# Receiver types that cannot reserve(); growth there is not this rule's
# finding (node allocation per element is inherent to the container).
_NO_RESERVE = ("deque", "list", "map", "set", "queue")


def _receiver_chain(toks: list[Token], i: int) -> list[str]:
    """Identifiers of the member chain ending just before toks[i] ('.')."""
    ids: list[str] = []
    k = i
    while k >= 1 and toks[k].text in (".", "->"):
        k -= 1
        if toks[k].text == ")" or toks[k].text == "]":
            return []  # call/index result receiver: unresolvable
        if toks[k].kind == "id" or toks[k].text == "this":
            ids.append(toks[k].text)
            k -= 1
        else:
            return ids[::-1]
    return ids[::-1]


def _receiver_type(model: Model, method: Method, chain: list[str]) -> str:
    if not chain:
        return ""
    name = chain[-1]
    if method.cls and method.cls in model.records:
        t = model.records[method.cls].fields.get(name)
        if t:
            return t
    return model.field_type(name) or ""


def _in_loop(ranges: list[tuple[int, int]], i: int) -> bool:
    return any(lo <= i < hi for lo, hi in ranges)


def _moved_later(toks: list[Token], name: str, start: int,
                 loops: list[tuple[int, int]], i: int) -> bool:
    """True when `std::move(name)` appears after the decl in its loop."""
    end = max((hi for lo, hi in loops if lo <= i < hi), default=len(toks))
    for k in range(start, min(end, len(toks)) - 2):
        if toks[k].text == "move" and toks[k + 1].text == "(" \
                and toks[k + 2].text == name:
            return True
    return False


def _scan(model: Model, qname: str, method: Method) -> list[Finding]:
    toks = method.body()
    n = len(toks)
    loops = callgraph.loop_ranges(toks)
    findings: list[Finding] = []

    def report(line: int, what: str) -> None:
        findings.append(Finding(
            method.path, line, RULE,
            f"{what} in hot function `{qname}` — the hot set pays this "
            f"per tuple/packet; hoist, reserve, or reuse a buffer"))

    # Receivers reserved anywhere in this function, by chain text.
    reserved: set[str] = set()
    for i, t in enumerate(toks):
        if t.text == "reserve" and i >= 1 and toks[i - 1].text in (".", "->") \
                and i + 1 < n and toks[i + 1].text == "(":
            chain = _receiver_chain(toks, i - 1)
            if chain:
                reserved.add(".".join(chain))

    i = 0
    while i < n:
        t = toks[i]
        # new / make_shared / make_unique --------------------------------
        if t.text == "new" and t.kind == "id":
            report(t.line, "heap allocation (`new`)")
            i += 1
            continue
        if t.text in ("make_shared", "make_unique") and i + 1 < n \
                and toks[i + 1].text in ("<", "("):
            report(t.line, f"heap allocation (`{t.text}`)")
            i += 1
            continue
        # Per-iteration temporaries --------------------------------------
        if _in_loop(loops, i):
            hit = self_decl = None
            if t.text == "std" and i + 2 < n and toks[i + 1].text == "::" \
                    and toks[i + 2].text in ("string", "vector"):
                j = i + 3
                if j < n and toks[j].text == "<":
                    depth = 0
                    while j < n:
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                j += 1
                                break
                        elif toks[j].text == ">>":
                            depth -= 2
                            if depth <= 0:
                                j += 1
                                break
                        j += 1
                if j < n and toks[j].kind == "id" \
                        and not _moved_later(toks, toks[j].text, j, loops, i):
                    hit = f"per-iteration `std::{toks[i + 2].text}` temporary"
                    self_decl = j
            elif t.kind == "id" and t.text in model.records \
                    and i + 2 < n and toks[i + 1].kind == "id" \
                    and toks[i + 2].text in ("=", "(", "{", ";"):
                width = sizing.record_width(model, t.text)
                rec = model.records[t.text]
                dynamic = any(sizing.is_dynamic(ft)
                              for ft in rec.fields.values())
                # Only records that own heap storage allocate per iteration;
                # a wide but flat local (a ByteReader view, a DelayBreakdown)
                # is stack traffic, which is heavy-copy's business.
                if dynamic:
                    # A move-construction reuses the source's storage.
                    lookahead = " ".join(
                        x.text for x in toks[i + 2:i + 8])
                    if "std :: move" not in lookahead \
                            and not _moved_later(toks, toks[i + 1].text,
                                                 i + 2, loops, i):
                        hit = (f"per-iteration `{t.text}` temporary "
                               f"(~{width} bytes + owned heap storage)")
                        self_decl = i + 1
            if hit:
                report(t.line, hit)
                i = (self_decl or i) + 1
                continue
        # Container growth in a loop without reserve ---------------------
        if t.text in _GROWTH_OPS and i >= 1 \
                and toks[i - 1].text in (".", "->") \
                and i + 1 < n and toks[i + 1].text == "(" \
                and _in_loop(loops, i):
            chain = _receiver_chain(toks, i - 1)
            key = ".".join(chain)
            rtype = _receiver_type(model, method, chain)
            exempt = any(word in rtype for word in _NO_RESERVE)
            if chain and not exempt and key not in reserved:
                report(t.line,
                       f"`{key}.{t.text}(...)` grows a container in a loop "
                       f"with no preceding `{key}.reserve(...)`")
        i += 1
    return findings


def run(model: Model, ctx) -> list[Finding]:
    graph = callgraph.cached(model)
    findings: list[Finding] = []
    for qname, method in graph.hot_methods():
        findings.extend(_scan(model, qname, method))
    return findings
