"""codec-symmetry: encoder/decoder field sequences must mirror each other.

For every record that defines a codec pair — encode/decode (wire plane v2),
snapshot_state/restore_state, or the legacy to_bytes/from_bytes and
serialize/deserialize names (kept so a straggler revival still fails CI) —
this rule extracts the ordered sequence of wire operations each side
performs and verifies they match in order, count, width, and loop-nesting
depth:

    w.write_u64(x)            <->  r.read_u64()
    w.write_varint(n); loop   <->  r.read_varint(); loop
    field.encode(w)           <->  Type::decode(r)

Zero-copy reads canonicalise to the write op that produced the bytes:
`read_view()` pairs with `write_string(...)` and `read_span()` with
`write_bytes(...)` — same octets, borrowed instead of copied. `take_span(n)`
is NOT a wire op (it carves an already-counted sub-frame), so the v2
length-prefixed nested idiom is symmetric by construction:

    w.write_varint(t.encoded_size());   <->  n = r.read_varint();
    t.encode(w);                             sub = ByteReader{r.take_span(n)};
                                             T::decode(sub);

Width drift (write_u32 read back as read_u64), a swapped field pair, or a
field added to only one side is an error even when round-trip tests happen
to pass (a symmetric *bug* round-trips fine; peers running the old decoder
do not). Loop depth is part of the shape: an op written once but read
per-element is a count mismatch the byte stream cannot reveal on small
inputs.

Out-of-stream helpers are deliberately NOT ops: `x.to_bytes()` inside
`write_bytes(...)` and `T::from_bytes(r.read_bytes())` operate on a
detached buffer — the stream op is the write_bytes/read_bytes pair.

Limitations (documented, not silent): ops under `if`/`switch` are compared
positionally like unconditional ops; codecs in this repo are straight-line
(conditionals guard only validation/throws), and new conditional codecs
should stay that way — a tagged union belongs in a nested type with its
own pair.
"""

from __future__ import annotations

import dataclasses
import re

from swing_analyze.cpp_lexer import Token, match_forward
from swing_analyze.cpp_model import Method, Model, Record
from swing_analyze.finding import Finding

RULE = "codec-symmetry"

PAIRS = [
    ("encode", "decode"),
    ("snapshot_state", "restore_state"),
    # Legacy pair names: gone from src since the wire-plane v2 redesign, but
    # still recognised so an accidental revival is caught, not ignored.
    ("to_bytes", "from_bytes"),
    ("serialize", "deserialize"),
]

# Zero-copy read ops viewed against the owning write op that framed them.
_READ_CANON = {
    "view": "string",
    "span": "bytes",
}

_ELEMENT_RE = re.compile(
    r"\b(?:vector|deque|list|array|span)\s*<\s*(.+?)\s*>?\s*$")


@dataclasses.dataclass
class Op:
    kind: str    # 'op' (fixed-width / length-prefixed) | 'nested'
    detail: str  # width name (u64, varint, bytes, ...) or nested type / '?'
    depth: int   # loop-nesting depth
    line: int

    def describe(self) -> str:
        what = (f"nested {self.detail}" if self.kind == "nested"
                else self.detail)
        return f"{what}@loop{self.depth}"


def _last_id(type_text: str) -> str | None:
    ids = re.findall(r"[A-Za-z_]\w*", type_text)
    return ids[-1] if ids else None


def _element_type(type_text: str) -> str | None:
    m = _ELEMENT_RE.search(type_text)
    if not m:
        return None
    inner = m.group(1)
    # First template argument only (vector<T, Alloc> is not used here).
    inner = inner.split(",")[0]
    return _last_id(inner)


class _Extractor:
    def __init__(self, method: Method, record: Record, model: Model,
                 mode: str) -> None:
        self.toks = method.body()
        self.record = record
        self.model = model
        self.mode = mode  # 'write' | 'read'
        self.ops: list[Op] = []
        self.bindings: dict[str, str] = {}  # loop var -> element type name

    # --- type resolution ----------------------------------------------------

    def _resolve_name(self, name: str) -> str | None:
        """Resolves an identifier to a record-type name, best effort."""
        if name in self.bindings:
            return self.bindings[name]
        if name in self.record.fields:
            return _last_id(self.record.fields[name])
        t = self.model.field_type(name)
        return _last_id(t) if t else None

    def _resolve_chain(self, chain: list[str]) -> str | None:
        """Resolves `a.b.c` to the type of the final field."""
        current: str | None = None
        for part in chain:
            if current and current in self.model.records:
                t = self.model.records[current].fields.get(part)
                current = _last_id(t) if t else self._resolve_name(part)
            else:
                current = self._resolve_name(part)
        return current

    def _chain_before(self, i: int) -> list[str]:
        """Collects the `a.b` id chain ending just before token index i."""
        chain: list[str] = []
        k = i
        while k >= 0:
            if self.toks[k].kind == "id":
                chain.append(self.toks[k].text)
                if k - 1 >= 0 and self.toks[k - 1].text in (".", "->"):
                    k -= 2
                    continue
            break
        chain.reverse()
        return chain

    def _bind_range_for(self, header: list[Token]) -> None:
        colon = next((k for k, t in enumerate(header) if t.text == ":"), None)
        if colon is None:
            return
        var = None
        for t in reversed(header[:colon]):
            if t.kind == "id" and t.text not in ("auto", "const"):
                var = t.text
            break
        if var is None or "]" in {t.text for t in header[:colon]}:
            return  # structured bindings carry no single name
        expr = [t for t in header[colon + 1:]]
        chain = [t.text for t in expr if t.kind == "id"]
        if not chain:
            return
        container = None
        if len(chain) == 1:
            container = chain[0]
            type_text = (self.record.fields.get(container)
                         or self.model.field_type(container) or "")
        else:
            base = self._resolve_chain(chain[:-1])
            type_text = ""
            if base and base in self.model.records:
                type_text = self.model.records[base].fields.get(chain[-1], "")
        element = _element_type(type_text)
        if element:
            self.bindings[var] = element

    # --- op extraction ------------------------------------------------------

    def extract(self) -> list[Op]:
        self._walk(0, len(self.toks), 0)
        return self.ops

    def _walk(self, i: int, end: int, depth: int) -> None:
        while i < end:
            t = self.toks[i]
            if t.text in ("for", "while") and i + 1 < end \
                    and self.toks[i + 1].text == "(":
                rp = match_forward(self.toks, i + 1, "(", ")")
                self._bind_range_for(self.toks[i + 2:rp])
                i = self._body(min(rp + 1, end), end, depth + 1)
            elif t.text in ("if", "switch") and i + 1 < end \
                    and self.toks[i + 1].text == "(":
                rp = match_forward(self.toks, i + 1, "(", ")")
                self._scan_range(i + 2, min(rp, end), depth)
                i = self._body(min(rp + 1, end), end, depth)
                while i < end and self.toks[i].text == "else":
                    i = self._body(i + 1, end, depth)
            else:
                self._scan_at(i, depth)
                i += 1

    def _body(self, i: int, end: int, depth: int) -> int:
        if i < end and self.toks[i].text == "{":
            close = match_forward(self.toks, i, "{", "}")
            self._walk(i + 1, min(close, end), depth)
            return min(close + 1, end)
        j, pd = i, 0
        while j < end:
            tt = self.toks[j].text
            if tt == "(":
                pd += 1
            elif tt == ")":
                pd -= 1
            elif tt == ";" and pd == 0:
                break
            j += 1
        self._walk(i, min(j + 1, end), depth)
        return j + 1

    def _scan_range(self, i: int, end: int, depth: int) -> None:
        while i < end:
            self._scan_at(i, depth)
            i += 1

    def _scan_at(self, i: int, depth: int) -> None:
        t = self.toks[i]
        if t.kind != "id":
            return
        nxt = self.toks[i + 1].text if i + 1 < len(self.toks) else ""
        if nxt != "(":
            return
        if self.mode == "write" and t.text.startswith("write_"):
            self.ops.append(Op("op", t.text[len("write_"):], depth, t.line))
        elif self.mode == "read" and t.text.startswith("read_"):
            detail = _READ_CANON.get(t.text[len("read_"):],
                                     t.text[len("read_"):])
            self.ops.append(Op("op", detail, depth, t.line))
        elif self.mode == "read" and t.text in ("deserialize", "decode") \
                and i >= 2 and self.toks[i - 1].text == "::" \
                and self.toks[i - 2].kind == "id":
            self.ops.append(Op("nested", self.toks[i - 2].text, depth,
                               t.line))
        elif self.mode == "write" and t.text in ("serialize", "encode") \
                and i >= 2 and self.toks[i - 1].text in (".", "->"):
            chain = self._chain_before(i - 2)
            resolved = self._resolve_chain(chain) if chain else None
            self.ops.append(Op("nested", resolved or "?", depth, t.line))


def _compare(rec: Record, wm: Method, rm: Method, writes: list[Op],
             reads: list[Op]) -> list[Finding]:
    findings: list[Finding] = []
    for idx, (w, r) in enumerate(zip(writes, reads)):
        mismatch = (w.kind != r.kind or w.depth != r.depth
                    or (w.kind == "op" and w.detail != r.detail)
                    or (w.kind == "nested" and "?" not in (w.detail, r.detail)
                        and w.detail != r.detail))
        if mismatch:
            findings.append(Finding(
                rm.path, r.line, RULE,
                f"{rec.name}: wire op #{idx + 1} drifted — {wm.name} emits "
                f"{w.describe()} (line {w.line}) but {rm.name} consumes "
                f"{r.describe()}"))
            return findings  # First divergence; the rest is cascade noise.
    if len(writes) != len(reads):
        longer, shorter = (wm, rm) if len(writes) > len(reads) else (rm, wm)
        extra = (writes if len(writes) > len(reads) else reads)[
            min(len(writes), len(reads))]
        findings.append(Finding(
            rm.path, extra.line, RULE,
            f"{rec.name}: {wm.name} emits {len(writes)} wire op(s) but "
            f"{rm.name} consumes {len(reads)} — {longer.name} has "
            f"unmatched {extra.describe()} (vs {shorter.name})"))
    return findings


def run(model: Model, ctx) -> list[Finding]:
    findings: list[Finding] = []
    for name in sorted(model.records):
        rec = model.records[name]
        for wname, rname in PAIRS:
            wm, rm = rec.methods.get(wname), rec.methods.get(rname)
            if wm is None or rm is None:
                continue
            writes = _Extractor(wm, rec, model, "write").extract()
            reads = _Extractor(rm, rec, model, "read").extract()
            if not writes and not reads:
                continue  # Not a wire codec (e.g. unrelated serialize()).
            findings.extend(_compare(rec, wm, rm, writes, reads))
    return findings
