"""Rule registry for swing-analyze.

Each rule module exposes RULE (its kebab-case name) and
run(model, ctx) -> list[Finding]. ctx is the engine's RuleContext
(known-metrics manifest, scan roots).
"""

from __future__ import annotations

from swing_analyze.rules import (
    codec_symmetry,
    dcheck_side_effect,
    metric_name_consistency,
    nondet_iteration,
    switch_exhaustiveness,
)

ALL_RULES = [
    codec_symmetry,
    nondet_iteration,
    dcheck_side_effect,
    switch_exhaustiveness,
    metric_name_consistency,
]

RULE_NAMES = [r.RULE for r in ALL_RULES]
