"""Rule registry for swing-analyze.

Each rule module exposes RULE (its kebab-case name) and
run(model, ctx) -> list[Finding]. ctx is the engine's RuleContext
(known-metrics manifest, scan roots).
"""

from __future__ import annotations

from swing_analyze.rules import (
    codec_hot,
    codec_symmetry,
    dcheck_side_effect,
    double_lookup,
    heavy_copy,
    hotpath_alloc,
    metric_name_consistency,
    nondet_iteration,
    switch_exhaustiveness,
)

ALL_RULES = [
    codec_symmetry,
    codec_hot,
    nondet_iteration,
    dcheck_side_effect,
    switch_exhaustiveness,
    metric_name_consistency,
    hotpath_alloc,
    heavy_copy,
    double_lookup,
]

# The interprocedural rules that only run on the SWING_HOT-rooted hot
# set; `--report hotpath` re-runs exactly these for the scoreboard.
# codec-hot rides along: a codec outside the hot set is a scoreboard
# blind spot, which is precisely what the report exists to prevent.
HOTPATH_RULES = [hotpath_alloc, heavy_copy, double_lookup, codec_hot]

RULE_NAMES = [r.RULE for r in ALL_RULES]
