"""nondet-iteration: unordered-container iteration must not reach
order-sensitive sinks.

Hash-map iteration order is implementation- and run-dependent. A range-for
over an `unordered_map`/`unordered_set` whose body reaches an
order-sensitive sink — the tuple-ledger digest, an obs counter/histogram,
the tracer, serialization, or simulator event scheduling — leaks that
order into state the determinism suite asserts is byte-identical per seed.
The canonical safe patterns, which this rule deliberately does NOT flag:

  * drain into a vector inside the loop, std::sort, then sink
    (core/latency_estimator.h::estimates), and
  * membership-only use (contains/find/erase) with no iteration at all.

Detection: for each range-for, the iterated expression is classed
unordered if (a) its tokens name an unordered container directly, (b) it
is a variable whose declared type — local, member of the enclosing class
(cross-file via the symbol table), or any record field — contains
`unordered_`, or (c) it dereferences an iterator obtained from
`X.find(...)`/`X.begin()` where X's mapped type is itself unordered. The
loop body then taints one call level deep through methods defined in the
same file (enough to catch `drop_message(...)` style indirection) and
fires if any sink identifier is invoked.
"""

from __future__ import annotations

import re

from swing_analyze.cpp_lexer import Token, match_forward
from swing_analyze.cpp_model import Method, Model
from swing_analyze.finding import Finding

RULE = "nondet-iteration"

# Identifiers whose invocation inside a tainted loop is order-sensitive.
SINKS = {
    # tuple-ledger events fold into the order-sensitive FNV digest
    "on_emitted", "on_reemitted", "on_delivered", "on_consumed",
    "on_dropped", "on_in_flight_at_shutdown", "on_retransmitted",
    "on_deduplicated", "on_played", "on_latency_sample", "on_control_event",
    "fold", "violation", "digest",
    # obs: metric mutation order shows up in snapshots and bench reports
    "inc", "record", "span", "counter", "gauge", "histogram",
    # serialization: byte output order is the wire format
    "serialize", "to_bytes", "snapshot_state",
    # simulator/network: scheduling order decides equal-timestamp FIFO
    "schedule_at", "schedule_after", "send", "emit",
    # drop callbacks chain into the ledger via transport/worker
    "on_drop", "on_deliver",
}
_WRITE_PREFIX = "write_"

_UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")


def _mapped_type(type_text: str) -> str:
    """Second top-level template argument of an unordered_map type text."""
    m = re.search(r"unordered_map\s*<(.*)>\s*$", type_text)
    if not m:
        return ""
    depth, start, args = 0, 0, []
    inner = m.group(1)
    for k, ch in enumerate(inner):
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        elif ch == "," and depth == 0:
            args.append(inner[start:k])
            start = k + 1
    args.append(inner[start:])
    return args[1] if len(args) > 1 else ""


class _Scanner:
    def __init__(self, model: Model, method: Method,
                 file_methods: dict[str, Method]) -> None:
        self.model = model
        self.method = method
        self.file_methods = file_methods
        self.toks = method.body()
        self.local_types = self._collect_local_types()
        self.iter_sources = self._collect_iterator_sources()

    def _collect_local_types(self) -> dict[str, str]:
        """Maps local variable names to declared types naming unordered_*."""
        out: dict[str, str] = {}
        i, n = 0, len(self.toks)
        while i < n:
            t = self.toks[i]
            if t.kind == "id" and _UNORDERED_RE.search(t.text):
                j, angle = i + 1, 0
                type_end = j
                while j < n:
                    tt = self.toks[j].text
                    if tt == "<":
                        angle += 1
                    elif tt == ">":
                        angle -= 1
                        if angle == 0:
                            type_end = j + 1
                            break
                    elif tt == ">>":
                        angle -= 2
                        if angle <= 0:
                            type_end = j + 1
                            break
                    elif angle == 0:
                        break
                    j += 1
                k = type_end
                while k < n and self.toks[k].text in ("&", "*", "const"):
                    k += 1
                if k < n and self.toks[k].kind == "id":
                    out[self.toks[k].text] = t.text
                i = max(type_end, i + 1)
            else:
                i += 1
        return out

    def _collect_iterator_sources(self) -> dict[str, str]:
        """Maps `auto it = X.find(...)` iterators to their container X."""
        out: dict[str, str] = {}
        n = len(self.toks)
        for i in range(n - 5):
            if (self.toks[i].text == "auto"
                    and self.toks[i + 1].kind == "id"
                    and self.toks[i + 2].text == "="):
                k = i + 3
                if k + 2 < n and self.toks[k].kind == "id" \
                        and self.toks[k + 1].text in (".", "->") \
                        and self.toks[k + 2].text in ("find", "begin",
                                                      "lower_bound"):
                    out[self.toks[i + 1].text] = self.toks[k].text
        return out

    def _type_of(self, name: str) -> str:
        if name in self.local_types:
            return self.local_types[name]
        cls = self.method.cls
        if cls and cls in self.model.records:
            t = self.model.records[cls].fields.get(name)
            if t:
                return t
        return self.model.field_type(name) or ""

    def _expr_is_unordered(self, expr: list[Token]) -> bool:
        if any(_UNORDERED_RE.search(t.text) for t in expr if t.kind == "id"):
            return True
        ids = [t.text for t in expr if t.kind == "id"]
        if not ids:
            return False
        # `it->second` where `it` walks an unordered_map whose mapped type
        # is itself unordered (nested registries).
        if len(ids) >= 2 and ids[-1] == "second" \
                and ids[0] in self.iter_sources:
            container = self._type_of(self.iter_sources[ids[0]])
            return bool(_UNORDERED_RE.search(_mapped_type(container)))
        if len(ids) == 1:
            return bool(_UNORDERED_RE.search(self._type_of(ids[0])))
        # `obj.member`: resolve the final field anywhere in the model.
        t = self.model.field_type(ids[-1]) or ""
        return bool(_UNORDERED_RE.search(t))

    def _find_sink(self, body: list[Token], visited: set[str]) -> str | None:
        n = len(body)
        for i, t in enumerate(body):
            if t.kind != "id" or i + 1 >= n or body[i + 1].text != "(":
                continue
            if t.text in SINKS or t.text.startswith(_WRITE_PREFIX):
                return t.text
            callee = self.file_methods.get(t.text)
            if callee is not None and t.text not in visited:
                visited.add(t.text)
                hit = self._find_sink(callee.body(), visited)
                if hit:
                    return f"{t.text} -> {hit}"
        return None

    def scan(self) -> list[Finding]:
        findings: list[Finding] = []
        toks, n = self.toks, len(self.toks)
        i = 0
        while i < n:
            if toks[i].text != "for" or i + 1 >= n \
                    or toks[i + 1].text != "(":
                i += 1
                continue
            rp = match_forward(toks, i + 1, "(", ")")
            header = toks[i + 2:rp]
            colon = next((k for k, t in enumerate(header)
                          if t.text == ":"), None)
            if colon is None:
                i = rp + 1
                continue
            expr = header[colon + 1:]
            if not self._expr_is_unordered(expr):
                i = rp + 1
                continue
            body_start = rp + 1
            if body_start < n and toks[body_start].text == "{":
                body_end = match_forward(toks, body_start, "{", "}")
                body = toks[body_start + 1:body_end]
            else:
                j, pd = body_start, 0
                while j < n:
                    tt = toks[j].text
                    if tt == "(":
                        pd += 1
                    elif tt == ")":
                        pd -= 1
                    elif tt == ";" and pd == 0:
                        break
                    j += 1
                body, body_end = toks[body_start:j], j
            sink = self._find_sink(body, set())
            if sink:
                expr_text = " ".join(t.text for t in expr)
                findings.append(Finding(
                    self.method.path, toks[i].line, RULE,
                    f"iteration over unordered container `{expr_text}` "
                    f"reaches order-sensitive sink `{sink}` — hash-map "
                    f"order leaks into digests/metrics/wire bytes; drain "
                    f"into a sorted vector first"))
            i = body_end + 1
        return findings


def run(model: Model, ctx) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted(model.files):
        fm = model.files[path]
        file_methods = {m.name: m for m in fm.methods}
        for m in fm.methods:
            findings.extend(_Scanner(model, m, file_methods).scan())
    return findings
