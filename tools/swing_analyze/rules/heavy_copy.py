"""heavy-copy: no by-value passes or returns of heavy records on the
hot path.

On the hot set (see callgraph.py) this rule flags three shapes:

  * a parameter taken by value whose estimated size (additive over the
    symbol table's field widths — sizing.py) exceeds HEAVY_BYTES, or
    whose type owns heap storage (string/vector/record containing them):
    every call copies. Exempt when the body `std::move`s the parameter
    (the by-value-then-move sink idiom is the *correct* way to take
    ownership) or assigns into it (`p.field = ...`): copy-to-mutate
    keeps the caller's object intact on purpose, and callers that hand
    over ownership already pay only a move;
  * a `shared_ptr` parameter taken by value that the body never moves:
    the copy is an atomic refcount round-trip per call where a
    `const&`/raw pointer would do;
  * return-by-value of a type that owns heap storage (string, vector,
    Bytes, ...): the fresh buffer per call is exactly what the
    zero-copy rewrite removes. Plain records are NOT flagged on return
    — C++17 guarantees copy elision for prvalue returns and NRVO covers
    the named case, so returning a flat struct costs nothing. Exempt
    when every `return` in the body moves out a member (`return
    std::move(x)` — e.g. ByteWriter::take, which hands over storage it
    already owns).

The wire codecs (`to_bytes` returning Bytes, `from_bytes` returning the
record) fire this rule by design. They are carried as *tracked baseline
entries* (tools/swing_analyze/baseline.json), not inline suppressions:
the `--report hotpath` scoreboard keeps counting them, and the baseline
shrinks entry by entry as the arena/span rewrite lands. Inline allows
are reserved for copies that are load-bearing (e.g. a snapshot taken on
purpose).
"""

from __future__ import annotations

from swing_analyze import callgraph, sizing
from swing_analyze.cpp_lexer import Token
from swing_analyze.cpp_model import Method, Model
from swing_analyze.finding import Finding

RULE = "heavy-copy"

_SPECIFIERS = {
    "static", "inline", "constexpr", "virtual", "explicit", "friend",
    "nodiscard", "maybe_unused", "SWING_HOT", "SWING_COLD", "typename",
}


def _split_params(toks: list[Token]) -> list[list[Token]]:
    params: list[list[Token]] = []
    depth = 0
    cur: list[Token] = []
    for t in toks:
        if t.text in ("<", "(", "[", "{"):
            depth += 1
        elif t.text in (">", ")", "]", "}"):
            depth -= 1
        elif t.text == ">>":
            depth -= 2
        if t.text == "," and depth == 0:
            params.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        params.append(cur)
    return params


def _moved_in_body(method: Method, name: str) -> bool:
    toks = method.body()
    for i in range(len(toks) - 2):
        if toks[i].text == "move" and toks[i + 1].text == "(" \
                and toks[i + 2].text == name:
            return True
    return False


def _mutated_in_body(method: Method, name: str) -> bool:
    """True when the body assigns into the parameter (p = / p.f.g = ...)."""
    toks = method.body()
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != name:
            continue
        if i > 0 and toks[i - 1].text in (".", "->", "::"):
            continue  # member of something else, not the parameter
        j = i + 1
        while j + 1 < n and toks[j].text in (".", "->") \
                and toks[j + 1].kind == "id":
            j += 2
        if j < n and toks[j].text in ("=", "+=", "-=", "*=", "/=",
                                      "|=", "&=", "^=", "++", "--"):
            return True
    return False


def _all_returns_move(method: Method) -> bool:
    """True when every return statement moves (storage handoff, no copy)."""
    toks = method.body()
    n = len(toks)
    saw_return = False
    for i, t in enumerate(toks):
        if t.text != "return":
            continue
        saw_return = True
        nxt = " ".join(x.text for x in toks[i + 1:i + 4])
        if not nxt.startswith("std :: move"):
            return False
    return saw_return


def _return_type_tokens(method: Method) -> list[Token]:
    if method.decl_start < 0 or method.lp < 0:
        return []
    end = method.lp - 1
    if end - 2 >= method.decl_start \
            and method.tokens[end - 1].text == "::":
        end -= 2
    return [t for t in method.tokens[method.decl_start:end]
            if not (t.kind == "id" and t.text in _SPECIFIERS)
            and t.text not in ("[", "]")]  # [[nodiscard]] brackets


def _type_text(toks: list[Token]) -> str:
    return " ".join(t.text for t in toks)


def _scan(model: Model, qname: str, method: Method) -> list[Finding]:
    findings: list[Finding] = []

    # --- by-value parameters -------------------------------------------
    for param in _split_params(method.param_tokens()):
        if not param:
            continue
        texts = [t.text for t in param]
        if "&" in texts or "&&" in texts or "*" in texts:
            continue  # by reference / pointer: no copy
        if "=" in texts:
            param = param[:texts.index("=")]
            texts = texts[:len(param)]
        if len(param) < 2 or param[-1].kind != "id":
            continue  # unnamed or unparsable
        name = param[-1].text
        type_toks = [t for t in param[:-1]
                     if not (t.kind == "id" and t.text in _SPECIFIERS)]
        if not type_toks:
            continue
        type_text = _type_text(type_toks)
        line = param[0].line
        if "shared_ptr" in type_text:
            if not _moved_in_body(method, name):
                findings.append(Finding(
                    method.path, line, RULE,
                    f"hot function `{qname}` copies `shared_ptr` parameter "
                    f"`{name}` (atomic refcount per call) — take const& or "
                    f"a raw pointer, or std::move it into storage"))
            continue
        width = sizing.type_width(model, type_text)
        if width > sizing.HEAVY_BYTES or sizing.is_dynamic(type_text):
            if not _moved_in_body(method, name) \
                    and not _mutated_in_body(method, name):
                findings.append(Finding(
                    method.path, line, RULE,
                    f"hot function `{qname}` takes `{name}` "
                    f"(`{type_text}`, ~{width} bytes) by value and never "
                    f"moves it — pass by const& to avoid a copy per call"))

    # --- return-by-value ------------------------------------------------
    rt = _return_type_tokens(method)
    rt_text = _type_text(rt)
    if rt and "&" not in rt_text and "*" not in rt_text \
            and "void" not in rt_text and method.name != (method.cls or "") \
            and sizing.is_dynamic(rt_text) \
            and not _all_returns_move(method):
        line = method.tokens[method.lp - 1].line if method.lp > 0 \
            else method.line
        findings.append(Finding(
            method.path, line, RULE,
            f"hot function `{qname}` returns `{rt_text}` by value — the "
            f"returned object owns heap storage, a fresh allocation per "
            f"call; the zero-copy rewrite writes into a caller-supplied "
            f"buffer instead"))
    return findings


def run(model: Model, ctx) -> list[Finding]:
    graph = callgraph.cached(model)
    findings: list[Finding] = []
    for qname, method in graph.hot_methods():
        findings.extend(_scan(model, qname, method))
    return findings
