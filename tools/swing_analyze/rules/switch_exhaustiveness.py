"""switch-exhaustiveness: watched enums must be switched exhaustively,
with no `default:`.

For the wire/determinism-critical enums — DropReason (core and net both
define one), obs::TracePhase, and runtime::MsgType — a `default:` arm is
a trap: when the next PR adds an enumerator (a new drop reason, trace
phase, or message kind), the default silently swallows it and the
compiler's -Wswitch, which only fires on *uncovered* enumerators in
default-less switches, stays quiet. The repo convention is therefore to
enumerate every case explicitly (see tracer.cpp's trace_phase_name: the
post-switch `return "unknown"` handles out-of-range wire bytes without a
default arm).

Sentinel enumerators named like `k...Count` are exempt from the coverage
requirement — they exist to size arrays, not to be handled.

The switch's subject enum is identified from its qualified case labels
(`DropReason::kStaleTtl` -> DropReason) and resolved against the symbol
table; when two enums share a name, enumerator overlap disambiguates.
"""

from __future__ import annotations

import re

from swing_analyze.cpp_lexer import match_forward
from swing_analyze.cpp_model import Model
from swing_analyze.finding import Finding

RULE = "switch-exhaustiveness"

WATCHED = {"DropReason", "TracePhase", "MsgType"}

_SENTINEL_RE = re.compile(r"^k\w*Count$")


def _switch_labels(toks, open_: int, close: int):
    """Yields (enum_name, enumerator) case labels and default presence at
    the switch's own depth (nested switches are skipped)."""
    labels: list[tuple[str | None, str]] = []
    has_default = False
    default_line = None
    i, depth = open_ + 1, 1
    while i < close:
        t = toks[i]
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            depth -= 1
        elif depth == 1 and t.text == "switch":
            # Nested switch: skip its body entirely.
            if i + 1 < close and toks[i + 1].text == "(":
                rp = match_forward(toks, i + 1, "(", ")")
                if rp + 1 < close and toks[rp + 1].text == "{":
                    i = match_forward(toks, rp + 1, "{", "}")
        elif depth == 1 and t.text == "case":
            j = i + 1
            parts = []
            while j < close and toks[j].text != ":":
                parts.append(toks[j])
                j += 1
            ids = [p.text for p in parts if p.kind == "id"]
            if ids:
                ename = ids[-2] if len(ids) >= 2 else None
                labels.append((ename, ids[-1]))
            i = j
        elif depth == 1 and t.text == "default" \
                and i + 1 < close and toks[i + 1].text == ":":
            has_default = True
            default_line = t.line
        i += 1
    return labels, has_default, default_line


def run(model: Model, ctx) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted(model.files):
        toks = model.files[path].tokens
        n = len(toks)
        i = 0
        while i < n:
            if toks[i].text != "switch" or i + 1 >= n \
                    or toks[i + 1].text != "(":
                i += 1
                continue
            line = toks[i].line
            rp = match_forward(toks, i + 1, "(", ")")
            if rp + 1 >= n or toks[rp + 1].text != "{":
                i = rp + 1
                continue
            close = match_forward(toks, rp + 1, "{", "}")
            labels, has_default, default_line = _switch_labels(
                toks, rp + 1, close)
            i = close + 1

            enum_names = {e for e, _ in labels if e}
            watched_name = next((e for e in enum_names if e in WATCHED),
                                None)
            if watched_name is None:
                continue
            covered = {lab for _, lab in labels}
            candidates = model.enums_named(watched_name)
            if not candidates:
                continue
            enum = max(candidates,
                       key=lambda e: len(set(e.enumerators) & covered))
            if has_default:
                findings.append(Finding(
                    path, default_line or line, RULE,
                    f"`default:` on a switch over watched enum "
                    f"{watched_name} — a future enumerator would be "
                    f"silently swallowed and -Wswitch muted; enumerate "
                    f"the ignored kinds explicitly"))
            missing = [e for e in enum.enumerators
                       if e not in covered and not _SENTINEL_RE.match(e)]
            if missing:
                findings.append(Finding(
                    path, line, RULE,
                    f"switch over watched enum {watched_name} misses "
                    f"enumerator(s): {', '.join(missing)}"))
    return findings
