"""double-lookup: the same map key must not be looked up twice in one
scope.

`m.count(k)` followed by `m.at(k)`, or `m.find(k)` followed by `m[k]`,
walks the tree / hashes the key twice for one logical access — on the
hot set that is measurable work, and the single-lookup form
(`find` once, use the iterator; `try_emplace`; `insert`'s bool) is
always available.

Detection: within one hot function body (the scope), every keyed lookup
is collected as (receiver chain, normalized key expression). Lookup ops
are the member calls `find`/`count`/`contains`/`at` and `operator[]`.
To keep vectors out of it, `operator[]` and `at` only count when the
receiver's declared type resolves to a map (cross-file via the symbol
table); `find`/`count`/`contains` count whenever the type is map-like
or unknown (locals are not modeled — those names are map-idiomatic).
A second lookup of the same (receiver, key) fires at its line.
"""

from __future__ import annotations

from swing_analyze import callgraph
from swing_analyze.cpp_lexer import Token, match_forward
from swing_analyze.cpp_model import Method, Model
from swing_analyze.finding import Finding

RULE = "double-lookup"

_MAP_OPS = {"find", "count", "contains", "at"}
# at/operator[] need a proven map receiver; find/count/contains are
# map-idiomatic enough to count on unknown receivers too.
_NEED_PROOF = {"at", "[]"}


def _receiver_chain(toks: list[Token], i: int) -> list[str]:
    ids: list[str] = []
    k = i
    while k >= 1 and toks[k].text in (".", "->"):
        k -= 1
        if toks[k].text in (")", "]"):
            return []
        if toks[k].kind == "id" or toks[k].text == "this":
            ids.append(toks[k].text)
            k -= 1
        else:
            break
    return ids[::-1]


def _receiver_is_map(model: Model, method: Method, chain: list[str]) -> bool:
    if not chain:
        return False
    name = chain[-1]
    t = ""
    if method.cls and method.cls in model.records:
        t = model.records[method.cls].fields.get(name) or ""
    if not t:
        t = model.field_type(name) or ""
    return "map" in t


def _key_text(toks: list[Token], lo: int, hi: int) -> str:
    return " ".join(t.text for t in toks[lo:hi])


def _scan(model: Model, qname: str, method: Method) -> list[Finding]:
    toks = method.body()
    n = len(toks)
    lookups: list[tuple[str, str, str, int]] = []  # (recv, key, op, line)

    i = 0
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text in _MAP_OPS and i >= 1 \
                and toks[i - 1].text in (".", "->") \
                and i + 1 < n and toks[i + 1].text == "(":
            chain = _receiver_chain(toks, i - 1)
            if chain:
                rp = match_forward(toks, i + 1, "(", ")")
                key = _key_text(toks, i + 2, rp)
                if key:
                    is_map = _receiver_is_map(model, method, chain)
                    if is_map or (t.text not in _NEED_PROOF):
                        lookups.append((".".join(chain), key, t.text, t.line))
                i = rp
        elif t.text == "[" and i >= 1 and toks[i - 1].kind == "id":
            # receiver[key]: count only for proven map receivers.
            k = i - 1
            while k >= 1 and (toks[k].kind == "id"
                              or toks[k].text in (".", "->", "this")):
                k -= 1
            chain_toks = toks[k + 1:i]
            chain = [x.text for x in chain_toks
                     if x.kind == "id" or x.text == "this"]
            if chain and _receiver_is_map(model, method, chain):
                close = match_forward(toks, i, "[", "]")
                key = _key_text(toks, i + 1, close)
                if key:
                    lookups.append((".".join(chain), key, "[]", toks[i].line))
                i = close
        i += 1

    findings: list[Finding] = []
    seen: dict[tuple[str, str], tuple[str, int]] = {}
    for recv, key, op, line in lookups:
        prior = seen.get((recv, key))
        if prior is not None and line != prior[1]:
            prior_op, prior_line = prior
            findings.append(Finding(
                method.path, line, RULE,
                f"hot function `{qname}` looks up `{recv}[{key}]` twice "
                f"(`{prior_op}` at line {prior_line}, then `{op}`) — do "
                f"one `find` and reuse the iterator"))
        else:
            seen.setdefault((recv, key), (op, line))
    return findings


def run(model: Model, ctx) -> list[Finding]:
    graph = callgraph.cached(model)
    findings: list[Finding] = []
    for qname, method in graph.hot_methods():
        findings.extend(_scan(model, qname, method))
    return findings
