"""dcheck-side-effect: SWING_DCHECK arguments must be effect-free.

Under NDEBUG, SWING_DCHECK compiles to `while (false) SWING_CHECK(...)` —
the condition is parsed but never executed (common/check.h). Any side
effect inside the argument list therefore vanishes in release builds,
changing behavior between build types: the exact bug class
bugprone-assert-side-effect exists for, but enforced here without
needing clang-tidy in the loop and with repo-specific mutator knowledge.

Flagged inside SWING_DCHECK*/SWING_DCHECK_EQ/... argument lists:
  * ++ / -- (either fix position)
  * assignment and compound assignment (= += -= *= /= %= &= |= ^= <<= >>=)
  * calls to known mutating container/stream methods (push_back, erase,
    insert, take, reset, ...)

Stream text after the closing paren (`SWING_DCHECK(x) << "msg" << n++;`)
is ALSO dead in release, so the scan covers the trailing << chain up to
the statement's `;` as well.
"""

from __future__ import annotations

from swing_analyze.cpp_lexer import match_forward
from swing_analyze.cpp_model import Model
from swing_analyze.finding import Finding

RULE = "dcheck-side-effect"

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

MUTATORS = {
    "push_back", "push_front", "pop_back", "pop_front", "push", "pop",
    "insert", "erase", "emplace", "emplace_back", "emplace_front",
    "clear", "reset", "release", "take", "resize", "assign", "swap",
    "remove", "advance", "consume", "write_bytes", "fork",
}


def _scan_args(toks, lo: int, hi: int) -> str | None:
    """Returns a description of the first side effect in toks[lo:hi]."""
    i = lo
    while i < hi:
        t = toks[i]
        if t.text in ("++", "--"):
            return f"`{t.text}` mutation"
        if t.text in _ASSIGN_OPS:
            # `[=]` lambda capture is not an assignment.
            if t.text == "=" and i > lo and toks[i - 1].text == "[":
                i += 1
                continue
            return f"`{t.text}` assignment"
        if t.kind == "id" and t.text in MUTATORS and i > lo \
                and toks[i - 1].text in (".", "->") \
                and i + 1 < hi and toks[i + 1].text == "(":
            return f"mutating call `{t.text}()`"
        i += 1
    return None


def run(model: Model, ctx) -> list[Finding]:
    findings: list[Finding] = []
    for path in sorted(model.files):
        toks = model.files[path].tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "id" or not t.text.startswith("SWING_DCHECK"):
                continue
            if i + 1 >= n or toks[i + 1].text != "(":
                continue
            rp = match_forward(toks, i + 1, "(", ")")
            effect = _scan_args(toks, i + 2, rp)
            where = "argument"
            if effect is None:
                # Trailing stream chain: dead in release too.
                j = rp + 1
                while j < n and toks[j].text == "<<":
                    k = j + 1
                    while k < n and toks[k].text not in ("<<", ";"):
                        if toks[k].text == "(":
                            k = match_forward(toks, k, "(", ")")
                        k += 1
                    effect = _scan_args(toks, j + 1, k)
                    if effect:
                        where = "stream operand"
                        break
                    j = k
            if effect:
                findings.append(Finding(
                    path, t.line, RULE,
                    f"{t.text} {where} has {effect} — SWING_DCHECK "
                    f"compiles out under NDEBUG, so this side effect "
                    f"vanishes in release builds; hoist it out of the "
                    f"check"))
    return findings
