"""metric-name-consistency: obs metric names are literals, consistent,
and declared in the manifest.

Every `registry->counter/gauge/histogram(...)` call site is a point where
a typo forks a metric family: `frames_delievered` registers cleanly,
counts nothing anyone reads, and the dashboards silently miss frames.
This rule enforces, across every call site in src/:

  * the metric NAME is a string literal (greppable, not computed);
  * every LABEL KEY is a string literal (values may be computed — e.g.
    `{{"reason", drop_reason_name(r)}}` is fine);
  * all call sites of one name agree on instrument kind (counter vs gauge
    vs histogram) and on the label-key set;
  * the name is declared in the KNOWN_METRICS manifest in
    tools/check_bench_json.py — with matching kind and label keys — so the
    telemetry validator and the analyzer can never drift apart.

Call sites are `.`/`->`-qualified invocations; the Registry member-
function *definitions* (Registry::counter) are not call sites and are
skipped automatically.
"""

from __future__ import annotations

from swing_analyze.cpp_lexer import match_forward
from swing_analyze.cpp_model import Model
from swing_analyze.finding import Finding

RULE = "metric-name-consistency"

KINDS = {"counter", "gauge", "histogram"}


def _parse_site(toks, i: int, n: int):
    """Parses a metric call site at toks[i] (the kind identifier).

    Returns (name_token_or_None, label_keys, non_literal_key_line) where
    name_token is None when the first argument is not a string literal.
    """
    lp = i + 1
    rp = match_forward(toks, lp, "(", ")")
    args = toks[lp + 1:rp]
    if not args:
        return None, [], None
    name_tok = args[0] if args[0].kind == "str" else None
    ok = name_tok is not None and (len(args) == 1 or args[1].text == ",")
    label_keys: list[str] = []
    bad_key_line = None
    # Labels argument: {{"key", value}, {"key2", value2}}
    j = 1
    while j < len(args) and args[j].text != "{":
        j += 1
    if j < len(args):
        depth = 0
        k = j
        while k < len(args):
            t = args[k].text
            if t == "{":
                depth += 1
                if depth == 2:  # one {key, value} pair opens
                    key = args[k + 1] if k + 1 < len(args) else None
                    if key is not None and key.kind == "str":
                        label_keys.append(key.text)
                    elif key is not None:
                        bad_key_line = key.line
            elif t == "}":
                depth -= 1
            elif t == "(":
                k = match_forward(args, k, "(", ")")
            k += 1
    return (name_tok if ok else None), label_keys, bad_key_line


def run(model: Model, ctx) -> list[Finding]:
    findings: list[Finding] = []
    # name -> list of (kind, labelkeys tuple, path, line)
    sites: dict[str, list[tuple[str, tuple[str, ...], str, int]]] = {}
    for path in sorted(model.files):
        toks = model.files[path].tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in KINDS:
                continue
            if i == 0 or toks[i - 1].text not in (".", "->"):
                continue
            if i + 1 >= n or toks[i + 1].text != "(":
                continue
            name_tok, label_keys, bad_key = _parse_site(toks, i, n)
            if bad_key is not None:
                findings.append(Finding(
                    path, bad_key, RULE,
                    f"label key for {t.text} metric is not a string "
                    f"literal — keys must be greppable constants"))
            if name_tok is None:
                findings.append(Finding(
                    path, t.line, RULE,
                    f"{t.text}(...) metric name is not a string literal — "
                    f"computed names defeat grep, the manifest, and "
                    f"check_bench_json.py"))
                continue
            if bad_key is not None:
                # The key finding forces a fix; the site's key set is
                # unreliable until then, so don't cascade consistency or
                # manifest findings off it.
                continue
            sites.setdefault(name_tok.text, []).append(
                (t.text, tuple(sorted(label_keys)), path, t.line))

    known = ctx.known_metrics  # name -> {"kind": ..., "labels": [...]}
    for name in sorted(sites):
        uses = sites[name]
        kinds = {kind for kind, _, _, _ in uses}
        keysets = {keys for _, keys, _, _ in uses}
        first = uses[0]
        if len(kinds) > 1:
            for kind, _, path, line in uses[1:]:
                if kind != first[0]:
                    findings.append(Finding(
                        path, line, RULE,
                        f"metric '{name}' is a {kind} here but a "
                        f"{first[0]} at {first[2]}:{first[3]} — one name, "
                        f"one instrument kind"))
        if len(keysets) > 1 and len(kinds) == 1:  # kind flip already reported
            for _, keys, path, line in uses[1:]:
                if keys != first[1]:
                    findings.append(Finding(
                        path, line, RULE,
                        f"metric '{name}' labeled {list(keys)} here but "
                        f"{list(first[1])} at {first[2]}:{first[3]} — "
                        f"label keys must agree across call sites"))
        if known is None:
            continue
        decl = known.get(name)
        if decl is None:
            findings.append(Finding(
                first[2], first[3], RULE,
                f"metric '{name}' is not declared in KNOWN_METRICS "
                f"(tools/check_bench_json.py) — add it with its kind and "
                f"label keys"))
        else:
            if decl.get("kind") != first[0] and len(kinds) == 1:
                findings.append(Finding(
                    first[2], first[3], RULE,
                    f"metric '{name}' is a {first[0]} in code but "
                    f"declared as {decl.get('kind')} in KNOWN_METRICS"))
            declared = tuple(sorted(decl.get("labels", [])))
            if declared != first[1] and len(keysets) == 1:
                findings.append(Finding(
                    first[2], first[3], RULE,
                    f"metric '{name}' labeled {list(first[1])} in code "
                    f"but {list(declared)} in KNOWN_METRICS"))
    return findings
