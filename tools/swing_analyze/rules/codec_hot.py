"""codec-hot: every wire codec pair must be inside the SWING_HOT hot set.

The wire-plane v2 contract (DESIGN.md §"Wire plane v2") is that every
`encode(ByteWriter&)` / `decode(ByteReader&)` pair is per-tuple/per-packet
code: encode runs once per send into a reusable arena, decode runs once per
received frame over a non-owning view. The hot-path rules (hotpath-alloc,
heavy-copy, double-lookup) only scan the SWING_HOT-rooted hot set, so a
codec that is *not* in the hot set is a blind spot — it can grow a fresh
allocation or a deep copy per message and the scoreboard never notices.

This rule closes the loop structurally: for every record that defines both
`encode` taking a `ByteWriter` and `decode` taking a `ByteReader` (matched
by exact parameter-type name, so fixture stubs like `WireWriter` stay out
of scope), both qualified names must appear in the call graph's hot set —
either annotated `SWING_HOT` directly (the normal spelling: the codec IS a
hot root) or reachable from one. Anything else is a finding naming the
method to annotate.

Codecs marked SWING_COLD are deliberate escapes and are not findings; a
genuinely cold serializer should not pretend to be a wire codec, but the
marker is the documented opt-out either way.
"""

from __future__ import annotations

from swing_analyze import callgraph
from swing_analyze.cpp_model import Method, Model
from swing_analyze.finding import Finding

RULE = "codec-hot"

_WRITER = "ByteWriter"
_READER = "ByteReader"


def _takes(method: Method, type_name: str) -> bool:
    return any(t.kind == "id" and t.text == type_name
               for t in method.param_tokens())


def run(model: Model, ctx) -> list[Finding]:
    graph = callgraph.cached(model)
    hot = set(graph.hot_set())
    cold = set(graph.cold)
    findings: list[Finding] = []
    for name in sorted(model.records):
        rec = model.records[name]
        enc = rec.methods.get("encode")
        dec = rec.methods.get("decode")
        if enc is None or dec is None:
            continue
        if not _takes(enc, _WRITER) or not _takes(dec, _READER):
            continue  # Not a v2 wire codec (unrelated encode(), test stubs).
        for m in (enc, dec):
            q = f"{name}::{m.name}"
            if q in hot or q in cold:
                continue
            findings.append(Finding(
                m.path, m.line, RULE,
                f"wire codec `{q}` is outside the SWING_HOT hot set — "
                f"annotate the definition with SWING_HOT so the hot-path "
                f"rules cover every codec (or SWING_COLD if it is a "
                f"deliberate cold-plane serializer)"))
    return findings
