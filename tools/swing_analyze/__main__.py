import pathlib
import sys

# Support both invocation styles: `python3 -m swing_analyze` (package
# parent already importable) and `python3 tools/swing_analyze` (the
# directory itself lands on sys.path, its parent does not).
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from swing_analyze.engine import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
