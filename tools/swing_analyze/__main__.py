import sys

from swing_analyze.engine import main

if __name__ == "__main__":
    sys.exit(main())
