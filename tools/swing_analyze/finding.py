"""Shared finding record for swing-analyze rules."""

from __future__ import annotations

import collections

# path: repo-relative file, line: 1-based, rule: kebab-case rule name.
Finding = collections.namedtuple("Finding", "path line rule message")
