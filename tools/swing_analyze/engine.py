"""swing-analyze driver: model build, rule dispatch, suppression, baseline.

Scan mode builds one cross-file Model over every C++ source under src/,
runs each rule, then filters findings through the two suppression layers:

  * inline allows — the same `// swing-lint: allow(<rule>)` comment
    swing_lint honors, on the finding's line, works for analyzer rules
    too (one suppression syntax repo-wide);
  * the checked-in baseline (tools/swing_analyze/baseline.json) — a list
    of {"path", "rule"} entries for legacy findings a PR cannot fix yet.
    The baseline is EMPTY and the intent is that it stays empty: entries
    that match nothing are themselves errors, so it can only shrink.

Self-test mode scans tools/swing_analyze/fixtures/ instead and compares
the per-(file, rule) finding counts against `// expect-analyze: <rule>`
comments embedded in the fixtures, exactly like swing-lint's
`// expect-lint:` convention. Fixture scans read their metric manifest
from fixtures/known_metrics.json; real scans read KNOWN_METRICS out of
tools/check_bench_json.py so the analyzer and the telemetry validator
share one source of truth.

Output format matches swing-lint: `path:line: [rule] message`, exit 1 on
any finding.
"""

from __future__ import annotations

import argparse
import ast
import collections
import dataclasses
import json
import pathlib
import re
import sys

from swing_analyze import callgraph
from swing_analyze.cpp_model import Model
from swing_analyze.finding import Finding
from swing_analyze.rules import ALL_RULES, HOTPATH_RULES, RULE_NAMES

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}

# Same syntax as swing_lint.ALLOW_RE — one suppression comment repo-wide.
ALLOW_RE = re.compile(r"//\s*swing-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
EXPECT_RE = re.compile(r"//\s*expect-analyze:\s*([a-z-]+)")

# Rules the baseline may never suppress. The wire-plane v2 redesign burned
# the codec debt (Bytes-returning to_bytes/from_bytes) to zero; a baseline
# entry here would let it quietly come back, so the codec section of the
# baseline failing to be empty is itself a CI failure.
UNBASELINABLE_RULES = {"codec-symmetry", "codec-hot"}


@dataclasses.dataclass
class Context:
    root: pathlib.Path
    known_metrics: dict | None  # name -> {"kind": ..., "labels": [...]}


def load_known_metrics(root: pathlib.Path) -> dict | None:
    """Reads the KNOWN_METRICS literal out of tools/check_bench_json.py.

    Parsed via ast so the manifest stays a plain dict in the validator (no
    import side effects, no shared module plumbing). Returns None when the
    assignment is missing, which downgrades manifest checks rather than
    failing the scan.
    """
    path = root / "tools" / "check_bench_json.py"
    if not path.is_file():
        return None
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError:
        return None
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and target.id == "KNOWN_METRICS":
                    try:
                        return ast.literal_eval(node.value)
                    except ValueError:
                        return None
    return None


def collect_sources(base: pathlib.Path) -> list[pathlib.Path]:
    return [p for p in sorted(base.rglob("*"))
            if p.suffix in CXX_SUFFIXES and p.is_file()]


def run_rules(paths: list[pathlib.Path], root: pathlib.Path,
              known_metrics: dict | None) -> list[Finding]:
    model = Model.build(paths, root=root)
    ctx = Context(root=root, known_metrics=known_metrics)
    findings: list[Finding] = []
    for rule in ALL_RULES:
        findings.extend(rule.run(model, ctx))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def filter_allowed(findings: list[Finding],
                   root: pathlib.Path) -> list[Finding]:
    """Drops findings whose source line carries an allow(<rule>) comment."""
    lines_by_path: dict[str, list[str]] = {}
    kept: list[Finding] = []
    for f in findings:
        if f.path not in lines_by_path:
            p = root / f.path
            try:
                lines_by_path[f.path] = p.read_text(
                    encoding="utf-8", errors="replace").splitlines()
            except OSError:
                lines_by_path[f.path] = []
        lines = lines_by_path[f.path]
        raw = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        m = ALLOW_RE.search(raw)
        allowed = {r.strip() for r in m.group(1).split(",")} if m else set()
        if f.rule not in allowed:
            kept.append(f)
    return kept


def apply_baseline(findings: list[Finding],
                   baseline_path: pathlib.Path) -> tuple[list[Finding],
                                                         list[str]]:
    """Returns (unsuppressed findings, errors for stale baseline entries)."""
    errors: list[str] = []
    try:
        entries = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return findings, [f"baseline {baseline_path}: unreadable ({exc})"]
    if not isinstance(entries, list):
        return findings, [f"baseline {baseline_path}: expected a JSON list"]
    kept: list[Finding] = []
    matched = [False] * len(entries)
    for f in findings:
        hit = False
        for i, e in enumerate(entries):
            if isinstance(e, dict) and e.get("path") == f.path \
                    and e.get("rule") == f.rule \
                    and e.get("rule") not in UNBASELINABLE_RULES:
                matched[i] = True
                hit = True
        if not hit:
            kept.append(f)
    for i, e in enumerate(entries):
        if not isinstance(e, dict) or "path" not in e or "rule" not in e:
            errors.append(f"baseline entry {i}: malformed (need path, rule)")
        elif e["rule"] in UNBASELINABLE_RULES:
            errors.append(
                f"baseline entry {e['path']} [{e['rule']}]: codec findings "
                f"cannot be baselined — fix the codec instead (the wire "
                f"plane v2 gate keeps this section empty)")
        elif not matched[i]:
            errors.append(
                f"baseline entry {e['path']} [{e['rule']}] matches no "
                f"finding — remove it (the baseline only shrinks)")
    return kept, errors


def baseline_path() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parent / "baseline.json"


def run_scan_paths(root: pathlib.Path, paths: list[pathlib.Path]) -> int:
    """Scans an explicit file subset (swing_check --changed-only).

    The model is partial, so this is a speed mode, not the gate: rules
    that need cross-file context (hot-set propagation from roots defined
    in unchanged files, enum definitions in unscanned headers) can miss
    findings they would catch on a full scan — never the reverse, since
    a smaller model only shrinks the hot set. Baseline entries matching
    nothing are NOT errors here: a subset scan legitimately misses the
    files they point at.
    """
    paths = sorted(p for p in paths
                   if p.suffix in CXX_SUFFIXES and p.is_file())
    if not paths:
        print("swing-analyze: no C++ sources in the changed set")
        return 0
    findings = run_rules(paths, root, load_known_metrics(root))
    findings = filter_allowed(findings, root)
    findings, _stale = apply_baseline(findings, baseline_path())
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"swing-analyze: {len(findings)} finding(s) across "
              f"{len(paths)} changed files", file=sys.stderr)
        return 1
    print(f"swing-analyze: clean ({len(paths)} changed files, "
          f"{len(ALL_RULES)} rules)")
    return 0


def build_hotpath_report(root: pathlib.Path) -> dict:
    """Deterministic hot-path report: call graph, hot set, ranked findings.

    Findings are counted after inline-allow filtering but BEFORE the
    baseline: the baseline keeps the gate green while this report stays a
    burn-down scoreboard, so suppressed debt (the Bytes-returning codec
    entries) keeps showing up here until it is actually fixed.
    """
    src = root / "src"
    paths = collect_sources(src)
    model = Model.build(paths, root=root)
    ctx = Context(root=root, known_metrics=load_known_metrics(root))
    graph = callgraph.cached(model)
    findings: list[Finding] = []
    for rule in HOTPATH_RULES:
        findings.extend(rule.run(model, ctx))
    findings = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    findings = filter_allowed(findings, root)

    # (path, start line, end line, qualified name) for every hot function;
    # findings attribute to the innermost enclosing span.
    spans: list[tuple[str, int, int, str]] = []
    for q, m in graph.hot_methods():
        start = m.tokens[m.decl_start].line if m.decl_start >= 0 else m.line
        end = m.tokens[m.body_end].line
        spans.append((m.path, start, end, q))

    by_function: dict[str, dict] = {}
    by_rule: collections.Counter = collections.Counter()
    for f in findings:
        by_rule[f.rule] += 1
        best: tuple[int, str] | None = None
        for path, start, end, q in spans:
            if path == f.path and start <= f.line <= end:
                if best is None or start > best[0]:
                    best = (start, q)
        q = best[1] if best else "(unattributed)"
        entry = by_function.setdefault(
            q, {"function": q, "total": 0, "by_rule": {}})
        entry["total"] += 1
        entry["by_rule"][f.rule] = entry["by_rule"].get(f.rule, 0) + 1
    for entry in by_function.values():
        entry["by_rule"] = dict(sorted(entry["by_rule"].items()))
    ranked = sorted(by_function.values(),
                    key=lambda e: (-e["total"], e["function"]))

    hot = graph.hot_set()
    return {
        "schema": "swing-hotpath-v1",
        "markers": {"hot": callgraph.HOT_MARKER,
                    "cold": callgraph.COLD_MARKER},
        "files_scanned": len(paths),
        "hot_roots": graph.roots,
        "cold_escapes": graph.cold,
        "hot_set_size": len(hot),
        "hot_set": hot,
        "call_graph": {
            "nodes": len(graph.defs),
            "edges": [[a, b] for a, b in graph.hot_edges()],
        },
        "rules": sorted(r.RULE for r in HOTPATH_RULES),
        "findings": {
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
            "by_function": ranked,
        },
    }


def run_report(root: pathlib.Path, out: pathlib.Path | None) -> int:
    report = build_hotpath_report(root)
    text = json.dumps(report, indent=2, sort_keys=False) + "\n"
    if out is not None:
        out.write_text(text, encoding="utf-8")
        print(f"swing-analyze: wrote hotpath report to {out} "
              f"(hot set {report['hot_set_size']}, "
              f"{report['findings']['total']} finding(s))")
    else:
        sys.stdout.write(text)
    return 0


def run_scan(root: pathlib.Path) -> int:
    src = root / "src"
    paths = collect_sources(src)
    if not paths:
        print(f"swing-analyze: no sources under {src}", file=sys.stderr)
        return 1
    findings = run_rules(paths, root, load_known_metrics(root))
    findings = filter_allowed(findings, root)
    findings, baseline_errors = apply_baseline(findings, baseline_path())
    for err in baseline_errors:
        print(f"swing-analyze: {err}", file=sys.stderr)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings or baseline_errors:
        print(f"swing-analyze: {len(findings)} finding(s) across "
              f"{len(paths)} files", file=sys.stderr)
        return 1
    print(f"swing-analyze: clean ({len(paths)} files, "
          f"{len(ALL_RULES)} rules)")
    return 0


def run_self_test(fixtures: pathlib.Path) -> int:
    fixture_files = collect_sources(fixtures)
    if not fixture_files:
        print(f"swing-analyze self-test: no fixtures under {fixtures}",
              file=sys.stderr)
        return 1
    manifest_path = fixtures / "known_metrics.json"
    known = None
    if manifest_path.is_file():
        known = json.loads(manifest_path.read_text(encoding="utf-8"))
    findings = run_rules(fixture_files, fixtures, known)
    findings = filter_allowed(findings, fixtures)

    got = collections.Counter((f.path, f.rule) for f in findings)
    want: collections.Counter = collections.Counter()
    for path in fixture_files:
        rel = str(path.relative_to(fixtures))
        for rule in EXPECT_RE.findall(path.read_text(encoding="utf-8")):
            want[(rel, rule)] += 1

    failures = []
    for key in sorted(set(want) | set(got)):
        if key[1] not in RULE_NAMES:
            failures.append(f"{key[0]}: unknown rule '{key[1]}' in "
                            f"expect-analyze comment")
            continue
        if want[key] != got[key]:
            detail = "; ".join(f"line {f.line}: {f.message}"
                               for f in findings
                               if (f.path, f.rule) == key) or "none"
            failures.append(
                f"{key[0]}: rule '{key[1]}': expected {want[key]} "
                f"finding(s), got {got[key]} ({detail})")
    if failures:
        for line in failures:
            print(f"swing-analyze self-test FAIL: {line}", file=sys.stderr)
        return 1
    print(f"swing-analyze self-test: {len(fixture_files)} fixtures, "
          f"{sum(got.values())} expected findings matched")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="swing-analyze",
        description="Semantic static analysis for the Swing tree.")
    parser.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent.parent)
    parser.add_argument("--self-test", action="store_true",
                        help="check the rules against their fixtures")
    parser.add_argument("--report", choices=["hotpath"],
                        help="emit a deterministic JSON report instead "
                             "of gating")
    parser.add_argument("--out", type=pathlib.Path,
                        help="write the report here instead of stdout")
    parser.add_argument("--paths", nargs="*", type=pathlib.Path,
                        help="scan only these files (changed-only mode; "
                             "partial model, non-strict baseline)")
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if args.self_test:
        return run_self_test(
            pathlib.Path(__file__).resolve().parent / "fixtures")
    if args.report == "hotpath":
        return run_report(root, args.out)
    if args.paths is not None:
        return run_scan_paths(root, [p.resolve() for p in args.paths])
    return run_scan(root)
