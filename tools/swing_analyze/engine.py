"""swing-analyze driver: model build, rule dispatch, suppression, baseline.

Scan mode builds one cross-file Model over every C++ source under src/,
runs each rule, then filters findings through the two suppression layers:

  * inline allows — the same `// swing-lint: allow(<rule>)` comment
    swing_lint honors, on the finding's line, works for analyzer rules
    too (one suppression syntax repo-wide);
  * the checked-in baseline (tools/swing_analyze/baseline.json) — a list
    of {"path", "rule"} entries for legacy findings a PR cannot fix yet.
    The baseline is EMPTY and the intent is that it stays empty: entries
    that match nothing are themselves errors, so it can only shrink.

Self-test mode scans tools/swing_analyze/fixtures/ instead and compares
the per-(file, rule) finding counts against `// expect-analyze: <rule>`
comments embedded in the fixtures, exactly like swing-lint's
`// expect-lint:` convention. Fixture scans read their metric manifest
from fixtures/known_metrics.json; real scans read KNOWN_METRICS out of
tools/check_bench_json.py so the analyzer and the telemetry validator
share one source of truth.

Output format matches swing-lint: `path:line: [rule] message`, exit 1 on
any finding.
"""

from __future__ import annotations

import argparse
import ast
import collections
import dataclasses
import json
import pathlib
import re
import sys

from swing_analyze.cpp_model import Model
from swing_analyze.finding import Finding
from swing_analyze.rules import ALL_RULES, RULE_NAMES

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}

# Same syntax as swing_lint.ALLOW_RE — one suppression comment repo-wide.
ALLOW_RE = re.compile(r"//\s*swing-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
EXPECT_RE = re.compile(r"//\s*expect-analyze:\s*([a-z-]+)")


@dataclasses.dataclass
class Context:
    root: pathlib.Path
    known_metrics: dict | None  # name -> {"kind": ..., "labels": [...]}


def load_known_metrics(root: pathlib.Path) -> dict | None:
    """Reads the KNOWN_METRICS literal out of tools/check_bench_json.py.

    Parsed via ast so the manifest stays a plain dict in the validator (no
    import side effects, no shared module plumbing). Returns None when the
    assignment is missing, which downgrades manifest checks rather than
    failing the scan.
    """
    path = root / "tools" / "check_bench_json.py"
    if not path.is_file():
        return None
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError:
        return None
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and target.id == "KNOWN_METRICS":
                    try:
                        return ast.literal_eval(node.value)
                    except ValueError:
                        return None
    return None


def collect_sources(base: pathlib.Path) -> list[pathlib.Path]:
    return [p for p in sorted(base.rglob("*"))
            if p.suffix in CXX_SUFFIXES and p.is_file()]


def run_rules(paths: list[pathlib.Path], root: pathlib.Path,
              known_metrics: dict | None) -> list[Finding]:
    model = Model.build(paths, root=root)
    ctx = Context(root=root, known_metrics=known_metrics)
    findings: list[Finding] = []
    for rule in ALL_RULES:
        findings.extend(rule.run(model, ctx))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def filter_allowed(findings: list[Finding],
                   root: pathlib.Path) -> list[Finding]:
    """Drops findings whose source line carries an allow(<rule>) comment."""
    lines_by_path: dict[str, list[str]] = {}
    kept: list[Finding] = []
    for f in findings:
        if f.path not in lines_by_path:
            p = root / f.path
            try:
                lines_by_path[f.path] = p.read_text(
                    encoding="utf-8", errors="replace").splitlines()
            except OSError:
                lines_by_path[f.path] = []
        lines = lines_by_path[f.path]
        raw = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        m = ALLOW_RE.search(raw)
        allowed = {r.strip() for r in m.group(1).split(",")} if m else set()
        if f.rule not in allowed:
            kept.append(f)
    return kept


def apply_baseline(findings: list[Finding],
                   baseline_path: pathlib.Path) -> tuple[list[Finding],
                                                         list[str]]:
    """Returns (unsuppressed findings, errors for stale baseline entries)."""
    errors: list[str] = []
    try:
        entries = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return findings, [f"baseline {baseline_path}: unreadable ({exc})"]
    if not isinstance(entries, list):
        return findings, [f"baseline {baseline_path}: expected a JSON list"]
    kept: list[Finding] = []
    matched = [False] * len(entries)
    for f in findings:
        hit = False
        for i, e in enumerate(entries):
            if isinstance(e, dict) and e.get("path") == f.path \
                    and e.get("rule") == f.rule:
                matched[i] = True
                hit = True
        if not hit:
            kept.append(f)
    for i, e in enumerate(entries):
        if not isinstance(e, dict) or "path" not in e or "rule" not in e:
            errors.append(f"baseline entry {i}: malformed (need path, rule)")
        elif not matched[i]:
            errors.append(
                f"baseline entry {e['path']} [{e['rule']}] matches no "
                f"finding — remove it (the baseline only shrinks)")
    return kept, errors


def run_scan(root: pathlib.Path) -> int:
    src = root / "src"
    paths = collect_sources(src)
    if not paths:
        print(f"swing-analyze: no sources under {src}", file=sys.stderr)
        return 1
    findings = run_rules(paths, root, load_known_metrics(root))
    findings = filter_allowed(findings, root)
    findings, baseline_errors = apply_baseline(
        findings, pathlib.Path(__file__).resolve().parent / "baseline.json")
    for err in baseline_errors:
        print(f"swing-analyze: {err}", file=sys.stderr)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings or baseline_errors:
        print(f"swing-analyze: {len(findings)} finding(s) across "
              f"{len(paths)} files", file=sys.stderr)
        return 1
    print(f"swing-analyze: clean ({len(paths)} files, "
          f"{len(ALL_RULES)} rules)")
    return 0


def run_self_test(fixtures: pathlib.Path) -> int:
    fixture_files = collect_sources(fixtures)
    if not fixture_files:
        print(f"swing-analyze self-test: no fixtures under {fixtures}",
              file=sys.stderr)
        return 1
    manifest_path = fixtures / "known_metrics.json"
    known = None
    if manifest_path.is_file():
        known = json.loads(manifest_path.read_text(encoding="utf-8"))
    findings = run_rules(fixture_files, fixtures, known)
    findings = filter_allowed(findings, fixtures)

    got = collections.Counter((f.path, f.rule) for f in findings)
    want: collections.Counter = collections.Counter()
    for path in fixture_files:
        rel = str(path.relative_to(fixtures))
        for rule in EXPECT_RE.findall(path.read_text(encoding="utf-8")):
            want[(rel, rule)] += 1

    failures = []
    for key in sorted(set(want) | set(got)):
        if key[1] not in RULE_NAMES:
            failures.append(f"{key[0]}: unknown rule '{key[1]}' in "
                            f"expect-analyze comment")
            continue
        if want[key] != got[key]:
            detail = "; ".join(f"line {f.line}: {f.message}"
                               for f in findings
                               if (f.path, f.rule) == key) or "none"
            failures.append(
                f"{key[0]}: rule '{key[1]}': expected {want[key]} "
                f"finding(s), got {got[key]} ({detail})")
    if failures:
        for line in failures:
            print(f"swing-analyze self-test FAIL: {line}", file=sys.stderr)
        return 1
    print(f"swing-analyze self-test: {len(fixture_files)} fixtures, "
          f"{sum(got.values())} expected findings matched")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="swing-analyze",
        description="Semantic static analysis for the Swing tree.")
    parser.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent.parent)
    parser.add_argument("--self-test", action="store_true",
                        help="check the rules against their fixtures")
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if args.self_test:
        return run_self_test(
            pathlib.Path(__file__).resolve().parent / "fixtures")
    return run_scan(root)
