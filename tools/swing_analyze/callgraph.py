"""Cross-file call graph and hot-set computation for swing-analyze.

The hot-path rules (hotpath-alloc, heavy-copy, double-lookup) only make
sense on code that actually runs per tuple/per packet. Rather than guess
from names, the tree declares its hot roots with the `SWING_HOT` marker
macro (src/common/hot.h) and this module computes everything reachable
from them — the *hot set* — over a cross-file call graph.

Call resolution generalizes the one-hop, same-file helper resolution
nondet-iteration has used since PR 6 into a transitive, cross-file graph.
For every function definition the body tokens are scanned for call sites,
resolved in this order:

  `Cls::method(...)`     qualified: straight to the record's method.
  `this->method(...)`    the enclosing class.
  `obj.method(...)` /    the receiver's declared type — a local is not
  `obj->method(...)`     modeled, so resolution goes through the
                         enclosing record's fields, then any record field
                         of that name (cpp_model.Model.field_type), the
                         same rules nondet-iteration applies to
                         containers. If the type resolves to no known
                         record but exactly ONE record in the model
                         defines a method of that name, that unique
                         definition is used (deterministic, and an
                         over-approximation only ever widens the checked
                         set).
  `helper(...)`          unqualified: the enclosing class's methods,
                         then same-file free functions, then a unique
                         free function anywhere in the model.

Cold escapes: a definition marked `SWING_COLD` (control-plane work that
is merely *reachable* from a hot dispatch switch — deploy, restore,
migration) is neither entered into the hot set nor traversed through.
Without it, annotating `Worker::dispatch_message` would drag the entire
deploy/recovery plane into the hot set and drown the signal.

Everything here is deterministic: nodes and edges are built in sorted
path/name order and the public accessors return sorted lists, so the
`--report hotpath` artifact is byte-identical run to run.
"""

from __future__ import annotations

import dataclasses

from swing_analyze.cpp_lexer import match_forward
from swing_analyze.cpp_model import Method, Model

HOT_MARKER = "SWING_HOT"
COLD_MARKER = "SWING_COLD"

# Keywords that look like `id (` call sites but are not calls.
_NOT_CALLS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "throw", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "alignof", "decltype", "noexcept", "assert",
    "defined", "case", "co_await", "co_return", "co_yield",
}


@dataclasses.dataclass
class CallGraph:
    # Qualified name ("Cls::method" or free "name") -> every definition.
    defs: dict[str, list[Method]]
    # Caller qualified name -> set of callee qualified names.
    edges: dict[str, set[str]]
    # SWING_HOT-annotated definitions, sorted.
    roots: list[str]
    # SWING_COLD-annotated definitions (traversal barriers), sorted.
    cold: list[str]

    def hot_set(self) -> list[str]:
        """Functions reachable from the hot roots, minus cold escapes."""
        cold = set(self.cold)
        seen: set[str] = set()
        frontier = [r for r in self.roots if r not in cold]
        while frontier:
            fn = frontier.pop()
            if fn in seen:
                continue
            seen.add(fn)
            for callee in self.edges.get(fn, ()):
                if callee not in seen and callee not in cold:
                    frontier.append(callee)
        return sorted(seen)

    def hot_edges(self) -> list[tuple[str, str]]:
        """Call-graph edges within the hot set, sorted (report payload)."""
        hot = set(self.hot_set())
        out = [(a, b) for a in self.edges for b in self.edges[a]
               if a in hot and b in hot]
        return sorted(out)

    def hot_methods(self) -> list[tuple[str, Method]]:
        """(qualified name, definition) for every hot function, sorted.

        A name with several definitions (declaration-level parses can
        collide on overloads) yields each definition once.
        """
        out: list[tuple[str, Method]] = []
        for name in self.hot_set():
            for m in self.defs.get(name, []):
                out.append((name, m))
        return out


def _marked(method: Method, marker: str) -> bool:
    return any(t.kind == "id" and t.text == marker
               for t in method.decl_tokens())


def _record_of_type(model: Model, type_text: str) -> str | None:
    """First known record named inside a declared-type text, if any."""
    for word in type_text.replace("<", " ").replace(">", " ") \
                         .replace(",", " ").replace("::", " ").split():
        if word in model.records:
            return word
    return None


class _Resolver:
    """Shared lookup tables, built once per model (sorted => stable)."""

    def __init__(self, model: Model) -> None:
        self.model = model
        # Method name -> sorted record names defining it.
        self.method_owners: dict[str, list[str]] = {}
        for rec_name in sorted(model.records):
            for m_name in model.records[rec_name].methods:
                self.method_owners.setdefault(m_name, []).append(rec_name)
        # Free function name -> sorted paths defining it.
        self.free_defs: dict[str, list[str]] = {}
        for path in sorted(model.files):
            for m in model.files[path].methods:
                if m.cls is None:
                    self.free_defs.setdefault(m.name, []).append(path)

    def receiver_record(self, caller: Method, recv: str) -> str | None:
        """Resolves a receiver variable name to a record name."""
        if caller.cls and caller.cls in self.model.records:
            t = self.model.records[caller.cls].fields.get(recv)
            if t:
                return _record_of_type(self.model, t)
        t = self.model.field_type(recv)
        if t:
            return _record_of_type(self.model, t)
        return None

    def resolve(self, caller: Method, recv: str | None, qual: str | None,
                name: str) -> str | None:
        """Qualified callee name for one call site, or None."""
        model = self.model
        if qual is not None:  # Cls::method(...)
            rec = model.records.get(qual)
            if rec and name in rec.methods:
                return f"{qual}::{name}"
            return None
        if recv == "this":
            if caller.cls and caller.cls in model.records \
                    and name in model.records[caller.cls].methods:
                return f"{caller.cls}::{name}"
            return None
        if recv is not None:  # obj.method(...) / obj->method(...)
            rec_name = self.receiver_record(caller, recv)
            if rec_name and name in model.records[rec_name].methods:
                return f"{rec_name}::{name}"
            owners = self.method_owners.get(name, [])
            if len(owners) == 1 and name not in self.free_defs:
                return f"{owners[0]}::{name}"
            return None
        # Unqualified call: enclosing class first, then free functions.
        if caller.cls and caller.cls in model.records \
                and name in model.records[caller.cls].methods:
            return f"{caller.cls}::{name}"
        if name in self.free_defs:
            return name
        return None


def _call_sites(method: Method):
    """Yields (receiver, qualifier, callee_name) triples from a body.

    receiver is the identifier before `.`/`->` (or "this"), qualifier the
    class before `::`; both None for unqualified calls.
    """
    toks = method.body()
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or i + 1 >= n or toks[i + 1].text != "(":
            continue
        if t.text in _NOT_CALLS:
            continue
        prev = toks[i - 1].text if i > 0 else ""
        if prev == "::":
            if i >= 2 and toks[i - 2].kind == "id":
                yield None, toks[i - 2].text, t.text
            continue
        if prev in (".", "->"):
            if i >= 2 and (toks[i - 2].kind == "id"
                           or toks[i - 2].text == "this"):
                yield toks[i - 2].text, None, t.text
            continue
        yield None, None, t.text


def cached(model: Model) -> CallGraph:
    """One graph per model: the three hot-path rules share the build."""
    graph = getattr(model, "_swing_callgraph", None)
    if graph is None:
        graph = build(model)
        model._swing_callgraph = graph
    return graph


def build(model: Model) -> CallGraph:
    resolver = _Resolver(model)
    defs: dict[str, list[Method]] = {}
    roots: set[str] = set()
    cold: set[str] = set()
    for path in sorted(model.files):
        for m in model.files[path].methods:
            q = m.qualified()
            defs.setdefault(q, []).append(m)
            if _marked(m, HOT_MARKER):
                roots.add(q)
            if _marked(m, COLD_MARKER):
                cold.add(q)
    edges: dict[str, set[str]] = {}
    for q in sorted(defs):
        out = edges.setdefault(q, set())
        for m in defs[q]:
            for recv, qual, name in _call_sites(m):
                callee = resolver.resolve(m, recv, qual, name)
                if callee is not None and callee != q:
                    out.add(callee)
    return CallGraph(defs=defs, edges=edges,
                     roots=sorted(roots), cold=sorted(cold))


def loop_ranges(body_toks) -> list[tuple[int, int]]:
    """(start, end) body-token index ranges of for/while loop bodies.

    Shared by the hot-path rules: "in a loop" means inside any of these
    ranges. Braceless single-statement loops extend to the next top-level
    `;`. do/while is rare in this tree and intentionally unmodeled.
    """
    ranges: list[tuple[int, int]] = []
    n = len(body_toks)
    i = 0
    while i < n:
        t = body_toks[i]
        if t.text not in ("for", "while") or i + 1 >= n \
                or body_toks[i + 1].text != "(":
            i += 1
            continue
        rp = match_forward(body_toks, i + 1, "(", ")")
        j = rp + 1
        if j < n and body_toks[j].text == "{":
            close = match_forward(body_toks, j, "{", "}")
            ranges.append((j + 1, close))
        else:
            depth = 0
            k = j
            while k < n:
                tt = body_toks[k].text
                if tt in ("(", "{"):
                    depth += 1
                elif tt in (")", "}"):
                    depth -= 1
                elif tt == ";" and depth == 0:
                    break
                k += 1
            ranges.append((j, k))
        i = rp + 1
    return ranges
