"""Tokenizer for the subset of C++ swing-analyze reasons about.

Produces a flat token stream with line numbers. Comments are skipped (the
engine re-reads raw lines for `// swing-lint: allow(...)` suppressions and
`// expect-analyze:` fixture expectations), string/char literals become
single tokens with their *contents preserved* (metric names are string
literals), and multi-character operators lex as one token so rules can
tell `=` from `==` and `++` from `+ +`.

This is a lexer, not a preprocessor: macros are ordinary identifiers,
which is exactly what the SWING_DCHECK rule needs.
"""

from __future__ import annotations

import re
from typing import NamedTuple


class Token(NamedTuple):
    kind: str  # 'id' | 'num' | 'str' | 'chr' | 'punct'
    text: str  # for 'str', the unquoted contents
    line: int


_ID_RE = re.compile(r"[A-Za-z_]\w*")
_NUM_RE = re.compile(r"(?:0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'.xXeEpP+-]*)"
                     r"[uUlLfF]*")
_RAW_STR_RE = re.compile(r'R"([^(\s]*)\(')

# Longest-match first. Three-char operators the rules care about, then two,
# then everything else falls through as single characters.
_PUNCTS = [
    "<<=", ">>=", "...", "->*",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
]


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and (not tokens or tokens[-1].line != line):
            # Preprocessor directive: skip the whole (continued) line.
            # Macro *invocations* stay visible; definitions do not.
            while i < n:
                end = text.find("\n", i)
                end = n if end == -1 else end
                if text[i:end].rstrip().endswith("\\"):
                    line += 1
                    i = end + 1
                else:
                    i = end
                    break
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue
        if c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            line += text.count("\n", i, end)
            i = end
            continue
        if c == "R" and nxt == '"':
            m = _RAW_STR_RE.match(text, i)
            if m:
                closer = ")" + m.group(1) + '"'
                end = text.find(closer, m.end())
                end = n if end == -1 else end + len(closer)
                body = text[m.end():end - len(closer)] if end < n else ""
                tokens.append(Token("str", body, line))
                line += text.count("\n", i, end)
                i = end
                continue
        if c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            body = text[i + 1:j]
            tokens.append(Token("str" if c == '"' else "chr", body, line))
            line += text.count("\n", i, j)
            i = min(j + 1, n)
            continue
        if c.isalpha() or c == "_":
            m = _ID_RE.match(text, i)
            tokens.append(Token("id", m.group(), line))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and nxt.isdigit()):
            m = _NUM_RE.match(text, i)
            if m:
                tokens.append(Token("num", m.group(), line))
                i = m.end()
                continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens


def match_forward(tokens: list[Token], i: int, open_: str, close: str) -> int:
    """Given tokens[i] == open_, returns the index of the matching close.

    Returns len(tokens) if unbalanced (malformed input degrades gracefully
    rather than raising inside a rule).
    """
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == open_:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n
