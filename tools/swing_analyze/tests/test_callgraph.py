"""Call-graph construction and hot-set propagation (callgraph.py).

Exercises the pieces the hotpath rules lean on: SWING_HOT roots,
transitive reachability through method and free-function calls,
SWING_COLD traversal barriers, receiver-type edge resolution, and the
determinism of every list the report serializes.
"""

import pathlib
import tempfile
import unittest

from swing_analyze import callgraph
from swing_analyze.cpp_model import Model

TREE = {
    "hot.h": """\
#pragma once
#define SWING_HOT
#define SWING_COLD
""",
    "pipeline.h": """\
#pragma once
#include "hot.h"

struct Codec {
  int decode(int x) { return helper(x); }
  int helper(int x) { return x + 1; }
};

struct Pipeline {
  Codec codec_;
  SWING_HOT void step(int x) { codec_.decode(x); audit(x); }
  SWING_COLD void audit(int x) { slow_dump(x); }
  void unreached(int x) { codec_.helper(x); }
};

inline void slow_dump(int) {}
inline void free_leaf() {}
SWING_HOT inline void free_root() { free_leaf(); }
""",
}


def build_graph():
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        paths = []
        for rel, text in TREE.items():
            p = root / rel
            p.write_text(text, encoding="utf-8")
            paths.append(p)
        model = Model.build(sorted(paths), root)
        return callgraph.build(model)


class CallGraphTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.graph = build_graph()

    def test_roots_are_the_hot_marked_definitions(self):
        self.assertEqual(self.graph.roots, ["Pipeline::step", "free_root"])

    def test_cold_definitions_are_barriers(self):
        self.assertEqual(self.graph.cold, ["Pipeline::audit"])

    def test_hot_set_is_transitive_through_member_calls(self):
        hot = self.graph.hot_set()
        self.assertIn("Codec::decode", hot)   # via codec_ field type
        self.assertIn("Codec::helper", hot)   # via decode's this-> call
        self.assertIn("free_leaf", hot)       # via free_root

    def test_cold_stops_propagation(self):
        hot = self.graph.hot_set()
        self.assertNotIn("Pipeline::audit", hot)
        # slow_dump is only reachable through the cold barrier.
        self.assertNotIn("slow_dump", hot)

    def test_unmarked_unreached_functions_stay_out(self):
        self.assertNotIn("Pipeline::unreached", self.graph.hot_set())

    def test_hot_edges_stay_inside_the_hot_set(self):
        hot = set(self.graph.hot_set())
        for a, b in self.graph.hot_edges():
            self.assertIn(a, hot)
            self.assertIn(b, hot)
        self.assertIn(("Pipeline::step", "Codec::decode"),
                      self.graph.hot_edges())

    def test_all_report_lists_are_sorted(self):
        for seq in (self.graph.roots, self.graph.cold,
                    self.graph.hot_set(), self.graph.hot_edges()):
            self.assertEqual(list(seq), sorted(seq))

    def test_two_builds_agree(self):
        other = build_graph()
        self.assertEqual(self.graph.hot_set(), other.hot_set())
        self.assertEqual(self.graph.hot_edges(), other.hot_edges())


class LoopRangesTest(unittest.TestCase):
    def test_braced_and_braceless_loops(self):
        with tempfile.TemporaryDirectory() as td:
            root = pathlib.Path(td)
            p = root / "loops.h"
            p.write_text(
                "#pragma once\n"
                "struct L {\n"
                "  void f(int n) {\n"
                "    for (int i = 0; i < n; ++i) { g(i); }\n"
                "    while (n > 0) g(n--);\n"
                "    g(0);\n"
                "  }\n"
                "  void g(int) {}\n"
                "};\n",
                encoding="utf-8")
            model = Model.build([p], root)
            # Resolve via the call graph instead of poking file internals.
            graph = callgraph.build(model)
            method = graph.defs["L::f"][0]
            ranges = callgraph.loop_ranges(method.body())
            self.assertEqual(len(ranges), 2)
            toks = method.body()
            in_loop = [i for lo, hi in ranges for i in range(lo, hi)]
            # The trailing g(0) call is outside every loop.
            last_call = max(i for i, t in enumerate(toks) if t.text == "g")
            self.assertNotIn(last_call, in_loop)


if __name__ == "__main__":
    unittest.main()
