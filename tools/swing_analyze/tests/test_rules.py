import pathlib
import unittest

from swing_analyze.cpp_model import Model
from swing_analyze.engine import Context
from swing_analyze.rules import (
    codec_symmetry,
    dcheck_side_effect,
    metric_name_consistency,
    nondet_iteration,
    switch_exhaustiveness,
)


def run_rule(rule, sources, known_metrics=None):
    model = Model()
    for path, text in sources.items():
        model.add_file(path, text)
    model.link()
    ctx = Context(root=pathlib.Path("."), known_metrics=known_metrics)
    return rule.run(model, ctx)


class CodecSymmetryTest(unittest.TestCase):
    def test_width_drift_fires(self):
        findings = run_rule(codec_symmetry, {"m.h": """
            struct M {
              void to_bytes(W& w) const { w.write_u32(a); w.write_u64(b); }
              static M from_bytes(R& r) {
                M m; m.a = r.read_u64(); m.b = r.read_u64(); return m;
              }
            };
        """})
        self.assertEqual(len(findings), 1)
        self.assertIn("u32", findings[0].message)

    def test_count_mismatch_fires(self):
        findings = run_rule(codec_symmetry, {"m.h": """
            struct M {
              void to_bytes(W& w) const { w.write_u64(a); w.write_u64(b); }
              static M from_bytes(R& r) { M m; m.a = r.read_u64(); return m; }
            };
        """})
        self.assertEqual(len(findings), 1)
        self.assertIn("2 wire op(s)", findings[0].message)

    def test_loop_depth_mismatch_fires(self):
        findings = run_rule(codec_symmetry, {"m.h": """
            struct M {
              void to_bytes(W& w) const {
                w.write_varint(v.size());
                for (const auto x : v) w.write_u64(x);
              }
              static M from_bytes(R& r) {
                M m;
                const auto n = r.read_varint();
                m.v.push_back(r.read_u64());
                return m;
              }
            };
        """})
        self.assertEqual(len(findings), 1)

    def test_symmetric_codec_clean(self):
        findings = run_rule(codec_symmetry, {"m.h": """
            struct M {
              void to_bytes(W& w) const {
                w.write_u64(a);
                w.write_varint(v.size());
                for (const auto x : v) w.write_u64(x);
              }
              static M from_bytes(R& r) {
                M m;
                m.a = r.read_u64();
                const auto n = r.read_varint();
                for (std::uint64_t i = 0; i < n; ++i)
                  m.v.push_back(r.read_u64());
                return m;
              }
            };
        """})
        self.assertEqual(findings, [])

    def test_nested_serialize_pair_clean(self):
        findings = run_rule(codec_symmetry, {"m.h": """
            struct Inner {
              void serialize(W& w) const { w.write_u64(x); }
              static Inner deserialize(R& r) {
                Inner v; v.x = r.read_u64(); return v;
              }
            };
            struct M {
              Inner part;
              void to_bytes(W& w) const { part.serialize(w); }
              static M from_bytes(R& r) {
                M m; m.part = Inner::deserialize(r); return m;
              }
            };
        """})
        self.assertEqual(findings, [])

    def test_non_codec_serialize_ignored(self):
        # A serialize() with no stream ops on either side is not a codec.
        findings = run_rule(codec_symmetry, {"m.h": """
            struct Task {
              void serialize(Log& log) const { log.append(name); }
              static Task deserialize(Log& log) { return Task{}; }
            };
        """})
        self.assertEqual(findings, [])


class NondetIterationTest(unittest.TestCase):
    def test_direct_sink_fires(self):
        findings = run_rule(nondet_iteration, {"a.h": """
            class C {
             public:
              void flush() {
                for (const auto& [k, v] : pending_) { reg_.inc(); }
              }
             private:
              std::unordered_map<int, int> pending_;
            };
        """})
        self.assertEqual(len(findings), 1)
        self.assertIn("inc", findings[0].message)

    def test_one_hop_helper_fires(self):
        findings = run_rule(nondet_iteration, {"a.cpp": """
            void Medium::detach(int id) {
              for (auto& [key, q] : flows_) { drop_message(key); }
            }
            void Medium::drop_message(int key) { hooks_.on_drop(key); }
        """, "a.h": """
            class Medium {
              std::unordered_map<int, int> flows_;
            };
        """})
        self.assertEqual(len(findings), 1)
        self.assertIn("drop_message -> on_drop", findings[0].message)

    def test_cross_file_member_type_resolves(self):
        # The loop is in the .cpp; the container type only in the .h.
        findings = run_rule(nondet_iteration, {"b.cpp": """
            void Reg::report() {
              for (const auto& [k, v] : counters_) { w.write_u64(v); }
            }
        """, "b.h": """
            class Reg {
              std::unordered_map<std::string, int> counters_;
            };
        """})
        self.assertEqual(len(findings), 1)

    def test_drain_sort_clean(self):
        findings = run_rule(nondet_iteration, {"a.h": """
            class C {
             public:
              void report() {
                std::vector<int> keys;
                for (const auto& [k, v] : pending_) { keys.push_back(k); }
                std::sort(keys.begin(), keys.end());
                for (const auto k : keys) { reg_.inc(); }
              }
             private:
              std::unordered_map<int, int> pending_;
            };
        """})
        self.assertEqual(findings, [])

    def test_ordered_map_clean(self):
        findings = run_rule(nondet_iteration, {"a.h": """
            class C {
             public:
              void report() {
                for (const auto& [k, v] : members_) { reg_.inc(); }
              }
             private:
              std::map<int, int> members_;
            };
        """})
        self.assertEqual(findings, [])


class DcheckSideEffectTest(unittest.TestCase):
    def test_increment_fires(self):
        findings = run_rule(dcheck_side_effect, {"a.h": """
            void f() { SWING_DCHECK(++n < limit); }
        """})
        self.assertEqual(len(findings), 1)
        self.assertIn("++", findings[0].message)

    def test_assignment_fires(self):
        findings = run_rule(dcheck_side_effect, {"a.h": """
            void f() { SWING_DCHECK_EQ(n = 0, 0); }
        """})
        self.assertEqual(len(findings), 1)

    def test_mutating_call_fires(self):
        findings = run_rule(dcheck_side_effect, {"a.h": """
            void f() { SWING_DCHECK(q.pop_back(), true); }
        """})
        self.assertEqual(len(findings), 1)

    def test_stream_operand_fires(self):
        findings = run_rule(dcheck_side_effect, {"a.h": """
            void f() { SWING_DCHECK(n < m) << "at " << n++; }
        """})
        self.assertEqual(len(findings), 1)
        self.assertIn("stream operand", findings[0].message)

    def test_pure_condition_clean(self):
        findings = run_rule(dcheck_side_effect, {"a.h": """
            void f() {
              SWING_DCHECK(n == 0 || !q.empty()) << "n " << n;
              SWING_DCHECK_LE(q.size(), cap);
            }
        """})
        self.assertEqual(findings, [])

    def test_swing_check_not_flagged(self):
        # SWING_CHECK is always on; side effects there are not this rule's.
        findings = run_rule(dcheck_side_effect, {"a.h": """
            void f() { SWING_CHECK(consume() == 0); n++; }
        """})
        self.assertEqual(findings, [])


class SwitchExhaustivenessTest(unittest.TestCase):
    ENUM = """
        enum class MsgType { kHello = 1, kData = 2, kBye = 3 };
    """

    def test_default_fires(self):
        findings = run_rule(switch_exhaustiveness, {"a.h": self.ENUM + """
            void route(MsgType t) {
              switch (t) {
                case MsgType::kHello: break;
                case MsgType::kData: break;
                case MsgType::kBye: break;
                default: break;
              }
            }
        """})
        self.assertEqual(len(findings), 1)
        self.assertIn("default", findings[0].message)

    def test_missing_enumerator_fires(self):
        findings = run_rule(switch_exhaustiveness, {"a.h": self.ENUM + """
            void route(MsgType t) {
              switch (t) {
                case MsgType::kHello: break;
                case MsgType::kData: break;
              }
            }
        """})
        self.assertEqual(len(findings), 1)
        self.assertIn("kBye", findings[0].message)

    def test_full_coverage_clean(self):
        findings = run_rule(switch_exhaustiveness, {"a.h": self.ENUM + """
            void route(MsgType t) {
              switch (t) {
                case MsgType::kHello: break;
                case MsgType::kData:
                case MsgType::kBye: break;
              }
            }
        """})
        self.assertEqual(findings, [])

    def test_sentinel_exempt(self):
        findings = run_rule(switch_exhaustiveness, {"a.h": """
            enum class TracePhase { kEmit, kDeliver, kPhaseCount };
            void f(TracePhase p) {
              switch (p) {
                case TracePhase::kEmit: break;
                case TracePhase::kDeliver: break;
              }
            }
        """})
        self.assertEqual(findings, [])

    def test_unwatched_enum_ignored(self):
        findings = run_rule(switch_exhaustiveness, {"a.h": """
            enum class Color { kRed, kGreen };
            void f(Color c) {
              switch (c) {
                case Color::kRed: break;
                default: break;
              }
            }
        """})
        self.assertEqual(findings, [])

    def test_name_collision_resolved_by_overlap(self):
        # Two DropReason enums (core and net); the switch's own labels pick
        # the right one, so covering all of net's is clean even though
        # core's has more enumerators.
        findings = run_rule(switch_exhaustiveness, {"core.h": """
            enum class DropReason { kTtl, kDup, kDisconnect, kShed };
        """, "net.h": """
            enum class DropReason { kCollision, kNoRoute };
            void f(DropReason r) {
              switch (r) {
                case DropReason::kCollision: break;
                case DropReason::kNoRoute: break;
              }
            }
        """})
        self.assertEqual(findings, [])


class MetricNameConsistencyTest(unittest.TestCase):
    KNOWN = {
        "tuples_dropped": {"kind": "counter", "labels": ["reason"]},
        "e2e_latency_ms": {"kind": "histogram", "labels": []},
    }

    def test_undeclared_name_fires(self):
        findings = run_rule(metric_name_consistency, {"a.cpp": """
            void f(Registry* r) { r->counter("frames_delievered").inc(); }
        """}, known_metrics=self.KNOWN)
        self.assertEqual(len(findings), 1)
        self.assertIn("not declared", findings[0].message)

    def test_kind_flip_fires(self):
        findings = run_rule(metric_name_consistency, {"a.cpp": """
            void f(Registry* r, double ms) {
              r->histogram("e2e_latency_ms").record(ms);
              r->counter("e2e_latency_ms").inc();
            }
        """}, known_metrics=self.KNOWN)
        self.assertEqual(len(findings), 1)
        self.assertIn("instrument kind", findings[0].message)

    def test_label_drift_fires(self):
        findings = run_rule(metric_name_consistency, {"a.cpp": """
            void f(Registry* r) {
              r->counter("tuples_dropped", {{"reason", "ttl"}}).inc();
              r->counter("tuples_dropped", {{"cause", "ttl"}}).inc();
            }
        """}, known_metrics=self.KNOWN)
        self.assertTrue(findings)

    def test_computed_name_fires_without_manifest(self):
        findings = run_rule(metric_name_consistency, {"a.cpp": """
            void f(Registry* r, std::string s) {
              r->counter("frames_" + s).inc();
            }
        """})
        self.assertEqual(len(findings), 1)
        self.assertIn("not a string literal", findings[0].message)

    def test_conformant_sites_clean(self):
        findings = run_rule(metric_name_consistency, {"a.cpp": """
            void f(Registry* r, const char* why, double ms) {
              r->counter("tuples_dropped", {{"reason", why}}).inc();
              r->counter("tuples_dropped", {{"reason", "ttl"}}).inc();
              r->histogram("e2e_latency_ms").record(ms);
            }
        """}, known_metrics=self.KNOWN)
        self.assertEqual(findings, [])

    def test_member_definition_not_a_call_site(self):
        # Registry::counter's own definition must not count as a call site.
        findings = run_rule(metric_name_consistency, {"registry.h": """
            struct Registry {
              Counter& counter(const std::string& name, const Labels& l = {});
            };
        """}, known_metrics=self.KNOWN)
        self.assertEqual(findings, [])


if __name__ == "__main__":
    unittest.main()
