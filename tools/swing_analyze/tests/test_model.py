import unittest

from swing_analyze.cpp_model import Model


def build(text, path="test.h"):
    model = Model()
    model.add_file(path, text)
    model.link()
    return model


class ModelTest(unittest.TestCase):
    def test_record_fields_and_inline_methods(self):
        model = build("""
            namespace swing {
            struct Msg {
              std::uint64_t seq = 0;
              std::vector<int> items;
              std::unordered_map<std::string, int> index_;
              void to_bytes(Writer& w) const { w.write_u64(seq); }
            };
            }  // namespace swing
        """)
        rec = model.records["Msg"]
        self.assertIn("seq", rec.fields)
        self.assertIn("unordered_map", rec.fields["index_"])
        self.assertIn("vector", rec.fields["items"])
        self.assertIn("to_bytes", rec.methods)

    def test_out_of_line_method_links_cross_file(self):
        model = Model()
        model.add_file("a.h", """
            class Medium {
             public:
              void detach(int id);
             private:
              std::unordered_map<int, int> flows_;
            };
        """)
        model.add_file("a.cpp", """
            void Medium::detach(int id) { flows_.clear(); }
        """)
        model.link()
        rec = model.records["Medium"]
        self.assertIn("detach", rec.methods)
        self.assertEqual(rec.methods["detach"].path, "a.cpp")
        self.assertIn("unordered_map", rec.fields["flows_"])

    def test_constructor_init_list_does_not_swallow_members(self):
        model = build("""
            class Unit {
             public:
              explicit Unit(std::size_t window) : window_(window) {}
              void process() { run(); }
              void snapshot_state(Writer& w) const { w.write_u64(x_); }
             private:
              std::size_t window_;
              std::uint64_t x_ = 0;
            };
        """)
        rec = model.records["Unit"]
        self.assertIn("process", rec.methods)
        self.assertIn("snapshot_state", rec.methods)
        self.assertIn("window_", rec.fields)

    def test_enum_parsing(self):
        model = build("""
            enum class MsgType : std::uint8_t {
              kHello = 1,
              kData = 2,
              kBye = 3,
            };
        """)
        enums = model.enums_named("MsgType")
        self.assertEqual(len(enums), 1)
        self.assertEqual(enums[0].enumerators, ["kHello", "kData", "kBye"])

    def test_method_body_token_range(self):
        model = build("int add(int a, int b) { return a + b; }")
        m = model.files["test.h"].methods[0]
        self.assertEqual(m.name, "add")
        self.assertIsNone(m.cls)
        body = " ".join(t.text for t in m.body())
        self.assertEqual(body, "return a + b ;")

    def test_field_type_global_lookup(self):
        model = build("""
            struct A { std::unordered_set<int> keys_; };
        """)
        self.assertIn("unordered_set", model.field_type("keys_"))
        self.assertIsNone(model.field_type("missing_"))

    def test_std_function_member(self):
        model = build("""
            struct Hooks {
              std::function<void(int)> on_drop;
            };
        """)
        self.assertIn("on_drop", model.records["Hooks"].fields)

    def test_malformed_input_degrades_gracefully(self):
        # Unbalanced braces must not raise.
        build("struct Broken { void f() { if (x {  ")


if __name__ == "__main__":
    unittest.main()
