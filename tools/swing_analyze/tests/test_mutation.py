"""Mutation tests: inject realistic defects into copies of REAL sources
and assert the analyzer catches them.

This is the check that the rules bite on production code shapes, not just
on hand-built fixtures: a codec field-order swap in
state/state_messages.h's CheckpointMsg and a side effect planted inside a
reorder.h SWING_DCHECK must both surface; the pristine copies must scan
clean (control group).
"""

import pathlib
import tempfile
import unittest

from swing_analyze.engine import filter_allowed, run_rules

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]


def scan_texts(named_texts):
    """Writes {relpath: text} into a temp tree and runs all rules on it."""
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        paths = []
        for rel, text in named_texts.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(text, encoding="utf-8")
            paths.append(p)
        return run_rules(sorted(paths), root, known_metrics=None)


class CodecMutationTest(unittest.TestCase):
    ORIGINAL = "    w.write_u64(epoch);\n    w.write_i64(taken_ns);\n"
    SWAPPED = "    w.write_i64(taken_ns);\n    w.write_u64(epoch);\n"

    def read_source(self):
        return (REPO_ROOT / "src/state/state_messages.h").read_text(
            encoding="utf-8")

    def test_pristine_copy_is_clean(self):
        text = self.read_source()
        self.assertIn(self.ORIGINAL, text)  # mutation target still exists
        findings = [f for f in scan_texts({"state_messages.h": text})
                    if f.rule == "codec-symmetry"]
        self.assertEqual(findings, [])

    def test_field_order_swap_detected(self):
        mutated = self.read_source().replace(self.ORIGINAL, self.SWAPPED)
        findings = [f for f in scan_texts({"state_messages.h": mutated})
                    if f.rule == "codec-symmetry"]
        self.assertEqual(len(findings), 1)
        self.assertIn("CheckpointMsg", findings[0].message)


class DcheckMutationTest(unittest.TestCase):
    ORIGINAL = "SWING_DCHECK(!heap_.empty());"
    MUTATED = "SWING_DCHECK(!heap_.empty() && (heap_.pop_back(), true));"

    def read_source(self):
        return (REPO_ROOT / "src/runtime/reorder.h").read_text(
            encoding="utf-8")

    def test_pristine_copy_is_clean(self):
        text = self.read_source()
        self.assertIn(self.ORIGINAL, text)  # mutation target still exists
        findings = [f for f in scan_texts({"reorder.h": text})
                    if f.rule == "dcheck-side-effect"]
        self.assertEqual(findings, [])

    def test_injected_side_effect_detected(self):
        mutated = self.read_source().replace(self.ORIGINAL, self.MUTATED)
        findings = [f for f in scan_texts({"reorder.h": mutated})
                    if f.rule == "dcheck-side-effect"]
        self.assertEqual(len(findings), 1)
        self.assertIn("pop_back", findings[0].message)


class SwitchMutationTest(unittest.TestCase):
    """Regression for the worker/master fix: re-adding a default arm to the
    MsgType dispatch must trip switch-exhaustiveness again."""

    def read_sources(self):
        return {
            "runtime/messages.h":
                (REPO_ROOT / "src/runtime/messages.h").read_text(
                    encoding="utf-8"),
            "runtime/worker.cpp":
                (REPO_ROOT / "src/runtime/worker.cpp").read_text(
                    encoding="utf-8"),
        }

    def test_pristine_dispatch_is_clean(self):
        findings = [f for f in scan_texts(self.read_sources())
                    if f.rule == "switch-exhaustiveness"]
        self.assertEqual(findings, [])

    def test_default_arm_detected(self):
        sources = self.read_sources()
        target = ("    case MsgType::kHello:\n"
                  "    case MsgType::kHeartbeat:\n"
                  "    case MsgType::kLeaveReport:\n"
                  "    case MsgType::kBye:\n"
                  "    case MsgType::kCheckpoint:\n"
                  "    case MsgType::kDelta:\n"
                  "    case MsgType::kMigrateAck:\n"
                  "    case MsgType::kGatewayHello:\n"
                  "    case MsgType::kCellReport:\n"
                  "      break;\n")
        self.assertIn(target, sources["runtime/worker.cpp"])
        sources["runtime/worker.cpp"] = sources["runtime/worker.cpp"].replace(
            target, "    default:\n      break;\n")
        findings = [f for f in scan_texts(sources)
                    if f.rule == "switch-exhaustiveness"]
        self.assertEqual(len(findings), 2)  # default arm + missing cases


class HotPathMutationTest(unittest.TestCase):
    """The hot-path rules on real sources: re-introduce the exact defects
    this PR fixed and assert the analyzer catches them where they live.

    Unlike the classes above, these scans apply filter_allowed(): the
    pristine medium.cpp carries justified inline allows (shared_ptr
    ownership, erase-invalidated iterators) that are part of its clean
    state.
    """

    FILES = [
        "src/runtime/worker.cpp",
        "src/runtime/worker.h",
        "src/dataflow/tuple.h",
        "src/net/medium.cpp",
        "src/net/medium.h",
    ]
    BY_REF = ("SWING_HOT void Worker::route_and_send(Instance& from,\n"
              "                                      "
              "const dataflow::Tuple& tuple,")
    BY_VALUE = ("SWING_HOT void Worker::route_and_send(Instance& from,\n"
                "                                      "
                "dataflow::Tuple tuple,")
    LOOP_ANCHOR = "    auto it = flows_.find(key);\n"

    def read_sources(self):
        return {rel: (REPO_ROOT / rel).read_text(encoding="utf-8")
                for rel in self.FILES}

    def scan(self, sources):
        with tempfile.TemporaryDirectory() as td:
            root = pathlib.Path(td)
            paths = []
            for rel, text in sources.items():
                p = root / rel
                p.parent.mkdir(parents=True, exist_ok=True)
                p.write_text(text, encoding="utf-8")
                paths.append(p)
            findings = run_rules(sorted(paths), root, known_metrics=None)
            return filter_allowed(findings, root)

    def test_pristine_copies_are_clean(self):
        sources = self.read_sources()
        self.assertIn(self.BY_REF, sources["src/runtime/worker.cpp"])
        self.assertIn(self.LOOP_ANCHOR, sources["src/net/medium.cpp"])
        self.assertEqual(self.scan(sources), [])

    def test_by_value_tuple_param_detected(self):
        sources = self.read_sources()
        sources["src/runtime/worker.cpp"] = \
            sources["src/runtime/worker.cpp"].replace(
                self.BY_REF, self.BY_VALUE)
        findings = [f for f in self.scan(sources) if f.rule == "heavy-copy"]
        self.assertEqual(len(findings), 1)
        self.assertIn("route_and_send", findings[0].message)
        self.assertIn("Tuple", findings[0].message)

    def test_loop_allocation_in_medium_detected(self):
        sources = self.read_sources()
        sources["src/net/medium.cpp"] = \
            sources["src/net/medium.cpp"].replace(
                self.LOOP_ANCHOR,
                '    std::string trace_tag("serve");\n' + self.LOOP_ANCHOR,
                1)
        findings = [f for f in self.scan(sources)
                    if f.rule == "hotpath-alloc"]
        self.assertEqual(len(findings), 1)
        self.assertIn("serve_next", findings[0].message)


if __name__ == "__main__":
    unittest.main()
