import unittest

from swing_analyze.cpp_lexer import Token, match_forward, tokenize


class LexerTest(unittest.TestCase):
    def kinds(self, text):
        return [(t.kind, t.text) for t in tokenize(text)]

    def test_multichar_operators_are_single_tokens(self):
        toks = self.kinds("a == b; c = d; e++; f << g; h <<= i;")
        texts = [t for _, t in toks]
        self.assertIn("==", texts)
        self.assertIn("=", texts)
        self.assertIn("++", texts)
        self.assertIn("<<", texts)
        self.assertIn("<<=", texts)

    def test_string_contents_preserved(self):
        toks = tokenize('reg->counter("tuples_dropped")')
        strs = [t for t in toks if t.kind == "str"]
        self.assertEqual([s.text for s in strs], ["tuples_dropped"])

    def test_comments_skipped_lines_counted(self):
        toks = tokenize("a // trailing\n/* block\nspanning */ b\n")
        self.assertEqual([(t.text, t.line) for t in toks],
                         [("a", 1), ("b", 3)])

    def test_preprocessor_lines_skipped(self):
        text = ("#include <vector>\n"
                "#define SWING_CHECK(cond) do_check(cond)\n"
                "int x;\n"
                "#define MULTI \\\n"
                "  line2\n"
                "int y;\n")
        texts = [t.text for t in tokenize(text)]
        self.assertEqual(texts, ["int", "x", ";", "int", "y", ";"])

    def test_macro_invocations_stay_visible(self):
        texts = [t.text for t in tokenize("SWING_DCHECK(x < y);")]
        self.assertEqual(texts, ["SWING_DCHECK", "(", "x", "<", "y", ")", ";"])

    def test_hash_mid_line_is_not_a_directive(self):
        # Only a '#' that starts its line opens a preprocessor directive;
        # a mid-line '#' must not swallow the tokens before it.
        texts = [t.text for t in tokenize("int a; # stray\n")]
        self.assertEqual(texts[:3], ["int", "a", ";"])

    def test_raw_string(self):
        toks = tokenize('auto s = R"(no "escape" here)";')
        strs = [t for t in toks if t.kind == "str"]
        self.assertEqual([s.text for s in strs], ['no "escape" here'])

    def test_char_literal(self):
        toks = tokenize("char c = 'x';")
        self.assertIn(("chr", "x"), [(t.kind, t.text) for t in toks])

    def test_match_forward(self):
        toks = tokenize("f(a, g(b), c) + d")
        self.assertEqual(toks[1].text, "(")
        close = match_forward(toks, 1, "(", ")")
        self.assertEqual(toks[close].text, ")")
        self.assertEqual(toks[close + 1].text, "+")

    def test_match_forward_unbalanced_degrades(self):
        toks = tokenize("f(a, b")
        self.assertEqual(match_forward(toks, 1, "(", ")"), len(toks))


if __name__ == "__main__":
    unittest.main()
