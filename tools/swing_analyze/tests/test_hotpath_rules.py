"""Unit tests for the three hot-path rules (hotpath-alloc, heavy-copy,
double-lookup) on minimal sources — the fixture suite covers the broad
fire/no-fire matrix; these pin the exemption edges rule by rule.
"""

import pathlib
import tempfile
import unittest

from swing_analyze.engine import run_rules

HEADER = """\
#pragma once
#define SWING_HOT
#include <map>
#include <memory>
#include <string>
#include <vector>
"""


def scan(body):
    """Wraps `body` in a header prologue and runs all rules over it."""
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        p = root / "t.h"
        p.write_text(HEADER + body, encoding="utf-8")
        return run_rules([p], root, known_metrics=None)


def rule_findings(body, rule):
    return [f for f in scan(body) if f.rule == rule]


class HotpathAllocTest(unittest.TestCase):
    def test_new_fires_only_on_the_hot_set(self):
        hot = rule_findings(
            "struct A { SWING_HOT void f() { auto* p = new int(1); "
            "delete p; } };", "hotpath-alloc")
        cold = rule_findings(
            "struct A { void f() { auto* p = new int(1); delete p; } };",
            "hotpath-alloc")
        self.assertEqual(len(hot), 1)
        self.assertEqual(cold, [])

    def test_growth_with_reserve_is_clean(self):
        body = ("struct A { SWING_HOT void f(int n) {\n"
                "  std::vector<int> v;\n"
                "  v.reserve(std::size_t(n));\n"
                "  for (int i = 0; i < n; ++i) v.push_back(i);\n"
                "} };")
        self.assertEqual(rule_findings(body, "hotpath-alloc"), [])

    def test_growth_without_reserve_fires(self):
        body = ("struct A { SWING_HOT void f(int n) {\n"
                "  std::vector<int> v;\n"
                "  for (int i = 0; i < n; ++i) v.push_back(i);\n"
                "} };")
        self.assertEqual(len(rule_findings(body, "hotpath-alloc")), 1)

    def test_map_growth_is_exempt(self):
        body = ("struct A { std::map<int, int> m_;\n"
                "  SWING_HOT void f(int n) {\n"
                "  for (int i = 0; i < n; ++i) m_.insert({i, i});\n"
                "} };")
        self.assertEqual(rule_findings(body, "hotpath-alloc"), [])

    def test_loop_temporary_moved_later_is_exempt(self):
        fires = ("struct A { SWING_HOT void f(int n) {\n"
                 "  std::vector<std::string> out;\n"
                 "  out.reserve(std::size_t(n));\n"
                 "  for (int i = 0; i < n; ++i) {\n"
                 "    std::string s(\"x\");\n"
                 "    out.push_back(s);\n"
                 "  }\n"
                 "} };")
        exempt = fires.replace("out.push_back(s);",
                               "out.push_back(std::move(s));")
        self.assertEqual(len(rule_findings(fires, "hotpath-alloc")), 1)
        self.assertEqual(rule_findings(exempt, "hotpath-alloc"), [])


class HeavyCopyTest(unittest.TestCase):
    def test_by_value_string_param_fires_and_const_ref_is_clean(self):
        fires = ("struct A { SWING_HOT int f(std::string s) "
                 "{ return int(s.size()); } };")
        clean = ("struct A { SWING_HOT int f(const std::string& s) "
                 "{ return int(s.size()); } };")
        self.assertEqual(len(rule_findings(fires, "heavy-copy")), 1)
        self.assertEqual(rule_findings(clean, "heavy-copy"), [])

    def test_sink_param_moved_in_body_is_exempt(self):
        body = ("struct A { std::string slot_;\n"
                "  SWING_HOT void f(std::string s) "
                "{ slot_ = std::move(s); } };")
        self.assertEqual(rule_findings(body, "heavy-copy"), [])

    def test_copy_to_mutate_param_is_exempt(self):
        body = ("struct Env { std::string tag; };\n"
                "struct A { Env out_;\n"
                "  SWING_HOT void f(Env e) { e.tag = \"x\"; out_ = e; } };")
        self.assertEqual(rule_findings(body, "heavy-copy"), [])

    def test_dynamic_return_fires_but_plain_record_return_is_elided(self):
        fires = ("struct A { SWING_HOT std::vector<int> f() "
                 "{ std::vector<int> v; return v; } };")
        # Guaranteed copy elision: a flat struct return costs nothing.
        clean = ("struct Wide { double a; double b; double c; };\n"
                 "struct A { SWING_HOT Wide f() { return Wide{}; } };")
        self.assertEqual(len(rule_findings(fires, "heavy-copy")), 1)
        self.assertEqual(rule_findings(clean, "heavy-copy"), [])

    def test_return_move_handoff_is_exempt(self):
        body = ("struct A { std::string buf_;\n"
                "  SWING_HOT std::string take() "
                "{ return std::move(buf_); } };")
        self.assertEqual(rule_findings(body, "heavy-copy"), [])

    def test_unmoved_shared_ptr_param_fires(self):
        body = ("struct A { SWING_HOT int f(std::shared_ptr<int> p) "
                "{ return *p; } };")
        found = rule_findings(body, "heavy-copy")
        self.assertEqual(len(found), 1)
        self.assertIn("shared_ptr", found[0].message)


class DoubleLookupTest(unittest.TestCase):
    def test_second_lookup_of_same_key_fires(self):
        body = ("struct A { std::map<int, int> m_;\n"
                "  SWING_HOT int f(int k) {\n"
                "  if (m_.count(k) == 0) return 0;\n"
                "  return m_.at(k);\n"
                "} };")
        found = rule_findings(body, "double-lookup")
        self.assertEqual(len(found), 1)

    def test_distinct_keys_and_find_reuse_are_clean(self):
        body = ("struct A { std::map<int, int> m_;\n"
                "  SWING_HOT int f(int a, int b) {\n"
                "  auto it = m_.find(a);\n"
                "  if (it == m_.end()) return int(m_.count(b));\n"
                "  return it->second;\n"
                "} };")
        self.assertEqual(rule_findings(body, "double-lookup"), [])

    def test_vector_index_is_not_a_map_lookup(self):
        body = ("struct A { std::vector<int> v_;\n"
                "  SWING_HOT int f(std::size_t i) {\n"
                "  if (v_[i] > 0) return v_[i];\n"
                "  return 0;\n"
                "} };")
        self.assertEqual(rule_findings(body, "double-lookup"), [])

    def test_off_hot_path_double_lookup_is_ignored(self):
        body = ("struct A { std::map<int, int> m_;\n"
                "  int f(int k) {\n"
                "  if (m_.count(k) == 0) return 0;\n"
                "  return m_.at(k);\n"
                "} };")
        self.assertEqual(rule_findings(body, "double-lookup"), [])


if __name__ == "__main__":
    unittest.main()
