"""swing_check --changed-only: git-scoped scanning end to end.

Builds a throwaway git repository, commits a clean src/ tree, and runs
the real tools/swing_check entry point against it: a clean working tree
must exit 0 without scanning anything, and dirtying a hot file with a
by-value heavy parameter must exit 1 — proving the mode sees exactly
what git reports as changed (plus paired headers).
"""

import pathlib
import subprocess
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
SWING_CHECK = REPO_ROOT / "tools" / "swing_check"

CLEAN_HOT_CPP = """\
#include "pipe.h"

namespace demo {

SWING_HOT int Pipe::feed(const std::string& s) { return int(s.size()); }

}  // namespace demo
"""

DIRTY_HOT_CPP = CLEAN_HOT_CPP.replace("const std::string& s",
                                      "std::string s")

PIPE_H = """\
#pragma once
#include <string>
#define SWING_HOT

namespace demo {

struct Pipe {
  int feed(const std::string& s);
};

}  // namespace demo
"""


class ChangedOnlyTest(unittest.TestCase):
    def setUp(self):
        self._td = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._td.name)
        self.env = {
            "PATH": "/usr/bin:/bin",
            "HOME": str(self.root),
            "GIT_CONFIG_GLOBAL": "/dev/null",
            "GIT_CONFIG_SYSTEM": "/dev/null",
        }
        (self.root / "src").mkdir()
        (self.root / "src" / "pipe.h").write_text(PIPE_H, encoding="utf-8")
        (self.root / "src" / "pipe.cpp").write_text(CLEAN_HOT_CPP,
                                                    encoding="utf-8")
        self.git("init", "-q")
        self.git("-c", "user.email=t@t", "-c", "user.name=t",
                 "add", "-A")
        self.git("-c", "user.email=t@t", "-c", "user.name=t",
                 "commit", "-q", "-m", "seed")

    def tearDown(self):
        self._td.cleanup()

    def git(self, *argv):
        subprocess.run(["git", "-C", str(self.root), *argv],
                       check=True, env=self.env, capture_output=True)

    def check(self):
        return subprocess.run(
            ["python3", str(SWING_CHECK), "--root", str(self.root),
             "--changed-only"],
            env=self.env, capture_output=True, text=True)

    def test_clean_tree_scans_nothing_and_passes(self):
        proc = self.check()
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no C++ sources in the changed set", proc.stdout)

    def test_dirty_hot_file_fails_with_the_finding(self):
        (self.root / "src" / "pipe.cpp").write_text(DIRTY_HOT_CPP,
                                                    encoding="utf-8")
        proc = self.check()
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("heavy-copy", proc.stdout)
        self.assertIn("pipe.cpp", proc.stdout)

    def test_untracked_file_is_scanned(self):
        (self.root / "src" / "extra.h").write_text(
            "#pragma once\n#include <string>\n#define SWING_HOT\n"
            "struct X { SWING_HOT int f(std::string s) "
            "{ return int(s.size()); } };\n",
            encoding="utf-8")
        proc = self.check()
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("extra.h", proc.stdout)

    def test_changes_outside_scanned_trees_are_ignored(self):
        (self.root / "notes.md").write_text("scratch\n", encoding="utf-8")
        (self.root / "tools").mkdir()
        (self.root / "tools" / "fixture.h").write_text(
            "struct Y { void f() { auto* p = new int(1); delete p; } };\n",
            encoding="utf-8")
        proc = self.check()
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
