"""The --report hotpath artifact: schema, determinism, attribution.

Runs the real report builder over a small synthetic tree and over the
actual repository, asserting byte-identical output across runs and a
clean pass through check_bench_json.py's swing-hotpath-v1 validator
(imported directly — same code CI runs).
"""

import json
import pathlib
import tempfile
import unittest

import check_bench_json
from swing_analyze.engine import build_hotpath_report

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]

TREE = {
    "src/hot.h": "#pragma once\n#define SWING_HOT\n",
    "src/enc.h": """\
#pragma once
#include <string>
#include <vector>
#include "hot.h"

struct Enc {
  std::vector<int> out_;
  SWING_HOT void push(int n) {
    for (int i = 0; i < n; ++i) out_.push_back(i);
  }
  SWING_HOT std::string dump() { return join(); }
  std::string join() { return std::string("x"); }
};
""",
}


def synthetic_report():
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        for rel, text in TREE.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(text, encoding="utf-8")
        return build_hotpath_report(root)


class SyntheticReportTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.report = synthetic_report()

    def test_validates_against_the_shared_schema_checker(self):
        errors = []
        check_bench_json.check_hotpath_report(self.report, errors)
        self.assertEqual(errors, [])

    def test_hot_roots_and_set(self):
        self.assertEqual(self.report["hot_roots"],
                         ["Enc::dump", "Enc::push"])
        self.assertIn("Enc::join", self.report["hot_set"])

    def test_findings_are_attributed_to_their_function(self):
        rows = {r["function"]: r for r in
                self.report["findings"]["by_function"]}
        # push grows out_ without reserve; dump returns a std::string.
        self.assertEqual(rows["Enc::push"]["by_rule"],
                         {"hotpath-alloc": 1})
        self.assertEqual(rows["Enc::dump"]["by_rule"], {"heavy-copy": 1})
        # join's return is `return std::string("x")` — still a dynamic
        # return; it must land on join, not its hot caller.
        self.assertIn("Enc::join", rows)

    def test_byte_identical_across_runs(self):
        again = synthetic_report()
        self.assertEqual(json.dumps(self.report, indent=2),
                         json.dumps(again, indent=2))


class RepoReportTest(unittest.TestCase):
    """The report over the real tree — the exact artifact CI uploads."""

    @classmethod
    def setUpClass(cls):
        cls.report = build_hotpath_report(REPO_ROOT)

    def test_validates_and_reports_a_clean_scoreboard(self):
        errors = []
        check_bench_json.check_hotpath_report(self.report, errors)
        self.assertEqual(errors, [])
        # The wire-plane v2 redesign burned the codec Bytes-return debt
        # to zero: the scoreboard (pre-baseline) must stay empty.
        self.assertEqual(self.report["findings"]["by_rule"], {})
        self.assertEqual(self.report["findings"]["total"], 0)

    def test_every_codec_pair_is_hot(self):
        # Both halves of every wire codec are roots (annotated on the
        # definition), so the codec-hot rule has nothing to report.
        hot = set(self.report["hot_set"])
        for pair in ("Tuple", "DataMsg", "AckMsg", "DataBatchMsg",
                     "GestureFeatures", "CheckpointMsg", "RestoreMsg"):
            self.assertIn(f"{pair}::encode", hot)
            self.assertIn(f"{pair}::decode", hot)

    def test_worker_fast_path_is_rooted(self):
        for root in ("Worker::handle_data", "Worker::route_and_send",
                     "Tuple::encode", "Medium::send"):
            self.assertIn(root, self.report["hot_roots"])
        self.assertIn("Worker::spawn_fallback_instance",
                      self.report["cold_escapes"])

    def test_byte_identical_across_runs(self):
        again = build_hotpath_report(REPO_ROOT)
        self.assertEqual(json.dumps(self.report, indent=2),
                         json.dumps(again, indent=2))


class BaselineGateTest(unittest.TestCase):
    """Codec findings can never be suppressed via baseline.json."""

    def _apply(self, entries, findings):
        from swing_analyze.engine import apply_baseline
        with tempfile.TemporaryDirectory() as td:
            p = pathlib.Path(td) / "baseline.json"
            p.write_text(json.dumps(entries), encoding="utf-8")
            return apply_baseline(findings, p)

    def test_checked_in_baseline_is_empty(self):
        from swing_analyze.engine import baseline_path
        entries = json.loads(baseline_path().read_text(encoding="utf-8"))
        self.assertEqual(entries, [])

    def test_codec_entry_is_an_error_and_does_not_suppress(self):
        from swing_analyze.finding import Finding
        f = Finding("src/x.h", 3, "codec-symmetry", "drift")
        kept, errors = self._apply(
            [{"path": "src/x.h", "rule": "codec-symmetry"}], [f])
        self.assertEqual(kept, [f])  # Still reported.
        self.assertTrue(any("cannot be baselined" in e for e in errors))

    def test_codec_hot_entry_rejected_even_without_a_finding(self):
        kept, errors = self._apply(
            [{"path": "src/x.h", "rule": "codec-hot"}], [])
        self.assertEqual(kept, [])
        self.assertTrue(any("cannot be baselined" in e for e in errors))

    def test_non_codec_entry_still_suppresses(self):
        from swing_analyze.finding import Finding
        f = Finding("src/y.h", 9, "heavy-copy", "copy")
        kept, errors = self._apply(
            [{"path": "src/y.h", "rule": "heavy-copy"}], [f])
        self.assertEqual(kept, [])
        self.assertEqual(errors, [])


if __name__ == "__main__":
    unittest.main()
