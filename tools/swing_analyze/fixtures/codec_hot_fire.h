// Fixture: wire codecs (v2 names, real ByteWriter/ByteReader parameter
// types) left outside the SWING_HOT hot set. Both halves of the pair are
// findings — the hot-path rules would never scan either.
#pragma once

struct ByteWriter {};
struct ByteReader {};

struct ColdCodec {
  std::uint64_t seq = 0;
  // expect-analyze: codec-hot
  void encode(ByteWriter& w) const { w.write_u64(seq); }
  // expect-analyze: codec-hot
  static ColdCodec decode(ByteReader& r) {
    ColdCodec m;
    m.seq = r.read_u64();
    return m;
  }
};

// Half-annotated: encode was marked when the send path was rebuilt, the
// decoder was forgotten — only the unannotated half is a finding.
struct HalfHotCodec {
  std::uint64_t id = 0;
  SWING_HOT void encode(ByteWriter& w) const { w.write_u64(id); }
  // expect-analyze: codec-hot
  static HalfHotCodec decode(ByteReader& r) {
    HalfHotCodec m;
    m.id = r.read_u64();
    return m;
  }
};
