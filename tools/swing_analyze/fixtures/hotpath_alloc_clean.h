// Fixture: the blessed hot-path shapes. Must scan clean: reserve before
// growth, temporaries hoisted out of the loop, move-construction reusing
// storage, allocation in functions the hot set never reaches, and
// node-container growth (no reserve exists to demand).
#pragma once

struct Item {
  std::string name;
  std::uint64_t id;
};

class ReservedGrowth {
 public:
  SWING_HOT void collect(const std::vector<Item>& items) {
    std::vector<std::uint64_t> ids;
    ids.reserve(items.size());
    for (const auto& item : items) {
      ids.push_back(item.id);
    }
    consume(ids);
  }

  SWING_HOT void hoisted_temporary(const std::vector<Item>& items) {
    std::string label;
    for (const auto& item : items) {
      label = item.name;  // reuses the hoisted buffer's capacity
      use(label);
    }
  }

  SWING_HOT void move_construction(std::vector<Item>& items) {
    for (auto& item : items) {
      Item taken = std::move(item);  // storage handoff, no allocation
      use(taken.name);
    }
  }

  SWING_HOT void node_container(const std::vector<Item>& items) {
    for (const auto& item : items) {
      index_.insert(item.id);  // sets cannot reserve; not this rule
    }
  }

 private:
  void consume(const std::vector<std::uint64_t>& ids) {}
  void use(const std::string& label) {}
  std::set<std::uint64_t> index_;
};

class ColdAllocationIsFine {
 public:
  // Not SWING_HOT and unreachable from any root: allocation is free here.
  void setup() {
    auto* scratch = new Item();
    scratch_.reset(scratch);
  }

 private:
  std::unique_ptr<Item> scratch_;
};
