// Fixture: the blessed ownership-transfer shapes. Must scan clean:
// const& passes, the by-value-then-move sink idiom, light records by
// value, return of a moved-out member (storage handoff), and heavy
// passes in functions the hot set never reaches.
#pragma once

struct Frame {
  std::uint64_t id;
  std::int64_t captured_ns;
  std::vector<std::uint8_t> pixels;
  std::string camera;
};

struct Header {
  std::uint64_t seq;  // 8 bytes: light, fine to copy
};

class HotSink {
 public:
  SWING_HOT void root(const Frame& frame) {
    consume(frame);
  }

  // Sink idiom: by value then moved into storage — callers hand over
  // ownership with zero extra copies. The correct shape, not a finding.
  SWING_HOT void store(Frame frame) {
    slot_ = std::move(frame);
  }

  SWING_HOT void tag(Header header) {  // 8 bytes: cheaper than a ref
    last_seq_ = header.seq;
  }

 private:
  void consume(const Frame& frame) { last_seq_ = frame.id; }

  Frame slot_;
  std::uint64_t last_seq_ = 0;
};

class HotBuffer {
 public:
  // Storage handoff: every return moves a member out; the caller gets
  // the buffer this object already owned, no fresh allocation.
  SWING_HOT std::vector<std::uint8_t> take() {
    return std::move(buffer_);
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

class ColdPlane {
 public:
  // Unreachable from any SWING_HOT root: deploy-time copies are fine.
  void configure(Frame frame, std::shared_ptr<Frame> seed) {
    template_ = frame;
    seed_ = seed;
  }

 private:
  Frame template_;
  std::shared_ptr<Frame> seed_;
};
