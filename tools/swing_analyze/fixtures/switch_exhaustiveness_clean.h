// Fixture: the blessed switch shapes. Must scan clean — full enumeration
// with no default, a sentinel enumerator exempt from coverage, grouped
// cases, and unwatched enums free to use default.
#pragma once

enum class MsgType : std::uint8_t {
  kHello = 1,
  kData = 2,
  kAck = 3,
  kBye = 4,
};

enum class TracePhase : std::uint8_t {
  kEmit,
  kTransmit,
  kDeliver,
  kPhaseCount,  // sentinel: exempt from coverage
};

enum class Color { kRed, kGreen, kBlue };  // not watched

inline const char* route(MsgType t) {
  switch (t) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kData:
    case MsgType::kAck:  // grouped cases count as covered
      return "dataplane";
    case MsgType::kBye:
      return "bye";
  }
  return "unknown";  // out-of-range wire bytes, without a default arm
}

inline const char* phase_name(TracePhase p) {
  switch (p) {
    case TracePhase::kEmit:
      return "emit";
    case TracePhase::kTransmit:
      return "transmit";
    case TracePhase::kDeliver:
      return "deliver";
  }
  return "unknown";
}

inline int unwatched(Color c) {
  switch (c) {
    case Color::kRed:
      return 1;
    default:  // fine: Color is not a watched enum
      return 0;
  }
}
