// Fixture: side effects inside SWING_DCHECK — gone under NDEBUG, so debug
// and release builds diverge. Covers ++, assignment, a mutating container
// call, and a mutation hidden in the trailing stream chain.
#pragma once

class Cursor {
 public:
  void step() {
    // expect-analyze: dcheck-side-effect
    SWING_DCHECK(++pos_ < limit_);
  }

  void reset_and_check() {
    // expect-analyze: dcheck-side-effect
    SWING_DCHECK_EQ(pos_ = 0, 0u);
  }

  void drain() {
    // expect-analyze: dcheck-side-effect
    SWING_DCHECK(!queue_.empty() && (queue_.pop_back(), true));
  }

  void log_step() {
    // expect-analyze: dcheck-side-effect
    SWING_DCHECK(pos_ < limit_) << "advancing to " << pos_++;
  }

 private:
  std::uint64_t pos_ = 0;
  std::uint64_t limit_ = 0;
  std::vector<int> queue_;
};
