// Fixture: heap allocation on the hot path — directly in a root, in a
// callee reached transitively through the call graph (the point of the
// interprocedural hot set), and the in-loop temporary / growth shapes.
#pragma once

struct Item {
  std::string name;
  std::uint64_t id;
};

class HotAllocator {
 public:
  SWING_HOT void root() {
    // expect-analyze: hotpath-alloc
    auto* raw = new Item();
    helper(raw);
  }

 private:
  void helper(Item* item) {
    // Reached from root() via the call graph, two hops deep.
    deeper();
  }

  void deeper() {
    // expect-analyze: hotpath-alloc
    auto shared = std::make_shared<Item>();
    use(shared);
  }

  void use(const std::shared_ptr<Item>& item) {}
};

class LoopShapes {
 public:
  SWING_HOT void per_iteration_temporaries(const std::vector<Item>& items) {
    for (const auto& item : items) {
      // expect-analyze: hotpath-alloc
      std::string label = item.name;
      // expect-analyze: hotpath-alloc
      Item copy = item;
      sink(label, copy);
    }
  }

  SWING_HOT void growth_without_reserve(const std::vector<Item>& items) {
    std::vector<std::uint64_t> ids;
    for (const auto& item : items) {
      // expect-analyze: hotpath-alloc
      ids.push_back(item.id);
    }
    consume(ids);
  }

 private:
  void sink(const std::string& label, const Item& copy) {}
  void consume(const std::vector<std::uint64_t>& ids) {}
};
