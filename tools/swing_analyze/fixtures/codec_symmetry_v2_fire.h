// Fixture: drifted codec pairs under the wire-plane v2 names
// (encode/decode) and the v2 zero-copy read forms. Writer/reader types
// are the WireWriter/WireReader stubs (codec_symmetry_fire.h) so the
// codec-hot rule stays out of scope — this file is about symmetry only.
#pragma once

// Width drift under the new names: writer narrowed, decoder not updated.
// expect-analyze: codec-symmetry
struct V2WidthDrift {
  std::uint64_t seq = 0;
  std::uint64_t ts = 0;
  void encode(WireWriter& w) const {
    w.write_u32(seq);
    w.write_u64(ts);
  }
  static V2WidthDrift decode(WireReader& r) {
    V2WidthDrift m;
    m.seq = r.read_u64();
    m.ts = r.read_u64();
    return m;
  }
};

// Zero-copy drift: the writer frames a string, the reader borrows it as
// raw bytes — read_view canonicalises to `string`, read_span to `bytes`,
// so the borrowed forms still carry the framing op's identity.
// expect-analyze: codec-symmetry
struct V2BorrowDrift {
  std::string label;
  void encode(WireWriter& w) const { w.write_string(label); }
  static V2BorrowDrift decode(WireReader& r) {
    V2BorrowDrift m;
    m.label = std::string{r.read_span().begin(), r.read_span().end()};
    return m;
  }
};

// Writer-only field under the new names: encode gained a field, decode
// was forgotten.
// expect-analyze: codec-symmetry
struct V2ExtraWrite {
  std::uint64_t a = 0;
  double bias = 0;
  void encode(WireWriter& w) const {
    w.write_u64(a);
    w.write_f64(bias);
  }
  static V2ExtraWrite decode(WireReader& r) {
    V2ExtraWrite m;
    m.a = r.read_u64();
    return m;
  }
};

// Clean v2 idioms, same file, to pin the non-findings: the borrowed reads
// pair with their framing writes, and `take_span` is not a wire op — the
// length-prefixed nested frame is symmetric by construction.
struct V2Nested {
  std::uint64_t size = 0;
  void encode(WireWriter& w) const { w.write_u64(size); }
  static V2Nested decode(WireReader& r) {
    V2Nested m;
    m.size = r.read_u64();
    return m;
  }
};

struct V2CleanFrame {
  std::string name;
  Bytes blob;
  V2Nested inner;
  void encode(WireWriter& w) const {
    w.write_string(name);
    w.write_bytes(blob);
    w.write_varint(inner.encoded_size());
    inner.encode(w);
  }
  static V2CleanFrame decode(WireReader& r) {
    V2CleanFrame m;
    m.name = std::string{r.read_view()};
    const auto body = r.read_span();
    m.blob = Bytes{body.begin(), body.end()};
    const auto len = r.read_varint();
    WireReader sub{r.take_span(len)};
    m.inner = V2Nested::decode(sub);
    return m;
  }
};
