// Shared stub for the metric fixtures: just enough surface for call sites.
#pragma once

struct Counter {
  void inc() {}
};
struct Gauge {
  void set(double) {}
};
struct Histogram {
  void record(double) {}
};

struct Registry {
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});
};

inline const char* kFaultKey = "fault";
