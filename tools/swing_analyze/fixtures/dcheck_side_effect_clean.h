// Fixture: effect-free SWING_DCHECK usage. Must scan clean — comparisons,
// const calls, == (not =), lambda captures, and side effects hoisted OUT
// of the check, plus SWING_CHECK (always on, side effects legal if odd).
#pragma once

class Cursor {
 public:
  void step() {
    ++pos_;  // hoisted: the mutation survives NDEBUG
    SWING_DCHECK(pos_ < limit_);
    SWING_DCHECK_EQ(queue_.size(), expected_);
    SWING_DCHECK(pos_ == 0 || !queue_.empty()) << "pos " << pos_;
  }

  void with_lambda() {
    // `[=]` is a capture default, not an assignment.
    SWING_DCHECK(std::all_of(queue_.begin(), queue_.end(),
                             [=](int v) { return v >= 0; }));
  }

  void always_on() {
    // SWING_CHECK runs in release too; not this rule's business.
    SWING_CHECK(consume_token());
  }

 private:
  bool consume_token() { return true; }
  std::uint64_t pos_ = 0;
  std::uint64_t limit_ = 0;
  std::uint64_t expected_ = 0;
  std::vector<int> queue_;
};
