// Fixture: switches over watched enums that swallow future enumerators —
// a `default:` arm, and a default-less switch missing a case.
#pragma once

enum class MsgType : std::uint8_t {
  kHello = 1,
  kData = 2,
  kAck = 3,
  kBye = 4,
};

enum class TracePhase : std::uint8_t {
  kEmit,
  kTransmit,
  kDeliver,
  kPhaseCount,  // sentinel: sizes arrays, never handled
};

inline void route(MsgType t) {
  // expect-analyze: switch-exhaustiveness
  switch (t) {
    case MsgType::kHello:
      break;
    case MsgType::kData:
      break;
    default:  // kAck/kBye and every FUTURE kind end up here, silently
      break;
  }
}
// The default also mutes -Wswitch for the two uncovered enumerators:
// expect-analyze: switch-exhaustiveness

inline const char* phase_name(TracePhase p) {
  // expect-analyze: switch-exhaustiveness
  switch (p) {
    case TracePhase::kEmit:
      return "emit";
    case TracePhase::kTransmit:
      return "transmit";
      // kDeliver missing: -Wswitch catches this at compile time, the
      // analyzer catches it without compiling.
  }
  return "unknown";
}
