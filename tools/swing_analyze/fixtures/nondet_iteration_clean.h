// Fixture: the blessed patterns around unordered containers. Must scan
// clean: drain-sort-then-sink keeps the sink out of the tainted loop,
// ordered-map iteration is deterministic by construction, and pure
// accumulation leaks no order anywhere.
#pragma once

struct Registry {
  void inc() {}
};

class DrainSortSink {
 public:
  // The latency_estimator::estimates shape: collect inside the loop, sort,
  // then sink from the sorted vector.
  void report() {
    std::vector<std::uint64_t> keys;
    for (const auto& [id, v] : pending_) {
      keys.push_back(id);
    }
    std::sort(keys.begin(), keys.end());
    for (const auto id : keys) {
      registry_.inc();
    }
  }

 private:
  std::unordered_map<std::uint64_t, double> pending_;
  Registry registry_;
};

class OrderedIsFine {
 public:
  void report() {
    for (const auto& [id, v] : members_) {
      registry_.inc();
    }
  }

 private:
  std::map<std::uint64_t, double> members_;  // ordered: stable iteration
  Registry registry_;
};

class PureAccumulation {
 public:
  double total() const {
    double sum = 0;
    for (const auto& [id, v] : pending_) {
      sum += v;  // commutative fold; no order-sensitive sink
    }
    return sum;
  }

 private:
  std::unordered_map<std::uint64_t, double> pending_;
};

class SuppressedSink {
 public:
  void flush() {
    // Deliberate: single-element map by construction, order irrelevant.
    for (const auto& [id, v] : pending_) {  // swing-lint: allow(nondet-iteration)
      registry_.inc();
    }
  }

 private:
  std::unordered_map<std::uint64_t, double> pending_;
  Registry registry_;
};
