// Fixture: symmetric codecs in the shapes the real tree uses — fixed-width
// sequences, a varint-prefixed loop with a braceless body, a nested
// serialize/deserialize pair, and validation-only conditionals. Must scan
// clean: no expect-analyze lines in this file.
#pragma once

struct WireWriter {};
struct WireReader {};

struct Inner {
  std::uint64_t x = 0;
  void serialize(WireWriter& w) const { w.write_u64(x); }
  static Inner deserialize(WireReader& r) {
    Inner v;
    v.x = r.read_u64();
    return v;
  }
};

struct Outer {
  std::uint64_t id = 0;
  std::vector<Inner> parts;
  void to_bytes(WireWriter& w) const {
    w.write_u64(id);
    w.write_varint(parts.size());
    for (const auto& p : parts) p.serialize(w);
  }
  static Outer from_bytes(WireReader& r) {
    Outer m;
    m.id = r.read_u64();
    const auto n = r.read_varint();
    for (std::uint64_t i = 0; i < n; ++i)
      m.parts.push_back(Inner::deserialize(r));
    if (m.parts.size() != n) throw "short read";  // guards only, no ops
    return m;
  }
};

// Detached-buffer helpers are not stream ops: the stream op is the
// write_bytes/read_bytes pair, to_bytes()/from_bytes() inside it run on a
// separate buffer (mirrors Tuple snapshots in the real tree).
struct Detached {
  Inner payload;
  void to_bytes(WireWriter& w) const { w.write_bytes(payload.to_bytes()); }
  static Detached from_bytes(WireReader& r) {
    Detached m;
    m.payload = Inner::from_bytes(r.read_bytes());
    return m;
  }
};
