// Fixture: codec-hot non-findings. Annotated pairs, a deliberate
// SWING_COLD escape, reachability through a hot caller, and lookalikes
// whose parameter types are not the wire-plane ByteWriter/ByteReader.
#pragma once

// The normal spelling: the codec IS a hot root on both sides.
struct AnnotatedCodec {
  std::uint64_t seq = 0;
  SWING_HOT void encode(ByteWriter& w) const { w.write_u64(seq); }
  static SWING_HOT AnnotatedCodec decode(ByteReader& r) {
    AnnotatedCodec m;
    m.seq = r.read_u64();
    return m;
  }
};

// Documented opt-out: a cold-plane serializer wears SWING_COLD instead.
struct EscapedCodec {
  std::uint64_t cfg = 0;
  SWING_COLD void encode(ByteWriter& w) const { w.write_u64(cfg); }
  static SWING_COLD EscapedCodec decode(ByteReader& r) {
    EscapedCodec m;
    m.cfg = r.read_u64();
    return m;
  }
};

// In the hot set by reachability: a SWING_HOT dispatcher calls both
// halves, so annotating the codec itself is not required.
struct ReachedCodec {
  std::uint64_t tag = 0;
  void encode(ByteWriter& w) const { w.write_u64(tag); }
  static ReachedCodec decode(ByteReader& r) {
    ReachedCodec m;
    m.tag = r.read_u64();
    return m;
  }
};

class ReachedDispatch {
 public:
  SWING_HOT void pump(ByteWriter& w, ByteReader& r) {
    pending_.encode(w);
    pending_ = ReachedCodec::decode(r);
  }

 private:
  ReachedCodec pending_;
};

// Not a wire codec: encode/decode over some other writer/reader pair
// (a transcoder, a fixture stub) is outside this rule's contract.
struct OtherPlaneCodec {
  std::uint64_t raw = 0;
  void encode(WireWriter& w) const { w.write_u64(raw); }
  static OtherPlaneCodec decode(WireReader& r) {
    OtherPlaneCodec m;
    m.raw = r.read_u64();
    return m;
  }
};
