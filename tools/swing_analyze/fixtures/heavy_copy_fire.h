// Fixture: heavy records passed/returned by value on the hot path — the
// record-size computation from symbol-table field widths, the shared_ptr
// copy shape, and return-by-value of a dynamic container. The violating
// callee is reached transitively (root -> relay -> copies) to exercise
// the cross-file-style hot-set propagation.
#pragma once

struct Frame {
  std::uint64_t id;
  std::int64_t captured_ns;
  std::vector<std::uint8_t> pixels;
  std::string camera;
};

struct Header {
  std::uint64_t seq;  // 8 bytes: light, fine to copy
};

class HotPipeline {
 public:
  SWING_HOT void root(const Frame& frame) {
    relay(frame);
  }

 private:
  void relay(const Frame& frame) {
    copies(frame, state_);
  }

  // expect-analyze: heavy-copy
  void copies(Frame frame, std::shared_ptr<Frame> state) {
    last_seq_ = frame.id;
    observe(state);
  }
  // expect-analyze: heavy-copy
  // (the shared_ptr parameter above fires separately from the Frame)

  void observe(const std::shared_ptr<Frame>& state) {}

  std::shared_ptr<Frame> state_;
  std::uint64_t last_seq_ = 0;
};

class HotEncoder {
 public:
  // expect-analyze: heavy-copy
  SWING_HOT std::vector<std::uint8_t> encode(const Frame& frame) {
    std::vector<std::uint8_t> out;
    out.reserve(frame.pixels.size());
    fill(out, frame);
    return out;
  }

 private:
  void fill(std::vector<std::uint8_t>& out, const Frame& frame) {}
};
