// Fixture: manifest-conformant metric usage. Must scan clean — literal
// names and label keys matching fixtures/known_metrics.json, computed
// label VALUES (fine), and repeated consistent call sites.
#include "registry_stub.h"

void report(Registry* reg, const char* reason, double ms) {
  reg->counter("frames_delivered").inc();
  reg->counter("frames_delivered").inc();  // repeat, consistent
  reg->counter("tuples_dropped", {{"reason", reason}}).inc();  // value computed
  reg->counter("workers_evicted", {{"cause", "timeout"}}).inc();
  reg->histogram("e2e_latency_ms").record(ms);
  reg->gauge("net_busy_airtime_s").set(ms);
}
