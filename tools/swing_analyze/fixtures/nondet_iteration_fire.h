// Fixture: unordered-container iteration reaching order-sensitive sinks —
// directly, through a one-hop helper (the Medium::detach shape), and via
// an iterator into a nested unordered registry (the Discovery::watch
// shape).
#pragma once

struct Registry {
  void inc() {}
};

class DirectSink {
 public:
  // expect-analyze: nondet-iteration
  void flush() {
    for (const auto& [id, v] : pending_) {
      registry_.inc();
    }
  }

 private:
  std::unordered_map<std::uint64_t, double> pending_;
  Registry registry_;
};

class HelperSink {
 public:
  // expect-analyze: nondet-iteration
  void drop_all() {
    for (auto& [key, queue] : flows_) {
      drop_one(key);
    }
  }

 private:
  void drop_one(std::uint64_t key) { registry_.inc(); }
  std::unordered_map<std::uint64_t, int> flows_;
  Registry registry_;
};

class NestedRegistry {
 public:
  // expect-analyze: nondet-iteration
  void announce(const std::string& service) {
    auto it = services_.find(service);
    for (const auto& [provider, info] : it->second) {
      emit(provider);
    }
  }

 private:
  void emit(std::uint64_t provider) {}
  std::unordered_map<std::string,
                     std::unordered_map<std::uint64_t, int>> services_;
};
