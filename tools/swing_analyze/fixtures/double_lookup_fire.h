// Fixture: the same map key looked up twice in one scope — count+at,
// find+operator[], and the double-find in a transitively-hot helper.
#pragma once

class HotRouter {
 public:
  SWING_HOT double lookup_twice(std::uint64_t key) {
    if (rates_.count(key) == 0) {
      return 0.0;
    }
    // expect-analyze: double-lookup
    return rates_.at(key);
  }

  SWING_HOT void find_then_index(std::uint64_t key, double value) {
    auto it = rates_.find(key);
    if (it == rates_.end()) {
      // expect-analyze: double-lookup
      rates_[key] = value;
    }
  }

  SWING_HOT void route(std::uint64_t key) {
    helper(key);
  }

 private:
  void helper(std::uint64_t key) {
    auto it = peers_.find(key);
    if (it == peers_.end()) return;
    // expect-analyze: double-lookup
    auto again = peers_.find(key);
    (void)again;
  }

  std::map<std::uint64_t, double> rates_;
  std::map<std::uint64_t, std::uint64_t> peers_;
};
