// Fixture: codec pairs whose wire sequences drifted. Each defect is a
// realistic edit: a width change on one side only, a swapped field pair,
// a field added to the writer but not the reader, and a loop-depth slip.
#pragma once

struct WireWriter {};
struct WireReader {};

// Width drift: writer narrows to u32, reader still consumes u64.
// expect-analyze: codec-symmetry
struct WidthDrift {
  std::uint64_t seq = 0;
  std::uint64_t ts = 0;
  void to_bytes(WireWriter& w) const {
    w.write_u32(seq);  // narrowed in an "optimization", reader not updated
    w.write_u64(ts);
  }
  static WidthDrift from_bytes(WireReader& r) {
    WidthDrift m;
    m.seq = r.read_u64();
    m.ts = r.read_u64();
    return m;
  }
};

// Swapped pair: reader consumes the two fields in the opposite order.
// expect-analyze: codec-symmetry
struct SwappedFields {
  double lat = 0;
  std::uint64_t id = 0;
  void to_bytes(WireWriter& w) const {
    w.write_f64(lat);
    w.write_u64(id);
  }
  static SwappedFields from_bytes(WireReader& r) {
    SwappedFields m;
    m.id = r.read_u64();
    m.lat = r.read_f64();
    return m;
  }
};

// Writer-only field: a field appended to to_bytes, from_bytes forgotten.
// expect-analyze: codec-symmetry
struct ExtraWrite {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  void to_bytes(WireWriter& w) const {
    w.write_u64(a);
    w.write_u64(b);
  }
  static ExtraWrite from_bytes(WireReader& r) {
    ExtraWrite m;
    m.a = r.read_u64();
    return m;
  }
};

// Loop-depth slip: written once, read per-element — the count prefix and
// the payload disagree on repetition.
// expect-analyze: codec-symmetry
struct DepthSlip {
  std::vector<std::uint64_t> ids;
  std::uint64_t crc = 0;
  void to_bytes(WireWriter& w) const {
    w.write_varint(ids.size());
    for (const auto id : ids) w.write_u64(id);
    w.write_u64(crc);
  }
  static DepthSlip from_bytes(WireReader& r) {
    DepthSlip m;
    const auto n = r.read_varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      m.ids.push_back(r.read_u64());
      m.crc = r.read_u64();  // belongs after the loop
    }
    return m;
  }
};
