// Fixture: metric call sites that fork or hide a metric family — a typo'd
// name unknown to the manifest, a kind flip, a label-key drift, a computed
// name, and a computed label key.
#include "registry_stub.h"

void report(Registry* reg, const std::string& suffix, int n) {
  // expect-analyze: metric-name-consistency
  reg->counter("frames_delievered").inc();  // typo: not in the manifest

  reg->counter("tuples_dropped", {{"reason", "ttl"}}).inc();
  // expect-analyze: metric-name-consistency
  reg->histogram("tuples_dropped").record(n);  // same name, different kind

  reg->counter("workers_evicted", {{"cause", "timeout"}}).inc();
  // expect-analyze: metric-name-consistency
  reg->counter("workers_evicted", {{"why", "timeout"}}).inc();  // key drift

  // expect-analyze: metric-name-consistency
  reg->counter("frames_" + suffix).inc();  // computed name: not greppable

  // expect-analyze: metric-name-consistency
  reg->counter("chaos_injected", {{kFaultKey, "crash"}}).inc();  // computed key
}
