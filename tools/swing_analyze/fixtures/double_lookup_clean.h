// Fixture: single-lookup shapes. Must scan clean: find once and reuse
// the iterator, try_emplace, distinct keys, operator[] on a receiver the
// model cannot prove is a map, and double lookups off the hot path.
#pragma once

class HotCache {
 public:
  SWING_HOT double find_once(std::uint64_t key) {
    auto it = rates_.find(key);
    if (it == rates_.end()) {
      return 0.0;
    }
    return it->second;  // reuses the iterator, no second lookup
  }

  SWING_HOT void upsert(std::uint64_t key, double value) {
    auto [it, inserted] = rates_.try_emplace(key, value);
    if (!inserted) {
      it->second = value;
    }
  }

  SWING_HOT double two_keys(std::uint64_t a, std::uint64_t b) {
    return rates_.count(a) + rates_.count(b);  // distinct keys
  }

  SWING_HOT std::uint64_t positional(std::size_t i, std::size_t j) {
    // operator[] on a vector: not a map lookup, out of scope.
    return slots_[i] + slots_[j] + slots_[i];
  }

 private:
  std::map<std::uint64_t, double> rates_;
  std::vector<std::uint64_t> slots_;
};

class ColdIndex {
 public:
  // Unreachable from any SWING_HOT root: the double lookup is tolerated.
  void rebuild(std::uint64_t key) {
    if (rates_.count(key) != 0) {
      rates_.at(key) = 0.0;
    }
  }

 private:
  std::map<std::uint64_t, double> rates_;
};
