"""Record-size estimation from symbol-table field widths.

heavy-copy needs to decide whether passing or returning a record by
value is expensive. Exact layout is a compiler question; for a
threshold check an additive estimate over the declared fields is
enough (padding is ignored — it only ever under-estimates by a few
bytes, and the threshold is calibrated for that).

Type-text widths follow the LP64 targets this tree builds on:
fixed-width ints by their suffix, pointers/references 8, the common
std:: containers by their libstdc++ sizeof, unknown identifiers 8
(one word). A named record recurses through its own fields.
"""

from __future__ import annotations

import re

from swing_analyze.cpp_model import Model

# Passing more than this many bytes by value is "heavy" (two cache-ready
# registers' worth; a Tuple, a Message, or any dynamic container is over).
HEAVY_BYTES = 16

_WIDTH_PATTERNS: list[tuple[re.Pattern, int]] = [
    (re.compile(r"\b(?:u?int8_t|char|bool|byte)\b"), 1),
    (re.compile(r"\bu?int16_t\b"), 2),
    (re.compile(r"\b(?:u?int32_t|float|unsigned|int)\b"), 4),
    (re.compile(r"\b(?:u?int64_t|double|size_t|long|time_t)\b"), 8),
]

# sizeof on x86-64 libstdc++; close enough everywhere it matters.
_STD_WIDTHS = {
    "string": 32, "vector": 24, "deque": 80,
    "map": 48, "set": 48, "multimap": 48, "multiset": 48,
    "unordered_map": 56, "unordered_set": 56,
    "function": 32, "shared_ptr": 16, "weak_ptr": 16, "unique_ptr": 8,
    "optional": 16, "variant": 16, "pair": 16, "tuple": 16,
    "priority_queue": 32, "queue": 80, "array": 16, "span": 16,
    "string_view": 16, "bitset": 8,
}

# Well-known aliases the declaration-level parser cannot see through.
_ALIAS_WIDTHS = {
    "Bytes": 24,      # std::vector<std::uint8_t>
    "Labels": 24,     # std::vector<std::pair<...>>
    "SimTime": 8, "SimDuration": 8,
}

_DYNAMIC_RE = re.compile(
    r"\b(?:string|vector|deque|map|set|multimap|multiset|unordered_map|"
    r"unordered_set|function|Bytes|Labels|Json)\b")


def type_width(model: Model, type_text: str,
               _seen: frozenset[str] = frozenset()) -> int:
    """Estimated sizeof for a declared-type text."""
    if "&" in type_text or "*" in type_text:
        return 8
    for name, width in _STD_WIDTHS.items():
        if re.search(rf"\b{name}\b", type_text):
            return width
    for name, width in _ALIAS_WIDTHS.items():
        if re.search(rf"\b{name}\b", type_text):
            return width
    for pattern, width in _WIDTH_PATTERNS:
        if pattern.search(type_text):
            return width
    for word in type_text.replace("<", " ").replace(">", " ") \
                         .replace(",", " ").replace("::", " ").split():
        if word in model.records and word not in _seen:
            return record_width(model, word, _seen | {word})
    return 8


def record_width(model: Model, record_name: str,
                 _seen: frozenset[str] = frozenset()) -> int:
    rec = model.records.get(record_name)
    if rec is None:
        return 8
    if not rec.fields:
        return 8  # opaque or method-only record: one word
    return sum(type_width(model, t, _seen) for t in rec.fields.values())


def is_dynamic(type_text: str) -> bool:
    """True when the type owns heap storage (copy implies allocation)."""
    return bool(_DYNAMIC_RE.search(type_text))
