"""swing-analyze: semantic static analysis for the Swing C++ tree.

Where swing-lint works line-by-line with regexes, swing-analyze builds a
token stream, a declaration-level parse, and a cross-file symbol table,
then checks properties no single line can reveal: codec write/read
symmetry, unordered-container iteration reaching order-sensitive sinks,
side effects inside compiled-out SWING_DCHECKs, switch exhaustiveness
over wire/determinism-critical enums, and obs metric-name consistency
against the KNOWN_METRICS manifest.

Zero-install by design: stdlib only, no libclang, no compile_commands.

Run it:  python3 tools/swing_check --root .          (lint + analyze)
         python3 -m swing_analyze --root .           (analyze only)
         python3 -m swing_analyze --self-test        (fixture check)
"""

from swing_analyze.engine import main  # noqa: F401
