"""Declaration-level C++ parser and cross-file symbol table.

swing-analyze does not need a full C++ front end: the rules reason about
record fields (for codec nesting and container types), enum definitions
(for switch exhaustiveness), and method bodies (for everything else).
This module extracts exactly that, by recursive descent over the token
stream from cpp_lexer:

  Record   struct/class name, its data members (name -> type text), and
           the methods defined inline in its body.
  Enum     name (empty for anonymous enums) and enumerator list.
  Method   enclosing class (None for free functions), name, and the token
           range of its body. Out-of-line `Cls::method() {...}` definitions
           are attached to their Record after all files parse, which is the
           cross-file step: a container declared in medium.h resolves from
           a loop in medium.cpp.

Parsing is deliberately forgiving — anything unrecognized is skipped, so a
construct outside the modeled subset degrades to "no information" rather
than a crash.
"""

from __future__ import annotations

import dataclasses
import pathlib

from swing_analyze.cpp_lexer import Token, match_forward, tokenize


@dataclasses.dataclass
class Method:
    cls: str | None
    name: str
    path: str
    tokens: list[Token]  # the whole file's tokens
    body_start: int      # index of the '{'
    body_end: int        # index of the matching '}'
    line: int
    decl_start: int = -1  # first token of the declaration (specifiers on)
    lp: int = -1          # index of the parameter list's '('

    def body(self) -> list[Token]:
        return self.tokens[self.body_start + 1:self.body_end]

    def qualified(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name

    def decl_tokens(self) -> list[Token]:
        """Declaration prefix: specifiers/attributes up to the body brace.

        Empty when the parser did not record where the declaration began
        (decl_start defaults to -1 for hand-built Methods in tests).
        """
        if self.decl_start < 0:
            return []
        return self.tokens[self.decl_start:self.body_start]

    def param_tokens(self) -> list[Token]:
        """Tokens inside the parameter list parentheses (exclusive)."""
        if self.lp < 0:
            return []
        rp = match_forward(self.tokens, self.lp, "(", ")")
        return self.tokens[self.lp + 1:rp]


@dataclasses.dataclass
class Record:
    name: str
    path: str
    line: int
    fields: dict[str, str] = dataclasses.field(default_factory=dict)
    methods: dict[str, Method] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class Enum:
    name: str
    path: str
    line: int
    enumerators: list[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class FileModel:
    path: str
    tokens: list[Token]
    methods: list[Method] = dataclasses.field(default_factory=list)


_DECL_KEYWORDS = {"using", "typedef", "static_assert", "extern", "friend"}
_MODIFIERS = {"const", "noexcept", "override", "final", "mutable"}


class Model:
    def __init__(self) -> None:
        self.files: dict[str, FileModel] = {}
        self.records: dict[str, Record] = {}
        self.enums: list[Enum] = []

    @classmethod
    def build(cls, paths: list[pathlib.Path],
              root: pathlib.Path | None = None) -> "Model":
        model = cls()
        for path in paths:
            rel = str(path.relative_to(root)) if root else str(path)
            text = path.read_text(encoding="utf-8", errors="replace")
            model.add_file(rel, text)
        model.link()
        return model

    def add_file(self, path: str, text: str) -> None:
        tokens = tokenize(text)
        fm = FileModel(path, tokens)
        self.files[path] = fm
        _Parser(self, fm).parse_scope(0, len(tokens))

    def link(self) -> None:
        """Attaches out-of-line method definitions to their records."""
        for fm in self.files.values():
            for m in fm.methods:
                if m.cls and m.cls in self.records:
                    self.records[m.cls].methods.setdefault(m.name, m)

    # --- lookups used by rules ---------------------------------------------

    def field_type(self, field: str) -> str | None:
        """Type of a field by name, searched across every record.

        Field names in this codebase are unique enough (wire structs use
        plain names, classes use trailing underscores) that a global search
        resolves correctly; a collision returns the first match in path
        order, which rules treat as a hint, not ground truth.
        """
        for name in sorted(self.records):
            rec = self.records[name]
            if field in rec.fields:
                return rec.fields[field]
        return None

    def enums_named(self, name: str) -> list[Enum]:
        return [e for e in self.enums if e.name == name]


class _Parser:
    def __init__(self, model: Model, fm: FileModel) -> None:
        self.model = model
        self.fm = fm
        self.toks = fm.tokens

    # --- scope-level parsing ------------------------------------------------

    def parse_scope(self, i: int, end: int) -> None:
        """Parses namespace-scope declarations in tokens[i:end]."""
        while i < end:
            t = self.toks[i]
            if t.text == "namespace":
                i = self._enter_namespace(i, end)
            elif t.text == "enum":
                i = self.parse_enum(i, end)
            elif t.text in ("struct", "class"):
                i = self.parse_record(i, end, enclosing=None)
            elif t.text == "template":
                i = self._skip_template(i, end)
            elif t.text in _DECL_KEYWORDS:
                i = self._skip_to(";", i, end) + 1
            else:
                i = self._parse_function_or_skip(i, end)

    def _enter_namespace(self, i: int, end: int) -> int:
        j = i + 1
        while j < end and self.toks[j].text not in ("{", ";"):
            j += 1
        if j >= end or self.toks[j].text == ";":
            return j + 1
        close = match_forward(self.toks, j, "{", "}")
        self.parse_scope(j + 1, min(close, end))
        return close + 1

    def _skip_template(self, i: int, end: int) -> int:
        j = i + 1
        if j < end and self.toks[j].text == "<":
            depth = 0
            while j < end:
                t = self.toks[j].text
                if t == "<":
                    depth += 1
                elif t == ">":
                    depth -= 1
                elif t == ">>":
                    depth -= 2
                elif t in ("{", ";"):
                    return j  # misparse guard: re-read from here
                j += 1
                if depth <= 0:
                    break
        return j

    def _skip_to(self, text: str, i: int, end: int) -> int:
        while i < end and self.toks[i].text != text:
            if self.toks[i].text == "{":
                i = match_forward(self.toks, i, "{", "}")
            i += 1
        return i

    # --- enums --------------------------------------------------------------

    def parse_enum(self, i: int, end: int) -> int:
        j = i + 1
        if j < end and self.toks[j].text in ("class", "struct"):
            j += 1
        name = ""
        line = self.toks[i].line
        if j < end and self.toks[j].kind == "id":
            name = self.toks[j].text
            line = self.toks[j].line
            j += 1
        while j < end and self.toks[j].text not in ("{", ";"):
            j += 1
        if j >= end or self.toks[j].text == ";":
            return j + 1  # forward declaration
        close = match_forward(self.toks, j, "{", "}")
        enum = Enum(name, self.fm.path, line)
        expect_name = True
        k = j + 1
        while k < close:
            t = self.toks[k]
            if expect_name and t.kind == "id":
                enum.enumerators.append(t.text)
                expect_name = False
            elif t.text == ",":
                expect_name = True
            k += 1
        self.model.enums.append(enum)
        return self._skip_to(";", close, end) + 1

    # --- records ------------------------------------------------------------

    def parse_record(self, i: int, end: int, enclosing: str | None) -> int:
        j = i + 1
        name = None
        if j < end and self.toks[j].kind == "id":
            name = self.toks[j].text
            j += 1
        while j < end and self.toks[j].text not in ("{", ";"):
            j += 1
        if j >= end or self.toks[j].text == ";":
            return j + 1  # forward declaration
        close = match_forward(self.toks, j, "{", "}")
        if name:
            rec = Record(name, self.fm.path, self.toks[i].line)
            self.model.records.setdefault(name, rec)
            self._parse_record_body(self.model.records[name], j + 1, close)
        return self._skip_to(";", close, end) + 1

    def _parse_record_body(self, rec: Record, i: int, end: int) -> None:
        while i < end:
            t = self.toks[i]
            if t.text in ("public", "private", "protected") \
                    and i + 1 < end and self.toks[i + 1].text == ":":
                i += 2
            elif t.text in ("struct", "class"):
                i = self.parse_record(i, end, enclosing=rec.name)
            elif t.text == "enum":
                i = self.parse_enum(i, end)
            elif t.text == "template":
                i = self._skip_template(i, end)
            elif t.text in _DECL_KEYWORDS:
                i = self._skip_to(";", i, end) + 1
            else:
                i = self._parse_member(rec, i, end)

    def _parse_member(self, rec: Record, i: int, end: int) -> int:
        """One member declaration or inline method starting at i."""
        j = i
        while j < end:
            t = self.toks[j].text
            if t == "(":
                return self._parse_member_with_parens(rec, i, j, end)
            if t == "=":
                # Initialized data member: `T name = expr;`
                name = self._id_before(j, i)
                if name:
                    rec.fields.setdefault(name, self._type_text(i, j, name))
                return self._skip_to(";", j, end) + 1
            if t == "{":
                # Brace-initialized member: `T name{...};`
                name = self._id_before(j, i)
                close = match_forward(self.toks, j, "{", "}")
                if name:
                    rec.fields.setdefault(name, self._type_text(i, j, name))
                return self._skip_to(";", close, end) + 1
            if t == ";":
                name = self._id_before(j, i)
                if name:
                    rec.fields.setdefault(name, self._type_text(i, j, name))
                return j + 1
            j += 1
        return end

    def _parse_member_with_parens(self, rec: Record, start: int, lp: int,
                                  end: int) -> int:
        rp = match_forward(self.toks, lp, "(", ")")
        j = rp + 1
        # operator(): a second parameter list follows immediately.
        while j < end and self.toks[j].text == "(":
            j = match_forward(self.toks, j, "(", ")") + 1
        while j < end and (self.toks[j].text in _MODIFIERS
                           or self.toks[j].text in ("&", "&&")):
            j += 1
        if j < end and self.toks[j].text == "->":  # trailing return type
            while j < end and self.toks[j].text not in ("{", ";"):
                j += 1
        if j < end and self.toks[j].text == ":":  # constructor init list
            j += 1
            while j < end and self.toks[j].text != "{":
                if self.toks[j].text == "(":
                    j = match_forward(self.toks, j, "(", ")")
                elif self.toks[j].kind == "id" and j + 1 < end \
                        and self.toks[j + 1].text == "{":
                    j = match_forward(self.toks, j + 1, "{", "}")
                j += 1
        if j < end and self.toks[j].text == "{":
            close = match_forward(self.toks, j, "{", "}")
            name_tok = self.toks[lp - 1] if lp > start else None
            if name_tok is not None and name_tok.kind == "id":
                m = Method(rec.name, name_tok.text, self.fm.path, self.toks,
                           j, close, name_tok.line,
                           decl_start=start, lp=lp)
                rec.methods.setdefault(m.name, m)
                self.fm.methods.append(m)
            i = close + 1
            if i < end and self.toks[i].text == ";":
                i += 1
            return i
        if j < end and self.toks[j].text == "=":
            # `= 0;` / `= default;` / `= delete;`
            return self._skip_to(";", j, end) + 1
        # Method declaration — or a member whose *type* contains parens
        # (std::function<void(...)> cb;): then an id names it just before
        # the terminating ';' and past the closing '>' of the template.
        semi = self._skip_to(";", j, end)
        back = semi - 1
        if back > rp and self.toks[back].kind == "id" \
                and self.toks[back].text not in _MODIFIERS:
            name = self.toks[back].text
            rec.fields.setdefault(name, self._type_text(start, back, name))
        return semi + 1

    def _id_before(self, j: int, lo: int) -> str | None:
        k = j - 1
        while k >= lo and self.toks[k].text in ("&", "*"):
            k -= 1
        if k >= lo and self.toks[k].kind == "id":
            return self.toks[k].text
        return None

    def _type_text(self, start: int, name_at: int, name: str) -> str:
        parts = []
        for t in self.toks[start:name_at]:
            if t.kind == "id" and t.text == name:
                break
            parts.append(t.text)
        skip = {"static", "mutable", "constexpr", "inline", "[", "]"}
        return " ".join(p for p in parts if p not in skip)

    # --- free functions and out-of-line methods -----------------------------

    def _parse_function_or_skip(self, i: int, end: int) -> int:
        j = i
        while j < end:
            t = self.toks[j].text
            if t == "(":
                break
            if t in (";", "=", "{"):
                # Namespace-scope variable or something unmodeled: skip.
                if t == "{":
                    j = match_forward(self.toks, j, "{", "}")
                return self._skip_to(";", j, end) + 1
            j += 1
        if j >= end:
            return end
        lp = j
        rp = match_forward(self.toks, lp, "(", ")")
        name, cls = None, None
        if lp > i and self.toks[lp - 1].kind == "id":
            name = self.toks[lp - 1].text
            if lp - 2 > i and self.toks[lp - 2].text == "::" \
                    and self.toks[lp - 3].kind == "id":
                cls = self.toks[lp - 3].text
        j = rp + 1
        while j < end and self.toks[j].text == "(":
            j = match_forward(self.toks, j, "(", ")") + 1
        while j < end and (self.toks[j].text in _MODIFIERS
                           or self.toks[j].text in ("&", "&&")):
            j += 1
        if j < end and self.toks[j].text == ":":  # constructor init list
            j += 1
            while j < end and self.toks[j].text != "{":
                if self.toks[j].text == "(":
                    j = match_forward(self.toks, j, "(", ")")
                elif self.toks[j].text == "{":
                    break
                elif self.toks[j].kind == "id" and j + 1 < end \
                        and self.toks[j + 1].text == "{":
                    j = match_forward(self.toks, j + 1, "{", "}")
                j += 1
        if j < end and self.toks[j].text == "->":
            while j < end and self.toks[j].text not in ("{", ";"):
                j += 1
        if j < end and self.toks[j].text == "{":
            close = match_forward(self.toks, j, "{", "}")
            if name:
                m = Method(cls, name, self.fm.path, self.toks, j, close,
                           self.toks[i].line, decl_start=i, lp=lp)
                self.fm.methods.append(m)
            return close + 1
        return self._skip_to(";", j, end) + 1
