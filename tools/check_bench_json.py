#!/usr/bin/env python3
"""Validate Swing machine-readable telemetry artifacts (stdlib only).

Two modes:

  check_bench_json.py BENCH_foo.json [more.json ...]
      Validates BENCH_*.json reports against the schema documented in
      src/obs/bench_report.h: required top-level keys with the right types,
      non-empty results, and finite numbers throughout.

  check_bench_json.py --trace swing_trace.json
      Validates a Chrome trace-event export (the {"traceEvents": [...]}
      format Perfetto consumes): every event needs ph/pid, non-metadata
      events need name/ts/tid, "X" spans need a dur, and timestamps must be
      finite and non-negative.

  check_bench_json.py --hotpath hotpath_report.json
      Validates a `swing_analyze --report hotpath` artifact against the
      swing-hotpath-v1 schema: required keys with the right types, sorted
      string lists, a consistent findings scoreboard, and by_function rows
      ranked by (-total, name).

Exit status is 0 when every file passes, 1 otherwise; problems are printed
one per line as `path: message`.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

KNOWN_EVENT_PHASES = {"X", "i", "I", "B", "E", "M", "C"}

# The metric manifest: every obs counter/gauge/histogram the tree may
# register, with its instrument kind and label-key set. This is the single
# source of truth shared by two enforcers:
#
#   * tools/swing_analyze (metric-name-consistency) parses this literal and
#     rejects any registry call site whose name/kind/labels are not listed
#     here — so a typo'd metric name fails static analysis, not dashboards;
#   * this validator rejects bench/trace artifacts carrying snapshot keys
#     (the registry's "name{k=v,...}" encoding) for unlisted metrics.
#
# Adding a metric means adding it here AND at the call site, in one PR.
KNOWN_METRICS = {
    "cell_merges": {"kind": "counter", "labels": []},
    "cell_splits": {"kind": "counter", "labels": []},
    "cells_active": {"kind": "gauge", "labels": []},
    "chaos_injected": {"kind": "counter", "labels": ["fault"]},
    "checkpoint_latency_ms": {"kind": "histogram", "labels": []},
    "checkpoints_restored": {"kind": "counter", "labels": []},
    "checkpoints_stored": {"kind": "counter", "labels": []},
    "checkpoints_taken": {"kind": "counter", "labels": []},
    "delay_processing_ms": {"kind": "histogram", "labels": []},
    "deltas_stored": {"kind": "counter", "labels": []},
    "deltas_taken": {"kind": "counter", "labels": []},
    "delay_queuing_ms": {"kind": "histogram", "labels": []},
    "delay_transmission_ms": {"kind": "histogram", "labels": []},
    "e2e_latency_ms": {"kind": "histogram", "labels": []},
    "epoch_bumps": {"kind": "counter", "labels": []},
    "frames_delivered": {"kind": "counter", "labels": []},
    "frames_played": {"kind": "counter", "labels": []},
    "handoffs": {"kind": "counter", "labels": []},
    "manager_routed_tuples": {"kind": "counter", "labels": ["policy"]},
    "master_events": {"kind": "counter", "labels": ["kind"]},
    "master_msgs": {"kind": "counter", "labels": ["cell"]},
    "master_state_crashes": {"kind": "counter", "labels": []},
    "migrations_aborted": {"kind": "counter", "labels": []},
    "migrations_completed": {"kind": "counter", "labels": []},
    "net_busy_airtime_s": {"kind": "gauge", "labels": []},
    "net_messages_delivered": {"kind": "counter", "labels": []},
    "net_messages_dropped": {"kind": "counter", "labels": ["reason"]},
    "restore_latency_ms": {"kind": "histogram", "labels": []},
    "retry_latency_ms": {"kind": "histogram", "labels": []},
    "stale_epoch_rejected": {"kind": "counter", "labels": []},
    "state_bytes": {"kind": "counter", "labels": ["kind"]},
    "state_restores": {"kind": "counter", "labels": ["source"]},
    "tuples_deduplicated": {"kind": "counter", "labels": []},
    "tuples_dropped": {"kind": "counter", "labels": ["reason"]},
    "tuples_local_fallback": {"kind": "counter", "labels": []},
    "tuples_retransmitted": {"kind": "counter", "labels": []},
    "workers_evicted": {"kind": "counter", "labels": ["cause"]},
}


def _finite_numbers(value, where: str, errors: list[str]) -> None:
    """Recursively reject NaN/inf anywhere in the document."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        if not math.isfinite(value):
            errors.append(f"non-finite number at {where}")
    elif isinstance(value, list):
        for i, element in enumerate(value):
            _finite_numbers(element, f"{where}[{i}]", errors)
    elif isinstance(value, dict):
        for key, element in value.items():
            _finite_numbers(element, f"{where}.{key}", errors)


def check_metric_keys(metrics, where: str, errors: list[str]) -> None:
    """Validates registry-snapshot keys ("name{k=v,...}") against the
    manifest: the base name must be declared and the label keys must match.
    """
    if not isinstance(metrics, dict):
        errors.append(f"{where} must be an object")
        return
    for key in metrics:
        base, _, rest = key.partition("{")
        label_keys = []
        if rest:
            if not rest.endswith("}"):
                errors.append(f"{where}['{key}']: malformed label suffix")
                continue
            body = rest[:-1]
            label_keys = [p.split("=", 1)[0] for p in body.split(",") if p]
        decl = KNOWN_METRICS.get(base)
        if decl is None:
            errors.append(f"{where}['{key}']: metric '{base}' not in "
                          f"KNOWN_METRICS")
        elif sorted(label_keys) != sorted(decl["labels"]):
            errors.append(
                f"{where}['{key}']: labels {sorted(label_keys)} do not "
                f"match declared {sorted(decl['labels'])}")
        elif decl["kind"] == "histogram" and not isinstance(metrics[key],
                                                           dict):
            errors.append(f"{where}['{key}']: histogram snapshot must be "
                          f"an object")
        elif decl["kind"] != "histogram" and isinstance(metrics[key], dict):
            errors.append(f"{where}['{key}']: {decl['kind']} snapshot must "
                          f"be a scalar")


def check_bench_report(doc, errors: list[str]) -> None:
    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        return

    for key, kind, label in [
        ("bench", str, "string"),
        ("git", str, "string"),
        ("seed", int, "integer"),
    ]:
        if key not in doc:
            errors.append(f"missing required key '{key}'")
        elif not isinstance(doc[key], kind) or isinstance(doc[key], bool):
            errors.append(f"'{key}' must be a {label}")

    if isinstance(doc.get("bench"), str) and not doc["bench"]:
        errors.append("'bench' must be non-empty")

    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("'config' must be an object")

    results = doc.get("results")
    if not isinstance(results, list):
        errors.append("'results' must be an array")
    elif not results:
        errors.append("'results' is empty")
    else:
        for i, row in enumerate(results):
            if not isinstance(row, dict):
                errors.append(f"results[{i}] is not an object")
            elif not row:
                errors.append(f"results[{i}] is empty")

    if "summary" in doc and not isinstance(doc["summary"], dict):
        errors.append("'summary' must be an object")

    if "metrics" in doc:
        check_metric_keys(doc["metrics"], "'metrics'", errors)
    if isinstance(doc.get("summary"), dict) and "metrics" in doc["summary"]:
        check_metric_keys(doc["summary"]["metrics"], "'summary.metrics'",
                          errors)

    check_micro_floors(doc, errors)
    check_state_recovery_summary(doc, errors)
    check_shard_floors(doc, errors)

    _finite_numbers(doc, "$", errors)


# The hotpath scoreboard's "codec section": findings attributed to wire
# codec methods (encode/decode) or raised by the codec-hot rule. The wire
# plane v2 redesign burned this debt to zero and the gate keeps it there —
# a non-empty codec section fails CI outright, baseline or not.
CODEC_RULES = {"codec-hot", "codec-symmetry"}
CODEC_METHOD_SUFFIXES = ("::encode", "::decode")

# Throughput floors (items/second) for the micro_components codec and
# dispatch benchmarks, enforced by check_bench_report on BENCH_
# micro_components.json. Reference-builder rates: the legacy
# to_bytes/from_bytes wire plane ran BM_BatchCodecDispatch at ~3.05M
# tuples/s; wire-plane v2 (scratch-staged ByteWriter, pooled batch
# frames, view decode) runs it at ~6.1-6.8M, BM_TupleSerialize at ~35M,
# BM_TupleRoundTrip at ~15-17M. Floors sit well above the legacy rates
# but ~30-40% under the v2 ones, so a regression back to the old codec
# cost profile fails while normal CI-hardware variance does not.
MICRO_COMPONENTS_FLOORS = {
    "BM_TupleSerialize": 20_000_000.0,
    "BM_TupleRoundTrip": 10_000_000.0,
    "BM_BatchCodecDispatch/8": 4_500_000.0,
    "BM_BatchCodecDispatch/64": 4_500_000.0,
}


def check_micro_floors(doc, errors: list[str]) -> None:
    """Enforces the codec/dispatch tuples-per-second floors.

    Only applies to micro_components reports; other benches share the
    schema but not the counters. A gated benchmark that is missing from
    the results (renamed, deleted) is itself an error — silently losing
    the gate is how regressions land.
    """
    if doc.get("bench") != "micro_components":
        return
    rows = {row.get("name"): row for row in doc.get("results", [])
            if isinstance(row, dict)}
    for name, floor in sorted(MICRO_COMPONENTS_FLOORS.items()):
        row = rows.get(name)
        if row is None:
            errors.append(f"gated benchmark '{name}' missing from results")
            continue
        rate = row.get("items_per_second")
        if not isinstance(rate, (int, float)) or isinstance(rate, bool):
            errors.append(f"'{name}' has no items_per_second counter")
        elif rate < floor:
            errors.append(
                f"'{name}' throughput regressed: {rate:,.0f} items/s is "
                f"below the floor of {floor:,.0f}")


# Summary fields the checkpoint-plane-v2 bench must carry, and the claim
# the delta log exists to make: at the same cadence, shipping journals
# between fulls moves strictly fewer state bytes than shipping fulls only.
STATE_RECOVERY_REQUIRED = (
    "checkpoint_bytes_full",
    "checkpoint_bytes_delta",
    "migration_aborts",
    "frames_lost",
)


def check_state_recovery_summary(doc, errors: list[str]) -> None:
    """Gates the ext_state_recovery checkpoint-plane-v2 summary.

    Only applies to ext_state_recovery reports. The four v2 fields must be
    present and finite, and the delta run must actually save wire bytes —
    checkpoint_bytes_delta < checkpoint_bytes_full with both positive. A
    regression that silently disables the delta cadence (deltas fall to
    zero, everything ships as fulls) fails here, not on a dashboard.
    """
    if doc.get("bench") != "ext_state_recovery":
        return
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        errors.append("ext_state_recovery report has no 'summary' object")
        return
    values = {}
    for key in STATE_RECOVERY_REQUIRED:
        v = summary.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) \
                or not math.isfinite(v):
            errors.append(f"'summary.{key}' must be a finite number")
            continue
        values[key] = v
    full = values.get("checkpoint_bytes_full")
    delta = values.get("checkpoint_bytes_delta")
    if full is not None and delta is not None:
        if full <= 0 or delta <= 0:
            errors.append(
                f"checkpoint byte counters must both be positive "
                f"(full={full}, delta={delta})")
        elif delta >= full:
            errors.append(
                f"delta checkpointing saved nothing: "
                f"checkpoint_bytes_delta={delta} is not below "
                f"checkpoint_bytes_full={full}")


# Summary fields the swing-shard scalability bench must carry: per-device
# control-plane message cost at each swept swarm size. The sharding claim
# is that cost stays flat as the swarm grows — cells bound each master's
# fan-out, so adding devices adds cells, not per-device traffic.
SHARD_SCALABILITY_REQUIRED = (
    "control_msgs_per_device_1k",
    "control_msgs_per_device_10k",
    "control_msgs_per_device_100k",
)

# Allowed relative drift of per-device control cost from 1k to 10k devices.
SHARD_FLAT_TOLERANCE = 0.20


def check_shard_floors(doc, errors: list[str]) -> None:
    """Gates the ext_scalability swing-shard summary.

    Only applies to ext_scalability reports. The three per-device cost
    fields must be present and finite, and cost at 10k devices must sit
    within SHARD_FLAT_TOLERANCE of the 1k figure — an O(n) control plane
    (every route update to every device) fails this gate by an order of
    magnitude, while cell-bounded fan-out passes with headroom.
    """
    if doc.get("bench") != "ext_scalability":
        return
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        errors.append("ext_scalability report has no 'summary' object")
        return
    values = {}
    for key in SHARD_SCALABILITY_REQUIRED:
        v = summary.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) \
                or not math.isfinite(v):
            errors.append(f"'summary.{key}' must be a finite number")
            continue
        values[key] = v
    per_1k = values.get("control_msgs_per_device_1k")
    per_10k = values.get("control_msgs_per_device_10k")
    if per_1k is not None and per_10k is not None:
        if per_1k <= 0:
            errors.append(
                f"control_msgs_per_device_1k must be positive ({per_1k})")
        elif abs(per_10k - per_1k) > SHARD_FLAT_TOLERANCE * per_1k:
            errors.append(
                f"per-device control cost is not flat: "
                f"{per_10k:.3f} msgs/device at 10k vs {per_1k:.3f} at 1k "
                f"(tolerance {SHARD_FLAT_TOLERANCE:.0%})")


def check_hotpath_report(doc, errors: list[str]) -> None:
    """Validates a swing_analyze --report hotpath artifact."""
    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        return
    if doc.get("schema") != "swing-hotpath-v1":
        errors.append(f"'schema' must be 'swing-hotpath-v1' "
                      f"({doc.get('schema')!r})")

    markers = doc.get("markers")
    if not (isinstance(markers, dict)
            and isinstance(markers.get("hot"), str)
            and isinstance(markers.get("cold"), str)):
        errors.append("'markers' must be {hot: str, cold: str}")

    for key in ("files_scanned", "hot_set_size"):
        v = doc.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            errors.append(f"'{key}' must be a non-negative integer")

    for key in ("hot_roots", "cold_escapes", "hot_set", "rules"):
        v = doc.get(key)
        if not (isinstance(v, list)
                and all(isinstance(x, str) and x for x in v)):
            errors.append(f"'{key}' must be a list of non-empty strings")
        elif v != sorted(v):
            errors.append(f"'{key}' must be sorted (determinism contract)")

    if isinstance(doc.get("hot_set"), list)             and isinstance(doc.get("hot_set_size"), int)             and len(doc["hot_set"]) != doc["hot_set_size"]:
        errors.append("'hot_set_size' disagrees with len(hot_set)")

    graph = doc.get("call_graph")
    if not isinstance(graph, dict):
        errors.append("'call_graph' must be an object")
    else:
        nodes = graph.get("nodes")
        if not isinstance(nodes, int) or isinstance(nodes, bool) or nodes < 0:
            errors.append("'call_graph.nodes' must be a non-negative integer")
        edges = graph.get("edges")
        if not (isinstance(edges, list)
                and all(isinstance(e, list) and len(e) == 2
                        and all(isinstance(x, str) and x for x in e)
                        for e in edges)):
            errors.append("'call_graph.edges' must be a list of "
                          "[caller, callee] string pairs")
        elif edges != sorted(edges):
            errors.append("'call_graph.edges' must be sorted "
                          "(determinism contract)")

    findings = doc.get("findings")
    if not isinstance(findings, dict):
        errors.append("'findings' must be an object")
        _finite_numbers(doc, "$", errors)
        return
    total = findings.get("total")
    if not isinstance(total, int) or isinstance(total, bool) or total < 0:
        errors.append("'findings.total' must be a non-negative integer")
    by_rule = findings.get("by_rule")
    if not (isinstance(by_rule, dict)
            and all(isinstance(v, int) and not isinstance(v, bool)
                    for v in by_rule.values())):
        errors.append("'findings.by_rule' must map rule -> count")
    elif isinstance(total, int) and sum(by_rule.values()) != total:
        errors.append("'findings.by_rule' counts do not sum to total")
    rows = findings.get("by_function")
    if not isinstance(rows, list):
        errors.append("'findings.by_function' must be an array")
    else:
        row_sum = 0
        keys = []
        for i, row in enumerate(rows):
            where = f"findings.by_function[{i}]"
            if not (isinstance(row, dict)
                    and isinstance(row.get("function"), str)
                    and isinstance(row.get("total"), int)
                    and isinstance(row.get("by_rule"), dict)):
                errors.append(f"'{where}' needs function/total/by_rule")
                continue
            if sum(row["by_rule"].values()) != row["total"]:
                errors.append(f"'{where}' by_rule does not sum to total")
            row_sum += row["total"]
            keys.append((-row["total"], row["function"]))
        if keys != sorted(keys):
            errors.append("'findings.by_function' must be ranked by "
                          "(-total, function)")
        if isinstance(total, int) and row_sum != total:
            errors.append("'findings.by_function' totals do not sum to "
                          "findings.total")

    # Codec section gate: zero findings on wire codecs, zero codec-rule
    # findings. This count is pre-baseline by construction (the report is),
    # so a baseline entry cannot hide codec debt from this check.
    if isinstance(by_rule, dict):
        for rule in sorted(CODEC_RULES & set(by_rule)):
            if by_rule[rule]:
                errors.append(f"codec section must be empty: {by_rule[rule]} "
                              f"'{rule}' finding(s)")
    if isinstance(rows, list):
        for row in rows:
            if isinstance(row, dict) and isinstance(row.get("function"), str) \
                    and row["function"].endswith(CODEC_METHOD_SUFFIXES) \
                    and row.get("total"):
                errors.append(
                    f"codec section must be empty: {row['total']} finding(s) "
                    f"attributed to wire codec '{row['function']}'")

    _finite_numbers(doc, "$", errors)


def check_chrome_trace(doc, errors: list[str]) -> None:
    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        return

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("missing 'traceEvents' array")
        return
    if not events:
        errors.append("'traceEvents' is empty")
        return

    non_meta = 0
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where} is not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in KNOWN_EVENT_PHASES:
            errors.append(f"{where}: bad or missing 'ph' ({phase!r})")
            continue
        if "pid" not in event:
            errors.append(f"{where}: missing 'pid'")
        if phase == "M":
            if not isinstance(event.get("name"), str):
                errors.append(f"{where}: metadata event missing 'name'")
            continue
        non_meta += 1
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing 'name'")
        if "tid" not in event:
            errors.append(f"{where}: missing 'tid'")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            errors.append(f"{where}: missing numeric 'ts'")
        elif not math.isfinite(ts) or ts < 0:
            errors.append(f"{where}: 'ts' must be finite and >= 0")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                errors.append(f"{where}: span missing numeric 'dur'")
            elif not math.isfinite(dur) or dur < 0:
                errors.append(f"{where}: 'dur' must be finite and >= 0")

    if non_meta == 0:
        errors.append("trace has only metadata events")

    _finite_numbers(doc, "$", errors)


def check_file(path: Path, mode: str) -> list[str]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as e:
        return [f"cannot read: {e}"]
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        return [f"invalid JSON: {e}"]

    errors: list[str] = []
    if mode == "trace":
        check_chrome_trace(doc, errors)
    elif mode == "hotpath":
        check_hotpath_report(doc, errors)
    else:
        check_bench_report(doc, errors)
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path,
                        help="JSON artifacts to validate")
    parser.add_argument("--trace", action="store_true",
                        help="validate as Chrome trace-event exports "
                             "instead of bench reports")
    parser.add_argument("--hotpath", action="store_true",
                        help="validate as swing_analyze --report hotpath "
                             "artifacts instead of bench reports")
    args = parser.parse_args()
    if args.trace and args.hotpath:
        parser.error("--trace and --hotpath are mutually exclusive")
    mode = "trace" if args.trace else "hotpath" if args.hotpath else "bench"

    failures = 0
    for path in args.files:
        errors = check_file(path, mode)
        if errors:
            failures += 1
            for message in errors:
                print(f"{path}: {message}", file=sys.stderr)
        else:
            kind = {"trace": "trace", "hotpath": "hotpath report",
                    "bench": "bench report"}[mode]
            print(f"{path}: OK ({kind})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
