// Fixture: files under src/common/ are exempt from the determinism rules
// (the self-test maps the exemption onto the "exempt" filename marker).
// Rng seeding and the wallclock pacer legitimately live there.
#include <chrono>
#include <random>

unsigned seed_entropy() {
  std::random_device rd;
  auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  return rd() + static_cast<unsigned>(now);
}
