// Fixture: cycle_a.h -> cycle_b.h -> cycle_a.h must be flagged once.
// expect-lint: include-cycle
#pragma once

#include "cycle_b.h"

inline int fixture_a() { return 1; }
