// Fixture: raw new/delete expressions must be flagged (one finding each).
// expect-lint: raw-new-delete
// expect-lint: raw-new-delete

int leak_prone() {
  int* scratch = new int[16];
  int total = scratch[0];
  delete[] scratch;
  return total;
}
