// Fixture: members that are configuration or output channels, not tuple
// state, may be waived with a class-level stateless marker.

// swing-lint: stateless — the sink list is an output channel.
class DisplayUnit final : public FunctionUnit {
 public:
  void process(const Tuple& input, Context&) override {
    lines_.push_back(input.id().value());
  }

 private:
  std::vector<std::uint64_t> lines_;
};

// The waiver also works inside the class body.
class ScalerUnit final : public FunctionUnit {
 public:
  // swing-lint: stateless — factor_ is constructor configuration.
  void process(const Tuple& input, Context& ctx) override {
    ctx.emit(input.derive());
  }

 private:
  double factor_ = 2.0;
};

// No members at all: nothing to checkpoint, no waiver needed.
class PassthroughUnit final : public FunctionUnit {
 public:
  void process(const Tuple& input, Context& ctx) override {
    ctx.emit(input.derive());
  }
};
