// Fixture: a FunctionUnit subclass accumulating tuple state without the
// swing-state contract (and without a waiver) must be flagged.
// expect-lint: stateful-unit-must-checkpoint

class LeakyWindowUnit final : public FunctionUnit {
 public:
  void process(const Tuple& input, Context& ctx) override {
    buffer_.push_back(input);
    if (buffer_.size() >= window_) buffer_.clear();
  }

 private:
  std::size_t window_ = 16;
  std::vector<Tuple> buffer_;
};
