// Fixture: must produce zero findings. Exercises the false-positive traps:
// forbidden tokens inside comments and string literals, defaulted special
// members (`= delete`), and smart-pointer allocation.
#include <memory>
#include <string>

// A comment mentioning steady_clock and rand() must not trigger anything.
struct Holder {
  Holder() = default;
  Holder(const Holder&) = delete;
  Holder& operator=(const Holder&) = delete;
  std::unique_ptr<int> value = std::make_unique<int>(7);
};

inline std::string describe() {
  return "uses system_clock and new int[] only inside this string";
}
