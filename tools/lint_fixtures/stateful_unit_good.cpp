// Fixture: a stateful FunctionUnit that implements the swing-state
// contract scans clean.

class JoinUnit final : public FunctionUnit {
 public:
  void process(const Tuple& input, Context& ctx) override {
    pending_[input.id().value()] = input;
  }

  [[nodiscard]] bool stateful() const override { return true; }

  void snapshot_state(ByteWriter& out) const override {
    out.write_varint(pending_.size());
  }

  void restore_state(ByteReader& in) override {
    count_ = in.read_varint();
  }

 private:
  std::map<std::uint64_t, Tuple> pending_;
  std::uint64_t count_ = 0;
};
