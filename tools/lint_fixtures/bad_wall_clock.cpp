// Fixture: framework code reading the wall clock must be flagged.
// expect-lint: wall-clock
// expect-lint: wall-clock
#include <chrono>

long wall_nanos() {
  auto t = std::chrono::steady_clock::now();
  auto u = std::chrono::system_clock::now();
  (void)t;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             u.time_since_epoch())
      .count();
}
