// Fixture: an explicit same-line suppression must silence the rule.
#include <chrono>

long suppressed_wall_read() {
  auto t = std::chrono::steady_clock::now();  // swing-lint: allow(wall-clock)
  return t.time_since_epoch().count();
}
