// Fixture harness: marks CoveredMsg (direct reference) and CoveredV2Msg
// (template instantiation) as fuzz-covered for the self-test.
#include "../covered_decoder.h"

template <typename T>
T swing_fuzz_decode(const Bytes& data);

void drive(const Bytes& data) {
  (void)CoveredMsg::from_bytes(data);
  (void)swing_fuzz_decode<CoveredV2Msg>(data);
}
