// Fixture harness: marks CoveredMsg as fuzz-covered for the self-test.
#include "../covered_decoder.h"

void drive(const Bytes& data) { (void)CoveredMsg::from_bytes(data); }
