// Fixture: a wire decoder with no fuzz harness must be flagged at the decl;
// an explicit allow() suppresses it.
#pragma once

using Bytes = unsigned char*;

struct UnfuzzedMsg {
  static UnfuzzedMsg from_bytes(const Bytes& data);  // expect-lint: fuzz-harness
};

struct ToleratedMsg {
  static ToleratedMsg from_bytes(const Bytes& data);  // swing-lint: allow(fuzz-harness)
};
