// Fixture: a wire decoder with no fuzz harness must be flagged at the decl;
// an explicit allow() suppresses it. Both decl shapes are held to the bar:
// the v2 `static T decode(ByteReader&)` and the legacy from_bytes.
#pragma once

using Bytes = unsigned char*;
struct ByteReader;

struct UnfuzzedMsg {
  static UnfuzzedMsg from_bytes(const Bytes& data);  // expect-lint: fuzz-harness
};

struct UnfuzzedV2Msg {
  static UnfuzzedV2Msg decode(ByteReader& r);  // expect-lint: fuzz-harness
};

struct ToleratedMsg {
  static ToleratedMsg from_bytes(const Bytes& data);  // swing-lint: allow(fuzz-harness)
};
