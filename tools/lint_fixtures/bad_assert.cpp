// Fixture: bare assert() must be flagged; the assert-shaped lines below
// (static_assert, gtest ASSERT_EQ, member access) must not.
#include <cassert>

void checks(int x) {
  assert(x > 0);  // expect-lint: bare-assert
  static_assert(sizeof(int) >= 4, "not a bare assert");
}

struct Harness {
  void assert_ready();
};

void gtest_style(Harness& h) {
  h.assert_ready();  // Member call, not the macro.
  // ASSERT_EQ(1, 1) in tests is fine; this file only proves no match:
  // the rule is scoped to src/ anyway.
}
