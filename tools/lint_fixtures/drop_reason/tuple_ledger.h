// Fixture for the drop-reason-wired rule: kWired is named in the .cpp and
// raised in raiser.cpp (clean); kUnnamed is raised but missing from the
// name switch; kUnraised is named but no drop site ever raises it.
// expect-lint: drop-reason-wired
// expect-lint: drop-reason-wired
#pragma once

#include <cstdint>

enum class DropReason : std::uint8_t {
  kWired = 0,
  kUnnamed = 1,
  kUnraised = 2,
};
