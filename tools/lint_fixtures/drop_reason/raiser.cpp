// Fixture drop site: raises kWired and kUnnamed; nobody raises kUnraised.
#include "tuple_ledger.h"

DropReason raise_some(bool first) {
  return first ? DropReason::kWired : DropReason::kUnnamed;
}
