// Fixture name switch: covers kWired and kUnraised, misses kUnnamed.
#include "tuple_ledger.h"

const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kWired:
      return "wired";
    case DropReason::kUnraised:
      return "unraised";
    default:
      return "unknown";
  }
}
