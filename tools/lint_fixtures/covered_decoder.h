// Fixture: a decoder referenced by a harness under fuzz/ scans clean —
// via a direct T::from_bytes reference (legacy) or through the
// swing_fuzz_decode<T> template instantiation (wire plane v2).
#pragma once

using Bytes = unsigned char*;
struct ByteReader;

struct CoveredMsg {
  static CoveredMsg from_bytes(const Bytes& data);
};

struct CoveredV2Msg {
  static CoveredV2Msg decode(ByteReader& r);
};
