// Fixture: a decoder referenced by a harness under fuzz/ scans clean.
#pragma once

using Bytes = unsigned char*;

struct CoveredMsg {
  static CoveredMsg from_bytes(const Bytes& data);
};
