// Fixture: ambient randomness must be flagged — all three forms.
// expect-lint: ambient-rand
// expect-lint: ambient-rand
// expect-lint: ambient-rand
#include <cstdlib>
#include <random>

int noisy() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<int>(gen()) + rand();
}
