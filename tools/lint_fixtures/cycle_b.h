// Fixture: second half of the cycle_a.h <-> cycle_b.h cycle. The finding is
// attributed to cycle_a.h, where the walk closes the loop.
#pragma once

#include "cycle_a.h"

inline int fixture_b() { return 2; }
