// Fixture: a header without '#pragma once' must be flagged.
// expect-lint: pragma-once

inline int fixture_value() { return 42; }
