// Ablation: tuple TTL (staleness shedding). Under an overloaded policy
// (RR with slow devices), queued frames go stale; processing them anyway
// wastes CPU on worthless results. A TTL trades delivered-frame count for
// freshness — every frame that does arrive is recent.
#include "bench/bench_util.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct Row {
  double fps;
  double mean_ms;
  double p95_ms;
  std::uint64_t shed;
};

Row run(double ttl_ms, double measure_s, std::uint64_t seed) {
  apps::TestbedConfig config;
  config.policy = core::PolicyKind::kRR;
  config.weak_signal_bcd = false;  // Compute-side overload (E, D, F).
  if (ttl_ms > 0) config.swarm.worker.tuple_ttl = millis(ttl_ms);
  config.seed = seed;
  apps::Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));
  const SimTime t0 = bed.sim().now();
  const auto shed0 = bed.swarm().metrics().drops(swing::core::DropReason::kStaleTtl);
  bed.run(seconds(measure_s));

  Row r{};
  r.fps = bed.swarm().metrics().throughput_fps(t0, bed.sim().now());
  const auto stats = bed.swarm().metrics().latency_stats(t0, bed.sim().now());
  r.mean_ms = stats.mean();
  r.p95_ms = stats.quantile(0.95);
  r.shed = bed.swarm().metrics().drops(swing::core::DropReason::kStaleTtl) - shed0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ablate_ttl", 60.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Ablation: tuple TTL under RR overload (all-strong "
               "signal, 24 FPS) ===\n";
  TextTable table({"TTL", "throughput (FPS)", "lat mean (ms)",
                   "lat p95 (ms)", "stale shed"});
  auto add_row = [&report](double ttl_ms, const Row& r) {
    obs::Json& row = report.add_result();
    row["ttl_ms"] = ttl_ms;
    row["throughput_fps"] = r.fps;
    row["latency_mean_ms"] = r.mean_ms;
    row["latency_p95_ms"] = r.p95_ms;
    row["stale_shed"] = r.shed;
  };
  const Row off = run(0.0, measure_s, cli.seed);
  table.row("off (paper)", off.fps, off.mean_ms, off.p95_ms, off.shed);
  add_row(0.0, off);
  for (double ttl : {2000.0, 1000.0, 500.0, 250.0}) {
    const Row r = run(ttl, measure_s, cli.seed);
    table.row(fmt(ttl, 0) + " ms", r.fps, r.mean_ms, r.p95_ms, r.shed);
    add_row(ttl, r);
  }
  table.print(std::cout);
  std::cout << "(expected: tighter TTLs cap the latency tail by shedding "
               "what the slow devices cannot finish in time)\n";
  cli.finish(report);
  return 0;
}
