// Reproduces Fig. 1: per-frame total delay when a 24 FPS face-recognition
// stream is processed by a single device, for each testbed phone B..I.
// Delays build up over time because every device's capacity is below the
// input rate (4-14 FPS vs 24 FPS); the slower the device, the faster the
// blow-up. The paper plots the first 5 seconds; we print the mean delay of
// frames completing in each of those seconds.
#include "bench/bench_util.h"
#include "common/ascii_chart.h"

using namespace swing;
using namespace swing::bench;

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "fig01_single_device", 5.0);
  const int horizon_s = int(cli.duration_s);

  obs::BenchReport report = cli.make_report();
  TextTable table({"device", "model", "t=1s (ms)", "t=2s (ms)", "t=3s (ms)",
                   "t=4s (ms)", "t=5s (ms)"});
  std::vector<ChartSeries> curves;

  for (const std::string name :
       {"B", "C", "D", "E", "F", "G", "H", "I"}) {
    apps::TestbedConfig config;
    config.workers = {name};
    config.seed = cli.seed;
    config.weak_signal_bcd = false;  // Fig. 1 is about compute, not radio.
    // The paper's instrumentation lets queues grow unboundedly over the
    // 5 s window; lift the SEEP input-buffer bound accordingly.
    config.swarm.worker.compute_backlog_cap = 100000;
    apps::Testbed bed{config};
    bed.launch(apps::face_recognition_graph());
    const SimTime start = bed.sim().now();
    bed.run(seconds(double(horizon_s) + 1.0));

    // Mean end-to-end delay of frames arriving within each second.
    std::vector<std::string> cells = {name,
                                      device::profile_by_name(name).model};
    ChartSeries curve{name, name[0], {}};
    obs::Json& row = report.add_result();
    row["device"] = name;
    row["model"] = device::profile_by_name(name).model;
    for (int s = 1; s <= 5; ++s) {
      const auto stats = bed.swarm().metrics().latency_stats(
          start + seconds(double(s - 1)), start + seconds(double(s)));
      cells.push_back(stats.count() ? fmt(stats.mean(), 0) : "-");
      if (stats.count()) {
        curve.points.emplace_back(double(s), stats.mean());
        row["delay_ms_t" + std::to_string(s)] = stats.mean();
      }
    }
    table.add_row(std::move(cells));
    curves.push_back(std::move(curve));
  }

  std::cout << "=== Fig 1: single-device delay build-up at 24 FPS ===\n";
  if (args.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  ChartOptions options;
  options.width = 60;
  options.height = 12;
  options.x_label = "time (s)";
  options.y_label = "delay/frame (ms)";
  std::cout << render_chart(curves, options);
  std::cout << "(paper: delays reach 1.2s-15s after 5s; no device keeps "
               "up with 24 FPS)\n";
  cli.finish(report);
  return 0;
}
