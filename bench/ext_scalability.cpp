// Extension study: scalability — what does each additional phone buy?
// Grows the swarm one device at a time (fastest first, like a team pooling
// whatever they carry) and measures sustained face-recognition throughput
// and latency at the 24 FPS target. The knee where the swarm first meets
// the target is the paper's whole pitch in one curve.
#include "bench/bench_util.h"
#include "common/ascii_chart.h"

using namespace swing;
using namespace swing::bench;

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ext_scalability", 40.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  // Join order: fastest devices first.
  const std::vector<std::string> order = {"H", "I", "G", "B", "C", "F",
                                          "D", "E"};

  std::cout << "=== Extension: throughput vs swarm size (FR @ 24 FPS, "
               "LRS, all-strong signal) ===\n";
  TextTable table({"devices", "roster", "throughput (FPS)",
                   "lat mean (ms)", "meets 24 FPS?"});
  ChartSeries curve{"throughput", '*', {}};
  for (std::size_t n = 1; n <= order.size(); ++n) {
    apps::TestbedConfig config;
    config.workers.assign(order.begin(), order.begin() + long(n));
    config.weak_signal_bcd = false;
    config.seed = cli.seed;
    apps::Testbed bed{config};
    bed.launch(apps::face_recognition_graph());
    bed.run(seconds(10));
    const SimTime t0 = bed.sim().now();
    bed.run(seconds(measure_s));
    const double fps =
        bed.swarm().metrics().throughput_fps(t0, bed.sim().now());
    const double lat =
        bed.swarm().metrics().latency_stats(t0, bed.sim().now()).mean();
    std::string roster;
    for (const auto& name : config.workers) roster += name;
    table.row(n, roster, fps, lat, fps >= 23.0 ? "yes" : "no");
    curve.points.emplace_back(double(n), fps);

    obs::Json& row = report.add_result();
    row["devices"] = std::uint64_t(n);
    row["roster"] = roster;
    row["throughput_fps"] = fps;
    row["latency_mean_ms"] = lat;
    row["meets_target"] = fps >= 23.0;
  }
  table.print(std::cout);

  ChartOptions options;
  options.width = 50;
  options.height = 10;
  options.y_min = 0.0;
  options.y_max = 26.0;
  options.x_label = "devices";
  options.y_label = "FPS";
  std::cout << render_chart({curve}, options);
  std::cout << "(one fast phone does ~14 FPS; the target needs two-plus; "
               "extra devices beyond the knee buy headroom, not rate)\n";
  cli.finish(report);
  return 0;
}
