// Extension study: scalability — what does each additional phone buy?
// Grows the swarm one device at a time (fastest first, like a team pooling
// whatever they carry) and measures sustained face-recognition throughput
// and latency at the 24 FPS target. The knee where the swarm first meets
// the target is the paper's whole pitch in one curve.
#include "bench/bench_util.h"
#include "common/ascii_chart.h"
#include "common/rng.h"
#include "shard/gateway.h"

using namespace swing;
using namespace swing::bench;

namespace {

// Per-device control-plane cost of the swing-shard gateway at swarm sizes
// no packet-level simulation can reach. The coordinator is runtime-free, so
// the sweep drives it directly: admit a fleet, churn a seeded 10% of it,
// and account one CellAssign per member of every cell a mutation touches —
// the exact fan-out the runtime Master sends (Master::refresh_cells). Flat
// cost per device across 1k -> 100k is the whole point of cells: membership
// changes fan out to one cell (<= 2x target members), never the fleet.
struct ShardSweepPoint {
  std::uint64_t devices = 0;
  double msgs_per_device = 0.0;
  shard::GatewayStats stats;
  std::uint64_t cells_active = 0;
  std::uint64_t final_boundary = 0;
};

ShardSweepPoint run_shard_sweep(std::uint64_t devices, std::uint64_t seed) {
  shard::GatewayConfig gcfg;
  gcfg.cell_size_target = 16;
  shard::GatewayCoordinator gateway{gcfg};

  // One CellAssign per member of each affected cell, mirroring the runtime
  // master's re-announcement after any membership or role change.
  const auto account = [&](const std::vector<CellId>& affected) {
    std::uint64_t msgs = 0;
    for (const CellId id : affected) {
      if (const shard::CellMaster* cell = gateway.cell(id)) {
        msgs += cell->size();
      }
    }
    gateway.count_control_msgs(msgs);
  };

  for (std::uint64_t d = 1; d <= devices; ++d) {
    account(gateway.admit(DeviceId{d}));
  }
  // Seeded churn: 10% of the fleet leaves and rejoins, with watermark
  // reports interleaved so epoch boundaries mint from live progress.
  Rng rng{seed ^ (devices * 0x9e3779b97f4a7c15ULL)};
  const std::uint64_t churn_ops = devices / 10;
  for (std::uint64_t i = 0; i < churn_ops; ++i) {
    const DeviceId victim{1 + rng.next() % devices};
    gateway.report(victim, i + 1);
    account(gateway.remove(victim));
    account(gateway.admit(victim));
  }

  ShardSweepPoint point;
  point.devices = devices;
  point.stats = gateway.stats();
  point.msgs_per_device =
      double(point.stats.control_msgs) / double(devices);
  point.cells_active = gateway.cell_count();
  point.final_boundary = gateway.route_boundary();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "ext_scalability", 40.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  // Join order: fastest devices first.
  const std::vector<std::string> order = {"H", "I", "G", "B", "C", "F",
                                          "D", "E"};

  std::cout << "=== Extension: throughput vs swarm size (FR @ 24 FPS, "
               "LRS, all-strong signal) ===\n";
  TextTable table({"devices", "roster", "throughput (FPS)",
                   "lat mean (ms)", "meets 24 FPS?"});
  ChartSeries curve{"throughput", '*', {}};
  for (std::size_t n = 1; n <= order.size(); ++n) {
    apps::TestbedConfig config;
    config.workers.assign(order.begin(), order.begin() + long(n));
    config.weak_signal_bcd = false;
    config.seed = cli.seed;
    apps::Testbed bed{config};
    bed.launch(apps::face_recognition_graph());
    bed.run(seconds(10));
    const SimTime t0 = bed.sim().now();
    bed.run(seconds(measure_s));
    const double fps =
        bed.swarm().metrics().throughput_fps(t0, bed.sim().now());
    const double lat =
        bed.swarm().metrics().latency_stats(t0, bed.sim().now()).mean();
    std::string roster;
    for (const auto& name : config.workers) roster += name;
    table.row(n, roster, fps, lat, fps >= 23.0 ? "yes" : "no");
    curve.points.emplace_back(double(n), fps);

    obs::Json& row = report.add_result();
    row["devices"] = std::uint64_t(n);
    row["roster"] = roster;
    row["throughput_fps"] = fps;
    row["latency_mean_ms"] = lat;
    row["meets_target"] = fps >= 23.0;
  }
  table.print(std::cout);

  ChartOptions options;
  options.width = 50;
  options.height = 10;
  options.y_min = 0.0;
  options.y_max = 26.0;
  options.x_label = "devices";
  options.y_label = "FPS";
  std::cout << render_chart({curve}, options);
  std::cout << "(one fast phone does ~14 FPS; the target needs two-plus; "
               "extra devices beyond the knee buy headroom, not rate)\n";

  // === swing-shard: control-plane cost vs fleet size (DESIGN.md §12) ===
  std::cout << "\n=== Extension: shard control plane @ 1k/10k/100k devices "
               "(cell target 16, 10% churn) ===\n";
  TextTable shard_table({"devices", "cells", "ctl msgs", "msgs/device",
                         "splits", "merges", "epoch bumps"});
  for (const std::uint64_t n : {1000ULL, 10000ULL, 100000ULL}) {
    const ShardSweepPoint point = run_shard_sweep(n, cli.seed);
    shard_table.row(point.devices, point.cells_active,
                    point.stats.control_msgs, point.msgs_per_device,
                    point.stats.cell_splits, point.stats.cell_merges,
                    point.stats.epoch_bumps);

    obs::Json& row = report.add_result();
    row["devices"] = point.devices;
    row["control_msgs"] = point.stats.control_msgs;
    row["control_msgs_per_device"] = point.msgs_per_device;
    row["cells_active"] = point.cells_active;
    row["cell_splits"] = point.stats.cell_splits;
    row["cell_merges"] = point.stats.cell_merges;
    row["handoffs"] = point.stats.handoffs;
    row["epoch_bumps"] = point.stats.epoch_bumps;
    row["route_boundary"] = point.final_boundary;

    const std::string suffix = n == 1000      ? "1k"
                               : n == 10000   ? "10k"
                                              : "100k";
    report.set_summary("control_msgs_per_device_" + suffix,
                       point.msgs_per_device);
  }
  shard_table.print(std::cout);
  std::cout << "(flat msgs/device across three orders of magnitude: a "
               "membership change fans out to one cell, not the fleet — "
               "tools/check_bench_json.py gates 1k vs 10k at +-20%)\n";

  cli.finish(report);
  return 0;
}
