// Reproduces Fig. 8: tuple ordering at the sink. Gray dots in the paper are
// raw arrival timings of each frame id; the solid line is playback after
// the 24-tuple (1 second) reorder buffer. We quantify the same effect per
// policy: how scrambled arrivals are, and how smooth playback is after
// reordering — LRS should need the least reordering and play back smoothest.
#include <algorithm>

#include "bench/bench_util.h"
#include "common/ascii_chart.h"

using namespace swing;
using namespace swing::bench;

namespace {

struct OrderingResult {
  std::size_t frames = 0;
  double inversion_fraction = 0.0;   // Arrivals out of order.
  double mean_displacement = 0.0;    // |arrival position - id position|.
  double playback_gap_stddev_ms = 0.0;  // Smoothness of the solid line.
  std::uint64_t late_drops = 0;
  // The paper's plot: frame id vs arrival time (dots) and playback (line).
  ChartSeries arrivals{"arrival", '.', {}};
  ChartSeries playback{"playback", 'o', {}};
};

OrderingResult run(core::PolicyKind policy, double measure_s,
                   std::uint64_t seed) {
  apps::TestbedConfig config;
  config.policy = policy;
  config.seed = seed;
  apps::Testbed bed{config};
  bed.launch(apps::face_recognition_graph());
  bed.run(seconds(10));
  const SimTime t0 = bed.sim().now();
  bed.run(seconds(measure_s));

  // Arrival sequence of frame ids within the window.
  std::vector<std::pair<SimTime, std::uint64_t>> arrivals;
  for (const auto& p : bed.swarm().metrics().arrivals().points()) {
    if (p.time >= t0) arrivals.emplace_back(p.time, std::uint64_t(p.value));
  }

  OrderingResult r;
  r.frames = arrivals.size();
  if (arrivals.size() < 2) return r;

  std::size_t inversions = 0;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i].second < arrivals[i - 1].second) ++inversions;
  }
  r.inversion_fraction = double(inversions) / double(arrivals.size() - 1);

  // Displacement: compare arrival position with id-sorted position.
  std::vector<std::uint64_t> ids;
  ids.reserve(arrivals.size());
  for (const auto& [t, id] : arrivals) ids.push_back(id);
  std::vector<std::uint64_t> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  double total_disp = 0.0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), ids[i]);
    total_disp += std::abs(double(it - sorted.begin()) - double(i));
  }
  r.mean_displacement = total_disp / double(ids.size());

  // Playback smoothness: stddev of inter-display intervals.
  std::vector<SimTime> plays;
  for (const auto& p : bed.swarm().metrics().plays().points()) {
    if (p.time >= t0) plays.push_back(p.time);
  }
  OnlineStats gaps;
  for (std::size_t i = 1; i < plays.size(); ++i) {
    gaps.add((plays[i] - plays[i - 1]).millis());
  }
  r.playback_gap_stddev_ms = gaps.stddev();

  const auto* reorder = bed.swarm().worker(bed.id("A"))->reorder_of(
      bed.swarm().graph().sinks()[0]);
  if (reorder != nullptr) r.late_drops = reorder->late_drops();

  // First ~15 s of the window, like the paper's Fig. 8 panels.
  const SimTime chart_end = t0 + seconds(15);
  for (const auto& [t, id] : arrivals) {
    if (t < chart_end) {
      r.arrivals.points.emplace_back((t - t0).seconds(), double(id));
    }
  }
  for (const auto& p : bed.swarm().metrics().plays().points()) {
    if (p.time >= t0 && p.time < chart_end) {
      r.playback.points.emplace_back((p.time - t0).seconds(), p.value);
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args{argc, argv};
  const BenchCli cli = parse_standard(args, "fig08_ordering", 60.0);
  const double measure_s = cli.duration_s;
  obs::BenchReport report = cli.make_report();

  std::cout << "=== Fig 8: tuple ordering at the sink (face recognition, "
               "24-tuple reorder buffer) ===\n";
  TextTable table({"policy", "frames", "arrival inversions (%)",
                   "mean displacement", "playback gap stddev (ms)",
                   "late drops"});
  std::vector<std::pair<std::string, OrderingResult>> charts;
  for (core::PolicyKind policy : core::kAllPolicies) {
    auto r = run(policy, measure_s, cli.seed);
    table.row(core::policy_name(policy), r.frames,
              100.0 * r.inversion_fraction, r.mean_displacement,
              r.playback_gap_stddev_ms, r.late_drops);

    obs::Json& row = report.add_result();
    row["policy"] = core::policy_name(policy);
    row["frames"] = std::uint64_t(r.frames);
    row["inversion_fraction"] = r.inversion_fraction;
    row["mean_displacement"] = r.mean_displacement;
    row["playback_gap_stddev_ms"] = r.playback_gap_stddev_ms;
    row["late_drops"] = r.late_drops;

    if (policy == core::PolicyKind::kRR ||
        policy == core::PolicyKind::kLRS) {
      charts.emplace_back(core::policy_name(policy), std::move(r));
    }
  }
  if (args.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  // Render the paper's panels for the extreme policies.
  for (auto& [name, r] : charts) {
    std::cout << "\n--- frame id vs time, " << name
              << " (first 15 s; '.' arrival, 'o' playback) ---\n";
    ChartOptions options;
    options.width = 70;
    options.height = 14;
    options.x_label = "time (s)";
    options.y_label = "frame id";
    std::cout << render_chart({r.arrivals, r.playback}, options);
  }
  std::cout << "\n(paper: dots scatter except under LRS; *S policies play "
               "back smoothest because fewer devices mean less skew)\n";
  cli.finish(report);
  return 0;
}
