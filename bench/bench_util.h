// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/face_recognition.h"
#include "apps/testbed.h"
#include "apps/voice_translation.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/policy.h"
#include "obs/bench_report.h"

namespace swing::bench {

// Simple --key=value flag reader shared by all bench binaries.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] double get_double(const std::string& key, double def) const {
    const auto v = find(key);
    return v.empty() ? def : std::stod(v);
  }
  [[nodiscard]] int get_int(const std::string& key, int def) const {
    const auto v = find(key);
    return v.empty() ? def : std::stoi(v);
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t def) const {
    const auto v = find(key);
    return v.empty() ? def : std::stoull(v);
  }
  [[nodiscard]] std::string get_str(const std::string& key,
                                    const std::string& def) const {
    const auto v = find(key);
    return v.empty() ? def : v;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    for (const auto& a : args_) {
      if (a == "--" + key) return true;
      if (a.rfind("--" + key + "=", 0) == 0) return true;
    }
    return false;
  }

 private:
  [[nodiscard]] std::string find(const std::string& key) const {
    const std::string prefix = "--" + key + "=";
    for (const auto& a : args_) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return {};
  }
  std::vector<std::string> args_;
};

// The standard bench CLI, shared by every bench binary:
//   --seed=N          RNG seed (default 42)
//   --duration=S      measurement window in seconds (--seconds still works)
//   --out[=path]      write BENCH_<name>.json (bare --out uses that default)
struct BenchCli {
  std::string bench_name;
  std::uint64_t seed = 42;
  double duration_s = 0.0;
  std::string out;  // Empty: no report requested.

  [[nodiscard]] bool wants_report() const { return !out.empty(); }

  // A report pre-filled with the standard config block. The output path is
  // deliberately NOT recorded: two runs writing to different paths must
  // stay byte-identical.
  [[nodiscard]] obs::BenchReport make_report() const {
    obs::BenchReport report{bench_name, seed};
    report.set_config("duration_s", duration_s);
    return report;
  }

  // Writes the report when --out was given; prints where it went.
  void finish(const obs::BenchReport& report) const {
    if (!wants_report()) return;
    if (report.write(out)) {
      std::cout << "wrote " << out << '\n';
    } else {
      std::cerr << "failed to write " << out << '\n';
    }
  }
};

inline BenchCli parse_standard(const Args& args, std::string bench_name,
                               double default_duration_s) {
  BenchCli cli;
  cli.bench_name = std::move(bench_name);
  cli.seed = args.get_u64("seed", 42);
  // --duration is the standard spelling; --seconds remains as an alias for
  // scripts written against the original CLI.
  cli.duration_s = args.get_double(
      "duration", args.get_double("seconds", default_duration_s));
  // CI smoke runs (tools/run_all_benches.sh --smoke) shorten every bench
  // that wasn't given an explicit window.
  if (!args.has("duration") && !args.has("seconds") &&
      std::getenv("SWING_BENCH_SMOKE") != nullptr) {
    cli.duration_s = std::min(cli.duration_s, 5.0);
  }
  if (args.has("out")) {
    cli.out = args.get_str("out", "");
    if (cli.out.empty()) cli.out = "BENCH_" + cli.bench_name + ".json";
  }
  return cli;
}

enum class App { kFaceRecognition, kVoiceTranslation };

inline const char* app_name(App app) {
  return app == App::kFaceRecognition ? "Face Recognition"
                                      : "Voice Translation";
}

inline dataflow::AppGraph make_app_graph(App app) {
  if (app == App::kFaceRecognition) {
    return apps::face_recognition_graph();
  }
  return apps::voice_translation_graph();
}

// Result of one policy run on the paper's 9-device testbed.
struct PolicyRunResult {
  core::PolicyKind policy;
  double throughput_fps = 0.0;
  SampleStats latency_ms;
  // Per-worker-device observations, keyed by testbed letter.
  struct PerDevice {
    double cpu_util = 0.0;         // Mean sampled utilisation [0,1].
    double input_fps = 0.0;        // Tuples/s routed to the device.
    double input_kbps = 0.0;       // Wire kB/s routed to the device.
    double cpu_power_w = 0.0;      // Average over the measurement window.
    double wifi_power_w = 0.0;
  };
  std::vector<std::pair<std::string, PerDevice>> devices;

  [[nodiscard]] double aggregate_power_w() const {
    double total = 0.0;
    for (const auto& [name, d] : devices) {
      total += d.cpu_power_w + d.wifi_power_w;
    }
    return total;
  }
};

// Runs one policy on the paper's §VI-B testbed (A master/source/sink,
// workers B..I, weak signal at B/C/D) and collects Fig. 4-7 metrics.
inline PolicyRunResult run_policy_experiment(App app, core::PolicyKind policy,
                                             double measure_s,
                                             double warmup_s = 10.0,
                                             std::uint64_t seed = 42) {
  apps::TestbedConfig config;
  config.policy = policy;
  config.seed = seed;
  apps::Testbed bed{config};
  bed.launch(make_app_graph(app));

  bed.run(seconds(warmup_s));
  const SimTime t0 = bed.sim().now();

  // Energy snapshots bracket the measurement window.
  std::vector<runtime::Swarm::EnergySnapshot> before;
  for (const auto& name : bed.worker_names()) {
    before.push_back(bed.swarm().energy_snapshot(bed.id(name)));
  }
  // Device counters are cumulative; snapshot them too.
  struct CounterSnap {
    std::uint64_t frames, bytes;
  };
  std::vector<CounterSnap> counters_before;
  for (const auto& name : bed.worker_names()) {
    const auto& c = bed.swarm().metrics().device(bed.id(name));
    counters_before.push_back({c.frames_from_source, c.bytes_in});
  }

  bed.run(seconds(measure_s));
  const SimTime t1 = bed.sim().now();

  PolicyRunResult result;
  result.policy = policy;
  result.throughput_fps = bed.swarm().metrics().throughput_fps(t0, t1);
  result.latency_ms = bed.swarm().metrics().latency_stats(t0, t1);

  for (std::size_t i = 0; i < bed.worker_names().size(); ++i) {
    const auto& name = bed.worker_names()[i];
    const DeviceId id = bed.id(name);
    const auto after = bed.swarm().energy_snapshot(id);
    const auto power = runtime::Swarm::power_between(before[i], after);
    const auto& c = bed.swarm().metrics().device(id);

    PolicyRunResult::PerDevice d;
    d.cpu_util = c.cpu_util.mean();
    d.input_fps = double(c.frames_from_source - counters_before[i].frames) /
                  measure_s;
    d.input_kbps =
        double(c.bytes_in - counters_before[i].bytes) / 1000.0 / measure_s;
    d.cpu_power_w = power.cpu_w;
    d.wifi_power_w = power.wifi_w;
    result.devices.emplace_back(name, d);
  }
  return result;
}

}  // namespace swing::bench
